#!/usr/bin/env python3
"""Overload-hardened submissions: idempotent retries, deadlines, shedding.

Walks the service-hardening loop the daemon provides:

1. start a private campaign daemon on a Unix socket;
2. submit a campaign carrying a client-generated ``submission_key``,
   then submit the *same* keyed spec again — the duplicate answers the
   original campaign id, so a client that retries a torn POST can never
   run the campaign twice;
3. submit a campaign whose ``deadline_s`` cannot be met — the service
   expires it at a cell boundary, remaining cells fail through the
   ordinary degraded path (e = 0), and ``wait()`` raises
   ``DeadlineExpired`` rather than pretending success;
4. drive the load shedder in-process: past ``shed_fraction`` of the
   admission cap, ``check_overload()`` refuses with an ``OverloadError``
   carrying a backlog-derived ``Retry-After`` hint — *before* the
   admission wall and before any disk I/O;
5. show the deterministic ``ClientPolicy`` backoff schedule a
   well-behaved client sleeps between retries.

Run:  python examples/overload_retry.py
"""

import dataclasses
import os
import subprocess
import sys
import tempfile
import time

from repro.core.types import DeviceKind, Precision
from repro.errors import DeadlineExpired, OverloadError
from repro.harness.experiment import Experiment
from repro.service import (AdmissionPolicy, CampaignService, ClientPolicy,
                           OverloadPolicy, ServiceClient)
from repro.service.spec import CampaignSpec

SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                   "src")


def spec_for(exp_id, models=("julia", "numba"), sizes=(256, 512), **extra):
    base = CampaignSpec(experiment=Experiment(
        exp_id=exp_id, title="overload demonstration", node_name="Crusher",
        device=DeviceKind.CPU, precision=Precision.FP64,
        models=models, sizes=sizes, threads=64, reps=2))
    return dataclasses.replace(base, **extra) if extra else base


def start_daemon(workdir, sock):
    env = {k: v for k, v in os.environ.items()
           if not k.startswith("REPRO_")}
    env["REPRO_RUNS_DIR"] = os.path.join(workdir, "runs")
    env["REPRO_CACHE_DIR"] = os.path.join(workdir, "cache")
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--socket", sock],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        try:
            ServiceClient(sock).ping()
            return proc
        except Exception:
            time.sleep(0.05)
    proc.kill()
    raise SystemExit("daemon did not come up")


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="repro-overload-demo-")
    sock = os.path.join(workdir, "daemon.sock")

    print("== 1. start a private daemon ==")
    proc = start_daemon(workdir, sock)
    print(f"   listening on {sock}")

    try:
        client = ServiceClient(sock, policy=ClientPolicy(retries=3))

        print("== 2. idempotent submission: retried POSTs are exactly-once ==")
        keyed = spec_for("overload-demo", submission_key="demo-key-1")
        first = client.submit(keyed)
        again = client.submit(keyed)
        print(f"   first submit  -> {first}")
        print(f"   retried submit-> {again} (duplicate answered original id)")
        assert again == first
        client.wait(first)
        print("   campaign finished once; the key never ran it twice")

        print("== 3. deadlines: an unmeetable budget expires honestly ==")
        doomed = spec_for("overload-deadline",
                          models=("julia", "numba", "kokkos"),
                          sizes=(256, 512, 1024, 2048),
                          deadline_s=0.05, submission_key="demo-key-2")
        doomed_id = client.submit(doomed)
        try:
            client.wait(doomed_id)
            raise SystemExit("expected the deadline to lapse")
        except DeadlineExpired as exc:
            print(f"   wait() raised: {exc}")
        report = client.report(doomed_id)
        assert "DEGRADED" in report
        print("   expired report uses the ordinary degraded accounting "
              "(e = 0 cells)")
    finally:
        try:
            ServiceClient(sock).shutdown()
        except Exception:
            proc.kill()
        proc.wait(timeout=30)

    print("== 4. load shedding: refuse before the admission wall ==")
    from repro.harness.engine import ResultCache
    from repro.harness.journal import RunRegistry
    svc = CampaignService(
        registry=RunRegistry(os.path.join(workdir, "shed-runs")),
        cache=ResultCache(os.path.join(workdir, "shed-cache")),
        policy=AdmissionPolicy(max_total=4), overload=OverloadPolicy())
    threshold = svc.overload.shed_threshold(4)
    for i in range(threshold):
        svc.submit(spec_for(f"overload-fill-{i}"))
    try:
        svc.check_overload()
        raise SystemExit("expected the shedder to refuse")
    except OverloadError as exc:
        print(f"   backlog {threshold}/{4} sheds: retry after "
              f"{exc.retry_after_s:.0f}s ({exc})")

    print("== 5. the client's deterministic backoff schedule ==")
    policy = ClientPolicy(retries=5)
    waits = ", ".join(f"{policy.backoff_s(n):.2f}s"
                      for n in range(policy.retries))
    print(f"   retries sleep {waits} (Retry-After wins when larger)")


if __name__ == "__main__":
    main()
