#!/usr/bin/env python3
"""Performance-engineering walkthrough on the kernel IR.

Takes the hand-rolled GEMM through the questions a tuner would ask, using
the same machinery the programming-model frontends use:

1. Which loop order should the inner loop have? (interchange + cost model)
2. What do bounds checks cost, and why does ``@inbounds`` matter?
3. What does fastmath unlock for a scalar-accumulator kernel?
4. Do the simulated rankings agree with *real* executions of the same
   loop orders on this host?

Run:  python examples/custom_kernel_tuning.py
"""

import time

import numpy as np

from repro.arrays.random import FillPolicy, make_gemm_operands
from repro.core.types import Layout, MatrixShape, Precision
from repro.ir import builder
from repro.ir.passes import (
    InsertBoundsChecks,
    SetFastMath,
    UnrollInnerLoop,
    VectorizeInnerLoop,
    vectorization_legal,
)
from repro.kernels import naive_gemm, reference_gemm
from repro.machine import EPYC_7A53
from repro.sim.executor import simulate_cpu_kernel

SHAPE = MatrixShape.square(2048)
CPU = EPYC_7A53
THREADS = 64


def tuned(kernel):
    """Apply the standard -O3 pipeline: vectorise then unroll."""
    k = VectorizeInnerLoop(CPU.simd_lanes(kernel.precision)).run(kernel)
    return UnrollInnerLoop(4).run(k)


def gflops(kernel) -> float:
    t = simulate_cpu_kernel(kernel, CPU, SHAPE, THREADS)
    return t.gflops(SHAPE)


def main() -> None:
    base = builder.c_openmp_cpu(Precision.FP64)  # order ikj

    print(f"== 1. Loop order (simulated on {CPU.name}, {THREADS} threads) ==")
    for order in ("ikj", "ijk", "jki"):
        # parallelise the outermost loop of each nest, as OpenMP would
        k = builder.build_gemm(f"gemm-{order}", Precision.FP64, order,
                               Layout.ROW_MAJOR, parallel_vars=(order[0],))
        legal, why = vectorization_legal(k)
        perf = gflops(tuned(k))
        print(f"  {order}: {perf:7.0f} GFLOP/s  "
              f"(inner-loop vectorisation: {'yes' if legal else 'no — ' + why})")

    print("\n== 2. Bounds checks (the @inbounds story) ==")
    clean = tuned(base)
    checked = InsertBoundsChecks().run(base)  # guards block vectorisation
    print(f"  without checks: {gflops(clean):7.0f} GFLOP/s")
    print(f"  with checks:    {gflops(tuned(checked)):7.0f} GFLOP/s "
          "(guards also veto vectorisation)")

    print("\n== 3. Fastmath on a scalar-accumulator kernel ==")
    accum = builder.kokkos_cpu(Precision.FP64)  # per-element reduction
    strict = UnrollInnerLoop(4).run(accum)
    fast = tuned(UnrollInnerLoop(8).run(SetFastMath(True).run(accum)))
    print(f"  strict FP (serial chain): {gflops(strict):7.0f} GFLOP/s")
    print(f"  fastmath + unroll x8:     {gflops(fast):7.0f} GFLOP/s")

    print("\n== 4. Reality check: the same loop orders, actually executed ==")
    n = 64  # interpreted loops: keep it small
    a, b, c = make_gemm_operands(n, n, n, Precision.FP64, Layout.ROW_MAJOR,
                                 FillPolicy(seed=1))
    expected = reference_gemm(a, b, Precision.FP64)
    for order in ("ikj", "ijk", "jki"):
        best = float("inf")
        for _ in range(3):
            c[:] = 0.0
            t0 = time.perf_counter()
            naive_gemm(order, a, b, c)
            best = min(best, time.perf_counter() - t0)
        np.testing.assert_allclose(c, expected, rtol=1e-10)
        print(f"  {order}: {best * 1e3:7.2f} ms  (n={n}, pure Python, "
              "validated against numpy)")
    print("\nThe hoisted-temp orders (ikj with temp=A[i,k]) lead in both the")
    print("simulation and the real run — the reason every kernel in the")
    print("paper's Fig. 2 is written that way.")


if __name__ == "__main__":
    main()
