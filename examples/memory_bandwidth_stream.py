#!/usr/bin/env python3
"""BabelStream across the study's machines — and for real on this host.

The GEMM study shows portability is *hard* when the kernel leans on code
generation; this example shows the flip side with the five STREAM
kernels, which lean on the memory system instead: every supported model
lands within a few percent of the vendor at STREAM sizes, the JIT
runtimes pay only a write-allocate tax on CPU store kernels and launch
overhead at small sizes, and nothing resembles the 4x GEMM gaps.

Finishes with a genuinely measured NumPy STREAM on this machine.

Run:  python examples/memory_bandwidth_stream.py
"""

from repro.machine import A100, AMPERE_ALTRA, EPYC_7A53, MI250X
from repro.stream import (
    StreamKernel,
    measure_host_stream,
    simulate_stream,
    stream_table,
    validate_stream,
)

N = 1 << 25  # BabelStream's default working set


def main() -> None:
    validate_stream()  # numerics first

    for spec, models in (
        (EPYC_7A53, ("c-openmp", "kokkos", "julia", "numba")),
        (AMPERE_ALTRA, ("c-openmp", "kokkos", "julia", "numba")),
        (MI250X, ("hip", "kokkos", "julia", "numba")),
        (A100, ("cuda", "kokkos", "julia", "numba")),
    ):
        print(stream_table(spec, models, N).render())
        print()

    print("Launch overhead bites the Python-driven launches at small sizes:")
    for n in (1 << 16, 1 << 20, 1 << 25):
        cuda = simulate_stream("cuda", A100, StreamKernel.TRIAD, n)
        numba = simulate_stream("numba", A100, StreamKernel.TRIAD, n)
        print(f"  n=2^{n.bit_length() - 1}: CUDA {cuda.bandwidth_gbs:7.0f} GB/s,"
              f" Numba {numba.bandwidth_gbs:7.0f} GB/s"
              f"  (ratio {numba.bandwidth_gbs / cuda.bandwidth_gbs:.2f})")

    print("\nMeasured on this host (NumPy kernels, best of 3):")
    for kernel, bw in measure_host_stream(n=1 << 22, reps=3).items():
        print(f"  {kernel.value:6s} {bw:7.1f} GB/s")

    print("\nTakeaway: memory-bound kernels are the easy case for")
    print("performance portability; the paper's GEMM gaps are a statement")
    print("about code generation and runtimes, not about moving bytes.")


if __name__ == "__main__":
    main()
