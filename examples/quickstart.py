#!/usr/bin/env python3
"""Quickstart: benchmark four programming models on one simulated node.

Runs the paper's hand-rolled GEMM across C/OpenMP, Kokkos, Julia and
Python/Numba on Crusher's AMD EPYC 7A53 (64 threads, 4 NUMA regions),
prints the GFLOP/s table and chart, and computes each portable model's
performance efficiency against the vendor reference — one panel of the
study, end to end.

Run:  python examples/quickstart.py
"""

from repro import Experiment, Precision, run_experiment
from repro.core.types import DeviceKind
from repro.harness.report import render_result_set
from repro.models import model_by_name, reference_model_for

def main() -> None:
    experiment = Experiment(
        exp_id="quickstart",
        title="Hand-rolled GEMM on Crusher's CPU",
        node_name="Crusher",
        device=DeviceKind.CPU,
        precision=Precision.FP64,
        models=("c-openmp", "kokkos", "julia", "numba"),
        sizes=(1024, 2048, 4096, 8192),
        threads=64,
        reps=10,
    )

    results = run_experiment(experiment)
    print(render_result_set(results))
    print()

    reference = reference_model_for(experiment.target_spec)
    print(f"Performance efficiency vs {reference.display} (Eq. 2):")
    for name in experiment.models:
        if name == reference.name:
            continue
        e = results.mean_efficiency(name, reference.name)
        display = model_by_name(name).display
        print(f"  e({display:13s}) = {e:.3f}")

    print()
    print("Things to try next:")
    print("  * precision=Precision.FP32 — watch every model ~double")
    print("  * node_name='Wombat', threads=80 — the Arm CPU (Fig. 5)")
    print("  * device=DeviceKind.GPU — the A100/MI250X panels (Figs. 6-7)")


if __name__ == "__main__":
    main()
