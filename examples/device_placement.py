#!/usr/bin/env python3
"""Where should this GEMM run? CPU/GPU placement with and without transfers.

Uses the crossover study to answer a question the paper's per-device
figures set up: on each node, for each precision Julia supports
everywhere, which device wins — counting only the kernel (the paper's
methodology) and end-to-end with PCIe/Infinity-Fabric transfers included.

The FP16 rows are the interesting ones: on Crusher the Zen3 CPU emulates
half precision in software while the MI250X runs it natively (GPU wins
decisively); on Wombat the Altra's native FP16 SIMD keeps the CPU ahead
of the A100 for this naive kernel.

Run:  python examples/device_placement.py
"""

from repro.core.types import Precision
from repro.harness import device_crossover
from repro.machine import CRUSHER, WOMBAT

SIZES = (256, 512, 1024, 2048, 4096)


def main() -> None:
    for node in (CRUSHER, WOMBAT):
        for precision in (Precision.FP64, Precision.FP16):
            study = device_crossover(node, "julia", precision, SIZES)
            print(study.render())
            print()

    print("Note: absolute cross-device levels are a property of the machine")
    print("models (the paper's figures constrain only within-device ratios);")
    print("what is robust here is the *structure* — transfer costs push the")
    print("crossover to larger sizes, and precision support asymmetries")
    print("(software FP16 on Zen3, native FP16 on Neoverse-N1/MI250X) can")
    print("dominate the placement decision entirely.")


if __name__ == "__main__":
    main()
