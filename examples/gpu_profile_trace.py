#!/usr/bin/env python3
"""nvprof-style corroboration of simulated GPU activity.

The paper verified that Kokkos and Numba really were executing on the GPU
with nvprof before trusting their (poor) numbers.  This example does the
analogous thing against the simulator: run Fig. 7's double-precision panel
with the tracer attached, then print the profiler summary and timeline —
JIT compilation, host-to-device transfers, every kernel repetition, and
the copy back.

Run:  python examples/gpu_profile_trace.py
"""

from repro import Precision
from repro.core.types import DeviceKind
from repro.harness import Experiment, run_experiment
from repro.harness.report import render_result_set
from repro.trace.profiler import Profiler
from repro.trace.timeline import render_timeline, summary_table


def main() -> None:
    experiment = Experiment(
        exp_id="fig7a-traced",
        title="A100 double precision with tracing",
        node_name="Wombat",
        device=DeviceKind.GPU,
        precision=Precision.FP64,
        models=("cuda", "julia", "numba"),
        sizes=(4096,),
        reps=5,
    )

    profiler = Profiler()
    results = run_experiment(experiment, profiler=profiler)

    print(render_result_set(results, chart=False))

    print("\n=== profiler summary (nvprof analogue) ===\n")
    print(summary_table(profiler.events))

    print("\n=== timeline ===\n")
    print(render_timeline(profiler.events, width=64))

    kernels = [e for e in profiler.events if e.kind.value == "kernel"]
    print(f"\ncorroboration: {len(kernels)} kernel executions recorded "
          f"({experiment.reps} reps + {experiment.warmup} warm-up, "
          f"x {len([m for m in results.measurements if m.supported])} models)")
    jits = [e for e in profiler.events if e.kind.value == "jit-compile"]
    print(f"JIT compilations (excluded by the warm-up methodology): "
          f"{[e.name for e in jits]}")


if __name__ == "__main__":
    main()
