#!/usr/bin/env python3
"""NUMA clinic: why the same unpinned runtime loses 30% on one CPU and
nothing on the other.

The paper's Numba results straddle its two CPUs: efficiency 0.55 on
Crusher's 4-NUMA EPYC but 0.71 on Wombat's single-NUMA Altra (Table III,
double precision).  The missing piece is thread pinning — Numba has no
API for it.  This example dissects the mechanism with the scheduler
simulator: placements, per-thread remote-access fractions, migration tax,
and what each policy costs on each machine.

Run:  python examples/numa_pinning_clinic.py
"""

from repro.core.types import MatrixShape, Precision
from repro.ir import builder
from repro.ir.passes import UnrollInnerLoop, VectorizeInnerLoop
from repro.machine import AMPERE_ALTRA, EPYC_7A53
from repro.sched import (
    MemoryHome,
    PinPolicy,
    memory_costs,
    place_threads,
)
from repro.sim.executor import simulate_cpu_kernel

SHAPE = MatrixShape.square(4096)


def kernel_for(cpu):
    k = builder.c_openmp_cpu(Precision.FP64)
    k = VectorizeInnerLoop(cpu.simd_lanes(Precision.FP64)).run(k)
    return UnrollInnerLoop(4).run(k)


def main() -> None:
    for cpu, threads in ((EPYC_7A53, 64), (AMPERE_ALTRA, 80)):
        print(f"== {cpu.name}: {threads} threads, "
              f"{cpu.numa_domains} NUMA domain(s) ==\n")

        placement = place_threads(cpu, threads, PinPolicy.COMPACT)
        print(f"  compact placement: threads per domain = "
              f"{placement.threads_per_domain(cpu)}")

        costs = memory_costs(cpu, placement, MemoryHome.INTERLEAVED)
        remote = costs[0].remote_fraction
        print(f"  interleaved pages: {remote:.0%} of each thread's traffic "
              f"crosses domains (bandwidth inflation x"
              f"{costs[0].bandwidth_inflation:.2f})")

        kernel = kernel_for(cpu)
        rows = []
        for pin in (PinPolicy.COMPACT, PinPolicy.SPREAD, PinPolicy.NONE):
            t = simulate_cpu_kernel(kernel, cpu, SHAPE, threads, pin=pin)
            rows.append((pin.value, t.gflops(SHAPE), t.total_seconds))
        base = rows[0][1]
        print(f"\n  {'policy':8s} {'GFLOP/s':>8s} {'vs pinned':>10s}")
        for name, gf, _ in rows:
            print(f"  {name:8s} {gf:8.0f} {gf / base:9.2f}x")

        # what serial (node-0) initialisation would cost on top
        t_serial = simulate_cpu_kernel(kernel, cpu, SHAPE, threads,
                                       pin=PinPolicy.COMPACT,
                                       home=MemoryHome.SERIAL_NODE0)
        print(f"\n  first-touch pathology: all pages on domain 0 -> "
              f"{t_serial.gflops(SHAPE):.0f} GFLOP/s")
        print()

    print("Reading: the unpinned penalty exists only where there are NUMA")
    print("boundaries to migrate across — the EPYC. On the Altra, unpinned")
    print("threads cost nothing, which is why Numba's remaining gap there")
    print("is pure code generation. This is the paper's Figs. 4 vs 5")
    print("asymmetry, reproduced mechanistically.")


if __name__ == "__main__":
    main()
