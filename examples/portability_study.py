#!/usr/bin/env python3
"""The full study: regenerate every figure and Table III, then compare the
portability metric against the published numbers — and against the
*alternative* metric definitions the paper cites, which rank the models
differently.

Run:  python examples/portability_study.py [--full]
      (--full uses the paper's 1024..20480 sweep; default is quicker)
"""

import sys

from repro import Precision, fig4, fig5, fig6, fig7, table3
from repro.core.metrics import metric_comparison
from repro.harness import PAPER_PHI, PAPER_TABLE3, PAPER_SIZES, QUICK_SIZES
from repro.models import model_by_name

PLATFORMS = ("Epyc 7A53", "Ampere Altra", "MI250x", "A100")


def main() -> None:
    sizes = PAPER_SIZES if "--full" in sys.argv else QUICK_SIZES

    for fig in (fig4, fig5, fig6, fig7):
        print(fig(sizes).render(charts=False))
        print()

    print("=== Table III: performance efficiency and Phi_M ===\n")
    computed = table3(sizes)
    print(computed.render())

    print("\n=== Reproduction vs published values ===\n")
    print(f"{'cell':34s} {'paper':>7s} {'ours':>7s} {'delta':>7s}")
    worst = 0.0
    for precision in (Precision.FP64, Precision.FP32):
        for model in ("kokkos", "julia", "numba"):
            row = computed.row(model, precision)
            for platform in PLATFORMS:
                published = PAPER_TABLE3[precision][model][platform]
                ours = row.efficiencies.get(platform)
                label = f"e_{platform} {model} {precision.value}"
                if published is None:
                    print(f"{label:34s} {'-':>7s} {'-' if ours is None else format(ours, '.3f'):>7s}")
                    continue
                delta = abs(ours - published)
                worst = max(worst, delta)
                print(f"{label:34s} {published:7.3f} {ours:7.3f} {delta:7.3f}")
            phi_pub = PAPER_PHI[precision][model]
            print(f"{'Phi_' + model + ' ' + precision.value:34s} "
                  f"{phi_pub:7.3f} {row.phi:7.3f} "
                  f"{abs(row.phi - phi_pub):7.3f}")
    print(f"\nworst efficiency deviation: {worst:.3f} (tolerance 0.05)")

    print("\n=== The metric choice matters ===\n")
    print("Same efficiency vectors under three published metric definitions:")
    print(f"{'model':14s} {'paper Eq.(1)':>12s} {'Pennycook PP':>13s} "
          f"{'Marowka':>9s}")
    for model in ("kokkos", "julia", "numba"):
        row = computed.row(model, Precision.FP64)
        effs = [row.efficiencies.get(p) for p in PLATFORMS]
        cmp = metric_comparison(effs)
        print(f"{model_by_name(model).display:14s} "
              f"{cmp['phi_paper']:12.3f} {cmp['pp_pennycook']:13.3f} "
              f"{cmp['phi_marowka']:9.3f}")
    print("\nNote how Numba scores 0 under the strict Pennycook definition")
    print("(it cannot run on the AMD GPU at all) but 0.35 under the paper's")
    print("unsupported-counts-as-zero convention and 0.46 when unsupported")
    print("platforms are simply dropped from the set.")

    print("\n=== Portability cascade (platforms added best-first) ===\n")
    from repro.core.cascade import cascade, render_cascades
    cascades = [cascade(m, computed.row(m, Precision.FP64).efficiencies)
                for m in ("kokkos", "julia", "numba")]
    print(render_cascades(cascades))
    print()
    for c in cascades:
        cliff = c.cliff_platform
        print(f"  {c.model}: " + (
            f"strict PP collapses when {cliff} joins the platform set"
            if cliff else "flat cascade — genuinely portable performance"))


if __name__ == "__main__":
    main()
