#!/usr/bin/env python3
"""Crash-safe campaigns: interrupt a journaled sweep, resume it exactly.

Walks the full robustness loop the harness provides:

1. run a campaign uninterrupted to establish the reference output;
2. run the same campaign with a write-ahead journal and kill it
   mid-sweep (a simulated SIGINT on the third cell);
3. inspect the journal the interrupt left behind — finalized, with
   every completed cell's measurement embedded;
4. resume from the journal: completed cells replay from their embedded
   payloads, the remainder executes, and the merged result is
   *byte-identical* to the uninterrupted reference;
5. fsck the store and confirm it is clean.

Run:  python examples/crash_and_resume.py
"""

import os
import tempfile

from repro.core.types import DeviceKind, Precision
from repro.errors import RunInterrupted
from repro.harness.engine import ResultCache, RunOptions, SweepEngine
from repro.harness.experiment import Experiment
from repro.harness.export import result_set_to_json
from repro.harness.journal import RunRegistry, fsck_store, resume_run
from repro.harness.runner import run_experiment

EXPERIMENT = Experiment(
    exp_id="resume-demo",
    title="crash/resume demonstration",
    node_name="Crusher",
    device=DeviceKind.CPU,
    precision=Precision.FP64,
    models=("c-openmp", "kokkos", "julia", "numba"),
    sizes=(256, 512),
    threads=64,
    reps=5,
)

INTERRUPT_AT_CELL = 3


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="repro-resume-demo-")
    registry = RunRegistry(os.path.join(workdir, "runs"))

    print("== 1. uninterrupted reference run ==")
    reference = run_experiment(EXPERIMENT,
                               engine=SweepEngine(cache=None, parallel=False))
    print(f"   {len(reference.measurements)} cells measured")

    print(f"== 2. journaled run, killed at cell {INTERRUPT_AT_CELL} ==")
    import repro.harness.engine.worker as worker
    original = worker.run_measurement
    calls = {"count": 0}

    def dying_run_measurement(*args, **kwargs):
        calls["count"] += 1
        if calls["count"] == INTERRUPT_AT_CELL:
            raise KeyboardInterrupt  # what SIGINT delivers mid-sweep
        return original(*args, **kwargs)

    worker.run_measurement = dying_run_measurement
    journal = registry.create()
    try:
        run_experiment(EXPERIMENT,
                       engine=SweepEngine(cache=None, parallel=False),
                       options=RunOptions(journal=journal))
        raise SystemExit("expected the run to be interrupted")
    except RunInterrupted as exc:
        print(f"   interrupted: {exc}")
    finally:
        worker.run_measurement = original
        journal.close()

    print("== 3. the journal the crash left behind ==")
    state = registry.load(journal.run_id)
    print(f"   {state.describe()}")
    assert state.status == "interrupted" and state.resumable

    print("== 4. resume: replay + execute the remainder ==")
    engine = SweepEngine(cache=None, parallel=False)
    resumed = resume_run(journal.run_id, registry=registry, engine=engine)
    report = engine.last_report
    print(f"   {report.replayed_cells} cells replayed from the journal, "
          f"{report.executed_cells} executed")
    assert result_set_to_json(resumed) == result_set_to_json(reference)
    print("   resumed output is byte-identical to the reference")

    print("== 5. fsck ==")
    fsck = fsck_store(cache=ResultCache(os.path.join(workdir, "cache")),
                      registry=registry)
    print("   " + fsck.render().splitlines()[-1])
    assert not fsck.corrupt


if __name__ == "__main__":
    main()
