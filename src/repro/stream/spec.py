"""BabelStream kernel definitions.

The five canonical memory-bandwidth kernels (McCalpin's STREAM as extended
by BabelStream, the suite Lin & McIntosh-Smith used for the Julia
portability study the paper cites as [24]):

=========  ======================  =========== =======
kernel     operation               bytes/elem  flops
=========  ======================  =========== =======
copy       c[i] = a[i]             2w          0
mul        b[i] = s * c[i]         2w          1
add        c[i] = a[i] + b[i]      3w          1
triad      a[i] = b[i] + s * c[i]  3w          2
dot        sum += a[i] * b[i]      2w          2
=========  ======================  =========== =======

(w = word size).  All five are DRAM-bandwidth-bound at STREAM sizes, which
is exactly why they complement the paper's compute-leaning GEMM: a
programming model's *memory-system* portability shows here with the
codegen quality factored out.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..core.types import Precision

__all__ = ["StreamKernel", "KERNEL_TRAITS", "StreamTraits"]


@dataclass(frozen=True)
class StreamTraits:
    """Memory and arithmetic volume per element."""

    words_moved: int     # reads + writes per element
    flops: int
    has_reduction: bool = False

    def bytes_per_element(self, precision: Precision) -> int:
        return self.words_moved * precision.bytes


class StreamKernel(enum.Enum):
    """One of the five BabelStream kernels (see module table)."""

    COPY = "copy"
    MUL = "mul"
    ADD = "add"
    TRIAD = "triad"
    DOT = "dot"

    @property
    def traits(self) -> StreamTraits:
        return KERNEL_TRAITS[self]

    def bytes_moved(self, n: int, precision: Precision) -> int:
        return n * self.traits.bytes_per_element(precision)

    def flop_count(self, n: int) -> int:
        return n * self.traits.flops


KERNEL_TRAITS = {
    StreamKernel.COPY: StreamTraits(words_moved=2, flops=0),
    StreamKernel.MUL: StreamTraits(words_moved=2, flops=1),
    StreamKernel.ADD: StreamTraits(words_moved=3, flops=1),
    StreamKernel.TRIAD: StreamTraits(words_moved=3, flops=2),
    StreamKernel.DOT: StreamTraits(words_moved=2, flops=2, has_reduction=True),
}
