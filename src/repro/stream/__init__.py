"""BabelStream-style memory-bandwidth benchmarks (extension, E16).

The memory-bound complement to the paper's compute-leaning GEMM study:
the five STREAM kernels across the same programming models and machines,
with real NumPy implementations for host measurement and validation.
"""

from .harness import DEFAULT_N, StreamTable, measure_host_stream, stream_table
from .kernels import SCALAR, StreamArrays, make_arrays, run_kernel, validate_stream
from .model import StreamTiming, simulate_stream
from .spec import KERNEL_TRAITS, StreamKernel, StreamTraits

__all__ = [
    "DEFAULT_N",
    "StreamTable",
    "measure_host_stream",
    "stream_table",
    "SCALAR",
    "StreamArrays",
    "make_arrays",
    "run_kernel",
    "validate_stream",
    "StreamTiming",
    "simulate_stream",
    "KERNEL_TRAITS",
    "StreamKernel",
    "StreamTraits",
]
