"""Simulated STREAM performance per (machine, programming model).

Memory-bound kernels invert the GEMM situation: the code generator barely
matters (any vectorised loop saturates a DRAM channel) and the *runtime*
dominates — thread placement, NUMA locality, non-temporal stores, launch
overhead.  The CPU path therefore reuses the thread/NUMA simulator with
pure memory flows; the GPU path is effective HBM bandwidth plus launch
overhead.  Per-model adjustments are the runtime properties already
established for the GEMM study (Numba cannot pin; Julia and OpenMP can),
plus a streaming-store factor for models whose generated code uses
write-allocate stores.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from ..core.types import Precision
from ..errors import UnsupportedConfigurationError
from ..machine.cpu import CPUSpec
from ..machine.gpu import GPUSpec
from ..models.registry import model_by_name
from ..sched.affinity import place_threads
from ..sched.thread_sim import ThreadWork, simulate_parallel_region
from .spec import StreamKernel

__all__ = ["StreamTiming", "simulate_stream"]

#: Fraction of theoretical DRAM bandwidth a tuned STREAM actually sustains.
CPU_STREAM_CEILING = 0.85
GPU_STREAM_CEILING = 0.90

#: Write-allocate penalty (CPU only): a store without non-temporal hints
#: first reads the line it overwrites, inflating traffic for
#: store-carrying kernels.  The vendor C compiler (and Kokkos, compiled by
#: it) emits non-temporal stores for STREAM patterns; the JIT runtimes do
#: not.  GPUs write-combine full lines, so no model pays this there.
CPU_WRITE_ALLOCATE_FACTOR = {
    "c-openmp": 1.0,
    "kokkos": 1.0,
    "julia": 4 / 3,   # one extra read per store word
    "numba": 4 / 3,
    "pyomp": 4 / 3,
}

#: Host-side launch cost multiplier per model: Numba's launches go through
#: Python-level driver wrappers (cf. Oden [33]); the others are native.
GPU_LAUNCH_MULTIPLIER = {
    "numba": 3.0,
}

#: Stores per element moved, used for the write-allocate inflation.
_STORE_WORDS = {
    StreamKernel.COPY: 1,
    StreamKernel.MUL: 1,
    StreamKernel.ADD: 1,
    StreamKernel.TRIAD: 1,
    StreamKernel.DOT: 0,
}


@dataclass(frozen=True)
class StreamTiming:
    kernel: StreamKernel
    seconds: float
    bytes_moved: int

    @property
    def bandwidth_gbs(self) -> float:
        return self.bytes_moved / self.seconds / 1e9


def simulate_stream(
    model_name: str,
    spec: Union[CPUSpec, GPUSpec],
    kernel: StreamKernel,
    n: int,
    precision: Precision = Precision.FP64,
    threads: int = 0,
) -> StreamTiming:
    """Predicted time of one STREAM kernel invocation."""
    model = model_by_name(model_name)
    support = model.supports(spec, precision)
    if not support.supported:
        raise UnsupportedConfigurationError(model.display, spec.name,
                                            support.reason)

    nominal_bytes = kernel.bytes_moved(n, precision)

    if isinstance(spec, CPUSpec):
        wa = CPU_WRITE_ALLOCATE_FACTOR.get(model.name, 4 / 3)
        store_share = _STORE_WORDS[kernel] * precision.bytes * n
        effective_bytes = nominal_bytes + (wa - 1.0) * store_share
        lowering = model.lower_cpu(spec, precision)
        t = threads if threads else spec.cores
        placement = place_threads(spec, t, lowering.pin)
        per_thread = effective_bytes / CPU_STREAM_CEILING / t
        work = [ThreadWork(i, 0.0, per_thread) for i in range(t)]
        result = simulate_parallel_region(spec, placement, work)
        seconds = result.total_seconds
    else:
        model.lower_gpu(spec, precision)  # validates support/backend
        bw = spec.hbm_bandwidth_gbs * 1e9 * GPU_STREAM_CEILING
        launch = (spec.launch_overhead_us * 1e-6
                  * GPU_LAUNCH_MULTIPLIER.get(model.name, 1.0))
        seconds = nominal_bytes / bw + launch
        # a reduction needs a second (tiny) kernel or device-wide atomics
        if kernel.traits.has_reduction:
            seconds += launch

    return StreamTiming(kernel=kernel, seconds=seconds,
                        bytes_moved=nominal_bytes)
