"""Real, runnable STREAM kernels (NumPy) with validation.

These execute on the host for the real-measurement mode of the stream
harness and for numerical validation of the kernel definitions the
simulator prices.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.types import Precision
from ..errors import KernelValidationError
from .spec import StreamKernel

__all__ = ["StreamArrays", "make_arrays", "run_kernel", "validate_stream",
           "SCALAR"]

#: BabelStream's canonical scalar.
SCALAR = 0.4

#: BabelStream's canonical initial values.
_INIT_A, _INIT_B, _INIT_C = 0.1, 0.2, 0.0


class StreamArrays:
    """The a, b, c working vectors."""

    def __init__(self, n: int, precision: Precision = Precision.FP64):
        dtype = precision.np_dtype
        self.n = n
        self.precision = precision
        self.a = np.full(n, _INIT_A, dtype=dtype)
        self.b = np.full(n, _INIT_B, dtype=dtype)
        self.c = np.full(n, _INIT_C, dtype=dtype)

    def reset(self) -> None:
        self.a[:] = _INIT_A
        self.b[:] = _INIT_B
        self.c[:] = _INIT_C


def make_arrays(n: int, precision: Precision = Precision.FP64) -> StreamArrays:
    """Allocate the three STREAM vectors with BabelStream's initial values."""
    if n <= 0:
        raise ValueError("array length must be positive")
    return StreamArrays(n, precision)


def run_kernel(kernel: StreamKernel, arrays: StreamArrays) -> Optional[float]:
    """Execute one kernel in place; DOT returns the reduction value."""
    a, b, c = arrays.a, arrays.b, arrays.c
    s = arrays.a.dtype.type(SCALAR)
    if kernel is StreamKernel.COPY:
        c[:] = a
    elif kernel is StreamKernel.MUL:
        b[:] = s * c
    elif kernel is StreamKernel.ADD:
        c[:] = a + b
    elif kernel is StreamKernel.TRIAD:
        a[:] = b + s * c
    elif kernel is StreamKernel.DOT:
        return float(np.dot(a, b))
    else:  # pragma: no cover - exhaustive enum
        raise ValueError(kernel)
    return None


def validate_stream(n: int = 1024,
                    precision: Precision = Precision.FP64) -> None:
    """Run the BabelStream sequence once and check the closed-form result.

    After copy, mul, add, triad (in order, from the canonical init):
        c = a0; b = s*c; c = a0 + b; a = b + s*c
    and dot(a, b) follows exactly.  Raises on mismatch.
    """
    arrays = make_arrays(n, precision)
    run_kernel(StreamKernel.COPY, arrays)
    run_kernel(StreamKernel.MUL, arrays)
    run_kernel(StreamKernel.ADD, arrays)
    run_kernel(StreamKernel.TRIAD, arrays)
    dot = run_kernel(StreamKernel.DOT, arrays)

    a0 = _INIT_A
    c_exp = a0
    b_exp = SCALAR * c_exp
    c_exp = a0 + b_exp
    a_exp = b_exp + SCALAR * c_exp
    dot_exp = n * a_exp * b_exp

    eps = float(np.finfo(precision.np_dtype).eps)
    tol = 100 * eps
    for name, got, expected in (("a", arrays.a, a_exp), ("b", arrays.b, b_exp),
                                ("c", arrays.c, c_exp)):
        err = float(np.max(np.abs(got - expected)))
        if err > tol * max(1.0, abs(expected)):
            raise KernelValidationError(
                f"stream array {name}: max error {err:.3e} > tol")
    if abs(dot - dot_exp) > tol * abs(dot_exp) * n ** 0.5:
        raise KernelValidationError(
            f"stream dot: {dot!r} vs expected {dot_exp!r}")
