"""STREAM benchmark harness: simulated tables and real host measurements."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from ..core.types import Precision
from ..errors import UnsupportedConfigurationError
from ..harness.report import ascii_table
from ..machine.cpu import CPUSpec
from ..machine.gpu import GPUSpec
from ..models.registry import model_by_name
from .kernels import make_arrays, run_kernel
from .model import simulate_stream
from .spec import StreamKernel

__all__ = ["StreamTable", "stream_table", "measure_host_stream"]

#: BabelStream's default: 2^25 doubles per array.
DEFAULT_N = 1 << 25


@dataclass
class StreamTable:
    """Sustained bandwidth (GB/s) per kernel per model on one machine."""

    machine: str
    n: int
    precision: Precision
    #: model -> kernel -> GB/s (None: unsupported)
    cells: Dict[str, Dict[StreamKernel, Optional[float]]] = field(
        default_factory=dict)

    def bandwidth(self, model: str, kernel: StreamKernel) -> Optional[float]:
        return self.cells[model][kernel]

    def render(self) -> str:
        kernels = list(StreamKernel)
        headers = ["model"] + [k.value for k in kernels]
        rows = []
        for model, per_kernel in self.cells.items():
            row: List[object] = [model]
            for k in kernels:
                bw = per_kernel[k]
                row.append(f"{bw:.0f}" if bw is not None else "n/a")
            rows.append(row)
        head = (f"STREAM (BabelStream kernels) on {self.machine}: "
                f"GB/s, n={self.n}, {self.precision.label} precision")
        return head + "\n" + ascii_table(headers, rows)


def stream_table(
    spec: Union[CPUSpec, GPUSpec],
    models: Sequence[str],
    n: int = DEFAULT_N,
    precision: Precision = Precision.FP64,
    threads: int = 0,
) -> StreamTable:
    """Simulate the full kernel x model grid on one machine."""
    table = StreamTable(machine=spec.name, n=n, precision=precision)
    for name in models:
        per_kernel: Dict[StreamKernel, Optional[float]] = {}
        for kernel in StreamKernel:
            try:
                timing = simulate_stream(name, spec, kernel, n, precision,
                                         threads)
                per_kernel[kernel] = timing.bandwidth_gbs
            except UnsupportedConfigurationError:
                per_kernel[kernel] = None
        table.cells[model_by_name(name).display] = per_kernel
    return table


def measure_host_stream(n: int = 1 << 22,
                        precision: Precision = Precision.FP64,
                        reps: int = 5) -> Dict[StreamKernel, float]:
    """Actually measure the NumPy STREAM kernels on this host (GB/s).

    Best-of-``reps`` after one warm-up pass, per BabelStream convention.
    """
    arrays = make_arrays(n, precision)
    out: Dict[StreamKernel, float] = {}
    for kernel in StreamKernel:
        run_kernel(kernel, arrays)  # warm-up
        best = float("inf")
        for _ in range(reps):
            t0 = time.perf_counter()
            run_kernel(kernel, arrays)
            best = min(best, time.perf_counter() - t0)
        out[kernel] = kernel.bytes_moved(n, precision) / best / 1e9
        arrays.reset()
    return out
