"""Timeline rendering: an nvprof-style text summary of a trace."""

from __future__ import annotations

from typing import List, Sequence

from .events import TraceEvent

__all__ = ["summary_table", "render_timeline"]


def summary_table(events: Sequence[TraceEvent]) -> str:
    """The classic profiler summary: time%, total, calls, avg, name."""
    if not events:
        return "(no events)"
    total = sum(e.duration_s for e in events) or 1.0
    groups = {}
    for e in events:
        key = (e.kind, e.name)
        dur, calls = groups.get(key, (0.0, 0))
        groups[key] = (dur + e.duration_s, calls + 1)
    rows = sorted(groups.items(), key=lambda kv: -kv[1][0])
    lines = [f"{'Time(%)':>8} {'Time':>12} {'Calls':>6} {'Avg':>12}  Name"]
    for (kind, name), (dur, calls) in rows:
        lines.append(
            f"{100 * dur / total:7.2f}% {dur * 1e3:10.3f}ms {calls:6d} "
            f"{dur / calls * 1e3:10.3f}ms  [{kind.value}] {name}"
        )
    return "\n".join(lines)


def render_timeline(events: Sequence[TraceEvent], width: int = 72) -> str:
    """ASCII Gantt chart of the trace, one row per event."""
    if not events:
        return "(no events)"
    end = max(e.end_s for e in events) or 1.0
    lines: List[str] = []
    for e in events:
        lo = int(width * e.start_s / end)
        hi = max(lo + 1, int(width * e.end_s / end))
        bar = " " * lo + "#" * (hi - lo)
        lines.append(f"{bar:<{width}} | {e.name} ({e.duration_s * 1e3:.3f} ms)")
    return "\n".join(lines)
