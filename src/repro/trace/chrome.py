"""Chrome trace-event export.

Serialises a profiler's events to the Trace Event Format consumed by
``chrome://tracing`` / Perfetto, so simulated timelines can be inspected
in the same UI people use for real GPU traces.  Complete events (``ph:
"X"``) with microsecond timestamps; one row (tid) per event kind, mirroring
how nvprof lays out kernels vs memcpys.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from .events import EventKind, TraceEvent

__all__ = ["to_chrome_trace", "chrome_trace_json"]

#: Stable row assignment per event kind.
_TID: Dict[EventKind, int] = {
    EventKind.API: 0,
    EventKind.JIT_COMPILE: 1,
    EventKind.MEMCPY_H2D: 2,
    EventKind.MEMCPY_D2H: 3,
    EventKind.KERNEL: 4,
    EventKind.PARALLEL_REGION: 5,
    EventKind.CELL: 6,
    EventKind.CACHE_HIT: 7,
    EventKind.CACHE_MISS: 7,
    EventKind.FAULT: 8,
    EventKind.RETRY: 9,
    EventKind.REPLAY: 7,
    EventKind.BREAKER_OPEN: 10,
    EventKind.BREAKER_HALF_OPEN: 10,
    EventKind.BREAKER_CLOSE: 10,
    EventKind.SUBSTITUTION: 11,
}

_THREAD_NAMES = {
    0: "API",
    1: "JIT",
    2: "MemCpy (H2D)",
    3: "MemCpy (D2H)",
    4: "Compute (kernels)",
    5: "Compute (parallel regions)",
    6: "Sweep cells",
    7: "Result cache",
    8: "Faults",
    9: "Retries",
    10: "Breakers",
    11: "Substitutions",
}


def to_chrome_trace(events: Sequence[TraceEvent],
                    process_name: str = "repro-sim") -> List[dict]:
    """Convert events to a list of Chrome trace-event dicts."""
    out: List[dict] = [{
        "name": "process_name",
        "ph": "M",
        "pid": 1,
        "tid": 0,
        "args": {"name": process_name},
    }]
    used_tids = sorted({_TID[e.kind] for e in events})
    for tid in used_tids:
        out.append({
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": tid,
            "args": {"name": _THREAD_NAMES[tid]},
        })
    for e in events:
        out.append({
            "name": e.name,
            "cat": e.kind.value,
            "ph": "X",
            "pid": 1,
            "tid": _TID[e.kind],
            "ts": e.start_s * 1e6,       # microseconds
            "dur": e.duration_s * 1e6,
            "args": {k: _jsonable(v) for k, v in e.metadata.items()},
        })
    return out


def _jsonable(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (tuple, list)):
        return [_jsonable(v) for v in value]
    return repr(value)


def chrome_trace_json(events: Sequence[TraceEvent],
                      process_name: str = "repro-sim") -> str:
    """The JSON string chrome://tracing loads directly."""
    return json.dumps({"traceEvents": to_chrome_trace(events, process_name),
                       "displayTimeUnit": "ms"})
