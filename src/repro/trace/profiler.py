"""The profiler: collects trace events on a monotonically advancing clock."""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

from .events import EventKind, TraceEvent

__all__ = ["Profiler"]


class Profiler:
    """Accumulates :class:`TraceEvent` spans on a simulated clock.

    The clock only moves via :meth:`record` (append a span of known
    duration) or :meth:`advance` (idle time), so the timeline is always
    consistent: no overlapping spans, no time travel.
    """

    def __init__(self) -> None:
        self._events: List[TraceEvent] = []
        self._now: float = 0.0

    @property
    def now(self) -> float:
        return self._now

    @property
    def events(self) -> List[TraceEvent]:
        return list(self._events)

    def record(self, kind: EventKind, name: str, duration_s: float,
               **metadata: Any) -> TraceEvent:
        """Append a span starting at the current clock; advances the clock."""
        ev = TraceEvent(kind=kind, name=name, start_s=self._now,
                        duration_s=duration_s, metadata=dict(metadata))
        self._events.append(ev)
        self._now += duration_s
        return ev

    def record_at(self, kind: EventKind, name: str, start_s: float,
                  duration_s: float, **metadata: Any) -> TraceEvent:
        """Append a span at an explicit start time.

        For externally-timed spans — e.g. the sweep engine's wall-clock
        cell records, which overlap under the thread-pool fan-out — where
        the append-at-now contract of :meth:`record` would stack
        concurrent spans end to end.  The clock never moves backwards: it
        advances to the span's end if that lies beyond it.
        """
        ev = TraceEvent(kind=kind, name=name, start_s=start_s,
                        duration_s=duration_s, metadata=dict(metadata))
        self._events.append(ev)
        self._now = max(self._now, ev.end_s)
        return ev

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("cannot move the clock backwards")
        self._now += seconds

    def clear(self) -> None:
        self._events.clear()
        self._now = 0.0

    # -- queries --------------------------------------------------------------

    def total_time(self, kind: Optional[EventKind] = None) -> float:
        return sum(e.duration_s for e in self._events
                   if kind is None or e.kind is kind)

    def count(self, kind: Optional[EventKind] = None) -> int:
        return sum(1 for e in self._events
                   if kind is None or e.kind is kind)

    def by_name(self) -> Dict[str, float]:
        """Total duration grouped by event name (the nvprof summary view)."""
        out: Dict[str, float] = {}
        for e in self._events:
            out[e.name] = out.get(e.name, 0.0) + e.duration_s
        return out

    @contextmanager
    def scope(self) -> Iterator["Profiler"]:
        """Context manager yielding self (reads naturally at call sites)."""
        yield self
