"""Trace events: the nvprof-style record of what the simulator executed.

The paper corroborated that Kokkos and Numba were really running on the
GPU with nvprof (Sec. IV-B); the tracer plays the same role here — every
simulated kernel launch, transfer and parallel region leaves an event, so
tests and users can verify activity rather than trusting a single number.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict

__all__ = ["EventKind", "TraceEvent"]


class EventKind(enum.Enum):
    """Category of a trace span (nvprof row analogue)."""

    KERNEL = "kernel"            # GPU kernel execution
    MEMCPY_H2D = "memcpy-h2d"
    MEMCPY_D2H = "memcpy-d2h"
    PARALLEL_REGION = "parallel-region"  # CPU worksharing region
    JIT_COMPILE = "jit-compile"
    API = "api"                  # launch overhead / driver calls
    CELL = "cell"                # sweep-engine cell (wall-clock span)
    CACHE_HIT = "cache-hit"      # result served from the sweep cache
    CACHE_MISS = "cache-miss"    # result computed and stored
    FAULT = "fault"              # injected node fault hit one attempt
    RETRY = "retry"              # backoff before re-attempting a cell
    REPLAY = "replay"            # result replayed from a run journal
    BREAKER_OPEN = "breaker-open"            # lane breaker tripped OPEN
    BREAKER_HALF_OPEN = "breaker-half-open"  # cooldown elapsed; probing
    BREAKER_CLOSE = "breaker-close"          # probe succeeded; re-closed
    SUBSTITUTION = "substitution"  # cell served by a fallback lane


@dataclass(frozen=True)
class TraceEvent:
    """One timed span on the simulated timeline."""

    kind: EventKind
    name: str
    start_s: float
    duration_s: float
    metadata: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.duration_s < 0 or self.start_s < 0:
            raise ValueError("event times must be non-negative")

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s
