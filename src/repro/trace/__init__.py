"""Tracing: nvprof-style event records, profiler, and timeline rendering."""

from .chrome import chrome_trace_json, to_chrome_trace
from .events import EventKind, TraceEvent
from .profiler import Profiler
from .timeline import render_timeline, summary_table

__all__ = ["chrome_trace_json", "to_chrome_trace", "EventKind", "TraceEvent", "Profiler", "render_timeline", "summary_table"]
