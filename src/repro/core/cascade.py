"""Performance-portability cascade analysis.

The cascade plot (Sewall & Pennycook's follow-up to the PP metric the
paper cites as [57]) shows how a model's aggregate portability degrades
as the platform set grows: sort the model's per-platform efficiencies in
descending order and evaluate the metric on every prefix.  A flat
cascade means genuinely portable performance; a cliff pinpoints the
platform that breaks it — e.g. Python/Numba's cascade collapses to zero
under the harmonic-mean PP the moment the AMD GPU enters the set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..harness.report import ascii_table
from .metrics import phi_paper, pp_pennycook

__all__ = ["CascadePoint", "Cascade", "cascade", "render_cascades"]


@dataclass(frozen=True)
class CascadePoint:
    """The metric values once ``platforms`` best platforms are included."""

    platforms: int
    added_platform: str
    phi_paper: float
    pp_pennycook: float


@dataclass(frozen=True)
class Cascade:
    """One model's full cascade."""

    model: str
    points: Tuple[CascadePoint, ...]

    @property
    def final_phi(self) -> float:
        return self.points[-1].phi_paper

    @property
    def cliff_platform(self) -> Optional[str]:
        """The platform whose inclusion first zeroes the strict PP metric
        (None if PP survives the full set)."""
        for p in self.points:
            if p.pp_pennycook == 0.0:
                return p.added_platform
        return None


def cascade(model: str,
            efficiencies: Dict[str, Optional[float]]) -> Cascade:
    """Build the cascade from a platform -> efficiency map.

    Platforms are added best-first (the convention that makes the cascade
    monotone non-increasing); unsupported platforms (None) sort last.
    """
    if not efficiencies:
        raise ValueError("empty platform set")
    ordered = sorted(efficiencies.items(),
                     key=lambda kv: (-(kv[1] if kv[1] is not None else -1.0)))
    points: List[CascadePoint] = []
    prefix: List[Optional[float]] = []
    for name, value in ordered:
        prefix.append(value)
        points.append(CascadePoint(
            platforms=len(prefix),
            added_platform=name,
            phi_paper=phi_paper(prefix),
            pp_pennycook=pp_pennycook(prefix),
        ))
    return Cascade(model=model, points=tuple(points))


def render_cascades(cascades: Sequence[Cascade]) -> str:
    """Side-by-side cascade table for several models."""
    if not cascades:
        return "(no cascades)"
    headers = ["platforms added"]
    for c in cascades:
        headers += [f"{c.model} Phi", f"{c.model} PP"]
    n = max(len(c.points) for c in cascades)
    rows: List[List[object]] = []
    for i in range(n):
        # label the row by the platform each model adds at this rank
        labels = {c.points[i].added_platform for c in cascades
                  if i < len(c.points)}
        label = f"{i + 1}: " + "/".join(sorted(labels))
        row: List[object] = [label]
        for c in cascades:
            if i < len(c.points):
                row += [f"{c.points[i].phi_paper:.3f}",
                        f"{c.points[i].pp_pennycook:.3f}"]
            else:
                row += ["", ""]
        rows.append(row)
    return ascii_table(headers, rows)
