"""Performance-portability metrics.

Implements the metric the paper adopts (Eq. (1): the arithmetic mean of
per-platform efficiencies over the platform set ``T``, attributing 0 to
unsupported platforms — that is how Table III's Python/Numba column yields
``Phi = 0.348`` from three supported platforms out of four) alongside the
Pennycook-Sewall-Lee harmonic-mean metric it cites [57] and Marowka's
arithmetic variant [58], so the metrics themselves can be compared.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence

__all__ = [
    "phi_paper",
    "pp_pennycook",
    "phi_marowka",
    "metric_comparison",
]


def _validate(efficiencies: Sequence[Optional[float]]) -> None:
    if not efficiencies:
        raise ValueError("empty platform set")
    for e in efficiencies:
        if e is not None and (not math.isfinite(e) or e < 0):
            raise ValueError(f"invalid efficiency {e!r}")


def phi_paper(efficiencies: Sequence[Optional[float]]) -> float:
    """Eq. (1): ``Phi_M = sum(e_i) / |T|`` with unsupported platforms as 0.

    ``None`` marks an unsupported platform; it contributes 0 to the sum but
    still counts in ``|T|``.  Reproduces Table III exactly: Numba's FP64
    row (0.550, 0.713, -, 0.130) gives (0.550+0.713+0+0.130)/4 = 0.348.
    """
    _validate(efficiencies)
    total = sum(e or 0.0 for e in efficiencies)
    return total / len(efficiencies)


def pp_pennycook(efficiencies: Sequence[Optional[float]]) -> float:
    """Pennycook et al. [57]: harmonic mean over ``T``; 0 if the
    application fails to run correctly on *any* platform in the set."""
    _validate(efficiencies)
    if any(e is None or e == 0.0 for e in efficiencies):
        return 0.0
    return len(efficiencies) / sum(1.0 / e for e in efficiencies)


def phi_marowka(efficiencies: Sequence[Optional[float]]) -> float:
    """Marowka [58]: arithmetic mean over the platforms the model *does*
    support (unsupported platforms shrink ``T`` instead of zeroing)."""
    _validate(efficiencies)
    supported = [e for e in efficiencies if e is not None]
    if not supported:
        return 0.0
    return sum(supported) / len(supported)


def metric_comparison(efficiencies: Sequence[Optional[float]]) -> Dict[str, float]:
    """All three metrics on one platform-efficiency vector."""
    return {
        "phi_paper": phi_paper(efficiencies),
        "pp_pennycook": pp_pennycook(efficiencies),
        "phi_marowka": phi_marowka(efficiencies),
    }
