"""Core concepts: value types and the paper's performance-portability metrics."""

from .cascade import Cascade, CascadePoint, cascade, render_cascades
from .types import DeviceKind, Layout, MatrixShape, Precision

__all__ = ["Cascade", "CascadePoint", "cascade", "render_cascades",
           "DeviceKind", "Layout", "MatrixShape", "Precision"]
