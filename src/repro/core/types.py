"""Fundamental value types shared across the library.

The paper sweeps three floating-point precisions (FP64, FP32, FP16), two
device kinds (multithreaded CPU, single GPU) and two memory layouts
(row-major for C/Python, column-major for Julia).  These enums are the
vocabulary every other subsystem speaks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

__all__ = [
    "Precision",
    "DeviceKind",
    "Layout",
    "MatrixShape",
]


class Precision(enum.Enum):
    """Floating-point precision of a GEMM experiment.

    ``FP16`` follows the paper's mixed-precision convention (Fig. 1c): the
    multiply-add inputs are half precision while the accumulator / output
    matrix is stored in single precision, because neither architecture
    accumulates FP16 natively in the hand-rolled kernel.
    """

    FP64 = "fp64"
    FP32 = "fp32"
    FP16 = "fp16"

    @property
    def np_dtype(self) -> np.dtype:
        """NumPy dtype used for the *input* matrices."""
        return {
            Precision.FP64: np.dtype(np.float64),
            Precision.FP32: np.dtype(np.float32),
            Precision.FP16: np.dtype(np.float16),
        }[self]

    @property
    def accum_dtype(self) -> np.dtype:
        """NumPy dtype of the accumulator / output matrix C."""
        if self is Precision.FP16:
            return np.dtype(np.float32)
        return self.np_dtype

    @property
    def bytes(self) -> int:
        """Bytes per input element."""
        return self.np_dtype.itemsize

    @property
    def bits(self) -> int:
        return self.bytes * 8

    @property
    def label(self) -> str:
        """Human label used in figure legends, e.g. ``'double'``."""
        return {
            Precision.FP64: "double",
            Precision.FP32: "single",
            Precision.FP16: "half",
        }[self]

    @classmethod
    def parse(cls, text: str) -> "Precision":
        """Parse user-facing spellings (``fp64``, ``double``, ``f32``...)."""
        aliases = {
            "fp64": cls.FP64, "f64": cls.FP64, "double": cls.FP64, "64": cls.FP64,
            "fp32": cls.FP32, "f32": cls.FP32, "single": cls.FP32, "float": cls.FP32, "32": cls.FP32,
            "fp16": cls.FP16, "f16": cls.FP16, "half": cls.FP16, "16": cls.FP16,
        }
        key = text.strip().lower()
        if key not in aliases:
            raise ValueError(f"unknown precision {text!r}")
        return aliases[key]


class DeviceKind(enum.Enum):
    """Coarse device class a kernel targets."""

    CPU = "cpu"
    GPU = "gpu"


class Layout(enum.Enum):
    """Memory layout of a dense matrix.

    The paper parallelizes over rows or columns "based on whether a language
    is row-major (e.g. Python default numpy arrays) or column-major (e.g.
    Julia) to ensure equivalent computational workloads" (Sec. III).
    """

    ROW_MAJOR = "row-major"
    COL_MAJOR = "col-major"

    @property
    def np_order(self) -> str:
        return "C" if self is Layout.ROW_MAJOR else "F"

    @property
    def contiguous_axis(self) -> int:
        """Axis along which consecutive elements are adjacent in memory."""
        return 1 if self is Layout.ROW_MAJOR else 0


@dataclass(frozen=True)
class MatrixShape:
    """GEMM problem shape: ``C[M,N] += A[M,K] @ B[K,N]``.

    The paper's artifact sweeps square problems (``M == N == K``) but the
    library supports the general rectangular case.
    """

    m: int
    n: int
    k: int

    def __post_init__(self) -> None:
        for name in ("m", "n", "k"):
            v = getattr(self, name)
            if not isinstance(v, int) or v <= 0:
                raise ValueError(f"matrix dimension {name}={v!r} must be a positive int")

    @classmethod
    def square(cls, n: int) -> "MatrixShape":
        return cls(n, n, n)

    @property
    def is_square(self) -> bool:
        return self.m == self.n == self.k

    @property
    def flops(self) -> int:
        """Floating point operations of one GEMM: one mul + one add per MAC."""
        return 2 * self.m * self.n * self.k

    def footprint_bytes(self, precision: Precision) -> int:
        """Total bytes of A, B and C for this shape and precision."""
        in_bytes = precision.bytes
        out_bytes = precision.accum_dtype.itemsize
        return (self.m * self.k + self.k * self.n) * in_bytes + self.m * self.n * out_bytes

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.m}x{self.n}x{self.k}"
