"""Productivity comparison (the qualitative half of Sec. V).

Quantifies what the paper discusses in prose: kernel length, build/launch
ceremony, whether a separate compile step exists, and a *code divergence*
measure — the mean pairwise relative difference in source size across the
platforms a model supports (0 for single-source models like Kokkos and
Julia, higher when each target needs its own kernel, as with CUDA vs HIP).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..core.types import DeviceKind
from ..models.base import ProductivityInfo, ProgrammingModel

__all__ = ["ProductivityRow", "productivity_report", "code_divergence"]


def code_divergence(variant_lines: Sequence[int]) -> float:
    """Mean pairwise relative difference of per-platform source sizes.

    ``d = mean_{i<j} |L_i - L_j| / max(L_i, L_j)``; 0 when every platform
    shares one source, approaching 1 when variants share nothing.
    """
    n = len(variant_lines)
    if n == 0:
        raise ValueError("no variants")
    if n == 1:
        return 0.0
    total = 0.0
    pairs = 0
    for i in range(n):
        for j in range(i + 1, n):
            hi = max(variant_lines[i], variant_lines[j])
            total += abs(variant_lines[i] - variant_lines[j]) / hi if hi else 0.0
            pairs += 1
    return total / pairs


@dataclass(frozen=True)
class ProductivityRow:
    model: str
    kernel_lines: int
    ceremony_lines: int
    total_lines: int
    needs_compile_step: bool
    jit_warmup_seconds: float
    divergence: float


def productivity_report(models: Sequence[ProgrammingModel]) -> List[ProductivityRow]:
    """One row per model, aggregating CPU and GPU variants."""
    rows: List[ProductivityRow] = []
    for m in models:
        infos: List[ProductivityInfo] = []
        for device in (DeviceKind.CPU, DeviceKind.GPU):
            infos.append(m.productivity(device))
        lines = [i.total_lines for i in infos]
        rows.append(ProductivityRow(
            model=m.display,
            kernel_lines=max(i.kernel_lines for i in infos),
            ceremony_lines=max(i.ceremony_lines for i in infos),
            total_lines=max(lines),
            needs_compile_step=any(i.needs_compile_step for i in infos),
            jit_warmup_seconds=max(i.jit_warmup_seconds for i in infos),
            divergence=code_divergence(lines),
        ))
    return rows
