"""Performance efficiency: Eq. (2) of the paper.

``e_i(a)`` is the performance of a portable programming model divided by
the architecture-specific reference on platform *i* — C/OpenMP on CPUs,
CUDA on NVIDIA GPUs, HIP on AMD GPUs.  The value is averaged over the
matrix-size sweep, matching how the paper derives one number per cell of
Table III from each figure's curves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..harness.results import ResultSet
from ..models.registry import reference_model_for

__all__ = ["PlatformEfficiency", "efficiency_table_for"]


@dataclass(frozen=True)
class PlatformEfficiency:
    """One cell of Table III: a model's efficiency on one platform."""

    model: str
    platform: str          # architecture label, e.g. "Epyc 7A53"
    value: Optional[float]  # None == unsupported (rendered '-')
    reference: str

    @property
    def supported(self) -> bool:
        return self.value is not None

    def render(self) -> str:
        return f"{self.value:.3f}" if self.supported else "-"


def efficiency_table_for(result_set: ResultSet,
                         models: List[str],
                         platform_label: str) -> List[PlatformEfficiency]:
    """Compute e_i(a) for each portable model from one experiment panel.

    The reference model is resolved from the experiment's target (Sec. V);
    it must be part of the result set.
    """
    ref = reference_model_for(result_set.experiment.target_spec)
    out: List[PlatformEfficiency] = []
    for model in models:
        if model == ref.name:
            continue
        if result_set.supported(model):
            value = result_set.mean_efficiency(model, ref.name)
        elif result_set.failed(model):
            # Degraded mode: the model was attempted but every cell
            # failed — that is lost coverage, charged as e = 0 in the
            # paper's accounting, not an unsupported '-'.
            value = 0.0
        else:
            value = None
        out.append(PlatformEfficiency(
            model=model,
            platform=platform_label,
            value=value,
            reference=ref.name,
        ))
    return out
