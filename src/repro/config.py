"""Environment-style run configuration.

The paper controls every experiment through environment variables
(``OMP_NUM_THREADS``, ``OMP_PROC_BIND``, ``JULIA_EXCLUSIVE``,
``NUMBA_NUM_THREADS``, ``NUMBA_OPT``...).  :class:`RunConfig` reproduces
that surface: a flat mapping of variable names to strings, with typed
accessors and per-model views.  Programming-model frontends consult it to
decide thread counts and pinning policy — including the paper's observation
that Numba exposes *no* pinning knob at all.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Iterator, Mapping, Optional

from .errors import ConfigError

__all__ = ["RunConfig", "KNOWN_VARIABLES", "resolve_campaign_spec"]

#: Environment variables with meaning to at least one programming model,
#: mirroring Tables I/II and Appendix A of the paper.
KNOWN_VARIABLES: Dict[str, str] = {
    "OMP_NUM_THREADS": "OpenMP/Kokkos-OpenMP thread count",
    "OMP_PROC_BIND": "OpenMP thread binding policy (true/false/close/spread)",
    "OMP_PLACES": "OpenMP thread placement (threads/cores/sockets)",
    "JULIA_NUM_THREADS": "Julia thread count (immutable per run)",
    "JULIA_EXCLUSIVE": "pin Julia threads to cores in strict order (0/1)",
    "NUMBA_NUM_THREADS": "Numba thread count",
    "NUMBA_OPT": "Numba optimisation level (default 3)",
    "KOKKOS_DEVICES": "Kokkos backend selected at compile time",
    "KOKKOS_ARCH": "Kokkos target architecture",
    "JULIA_CUDA_USE_BINARYBUILDER": "use system CUDA instead of artifacts",
    # Sweep-engine knobs (repro.harness.engine), not part of the paper's
    # surface but configured the same environment-variable way.
    "REPRO_CACHE": "sweep result cache on/off (default on)",
    "REPRO_CACHE_DIR": "sweep result cache directory",
    "REPRO_JOBS": "sweep engine worker-pool width (1 = serial)",
    "REPRO_ENGINE": "sweep executor: thread (default) or process",
    "REPRO_FAULTS": "fault-injection spec (e.g. rate=0.2,seed=7,always=numba@512)",
    "REPRO_RETRIES": "retries per sweep cell after a fault (default 0)",
    "REPRO_BACKOFF": "base simulated backoff seconds between retries",
    "REPRO_MAX_CELL_SECONDS": "per-cell simulated-time budget for retries",
    "REPRO_FAIL_FAST": "abort the sweep on the first permanent cell failure",
    "REPRO_BREAKER": "circuit-breaker spec (e.g. threshold=3,cooldown=300)",
    "REPRO_FALLBACK": "fallback-ladder spec (e.g. numba@gpu=numba@cpu+reference)",
    "REPRO_RUNS_DIR": "run-journal registry directory",
    "REPRO_JOURNAL": "write-ahead run journal on/off (default on)",
    "REPRO_WATCHDOG": "process-pool watchdog spec (e.g. "
                      "timeout=30,respawns=2,redrives=1; 'off' disables)",
    "REPRO_CHAOS_PLAN": "armed chaos-plan file for crash-fault drills "
                        "(normally unset)",
    # Campaign-service knobs (repro.service): tenancy defaults for
    # `repro submit` and the daemon socket location.
    "REPRO_TENANT": "fair-share tenant campaigns bill to (default 'default')",
    "REPRO_PRIORITY": "campaign priority within the tenant queue (default 0)",
    "REPRO_SERVICE_SOCKET": "campaign-service Unix socket path",
    "REPRO_DEADLINE": "campaign wall-clock deadline in seconds "
                      "(expired campaigns degrade, default none)",
    "REPRO_SUBMISSION_KEY": "idempotency key for `repro submit` retries "
                            "(default none)",
    "REPRO_CLIENT_RETRIES": "client retries on 429/503/connect-refused "
                            "(default 0)",
}

_TRUE_STRINGS = frozenset({"1", "true", "yes", "on", "close", "spread"})
_FALSE_STRINGS = frozenset({"0", "false", "no", "off", ""})


@dataclass
class RunConfig:
    """A bag of environment-variable style settings for one experiment run.

    Unknown variables are accepted (real launch scripts carry plenty of
    noise) but :meth:`validate` flags typos of known variables by fuzzy
    matching, which is the usual way pinning silently fails on real systems.
    """

    env: Dict[str, str] = field(default_factory=dict)

    # -- construction -----------------------------------------------------

    @classmethod
    def from_os_environ(cls) -> "RunConfig":
        """Snapshot the real process environment (known variables only)."""
        return cls({k: v for k, v in os.environ.items() if k in KNOWN_VARIABLES})

    @classmethod
    def openmp(cls, threads: int, pin: bool = True) -> "RunConfig":
        """The paper's C/OpenMP launch configuration (Fig. 8)."""
        cfg = cls({"OMP_NUM_THREADS": str(threads)})
        if pin:
            cfg.env["OMP_PROC_BIND"] = "true"
            cfg.env["OMP_PLACES"] = "threads"
        return cfg

    @classmethod
    def julia(cls, threads: int, exclusive: bool = True) -> "RunConfig":
        """The paper's Julia launch configuration (JULIA_EXCLUSIVE=1)."""
        cfg = cls({"JULIA_NUM_THREADS": str(threads)})
        if exclusive:
            cfg.env["JULIA_EXCLUSIVE"] = "1"
        return cfg

    @classmethod
    def numba(cls, threads: int) -> "RunConfig":
        """Numba launch configuration.

        Note there is deliberately no pinning option: "there is currently no
        mechanism for setting a thread binding/pinning policy" (Sec. III-A).
        """
        return cls({"NUMBA_NUM_THREADS": str(threads), "NUMBA_OPT": "3"})

    # -- typed accessors --------------------------------------------------

    def get(self, name: str, default: Optional[str] = None) -> Optional[str]:
        return self.env.get(name, default)

    def get_int(self, name: str, default: int) -> int:
        raw = self.env.get(name)
        if raw is None:
            return default
        try:
            value = int(raw)
        except ValueError as exc:
            raise ConfigError(f"{name}={raw!r} is not an integer") from exc
        if value <= 0:
            raise ConfigError(f"{name}={value} must be positive")
        return value

    def get_float(self, name: str,
                  default: Optional[float] = None) -> Optional[float]:
        """Positive-float accessor; the default passes through untyped so
        callers can use ``None`` for "unset"."""
        raw = self.env.get(name)
        if raw is None:
            return default
        try:
            value = float(raw)
        except ValueError as exc:
            raise ConfigError(f"{name}={raw!r} is not a number") from exc
        if value <= 0:
            raise ConfigError(f"{name}={value} must be positive")
        return value

    def get_bool(self, name: str, default: bool = False) -> bool:
        raw = self.env.get(name)
        if raw is None:
            return default
        lowered = raw.strip().lower()
        if lowered in _TRUE_STRINGS:
            return True
        if lowered in _FALSE_STRINGS:
            return False
        raise ConfigError(f"{name}={raw!r} is not a boolean value")

    # -- semantic views ---------------------------------------------------

    def threads_for(self, model_family: str, hardware_threads: int) -> int:
        """Thread count a given model family would use on this config.

        ``model_family`` is one of ``"openmp"``, ``"julia"``, ``"numba"``.
        Falls back to all hardware threads, which is what each runtime does
        by default on a dedicated node.
        """
        var = {
            "openmp": "OMP_NUM_THREADS",
            "kokkos": "OMP_NUM_THREADS",
            "julia": "JULIA_NUM_THREADS",
            "numba": "NUMBA_NUM_THREADS",
        }.get(model_family)
        if var is None:
            raise ConfigError(f"unknown model family {model_family!r}")
        return self.get_int(var, hardware_threads)

    def pinning_for(self, model_family: str) -> bool:
        """Whether threads are pinned for the given model family.

        Numba always returns False: the API has no pinning mechanism, which
        the paper identifies as one cause of its NUMA-sensitive slowdown.
        """
        if model_family in ("openmp", "kokkos"):
            return self.get_bool("OMP_PROC_BIND", False)
        if model_family == "julia":
            return self.get_bool("JULIA_EXCLUSIVE", False)
        if model_family == "numba":
            return False
        raise ConfigError(f"unknown model family {model_family!r}")

    # -- hygiene ----------------------------------------------------------

    def validate(self) -> list:
        """Return warnings for suspicious entries (unknown near-miss names)."""
        warnings = []
        known = set(KNOWN_VARIABLES)
        for name in self.env:
            if name in known:
                continue
            for candidate in known:
                if _close_match(name, candidate):
                    warnings.append(
                        f"unknown variable {name!r}: did you mean {candidate!r}?"
                    )
                    break
        return warnings

    def merged(self, other: Mapping[str, str]) -> "RunConfig":
        """New config with ``other`` layered on top."""
        merged = dict(self.env)
        merged.update(other)
        return RunConfig(merged)

    def __iter__(self) -> Iterator[str]:
        return iter(self.env)

    def __len__(self) -> int:
        return len(self.env)


def resolve_campaign_spec(experiment, cli: Optional[Mapping[str, object]] = None,
                          environ: Optional[Mapping[str, str]] = None):
    """THE precedence pass: CLI flags > ``REPRO_*`` env vars > defaults.

    Every way of requesting a campaign — ``repro run`` flags, ``repro
    submit``, the daemon's wire API, library calls — funnels through
    this one function so the precedence rules live in exactly one place:

    1. **CLI** — a non-``None`` entry in ``cli`` wins outright.  Keys
       mirror the run-subcommand flags: ``faults``, ``retries``,
       ``max_cell_seconds``, ``fail_fast`` (``True`` only; ``False``
       means "flag not given"), ``breaker``, ``fallback``, ``cache``,
       ``jobs``, ``engine`` (``serial``/``thread``/``process``),
       ``tenant``, ``priority``, ``deadline``, ``submission_key``.
    2. **Environment** — the ``REPRO_*`` family documented in
       :data:`KNOWN_VARIABLES` fills anything the CLI left unset.
    3. **Defaults** — fields neither layer set stay ``None`` in the
       spec, which means "inherit the process-wide default" at run time
       (tenant defaults to ``"default"``, priority to ``0``).

    Composite knobs resolve *per component*: ``--retries 3`` with
    ``REPRO_BACKOFF=2`` yields a retry policy with the CLI's attempt
    count and the environment's backoff, matching the historical
    behaviour of layering CLI flags over ``RunOptions.from_env()``.

    Returns a :class:`repro.service.spec.CampaignSpec` (imported lazily
    to keep this module dependency-free at import time).
    """
    from .harness.engine.options import RetryPolicy
    from .harness.health import BreakerPolicy, FallbackLadder
    from .service.spec import CampaignSpec
    from .sim.faults import FaultConfig

    cli = dict(cli or {})
    cfg = RunConfig({k: v for k, v in (environ if environ is not None
                                       else os.environ).items()
                     if k in KNOWN_VARIABLES})

    def pick(key: str, env_var: str):
        if cli.get(key) is not None:
            return cli[key]
        return cfg.get(env_var)

    faults_spec = pick("faults", "REPRO_FAULTS")
    faults = None
    if faults_spec is not None:
        faults = (faults_spec if isinstance(faults_spec, FaultConfig)
                  else FaultConfig.parse(str(faults_spec)))

    retries = cli.get("retries")
    if retries is None:
        raw = cfg.get("REPRO_RETRIES")
        if raw is not None:
            try:
                retries = int(raw)
            except ValueError as exc:
                raise ConfigError(
                    f"REPRO_RETRIES={raw!r} is not an integer") from exc
    if retries is not None and retries < 0:
        raise ConfigError(f"retries {retries} must be >= 0")
    backoff = cfg.get_float("REPRO_BACKOFF", None)
    budget = cli.get("max_cell_seconds")
    if budget is None:
        budget = cfg.get_float("REPRO_MAX_CELL_SECONDS", None)
    retry = None
    if retries is not None or backoff is not None or budget is not None:
        retry = RetryPolicy(
            max_attempts=(retries + 1 if retries is not None else 1),
            backoff_base_s=(backoff if backoff is not None else 0.5),
            max_cell_seconds=budget,
        )

    fail_fast = True if cli.get("fail_fast") else None
    if fail_fast is None and "REPRO_FAIL_FAST" in cfg.env:
        fail_fast = cfg.get_bool("REPRO_FAIL_FAST", False)

    breaker_spec = pick("breaker", "REPRO_BREAKER")
    breaker = None
    if breaker_spec is not None:
        breaker = (breaker_spec if isinstance(breaker_spec, BreakerPolicy)
                   else BreakerPolicy.parse(str(breaker_spec)))
    fallback_spec = pick("fallback", "REPRO_FALLBACK")
    fallback = None
    if fallback_spec is not None:
        fallback = (fallback_spec if isinstance(fallback_spec, FallbackLadder)
                    else FallbackLadder.parse(str(fallback_spec)))

    cache = cli.get("cache")
    if cache is None and "REPRO_CACHE" in cfg.env:
        cache = cfg.get_bool("REPRO_CACHE", True)

    jobs = cli.get("jobs")
    if jobs is None and "REPRO_JOBS" in cfg.env:
        jobs = cfg.get_int("REPRO_JOBS", 1)

    engine = cli.get("engine")
    if engine is None:
        engine = cfg.get("REPRO_ENGINE")

    tenant = cli.get("tenant") or cfg.get("REPRO_TENANT") or "default"

    priority = cli.get("priority")
    if priority is None:
        raw = cfg.get("REPRO_PRIORITY")
        if raw is not None:
            try:
                priority = int(raw)
            except ValueError as exc:
                raise ConfigError(
                    f"REPRO_PRIORITY={raw!r} is not an integer") from exc

    deadline = cli.get("deadline")
    if deadline is None:
        deadline = cfg.get_float("REPRO_DEADLINE", None)

    submission_key = cli.get("submission_key")
    if submission_key is None:
        submission_key = cfg.get("REPRO_SUBMISSION_KEY")

    return CampaignSpec(
        experiment=experiment,
        engine=engine,
        jobs=jobs,
        cache=cache,
        faults=faults,
        retry=retry,
        fail_fast=fail_fast,
        breaker=breaker,
        fallback=fallback,
        tenant=str(tenant),
        priority=int(priority) if priority is not None else 0,
        deadline_s=float(deadline) if deadline is not None else None,
        submission_key=(str(submission_key)
                        if submission_key is not None else None),
    )


def _close_match(a: str, b: str) -> bool:
    """Cheap edit-distance-1-ish comparison for typo detection."""
    a, b = a.upper(), b.upper()
    if a == b:
        return True
    if abs(len(a) - len(b)) > 1:
        return False
    if len(a) == len(b):
        return sum(x != y for x, y in zip(a, b)) == 1
    shorter, longer = (a, b) if len(a) < len(b) else (b, a)
    for i in range(len(longer)):
        if longer[:i] + longer[i + 1:] == shorter:
            return True
    return False
