"""Environment-style run configuration.

The paper controls every experiment through environment variables
(``OMP_NUM_THREADS``, ``OMP_PROC_BIND``, ``JULIA_EXCLUSIVE``,
``NUMBA_NUM_THREADS``, ``NUMBA_OPT``...).  :class:`RunConfig` reproduces
that surface: a flat mapping of variable names to strings, with typed
accessors and per-model views.  Programming-model frontends consult it to
decide thread counts and pinning policy — including the paper's observation
that Numba exposes *no* pinning knob at all.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Iterator, Mapping, Optional

from .errors import ConfigError

__all__ = ["RunConfig", "KNOWN_VARIABLES"]

#: Environment variables with meaning to at least one programming model,
#: mirroring Tables I/II and Appendix A of the paper.
KNOWN_VARIABLES: Dict[str, str] = {
    "OMP_NUM_THREADS": "OpenMP/Kokkos-OpenMP thread count",
    "OMP_PROC_BIND": "OpenMP thread binding policy (true/false/close/spread)",
    "OMP_PLACES": "OpenMP thread placement (threads/cores/sockets)",
    "JULIA_NUM_THREADS": "Julia thread count (immutable per run)",
    "JULIA_EXCLUSIVE": "pin Julia threads to cores in strict order (0/1)",
    "NUMBA_NUM_THREADS": "Numba thread count",
    "NUMBA_OPT": "Numba optimisation level (default 3)",
    "KOKKOS_DEVICES": "Kokkos backend selected at compile time",
    "KOKKOS_ARCH": "Kokkos target architecture",
    "JULIA_CUDA_USE_BINARYBUILDER": "use system CUDA instead of artifacts",
    # Sweep-engine knobs (repro.harness.engine), not part of the paper's
    # surface but configured the same environment-variable way.
    "REPRO_CACHE": "sweep result cache on/off (default on)",
    "REPRO_CACHE_DIR": "sweep result cache directory",
    "REPRO_JOBS": "sweep engine worker-pool width (1 = serial)",
    "REPRO_ENGINE": "sweep executor: thread (default) or process",
    "REPRO_FAULTS": "fault-injection spec (e.g. rate=0.2,seed=7,always=numba@512)",
    "REPRO_RETRIES": "retries per sweep cell after a fault (default 0)",
    "REPRO_BACKOFF": "base simulated backoff seconds between retries",
    "REPRO_MAX_CELL_SECONDS": "per-cell simulated-time budget for retries",
    "REPRO_FAIL_FAST": "abort the sweep on the first permanent cell failure",
    "REPRO_BREAKER": "circuit-breaker spec (e.g. threshold=3,cooldown=300)",
    "REPRO_FALLBACK": "fallback-ladder spec (e.g. numba@gpu=numba@cpu+reference)",
}

_TRUE_STRINGS = frozenset({"1", "true", "yes", "on", "close", "spread"})
_FALSE_STRINGS = frozenset({"0", "false", "no", "off", ""})


@dataclass
class RunConfig:
    """A bag of environment-variable style settings for one experiment run.

    Unknown variables are accepted (real launch scripts carry plenty of
    noise) but :meth:`validate` flags typos of known variables by fuzzy
    matching, which is the usual way pinning silently fails on real systems.
    """

    env: Dict[str, str] = field(default_factory=dict)

    # -- construction -----------------------------------------------------

    @classmethod
    def from_os_environ(cls) -> "RunConfig":
        """Snapshot the real process environment (known variables only)."""
        return cls({k: v for k, v in os.environ.items() if k in KNOWN_VARIABLES})

    @classmethod
    def openmp(cls, threads: int, pin: bool = True) -> "RunConfig":
        """The paper's C/OpenMP launch configuration (Fig. 8)."""
        cfg = cls({"OMP_NUM_THREADS": str(threads)})
        if pin:
            cfg.env["OMP_PROC_BIND"] = "true"
            cfg.env["OMP_PLACES"] = "threads"
        return cfg

    @classmethod
    def julia(cls, threads: int, exclusive: bool = True) -> "RunConfig":
        """The paper's Julia launch configuration (JULIA_EXCLUSIVE=1)."""
        cfg = cls({"JULIA_NUM_THREADS": str(threads)})
        if exclusive:
            cfg.env["JULIA_EXCLUSIVE"] = "1"
        return cfg

    @classmethod
    def numba(cls, threads: int) -> "RunConfig":
        """Numba launch configuration.

        Note there is deliberately no pinning option: "there is currently no
        mechanism for setting a thread binding/pinning policy" (Sec. III-A).
        """
        return cls({"NUMBA_NUM_THREADS": str(threads), "NUMBA_OPT": "3"})

    # -- typed accessors --------------------------------------------------

    def get(self, name: str, default: Optional[str] = None) -> Optional[str]:
        return self.env.get(name, default)

    def get_int(self, name: str, default: int) -> int:
        raw = self.env.get(name)
        if raw is None:
            return default
        try:
            value = int(raw)
        except ValueError as exc:
            raise ConfigError(f"{name}={raw!r} is not an integer") from exc
        if value <= 0:
            raise ConfigError(f"{name}={value} must be positive")
        return value

    def get_float(self, name: str,
                  default: Optional[float] = None) -> Optional[float]:
        """Positive-float accessor; the default passes through untyped so
        callers can use ``None`` for "unset"."""
        raw = self.env.get(name)
        if raw is None:
            return default
        try:
            value = float(raw)
        except ValueError as exc:
            raise ConfigError(f"{name}={raw!r} is not a number") from exc
        if value <= 0:
            raise ConfigError(f"{name}={value} must be positive")
        return value

    def get_bool(self, name: str, default: bool = False) -> bool:
        raw = self.env.get(name)
        if raw is None:
            return default
        lowered = raw.strip().lower()
        if lowered in _TRUE_STRINGS:
            return True
        if lowered in _FALSE_STRINGS:
            return False
        raise ConfigError(f"{name}={raw!r} is not a boolean value")

    # -- semantic views ---------------------------------------------------

    def threads_for(self, model_family: str, hardware_threads: int) -> int:
        """Thread count a given model family would use on this config.

        ``model_family`` is one of ``"openmp"``, ``"julia"``, ``"numba"``.
        Falls back to all hardware threads, which is what each runtime does
        by default on a dedicated node.
        """
        var = {
            "openmp": "OMP_NUM_THREADS",
            "kokkos": "OMP_NUM_THREADS",
            "julia": "JULIA_NUM_THREADS",
            "numba": "NUMBA_NUM_THREADS",
        }.get(model_family)
        if var is None:
            raise ConfigError(f"unknown model family {model_family!r}")
        return self.get_int(var, hardware_threads)

    def pinning_for(self, model_family: str) -> bool:
        """Whether threads are pinned for the given model family.

        Numba always returns False: the API has no pinning mechanism, which
        the paper identifies as one cause of its NUMA-sensitive slowdown.
        """
        if model_family in ("openmp", "kokkos"):
            return self.get_bool("OMP_PROC_BIND", False)
        if model_family == "julia":
            return self.get_bool("JULIA_EXCLUSIVE", False)
        if model_family == "numba":
            return False
        raise ConfigError(f"unknown model family {model_family!r}")

    # -- hygiene ----------------------------------------------------------

    def validate(self) -> list:
        """Return warnings for suspicious entries (unknown near-miss names)."""
        warnings = []
        known = set(KNOWN_VARIABLES)
        for name in self.env:
            if name in known:
                continue
            for candidate in known:
                if _close_match(name, candidate):
                    warnings.append(
                        f"unknown variable {name!r}: did you mean {candidate!r}?"
                    )
                    break
        return warnings

    def merged(self, other: Mapping[str, str]) -> "RunConfig":
        """New config with ``other`` layered on top."""
        merged = dict(self.env)
        merged.update(other)
        return RunConfig(merged)

    def __iter__(self) -> Iterator[str]:
        return iter(self.env)

    def __len__(self) -> int:
        return len(self.env)


def _close_match(a: str, b: str) -> bool:
    """Cheap edit-distance-1-ish comparison for typo detection."""
    a, b = a.upper(), b.upper()
    if a == b:
        return True
    if abs(len(a) - len(b)) > 1:
        return False
    if len(a) == len(b):
        return sum(x != y for x, y in zip(a, b)) == 1
    shorter, longer = (a, b) if len(a) < len(b) else (b, a)
    for i in range(len(longer)):
        if longer[:i] + longer[i + 1:] == shorter:
            return True
    return False
