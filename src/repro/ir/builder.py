"""Construction of hand-rolled GEMM kernels in IR form.

:func:`build_gemm` reproduces the kernel *shapes* of Figs. 2 and 3:

* CPU, C/OpenMP & Numba style (row-major): ``i`` parallel, order ``ikj``,
  ``temp = A[i,k]`` hoisted above ``j``, read-modify-write of ``C[i,j]``.
* CPU, Julia style (column-major): ``j`` parallel, order ``jki``,
  ``temp = B[k,j]`` hoisted above ``i``, read-modify-write of ``C[i,j]``.
* CPU, Kokkos style: parallel over C entries, order ``ijk``, scalar
  accumulator, single store of ``C[i,j]``.
* GPU style (all models of Fig. 3): 2-D grid over ``(i, j)``, guard hoisted
  above the ``k`` loop, scalar accumulator, single store.

The loop variables are fixed as ``i``→M, ``j``→N, ``k``→K so loop orders can
be written as permutation strings like ``"ikj"``.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from ..core.types import Layout, Precision
from ..errors import IRVerificationError
from .nodes import (
    ArrayDecl,
    ArrayRef,
    AxisRole,
    Body,
    FMAOp,
    Guard,
    IndexExpr,
    Kernel,
    LoadOp,
    Loop,
    ParallelKind,
    StoreOp,
)

__all__ = ["build_gemm", "gemm_arrays", "VAR_AXES"]

#: Canonical loop-variable to GEMM-axis binding.
VAR_AXES: Dict[str, AxisRole] = {"i": AxisRole.M, "j": AxisRole.N, "k": AxisRole.K}

_I = IndexExpr.var("i")
_J = IndexExpr.var("j")
_K = IndexExpr.var("k")

#: Canonical operand references.
A_REF = ArrayRef("A", (_I, _K))
B_REF = ArrayRef("B", (_K, _J))
C_REF = ArrayRef("C", (_I, _J))


def gemm_arrays(layout: Layout, precision: Precision) -> Tuple[ArrayDecl, ...]:
    """Declarations for ``C[M,N] (+)= A[M,K] @ B[K,N]`` in one layout."""
    return (
        ArrayDecl("A", "A", (AxisRole.M, AxisRole.K), layout, precision),
        ArrayDecl("B", "B", (AxisRole.K, AxisRole.N), layout, precision),
        ArrayDecl("C", "C", (AxisRole.M, AxisRole.N), layout, precision),
    )


def _hoist_level(order: str, ref: ArrayRef) -> Optional[str]:
    """Deepest loop var the reference is invariant over (None if innermost).

    A load is hoistable above every trailing loop whose variable does not
    appear in its index expressions.  Returns the outermost such trailing
    var, i.e. where loop-invariant code motion would place the load.
    """
    used = {v for idx in ref.indices for v in idx.variables}
    level: Optional[str] = None
    for var in reversed(order):
        if var in used:
            break
        level = var
    return level


def build_gemm(
    name: str,
    precision: Precision,
    loop_order: str,
    layout: Layout,
    parallel_vars: Iterable[str] = ("i",),
    parallel_kind: ParallelKind = ParallelKind.THREADS,
    hoist_invariant: bool = True,
    scalar_accum: bool = False,
    bounds_checks: bool = False,
    grid_guard: bool = False,
    fastmath: bool = False,
) -> Kernel:
    """Build a hand-rolled GEMM kernel.

    Parameters
    ----------
    loop_order:
        Permutation of ``"ijk"``, outermost first.
    parallel_vars:
        Loop variables distributed across threads (CPU: exactly one
        worksharing loop) or the grid (GPU: the leading one or two).
    hoist_invariant:
        Apply loop-invariant code motion to loads (the explicit ``temp``
        variables of Fig. 2) and, with ``scalar_accum``, sink the C store
        below the reduction loop.
    scalar_accum:
        Keep the running sum in a register; C is written once after the
        ``k`` loop instead of read-modify-written every iteration.
    bounds_checks:
        Emit a per-access bounds check for every reference (Julia without
        ``@inbounds``).
    grid_guard:
        Emit the single GPU-style ``row < M && col < N`` guard, hoisted
        above the reduction loop.
    """
    order = loop_order.strip().lower()
    if sorted(order) != ["i", "j", "k"]:
        raise IRVerificationError(f"loop order must permute 'ijk', got {loop_order!r}")
    pvars = tuple(parallel_vars)
    for v in pvars:
        if v not in order:
            raise IRVerificationError(f"parallel var {v!r} not a loop")
    if parallel_kind is ParallelKind.GRID:
        if tuple(order[: len(pvars)]) != pvars:
            raise IRVerificationError("GRID parallel vars must be the outermost loops")
    elif len(pvars) > 1:
        raise IRVerificationError("CPU worksharing parallelises exactly one loop")

    if scalar_accum and order[-1] != "k":
        raise IRVerificationError("scalar accumulation requires the reduction loop innermost")

    loops = tuple(
        Loop(
            var=v,
            axis=VAR_AXES[v],
            parallel=parallel_kind if v in pvars else ParallelKind.SEQUENTIAL,
        )
        for v in order
    )

    loads = [LoadOp(A_REF), LoadOp(B_REF)]
    if scalar_accum:
        stores = (StoreOp(C_REF, hoisted_above="k" if hoist_invariant or grid_guard else None),)
    else:
        loads.append(LoadOp(C_REF))
        stores = (StoreOp(C_REF),)

    if hoist_invariant:
        loads = [
            LoadOp(ld.ref, hoisted_above=_hoist_level(order, ld.ref)) for ld in loads
        ]

    guards: Tuple[Guard, ...] = ()
    if bounds_checks:
        guards = tuple(Guard(ld.ref, hoisted_above=ld.hoisted_above) for ld in loads)
        guards += tuple(Guard(st.ref, hoisted_above=st.hoisted_above) for st in stores)
    elif grid_guard:
        guards = (Guard(C_REF, hoisted_above="k"),)

    kernel = Kernel(
        name=name,
        arrays=gemm_arrays(layout, precision),
        loops=loops,
        body=Body(guards=guards, loads=tuple(loads), fmas=(FMAOp(A_REF, B_REF),), stores=stores),
        precision=precision,
        fastmath=fastmath,
        scalar_accum=scalar_accum,
        bounds_checked=bounds_checks,
    )
    kernel.verify()
    return kernel


# -- canonical paper kernels -------------------------------------------------

def c_openmp_cpu(precision: Precision) -> Kernel:
    """Fig. 2a: row-major, ``i`` parallel, ``temp = A[i,k]``, RMW of C."""
    return build_gemm(
        "gemm-c-openmp", precision, "ikj", Layout.ROW_MAJOR,
        parallel_vars=("i",), hoist_invariant=True,
    )


def julia_threads_cpu(precision: Precision) -> Kernel:
    """Fig. 2c: column-major, ``j`` parallel (@threads), ``temp = B[k,j]``."""
    return build_gemm(
        "gemm-julia-threads", precision, "jki", Layout.COL_MAJOR,
        parallel_vars=("j",), hoist_invariant=True,
    )


def kokkos_cpu(precision: Precision) -> Kernel:
    """Fig. 2b: lambda per C entry, scalar accumulator over ``k``."""
    return build_gemm(
        "gemm-kokkos-openmp", precision, "ijk", Layout.ROW_MAJOR,
        parallel_vars=("i",), hoist_invariant=True, scalar_accum=True,
    )


def numba_cpu(precision: Precision) -> Kernel:
    """Fig. 2d: ``prange`` over i, order ``ikj``, ``temp = A[i,k]``."""
    return build_gemm(
        "gemm-numba-prange", precision, "ikj", Layout.ROW_MAJOR,
        parallel_vars=("i",), hoist_invariant=True, fastmath=True,
    )


def gpu_thread_per_element(name: str, precision: Precision, layout: Layout) -> Kernel:
    """Fig. 3: 2-D grid over C, guard, scalar accumulation over ``k``."""
    return build_gemm(
        name, precision, "ijk", layout,
        parallel_vars=("i", "j"), parallel_kind=ParallelKind.GRID,
        hoist_invariant=True, scalar_accum=True, grid_guard=True,
    )


__all__ += [
    "c_openmp_cpu",
    "julia_threads_cpu",
    "kokkos_cpu",
    "numba_cpu",
    "gpu_thread_per_element",
    "A_REF",
    "B_REF",
    "C_REF",
]
