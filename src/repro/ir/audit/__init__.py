"""Static performance-portability auditor over the kernel IR.

``repro audit`` runs these passes over every (model, target, precision)
lane the registry can lower — without executing the simulator — and emits
stable-coded diagnostics through the same framework as ``repro lint``:

* :mod:`.memory` — P-series: coalescing (cross-checked against
  :mod:`repro.gpu.coalescing`), CPU stride locality, NUMA pinning,
  L2-footprint thrash.
* :mod:`.residency` — O-series: register-pressure and occupancy hazards
  through the simulator's own :func:`repro.gpu.occupancy.occupancy`.
* :mod:`.precision_flow` — F-series: accumulator width, fastmath
  reassociation, degraded-precision fallbacks.
* :mod:`.verdict` — the per-lane static issue model and efficiency band.
* :mod:`.auditor` — lane and registry drivers, matrix rendering.
* :mod:`.consistency` — reconciles static verdicts with the simulator's
  measured Table III efficiencies.

Import this package explicitly (``from repro.ir.audit import ...``);
like :mod:`repro.ir.lint` it is deliberately not re-exported from
:mod:`repro.ir` to keep the IR core cycle-free.
"""

from .auditor import (
    AUDIT_SHAPE,
    LARGEST_SWEEP_SHAPE,
    AuditResult,
    AuditVerdict,
    audit_lowering,
    audit_registry,
    render_audit_findings,
    render_audit_matrix,
)
from .consistency import (
    BAND_SLACK,
    ORDERING_MARGIN,
    ConsistencyReport,
    LaneConsistency,
    OrderingConflict,
    check_consistency,
)
from .memory import (
    AccessClassification,
    classify_gpu_accesses,
    cpu_memory_diagnostics,
    crosscheck_coalescing,
    footprint_diagnostics,
    gpu_memory_diagnostics,
    locality_diagnostics,
)
from .precision_flow import LONG_REDUCTION_K, precision_diagnostics
from .residency import (
    NOMINAL_REGISTERS,
    OCCUPANCY_HAZARD_FRACTION,
    RegisterEstimate,
    estimate_registers,
    residency_diagnostics,
)
from .verdict import (
    BAND_HIGH,
    BAND_MEDIUM,
    Band,
    StaticEstimate,
    band_of,
    classify_band,
    cpu_issue_estimate,
    gpu_issue_estimate,
    predicted_efficiency,
)

__all__ = [
    "AUDIT_SHAPE",
    "LARGEST_SWEEP_SHAPE",
    "AuditResult",
    "AuditVerdict",
    "audit_lowering",
    "audit_registry",
    "render_audit_findings",
    "render_audit_matrix",
    "BAND_SLACK",
    "ORDERING_MARGIN",
    "ConsistencyReport",
    "LaneConsistency",
    "OrderingConflict",
    "check_consistency",
    "AccessClassification",
    "classify_gpu_accesses",
    "cpu_memory_diagnostics",
    "crosscheck_coalescing",
    "footprint_diagnostics",
    "gpu_memory_diagnostics",
    "locality_diagnostics",
    "LONG_REDUCTION_K",
    "precision_diagnostics",
    "NOMINAL_REGISTERS",
    "OCCUPANCY_HAZARD_FRACTION",
    "RegisterEstimate",
    "estimate_registers",
    "residency_diagnostics",
    "BAND_HIGH",
    "BAND_MEDIUM",
    "Band",
    "StaticEstimate",
    "band_of",
    "classify_band",
    "cpu_issue_estimate",
    "gpu_issue_estimate",
    "predicted_efficiency",
]
