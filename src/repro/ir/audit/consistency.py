"""Static-vs-dynamic consistency: the auditor must explain, not contradict.

The closing check of the audit pipeline runs the simulator's own Table III
sweep and compares every (platform, precision, portable-model) cell against
the auditor's static verdict for the same lane.  Two things are checked:

* **band agreement** — the statically predicted efficiency and the
  measured one fall in the same :class:`~repro.ir.audit.verdict.Band`
  (high / medium / low);
* **ordering agreement** — for every pair of portable models on the same
  (platform, precision), if the simulator separates them by a clear margin
  (more than :data:`ORDERING_MARGIN`), the static verdicts must rank them
  the same way.

Band boundaries sit near two real cells (Julia A100 FP32 measures 0.600,
Numba Altra FP32 measures 0.400), so a band flip alone is reported but
tolerated within :data:`BAND_SLACK` of the boundary; an *ordering*
conflict is never tolerated — it would mean the static model tells the
opposite story from the dynamic one.

This module is the only audit code that executes the simulator, so the
harness import stays inside the function: ``repro audit`` without
``--consistency`` never pays for it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from .verdict import Band, classify_band

__all__ = [
    "ORDERING_MARGIN",
    "BAND_SLACK",
    "LaneConsistency",
    "OrderingConflict",
    "ConsistencyReport",
    "check_consistency",
]

#: Measured gaps no larger than this are treated as a tie: the static
#: model is not asked to order lanes the simulator barely separates.
ORDERING_MARGIN = 0.05

#: A band flip within this distance of a band boundary is noise from the
#: discretisation, not a wrong story.
BAND_SLACK = 0.05

#: Platform label (as Table III prints it) -> machine-catalog key.
_PLATFORM_SPECS: Tuple[Tuple[str, str, str], ...] = (
    ("Epyc 7A53", "cpu", "epyc-7a53"),
    ("Ampere Altra", "cpu", "ampere-altra"),
    ("MI250x", "gpu", "mi250x"),
    ("A100", "gpu", "a100"),
)

_PORTABLE = ("kokkos", "julia", "numba")


@dataclass(frozen=True)
class LaneConsistency:
    """One Table III cell: static verdict next to the measured value."""

    platform: str
    precision: str
    model: str
    predicted: float
    measured: float
    predicted_band: Band
    measured_band: Band

    @property
    def band_agrees(self) -> bool:
        return self.predicted_band is self.measured_band

    @property
    def near_boundary(self) -> bool:
        """Either value sits within BAND_SLACK of a band threshold."""
        from .verdict import BAND_HIGH, BAND_MEDIUM

        return any(abs(v - edge) <= BAND_SLACK
                   for v in (self.predicted, self.measured)
                   for edge in (BAND_HIGH, BAND_MEDIUM))


@dataclass(frozen=True)
class OrderingConflict:
    """The static model ranks two lanes opposite to the simulator."""

    platform: str
    precision: str
    faster_measured: str      # model the simulator says is faster
    slower_measured: str
    measured_gap: float
    predicted_gap: float      # negative: the static model flipped them

    def describe(self) -> str:
        return (f"{self.platform} {self.precision}: simulator puts "
                f"{self.faster_measured} ahead of {self.slower_measured} "
                f"by {self.measured_gap:.3f}, but the static verdicts "
                f"rank them the other way "
                f"(gap {self.predicted_gap:+.3f})")


@dataclass
class ConsistencyReport:
    """Everything the closing check learned, renderable."""

    lanes: List[LaneConsistency] = field(default_factory=list)
    conflicts: List[OrderingConflict] = field(default_factory=list)
    band_mismatches: List[LaneConsistency] = field(default_factory=list)

    @property
    def consistent(self) -> bool:
        """No ordering conflicts and no off-boundary band flips."""
        return not self.conflicts and not any(
            not lane.near_boundary for lane in self.band_mismatches)

    def render(self) -> str:
        from ...harness.report import ascii_table

        rows = []
        for lane in self.lanes:
            mark = "ok" if lane.band_agrees else (
                "~boundary" if lane.near_boundary else "MISMATCH")
            rows.append([
                lane.platform, lane.precision, lane.model,
                f"{lane.predicted:.3f} {lane.predicted_band.value}",
                f"{lane.measured:.3f} {lane.measured_band.value}",
                mark,
            ])
        text = ascii_table(
            ["platform", "precision", "model", "static", "measured",
             "bands"], rows)
        if self.conflicts:
            text += "\nordering conflicts:\n" + "\n".join(
                f"  {c.describe()}" for c in self.conflicts)
        else:
            text += ("\nordering: static verdicts rank every clearly "
                     "separated pair the way the simulator does")
        return text


def check_consistency(sizes: Optional[Sequence[int]] = None,
                      ) -> ConsistencyReport:
    """Run the seed GEMM sweep and reconcile it with the static verdicts.

    ``sizes`` defaults to the quick sweep the tier-1 suite uses.  FP16
    columns are excluded for the same reason Table III excludes them:
    there is no reference lane to normalise against.
    """
    from ...core.types import Precision
    from ...harness.experiment import QUICK_SIZES
    from ...harness.figures import table3
    from ...machine.catalog import CPU_CATALOG, GPU_CATALOG
    from ...models.registry import model_by_name
    from .auditor import audit_lowering

    measured = table3(QUICK_SIZES if sizes is None else sizes)
    report = ConsistencyReport()

    for precision in (Precision.FP64, Precision.FP32):
        for platform, dev, key in _PLATFORM_SPECS:
            spec = (CPU_CATALOG[key] if dev == "cpu" else GPU_CATALOG[key])
            cell: List[Tuple[str, float, float]] = []
            for name in _PORTABLE:
                model = model_by_name(name)
                meas = measured.row(name, precision).efficiencies.get(platform)
                if meas is None:
                    continue
                if not model.supports(spec, precision).supported:
                    continue
                _, verdict = audit_lowering(model, spec, precision)
                if verdict is None or verdict.predicted_efficiency is None:
                    continue
                pred = verdict.predicted_efficiency
                lane = LaneConsistency(
                    platform=platform, precision=precision.value,
                    model=name, predicted=pred, measured=meas,
                    predicted_band=classify_band(pred),
                    measured_band=classify_band(meas))
                report.lanes.append(lane)
                if not lane.band_agrees:
                    report.band_mismatches.append(lane)
                cell.append((name, pred, meas))

            for i in range(len(cell)):
                for j in range(i + 1, len(cell)):
                    (name_a, pred_a, meas_a) = cell[i]
                    (name_b, pred_b, meas_b) = cell[j]
                    if meas_a < meas_b:
                        name_a, name_b = name_b, name_a
                        pred_a, pred_b = pred_b, pred_a
                        meas_a, meas_b = meas_b, meas_a
                    measured_gap = meas_a - meas_b
                    if measured_gap <= ORDERING_MARGIN:
                        continue
                    predicted_gap = pred_a - pred_b
                    if predicted_gap < 0:
                        report.conflicts.append(OrderingConflict(
                            platform=platform, precision=precision.value,
                            faster_measured=name_a, slower_measured=name_b,
                            measured_gap=measured_gap,
                            predicted_gap=predicted_gap))
    return report
