"""F-series: precision-safety dataflow over the lowered kernel.

A GEMM is one long reduction, so the precision story is entirely about the
accumulator: what width it carries (the paper's Fig. 1c mixed-precision
convention stores FP16 products into an FP32 accumulator), whether the sum
may be reassociated (fastmath splits the chain into independent partial
sums, changing both the rounding and the reproducibility story), and
whether the lane reaches the precision at all or only through a software
fallback the paper excluded from its figures.

Codes:

* ``F001`` (info) — FP16 inputs accumulate into an FP32 accumulator; the
  result is *mixed* precision, not half.
* ``F002`` (warning) — a fastmath-reassociated reduction into an
  accumulator of 32 bits or fewer over a long ``k``: partial sums change
  the rounding of an already short-mantissa result.
* ``F003`` (info) — fastmath at FP64: numerically benign at this
  mantissa, but run-to-run bitwise reproducibility is forfeited.
* ``F004`` (warning) — the (model, target, precision) lane is supported
  only through a degraded software fallback (e.g. Julia's scalar
  convert-compute-convert FP16 on Zen 3).
"""

from __future__ import annotations

from ...core.types import MatrixShape, Precision
from ...models.base import Support
from ..nodes import Kernel
from ..lint.diagnostics import Diagnostic, DiagnosticSet, Severity

__all__ = ["precision_diagnostics", "LONG_REDUCTION_K"]

#: Reductions at least this long make fastmath partial-sum rounding
#: observable in a 24-bit mantissa (the sweep's smallest size already is).
LONG_REDUCTION_K = 1024


def precision_diagnostics(kernel: Kernel, precision: Precision,
                          support: Support,
                          shape: MatrixShape) -> DiagnosticSet:
    """All F-series findings for one lowered lane."""
    diags = DiagnosticSet()
    accum = precision.accum_dtype

    if accum.itemsize != precision.np_dtype.itemsize:
        diags.add(Diagnostic(
            code="F001", severity=Severity.INFO,
            message=(f"{precision.value} inputs accumulate into a "
                     f"{accum.name} accumulator (Fig. 1c mixed-precision "
                     f"convention): the kernel's arithmetic is not pure "
                     f"half precision"),
            kernel=kernel.name, subject=f"accumulator {accum.name}"))

    if kernel.fastmath and shape.k >= LONG_REDUCTION_K:
        if accum.itemsize <= 4:
            diags.add(Diagnostic(
                code="F002", severity=Severity.WARNING,
                message=(f"fastmath reassociates a k={shape.k} reduction "
                         f"into independent partial sums over a "
                         f"{accum.name} accumulator: the rounding of the "
                         f"result depends on vector width and unroll "
                         f"factor"),
                kernel=kernel.name, subject=f"accumulator {accum.name}"))
        else:
            diags.add(Diagnostic(
                code="F003", severity=Severity.INFO,
                message=(f"fastmath reassociates the k={shape.k} FP64 "
                         f"reduction: numerically benign at this mantissa "
                         f"but bitwise run-to-run reproducibility is "
                         f"forfeited"),
                kernel=kernel.name, subject=f"accumulator {accum.name}"))

    if support.degraded:
        diags.add(Diagnostic(
            code="F004", severity=Severity.WARNING,
            message=(f"{precision.value} reaches this target only through "
                     f"a degraded software path: {support.reason}"),
            kernel=kernel.name, subject=f"support {precision.value}"))
    return diags
