"""O-series: occupancy and register-residency hazards from IR live ranges.

The register estimate is deliberately structural: it counts what the
lowered IR forces the backend to keep live — loop counters, array base
pointers, hoisted values, accumulator streams, unrolled operand copies —
plus a share for the profile's per-iteration integer bookkeeping (a JIT
that emits 100 extra integer ops per iteration holds their intermediates
somewhere).  The estimate feeds the *same* vendor-calculator transcription
the simulator uses (:func:`repro.gpu.occupancy.occupancy`), so the audit's
residency numbers and the dynamic model's can never disagree about the
hardware limits.

Codes:

* ``O001`` — register-informed occupancy at or below half the hardware
  maximum: too few resident warps to hide FMA and memory latency.
* ``O002`` — the register estimate drops resident blocks below the
  nominal (32-register) count — the pressure cliff itself.
* ``O003`` — a rolled (unroll = 1) strict-FP reduction: a single
  accumulator chain plus per-iteration loop control, the Numba PTX
  signature the paper corroborated with nvprof.
* ``O004`` — a block size that is not a multiple of the warp size wastes
  lanes in every partial warp.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ...errors import MachineModelError
from ...gpu.launch import LaunchConfig
from ...gpu.occupancy import Occupancy, occupancy
from ...gpu.warp_sim import IssueProfile
from ...machine.gpu import GPUSpec
from ..nodes import Kernel
from ..lint.diagnostics import Diagnostic, DiagnosticSet, Severity

__all__ = [
    "RegisterEstimate",
    "estimate_registers",
    "residency_diagnostics",
    "OCCUPANCY_HAZARD_FRACTION",
    "NOMINAL_REGISTERS",
]

#: Occupancy at or below this fraction of the hardware maximum cannot hide
#: a ~350-cycle memory latency behind the remaining warps.
OCCUPANCY_HAZARD_FRACTION = 0.5

#: What the vendor compilers allocate for the naive GEMM inner loop — the
#: default the simulator's occupancy call assumes.
NOMINAL_REGISTERS = 32


@dataclass(frozen=True)
class RegisterEstimate:
    """Structural per-thread register estimate with its line items."""

    terms: Dict[str, float]

    @property
    def total(self) -> float:
        return sum(self.terms.values())

    @property
    def per_thread(self) -> int:
        """Whole registers the allocator must reserve (ceiling)."""
        return int(math.ceil(self.total))

    def describe(self) -> str:
        parts = ", ".join(f"{k}={v:g}" for k, v in self.terms.items())
        return f"{self.per_thread} regs/thread ({parts})"


def estimate_registers(kernel: Kernel,
                       profile: IssueProfile) -> RegisterEstimate:
    """Live-range count of the lowered kernel, per thread.

    Base ABI state, two registers per loop level (counter + bound), one
    base pointer per array, one register per hoisted load, one per
    accumulator stream, the unrolled copies of every inner-loop load, and
    one register per eight extra integer ops the profile charges per
    iteration (their addresses and intermediates).
    """
    inner = kernel.inner
    unroll = max(1, inner.unroll)
    n_hoisted = sum(1 for ld in kernel.body.loads
                    if ld.hoisted_above is not None)
    n_inner_loads = sum(1 for ld in kernel.body.loads
                        if ld.hoisted_above is None)
    accum_streams = unroll if (kernel.scalar_accum and kernel.fastmath) else 1
    terms: Dict[str, float] = {
        "abi": 8.0,
        "loops": 2.0 * len(kernel.loops),
        "bases": float(len(kernel.arrays)),
        "hoisted": float(n_hoisted),
        "accumulators": float(accum_streams),
        "unrolled-operands": float(unroll * n_inner_loads),
        "bookkeeping": profile.extra_int_per_iter / 8.0,
    }
    return RegisterEstimate(terms=terms)


def residency_diagnostics(
    kernel: Kernel, launch: LaunchConfig, spec: GPUSpec,
    profile: IssueProfile,
) -> Tuple[DiagnosticSet, Occupancy, Optional[Occupancy], RegisterEstimate]:
    """O-series findings plus (nominal, register-informed) occupancies.

    The register-informed occupancy is ``None`` only when the estimate is
    so large the block cannot be resident at all (fixture territory; the
    real lanes all fit).
    """
    diags = DiagnosticSet()
    tpb = launch.threads_per_block

    if tpb % spec.warp_size:
        diags.add(Diagnostic(
            code="O004", severity=Severity.WARNING,
            message=(f"block of {tpb} threads is not a multiple of the "
                     f"{spec.warp_size}-wide warp: the last warp of every "
                     f"block runs partially empty"),
            kernel=kernel.name, subject=f"block {tpb}"))

    nominal = occupancy(spec, tpb, registers_per_thread=NOMINAL_REGISTERS)
    est = estimate_registers(kernel, profile)
    try:
        pressured: Optional[Occupancy] = occupancy(
            spec, tpb, registers_per_thread=est.per_thread)
    except MachineModelError:
        pressured = None
        diags.add(Diagnostic(
            code="O002", severity=Severity.WARNING,
            message=(f"estimated {est.describe()} leaves no resident block "
                     f"on {spec.name} at {tpb} threads/block"),
            kernel=kernel.name, subject="registers"))
        return diags, nominal, pressured, est

    if pressured.blocks_per_cu < nominal.blocks_per_cu:
        diags.add(Diagnostic(
            code="O002", severity=Severity.WARNING,
            message=(f"estimated {est.describe()} cuts resident blocks "
                     f"from {nominal.blocks_per_cu} to "
                     f"{pressured.blocks_per_cu} per CU on {spec.name}"),
            kernel=kernel.name, subject="registers"))

    frac = pressured.fraction(spec)
    if frac <= OCCUPANCY_HAZARD_FRACTION:
        diags.add(Diagnostic(
            code="O001", severity=Severity.WARNING,
            message=(f"occupancy is {frac:.0%} of the hardware maximum "
                     f"({pressured.warps_per_cu} resident warps/CU): too "
                     f"few warps to hide the "
                     f"~{spec.mem_latency_cycles:.0f}-cycle memory "
                     f"latency"),
            kernel=kernel.name, subject="occupancy"))

    inner = kernel.inner
    if (max(1, inner.unroll) == 1 and kernel.scalar_accum
            and not kernel.fastmath):
        diags.add(Diagnostic(
            code="O003", severity=Severity.WARNING,
            message=("reduction loop is rolled (unroll 1) under strict FP: "
                     "a single serial accumulator chain plus loop control "
                     "on every iteration"),
            kernel=kernel.name, subject=f"loop {inner.var}"))
    return diags, nominal, pressured, est
