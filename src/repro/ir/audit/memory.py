"""P-series: memory-access and locality hazards, derived statically.

Every pass here reads only the kernel IR, the launch configuration and the
machine spec — nothing executes.  The GPU pass re-derives each reference's
stride across ``threadIdx.x`` from the IR's affine indices and classifies
it with the *same* thresholds :func:`repro.gpu.coalescing.analyze_coalescing`
uses; :func:`crosscheck_coalescing` asserts the two derivations agree on
every access, so the auditor can never silently drift from the simulator's
memory model (a disagreement raises :class:`repro.errors.AuditError`).

Codes:

* ``P001`` — a per-``k``-iteration global access whose stride across
  ``threadIdx.x`` spans at least a cache line: one transaction per thread
  per iteration, the Kokkos/CUDA mapping-vs-layout failure of Sec. IV-B.
* ``P002`` — an innermost-loop CPU access whose stride spans at least a
  cache line: every element touches a new line, defeating spatial reuse.
* ``P003`` — a worksharing region left unpinned on a multi-NUMA CPU: the
  OS migrates threads and the simulator charges
  :data:`repro.sched.thread_sim.MIGRATION_COMPUTE_TAX` (the Numba-on-EPYC
  mechanism behind Table III's 0.55).
* ``P004`` — the operand footprint at the sweep's largest size exceeds
  the lane's L2-thrash threshold (the Kokkos/HIP "repeatable slowdown at
  the largest size").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ...core.types import MatrixShape
from ...errors import AuditError
from ...gpu.coalescing import CoalescingReport, analyze_coalescing
from ...gpu.launch import LaunchConfig
from ...gpu.warp_sim import IssueProfile
from ...machine.cpu import CPUSpec
from ...machine.gpu import GPUSpec
from ...sched.affinity import PinPolicy
from ..analysis import StrideClass, reference_info
from ..nodes import Kernel
from ..lint.diagnostics import Diagnostic, DiagnosticSet, Severity

__all__ = [
    "AccessClassification",
    "classify_gpu_accesses",
    "crosscheck_coalescing",
    "gpu_memory_diagnostics",
    "cpu_memory_diagnostics",
    "locality_diagnostics",
    "footprint_diagnostics",
]


@dataclass(frozen=True)
class AccessClassification:
    """The auditor's independent classification of one warp-wide access."""

    array: str
    kind: str                 # "load" | "store"
    stride_across_x: int      # element stride between adjacent threads
    transactions_per_warp: float
    pattern: str              # "broadcast" | "coalesced" | "strided"
    per_k_iteration: bool


def classify_gpu_accesses(kernel: Kernel, launch: LaunchConfig,
                          spec: GPUSpec,
                          shape: MatrixShape) -> List[AccessClassification]:
    """Re-derive every access's coalescing class from the IR alone.

    Same rules as :func:`repro.gpu.coalescing.analyze_coalescing` — stride 0
    across ``threadIdx.x`` broadcasts, a sub-line stride coalesces, a
    line-or-larger stride costs one transaction per thread — computed here
    independently so the cross-check below is meaningful.
    """
    x_var = launch.x_axis
    line = spec.caches.line_bytes if spec.caches.levels else 128
    m, n, k = shape.m, shape.n, shape.k

    items = [("load", ld.ref, ld.hoisted_above) for ld in kernel.body.loads]
    items += [("store", st.ref, st.hoisted_above) for st in kernel.body.stores]

    out: List[AccessClassification] = []
    for kind, ref, hoist in items:
        decl = kernel.decl(ref.array)
        stride = ref.linear_coeff(decl, x_var, m, n, k)
        elem = decl.dtype.np_dtype.itemsize if decl.role != "C" else (
            kernel.precision.accum_dtype.itemsize)
        if stride == 0:
            tx, pattern = 1.0, "broadcast"
        elif abs(stride) * elem < line:
            tx = max(1.0, spec.warp_size * abs(stride) * elem / line)
            pattern = "coalesced"
        else:
            tx, pattern = float(spec.warp_size), "strided"
        out.append(AccessClassification(
            array=ref.array, kind=kind, stride_across_x=stride,
            transactions_per_warp=tx, pattern=pattern,
            per_k_iteration=hoist is None))
    return out


def crosscheck_coalescing(kernel: Kernel, launch: LaunchConfig,
                          spec: GPUSpec,
                          shape: MatrixShape) -> CoalescingReport:
    """Assert the auditor's classification reproduces the simulator's.

    Returns the simulator-side :class:`CoalescingReport` (the audit's
    single source of truth for transactions and bytes) after verifying the
    IR-side re-derivation matches it access for access.
    """
    ours = classify_gpu_accesses(kernel, launch, spec, shape)
    theirs = analyze_coalescing(kernel, launch, spec, shape)
    if len(ours) != len(theirs.accesses):
        raise AuditError(
            f"{kernel.name}: auditor found {len(ours)} accesses, "
            f"gpu.coalescing found {len(theirs.accesses)}")
    for mine, sim in zip(ours, theirs.accesses):
        same = (mine.array == sim.array and mine.kind == sim.kind
                and mine.stride_across_x == sim.stride_across_x
                and mine.pattern == sim.pattern
                and abs(mine.transactions_per_warp
                        - sim.transactions_per_warp) < 1e-9
                and mine.per_k_iteration == sim.per_k_iteration)
        if not same:
            raise AuditError(
                f"{kernel.name}: coalescing cross-check failed for "
                f"{mine.kind} {mine.array}: audit says "
                f"{mine.pattern}/{mine.transactions_per_warp:g} tx "
                f"(stride {mine.stride_across_x}), simulator says "
                f"{sim.pattern}/{sim.transactions_per_warp:g} tx "
                f"(stride {sim.stride_across_x})")
    return theirs


def gpu_memory_diagnostics(kernel: Kernel, launch: LaunchConfig,
                           spec: GPUSpec,
                           shape: MatrixShape) -> Tuple[DiagnosticSet,
                                                        CoalescingReport]:
    """``P001`` findings plus the cross-checked coalescing report."""
    report = crosscheck_coalescing(kernel, launch, spec, shape)
    diags = DiagnosticSet()
    for a in report.accesses:
        if a.pattern != "strided" or not a.per_k_iteration:
            continue
        diags.add(Diagnostic(
            code="P001", severity=Severity.WARNING,
            message=(f"{a.kind} {a.array} strides {abs(a.stride_across_x)} "
                     f"elements across threadIdx.x "
                     f"({launch.describe()}): {a.transactions_per_warp:g} "
                     f"transactions per warp per k iteration instead of a "
                     f"coalesced handful — the transaction issue rate, not "
                     f"bandwidth, becomes the bottleneck"),
            kernel=kernel.name, subject=f"{a.kind} {a.array}"))
    return diags, report


def cpu_memory_diagnostics(kernel: Kernel, cpu: CPUSpec,
                           shape: MatrixShape) -> DiagnosticSet:
    """``P002``: innermost-loop strides that cross a full cache line."""
    diags = DiagnosticSet()
    line = cpu.caches.line_bytes
    for info in reference_info(kernel, shape, line_bytes=line):
        if info.stride_class != StrideClass.STRIDED:
            continue
        span = abs(info.inner_stride_elems) * info.element_bytes
        if span < line:
            continue
        diags.add(Diagnostic(
            code="P002", severity=Severity.WARNING,
            message=(f"{info.kind} {info.ref} strides "
                     f"{abs(info.inner_stride_elems)} elements "
                     f"({span} B >= {line} B line) in its fastest loop: "
                     f"every access opens a new cache line, so the "
                     f"effective bandwidth is one element per line"),
            kernel=kernel.name, subject=f"{info.kind} {info.ref}"))
    return diags


def locality_diagnostics(kernel: Kernel, pin: PinPolicy,
                         cpu: CPUSpec) -> DiagnosticSet:
    """``P003``: unpinned threads on a multi-NUMA socket."""
    from ...sched.thread_sim import MIGRATION_COMPUTE_TAX

    diags = DiagnosticSet()
    if pin is PinPolicy.NONE and cpu.numa_domains > 1:
        diags.add(Diagnostic(
            code="P003", severity=Severity.WARNING,
            message=(f"worksharing threads are unpinned on {cpu.name} "
                     f"({cpu.numa_domains} NUMA domains): OS migrations "
                     f"cost a x{MIGRATION_COMPUTE_TAX:.2f} compute tax and "
                     f"forfeit NUMA-local bandwidth"),
            kernel=kernel.name, subject=f"pinning {pin.value}"))
    return diags


def footprint_diagnostics(kernel: Kernel, profile: IssueProfile,
                          largest_shape: MatrixShape) -> DiagnosticSet:
    """``P004``: the sweep's largest operand set overruns the L2 budget."""
    diags = DiagnosticSet()
    footprint = largest_shape.footprint_bytes(kernel.precision)
    if footprint > profile.thrash_threshold_bytes:
        diags.add(Diagnostic(
            code="P004", severity=Severity.INFO,
            message=(f"operand footprint at {largest_shape} is "
                     f"{footprint / 1e9:.1f} GB, past this lane's "
                     f"{profile.thrash_threshold_bytes / 1e9:.1f} GB "
                     f"L2-thrash threshold: expect a "
                     f"x{profile.thrash_factor:.2f} slowdown at the "
                     f"largest size"),
            kernel=kernel.name, subject=f"footprint @{largest_shape}"))
    return diags
