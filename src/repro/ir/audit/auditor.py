"""Audit drivers: one lane, or the whole model x device x precision matrix.

Mirrors :mod:`repro.ir.lint.linter`'s layering — ``audit_lowering`` audits
what one frontend actually produces for one target, ``audit_registry``
sweeps the registry — but each audited lane additionally carries an
:class:`AuditVerdict`: the statically predicted efficiency against the
platform's reference lane (C/OpenMP, CUDA or HIP), its band, the binding
execution unit, and the stable codes of every hazard found.

Model and machine imports happen inside the functions for the same
circularity reason as the linter: the models import the IR passes, and
the passes import :mod:`repro.ir.lint`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ...core.types import MatrixShape, Precision
from ...errors import LintError, UnsupportedConfigurationError
from ..lint.diagnostics import Diagnostic, DiagnosticSet, Severity
from ..lint.linter import lint_kernel
from .memory import (
    cpu_memory_diagnostics,
    footprint_diagnostics,
    gpu_memory_diagnostics,
    locality_diagnostics,
)
from .precision_flow import precision_diagnostics
from .residency import residency_diagnostics
from .verdict import (
    Band,
    StaticEstimate,
    classify_band,
    cpu_issue_estimate,
    gpu_issue_estimate,
    predicted_efficiency,
)

__all__ = [
    "AUDIT_SHAPE",
    "LARGEST_SWEEP_SHAPE",
    "AuditVerdict",
    "AuditResult",
    "audit_lowering",
    "audit_registry",
    "render_audit_matrix",
    "render_audit_findings",
]

#: Representative sweep point the issue-cycle estimates are evaluated at.
#: Every per-iteration term is shape-invariant for square GEMM at these
#: sizes; 4096 matches the middle of the seed sweep.
AUDIT_SHAPE = MatrixShape.square(4096)

#: The seed sweep's largest size — where footprint hazards (P004) bind.
LARGEST_SWEEP_SHAPE = MatrixShape.square(16384)


@dataclass(frozen=True)
class AuditVerdict:
    """The static per-lane verdict behind one cell of the audit matrix."""

    predicted_efficiency: Optional[float]  # None: no same-precision reference
    band: Optional[Band]
    bound: str                             # binding unit of this lane
    reference: str                         # model normalised against
    estimate: StaticEstimate
    occupancy_fraction: Optional[float] = None   # GPU lanes only
    hazards: Tuple[str, ...] = ()          # warning/error codes, sorted

    def cell(self) -> str:
        """Matrix-cell rendering, e.g. ``0.87 high`` or ``n/a``."""
        if self.predicted_efficiency is None:
            return "n/a"
        assert self.band is not None
        return f"{self.predicted_efficiency:.2f} {self.band.value}"


@dataclass(frozen=True)
class AuditResult:
    """One row of a registry audit: a (model, target, precision) lane."""

    model: str
    target: str
    precision: str
    device: str                            # "cpu" | "gpu"
    skipped: str = ""                      # non-empty: unsupported combo
    degraded: bool = False                 # supported via a fallback path
    diagnostics: Tuple[Diagnostic, ...] = ()
    verdict: Optional[AuditVerdict] = None

    @property
    def error_count(self) -> int:
        return sum(1 for d in self.diagnostics if d.is_error)

    @property
    def warning_count(self) -> int:
        return sum(1 for d in self.diagnostics
                   if d.severity is Severity.WARNING)

    @property
    def clean(self) -> bool:
        return not self.skipped and self.error_count == 0


def _reference_estimate(spec, precision,
                        shape: MatrixShape) -> Tuple[Optional[StaticEstimate],
                                                     str]:
    """The platform reference's issue estimate at the same precision.

    Returns ``(None, name)`` when the reference does not reach this
    precision (the FP16 lanes: Table III does not score them either).
    """
    from ...machine.cpu import CPUSpec
    from ...models.registry import reference_model_for

    ref = reference_model_for(spec)
    try:
        if isinstance(spec, CPUSpec):
            low = ref.lower_cpu(spec, precision)
            est = cpu_issue_estimate(low.kernel, spec, low.profile, low.pin,
                                     shape)
        else:
            low = ref.lower_gpu(spec, precision)
            est = gpu_issue_estimate(low.kernel, low.launch, spec,
                                     low.profile, shape)
    except UnsupportedConfigurationError:
        return None, ref.name
    return est, ref.name


def audit_lowering(model, spec, precision,
                   shape: MatrixShape = AUDIT_SHAPE,
                   largest_shape: MatrixShape = LARGEST_SWEEP_SHAPE,
                   ) -> Tuple[DiagnosticSet, Optional[AuditVerdict]]:
    """Audit what ``model`` lowers for ``spec`` at ``precision``.

    Returns the full finding set (lint findings are folded in first, so a
    structurally broken kernel surfaces as ``V001``/``R0xx`` errors here
    too) and the lane verdict — ``None`` when the lowering itself failed
    pass gating.
    """
    from ...machine.cpu import CPUSpec

    support = model.supports(spec, precision)
    diags = DiagnosticSet()
    try:
        if isinstance(spec, CPUSpec):
            lowering = model.lower_cpu(spec, precision)
        else:
            lowering = model.lower_gpu(spec, precision)
    except LintError as exc:
        diags.extend(exc.diagnostics)
        return diags, None

    kernel = lowering.kernel
    diags.extend(lint_kernel(kernel))
    for rec in lowering.pass_records:
        diags.extend(rec.diagnostics)

    if isinstance(spec, CPUSpec):
        diags.extend(cpu_memory_diagnostics(kernel, spec, shape))
        diags.extend(locality_diagnostics(kernel, lowering.pin, spec))
        est = cpu_issue_estimate(kernel, spec, lowering.profile,
                                 lowering.pin, shape)
        occ_fraction = None
    else:
        mem_diags, _ = gpu_memory_diagnostics(kernel, lowering.launch, spec,
                                              shape)
        diags.extend(mem_diags)
        res_diags, _, pressured, _ = residency_diagnostics(
            kernel, lowering.launch, spec, lowering.profile)
        diags.extend(res_diags)
        diags.extend(footprint_diagnostics(kernel, lowering.profile,
                                           largest_shape))
        est = gpu_issue_estimate(kernel, lowering.launch, spec,
                                 lowering.profile, shape)
        occ_fraction = pressured.fraction(spec) if pressured else 0.0

    diags.extend(precision_diagnostics(kernel, precision, support, shape))

    ref_est, ref_name = _reference_estimate(spec, precision, shape)
    if model.name == ref_name:
        predicted: Optional[float] = 1.0
    elif ref_est is None:
        predicted = None
    else:
        predicted = predicted_efficiency(est, ref_est)

    hazards = tuple(sorted({d.code for d in diags
                            if d.severity is not Severity.INFO}))
    verdict = AuditVerdict(
        predicted_efficiency=predicted,
        band=None if predicted is None else classify_band(predicted),
        bound=est.bound,
        reference=ref_name,
        estimate=est,
        occupancy_fraction=occ_fraction,
        hazards=hazards,
    )
    return diags, verdict


def audit_registry(models: Optional[Sequence[str]] = None,
                   device: str = "all",
                   precisions: Optional[Sequence[Precision]] = None,
                   ) -> List[AuditResult]:
    """Audit every registered model x device x precision lane.

    Same sweep contract as :func:`repro.ir.lint.linter.lint_registry`:
    unsupported combinations become skipped rows, never failures.
    """
    from ...machine.catalog import CPU_CATALOG, GPU_CATALOG
    from ...machine.cpu import CPUSpec
    from ...models.registry import all_models, model_by_name

    if models is None:
        chosen = all_models(include_extensions=True)
    else:
        chosen = [model_by_name(name) for name in models]
    precs = list(precisions) if precisions is not None else list(Precision)

    specs = []
    if device in ("cpu", "all"):
        specs += list(CPU_CATALOG.values())
    if device in ("gpu", "all"):
        specs += list(GPU_CATALOG.values())
    if not specs:
        raise ValueError(f"device must be 'cpu', 'gpu' or 'all', "
                         f"not {device!r}")

    out: List[AuditResult] = []
    for model in chosen:
        for spec in specs:
            dev = "cpu" if isinstance(spec, CPUSpec) else "gpu"
            for prec in precs:
                support = model.supports(spec, prec)
                if not support.supported:
                    out.append(AuditResult(
                        model=model.name, target=spec.name,
                        precision=prec.value, device=dev,
                        skipped=support.reason))
                    continue
                diags, verdict = audit_lowering(model, spec, prec)
                out.append(AuditResult(
                    model=model.name, target=spec.name,
                    precision=prec.value, device=dev,
                    degraded=support.degraded,
                    diagnostics=tuple(diags),
                    verdict=verdict))
    return out


def render_audit_matrix(results: Sequence[AuditResult]) -> str:
    """Table III-shaped matrix: target x precision rows, model columns.

    Cells carry the predicted band (``0.87 high``), ``n/a`` for audited
    lanes with no same-precision reference, and ``-`` for unsupported
    lanes — mirroring the paper's own '-' convention.
    """
    from ...harness.report import ascii_table

    model_order: List[str] = []
    lanes = {}
    targets: List[Tuple[str, str]] = []
    for r in results:
        if r.model not in model_order:
            model_order.append(r.model)
        key = (r.target, r.precision)
        if key not in targets:
            targets.append(key)
        lanes[(r.model,) + key] = r

    headers = ["target", "precision"] + model_order
    rows: List[List[str]] = []
    for target, precision in targets:
        row = [target, precision]
        for model in model_order:
            r = lanes.get((model, target, precision))
            if r is None:
                row.append("")
            elif r.skipped:
                row.append("-")
            elif r.verdict is None:
                row.append("FAILED")
            else:
                cell = r.verdict.cell()
                if r.warning_count or r.error_count:
                    cell += f" [{r.error_count + r.warning_count}!]"
                row.append(cell)
        rows.append(row)
    legend = ("(cell: predicted efficiency vs the platform reference and "
              "its band; [N!] = N warning/error findings; "
              "n/a = no same-precision reference; - = unsupported)")
    return ascii_table(headers, rows) + "\n" + legend


def render_audit_findings(results: Sequence[AuditResult],
                          show_info: bool = False) -> str:
    """Per-lane findings in ``repro lint``'s reporting style."""
    from ..pretty import render_diagnostics

    lines: List[str] = []
    for r in results:
        if r.skipped:
            continue
        findings = [d for d in r.diagnostics
                    if show_info or d.severity is not Severity.INFO]
        if not findings:
            continue
        verdict = f" [{r.verdict.cell()}]" if r.verdict else ""
        lines.append(f"{r.model} / {r.target} / {r.precision}{verdict}:")
        lines.append(render_diagnostics(findings))
    return "\n".join(lines)
