"""Per-lane audit verdicts: a predicted efficiency band from static facts.

The paper's Table III divides each portable model's performance by the
platform reference.  That ratio is predictable *without running the
simulator* because, at GEMM's sizes, both lanes are bound by per-iteration
issue pressure — a closed-form max over execution-unit terms:

* **GPU** — per-warp per-``k``-iteration issue cycles, the max over FMA
  pipes, LSU slots, memory-transaction servicing, integer/branch work and
  the per-CU share of L2 bandwidth, scaled by the profile's issue
  multiplier.  This mirrors the unit model of
  :func:`repro.gpu.warp_sim.simulate_gpu_kernel` term for term (the tests
  assert exact agreement with its ``issue_cycles_per_iter``), minus the
  wave/DRAM/launch machinery that cancels in the ratio.
* **CPU** — per-core port pressure from the instruction mix (FMA pipes,
  load/store ports, frontend IPC), scaled by the issue multiplier, times
  the NUMA migration tax when the lane cannot pin its threads — mirroring
  :func:`repro.sim.executor.cpu_cycles_total`.

``predicted_efficiency(model, reference)`` is then just the cycle ratio,
and :func:`classify_band` turns it into the coarse verdict the matrix
table reports.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional

from ...core.types import MatrixShape
from ...gpu.launch import LaunchConfig
from ...gpu.warp_sim import IssueProfile
from ...machine.cpu import CPUSpec
from ...machine.gpu import GPUSpec
from ...sched.affinity import PinPolicy
from ...sim.executor import CPUIssueProfile
from ..analysis import instruction_mix
from ..nodes import Kernel
from .memory import crosscheck_coalescing

__all__ = [
    "Band",
    "BAND_HIGH",
    "BAND_MEDIUM",
    "classify_band",
    "StaticEstimate",
    "gpu_issue_estimate",
    "cpu_issue_estimate",
    "predicted_efficiency",
]

#: Band thresholds on predicted/measured efficiency.  0.75 separates
#: "within shouting distance of the reference" from "a real gap"; 0.35
#: separates a gap from a cliff (the uncoalesced/rolled-loop failures all
#: land far below it).
BAND_HIGH = 0.75
BAND_MEDIUM = 0.35


class Band(enum.Enum):
    """Coarse efficiency verdict for the matrix table."""

    HIGH = "high"
    MEDIUM = "medium"
    LOW = "low"


def classify_band(efficiency: float) -> Band:
    if efficiency >= BAND_HIGH:
        return Band.HIGH
    if efficiency >= BAND_MEDIUM:
        return Band.MEDIUM
    return Band.LOW


@dataclass(frozen=True)
class StaticEstimate:
    """Per-iteration issue cost of one lane, with its unit breakdown.

    ``cycles`` is the profile-scaled max over ``terms`` (times the NUMA
    tax on CPU); ``bound`` names the unit that binds.
    """

    cycles: float
    bound: str
    terms: Dict[str, float]
    migration_tax: float = 1.0

    def describe(self) -> str:
        parts = ", ".join(f"{k}={v:.2f}" for k, v in self.terms.items())
        tax = (f" x{self.migration_tax:.2f} migration"
               if self.migration_tax != 1.0 else "")
        return f"{self.cycles:.2f} cyc/iter [{self.bound}-bound] ({parts}){tax}"


def gpu_issue_estimate(kernel: Kernel, launch: LaunchConfig, spec: GPUSpec,
                       profile: IssueProfile,
                       shape: MatrixShape) -> StaticEstimate:
    """Per-warp per-``k``-iteration issue cycles, unit by unit."""
    coal = crosscheck_coalescing(kernel, launch, spec, shape)
    inner = kernel.inner
    unroll = max(1, inner.unroll)
    n_mem = (sum(1 for ld in kernel.body.loads if ld.hoisted_above is None)
             + sum(1 for st in kernel.body.stores if st.hoisted_above is None))
    w = spec.warp_size

    terms: Dict[str, float] = {
        "fma": w / spec.fma_rate(kernel.precision),
        "lsu": n_mem * w / spec.lsu_per_cycle,
        "tx": coal.transactions_per_warp_k_iter / spec.transactions_per_cycle,
        "int": ((n_mem + 3.0 / unroll + profile.extra_int_per_iter)
                * w / spec.int_per_cycle),
    }
    if spec.caches.levels:
        l2 = spec.caches.level("L2")
        l2_bytes_per_cu_cycle = (l2.bandwidth_gbs * 1e9
                                 / (spec.compute_units * spec.clock_ghz * 1e9))
        terms["l2"] = coal.bytes_per_warp_k_iter / l2_bytes_per_cu_cycle

    bound = max(terms, key=lambda t: terms[t])
    return StaticEstimate(
        cycles=terms[bound] * profile.issue_multiplier,
        bound=bound, terms=terms)


def cpu_issue_estimate(kernel: Kernel, cpu: CPUSpec,
                       profile: CPUIssueProfile, pin: PinPolicy,
                       shape: MatrixShape) -> StaticEstimate:
    """Per-inner-iteration port cycles for one core, unit by unit.

    Normalising the mix totals by the inner trip count keeps the numbers
    human-sized; the ratio against the reference lane is unchanged.
    """
    from ...sched.thread_sim import MIGRATION_COMPUTE_TAX

    mix = instruction_mix(kernel, shape, line_bytes=cpu.caches.line_bytes)
    iters = max(1, mix.inner_iterations)
    int_total = (mix.int_ops + mix.branch_ops + mix.guard_ops
                 + profile.extra_int_per_inner_iter * mix.inner_iterations)
    terms: Dict[str, float] = {
        "fma": mix.fma_issues / cpu.fma_units / iters,
        "load": mix.load_issues / cpu.load_ports / iters,
        "store": mix.store_issues / cpu.store_ports / iters,
        "int": int_total / cpu.frontend_ipc / iters,
    }
    if mix.has_reduction_chain:
        fma_execs = mix.flops / 2.0
        terms["chain"] = (fma_execs * cpu.fma_latency_cycles
                          / mix.accum_streams / iters)

    bound = max(terms, key=lambda t: terms[t])
    tax = (MIGRATION_COMPUTE_TAX
           if pin is PinPolicy.NONE and cpu.numa_domains > 1 else 1.0)
    return StaticEstimate(
        cycles=terms[bound] * profile.issue_multiplier * tax,
        bound=bound, terms=terms, migration_tax=tax)


def predicted_efficiency(model_estimate: StaticEstimate,
                         reference_estimate: StaticEstimate) -> float:
    """Eq. (2)'s e_i, statically: reference cycles over model cycles."""
    if model_estimate.cycles <= 0:
        return 0.0
    return reference_estimate.cycles / model_estimate.cycles


def band_of(efficiency: Optional[float]) -> Optional[Band]:
    """Band of an efficiency that may be None (unsupported lane)."""
    return None if efficiency is None else classify_band(efficiency)


__all__.append("band_of")
