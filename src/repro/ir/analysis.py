"""Static analysis of kernel IR: instruction mix and memory reference info.

The cost engine consumes two summaries of a kernel:

* :class:`InstructionMix` — how many FMA issues, loads/stores, integer and
  branch instructions a full execution retires, after unrolling and
  vectorisation are accounted for.  This drives the compute-time model.
* :class:`RefInfo` per array reference — stride class, execution count and
  sharing across the parallel loop.  This drives the memory-traffic model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..core.types import MatrixShape
from .nodes import ArrayDecl, ArrayRef, Kernel, Loop, ParallelKind

__all__ = [
    "StrideClass",
    "RefInfo",
    "InstructionMix",
    "flop_count",
    "instruction_mix",
    "reference_info",
    "executions_of",
]


def flop_count(shape: MatrixShape) -> int:
    """Total floating-point operations of one GEMM (2·M·N·K)."""
    return shape.flops


def executions_of(kernel: Kernel, hoisted_above: Optional[str],
                  shape: MatrixShape) -> int:
    """How many times a statement executes over the whole kernel.

    A statement hoisted above loop ``v`` runs once per iteration of the
    loops *enclosing* ``v``; a statement in the innermost body runs once per
    innermost iteration.
    """
    trips = kernel.resolved_extents(shape.m, shape.n, shape.k)
    if hoisted_above is None:
        vars_counted = [l.var for l in kernel.loops]
    else:
        vars_counted = []
        for l in kernel.loops:
            if l.var == hoisted_above:
                break
            vars_counted.append(l.var)
    count = 1
    for v in vars_counted:
        count *= trips[v]
    return count


class StrideClass:
    """Stride categories of a reference w.r.t. its fastest executing loop."""

    INVARIANT = "invariant"   # stride 0: register-resident / broadcast
    UNIT = "unit"             # stride 1: streaming, full spatial reuse
    STRIDED = "strided"       # large stride: one cache line per access


@dataclass(frozen=True)
class RefInfo:
    """Memory-model summary of one array reference."""

    ref: ArrayRef
    kind: str                      # "load" | "store"
    array: str
    role: str                      # "A" | "B" | "C"
    executions: int                # element accesses over the whole kernel
    inner_stride_elems: int        # element stride w.r.t. fastest varying loop
    stride_class: str
    element_bytes: int
    distinct_elements: int         # |footprint| of the array
    shared_across_parallel: bool   # True if every thread touches the same data
    reuse_working_set_bytes: int   # bytes that must stay cached for temporal reuse
    reuse_factor: int              # times each element is touched if cached

    @property
    def touched_bytes(self) -> int:
        return self.executions * self.element_bytes

    @property
    def footprint_bytes(self) -> int:
        return self.distinct_elements * self.element_bytes


@dataclass(frozen=True)
class InstructionMix:
    """Retired-instruction totals for one kernel execution.

    ``fma_issues`` counts FMA *instructions* (vector FMAs count once);
    ``flops`` is always 2·M·N·K regardless of vectorisation.
    ``accum_streams`` is the number of independent accumulator chains in a
    reduction kernel — the latency-hiding head-room of the inner loop.
    """

    flops: int
    fma_issues: float
    load_issues: float
    store_issues: float
    guard_ops: float
    int_ops: float
    branch_ops: float
    inner_iterations: int
    vector_width: int
    has_reduction_chain: bool
    accum_streams: int

    @property
    def issue_slots(self) -> float:
        """Total instruction issue slots, the currency of the CPU/GPU
        front-end throughput model."""
        return (self.fma_issues + self.load_issues + self.store_issues
                + self.guard_ops + self.int_ops + self.branch_ops)


def _decl_of(kernel: Kernel, ref: ArrayRef) -> ArrayDecl:
    return kernel.decl(ref.array)


def _fastest_loop_for(kernel: Kernel,
                      hoisted_above: Optional[str]) -> Optional[Loop]:
    """Innermost loop enclosing a statement (its fastest-varying index).

    Returns None for a statement hoisted above the *outermost* loop: no
    loop encloses it, it executes exactly once, and its effective stride
    along any loop is zero.
    """
    if hoisted_above is None:
        return kernel.loops[-1]
    for i, l in enumerate(kernel.loops):
        if l.var == hoisted_above:
            return kernel.loops[i - 1] if i > 0 else None
    return kernel.loops[-1]


def _stride_class(stride: int, line_elems: int) -> str:
    if stride == 0:
        return StrideClass.INVARIANT
    if abs(stride) < line_elems:
        return StrideClass.UNIT
    return StrideClass.STRIDED


def reference_info(kernel: Kernel, shape: MatrixShape,
                   line_bytes: int = 64) -> List[RefInfo]:
    """Memory-reference summaries for every load and store in the kernel."""
    m, n, k = shape.m, shape.n, shape.k
    trips = kernel.resolved_extents(m, n, k)
    parallel_vars = {l.var for l in kernel.loops
                     if l.parallel is not ParallelKind.SEQUENTIAL}
    out: List[RefInfo] = []

    items = [("load", ld.ref, ld.hoisted_above) for ld in kernel.body.loads]
    items += [("store", st.ref, st.hoisted_above) for st in kernel.body.stores]

    grid_vars = [l.var for l in kernel.loops if l.parallel is ParallelKind.GRID]

    for kind, ref, hoist in items:
        decl = _decl_of(kernel, ref)
        execs = executions_of(kernel, hoist, shape)
        fastest = _fastest_loop_for(kernel, hoist)
        stride = (ref.linear_coeff(decl, fastest.var, m, n, k)
                  if fastest is not None else 0)
        elem_bytes = decl.dtype.np_dtype.itemsize if decl.role != "C" else (
            kernel.precision.accum_dtype.itemsize)
        line_elems = max(1, line_bytes // elem_bytes)

        # On a GPU grid, spatial locality is a *warp* property: concurrent
        # threads along a grid dimension cover a cache line together even
        # when each thread's own (k-loop) stride is large.  Classify by the
        # best nonzero stride over the inner loop and the grid dimensions.
        if grid_vars:
            candidates = [stride] + [
                ref.linear_coeff(decl, gv, m, n, k) for gv in grid_vars
            ]
            nonzero = [abs(s) for s in candidates if s != 0]
            if nonzero and min(nonzero) < line_elems <= abs(stride):
                stride = min(nonzero)

        axes = decl.shape_axes
        distinct = axes[0].extent(m, n, k) * axes[1].extent(m, n, k)

        used_vars = {v for idx in ref.indices for v in idx.variables}
        # Concurrent workers touch the same elements when the reference does
        # not vary along at least one parallel dimension (e.g. B[k,j] is
        # shared across the i-threads on CPU, and across the i-axis of a
        # GPU grid).
        shared = bool(parallel_vars) and not parallel_vars.issubset(used_vars)

        # Temporal reuse: loops enclosing the statement whose var is NOT in
        # the index re-touch the same elements.  The working set that must
        # stay resident for that reuse to hit in cache is the slice of the
        # array swept by the loops *inside* the outermost reuse loop.
        reuse_factor = 1
        reuse_ws_elems = 0
        enclosing = kernel.loops if hoist is None else kernel.loops[
            : [l.var for l in kernel.loops].index(hoist)]
        for depth, loop in enumerate(enclosing):
            if loop.var not in used_vars:
                # elements touched by the loops inside this one
                inner_elems = 1
                inner_vars = {l.var for l in enclosing[depth + 1:]}
                for axis_idx in range(2):
                    axis_vars = set(ref.indices[axis_idx].variables)
                    if axis_vars & inner_vars:
                        inner_elems *= axes[axis_idx].extent(m, n, k)
                reuse_factor *= trips[loop.var]
                reuse_ws_elems = max(reuse_ws_elems, inner_elems)
        if reuse_factor > 1 and reuse_ws_elems == 0:
            reuse_ws_elems = 1

        out.append(RefInfo(
            ref=ref,
            kind=kind,
            array=ref.array,
            role=decl.role,
            executions=execs,
            inner_stride_elems=stride,
            stride_class=_stride_class(stride, line_elems),
            element_bytes=elem_bytes,
            distinct_elements=distinct,
            shared_across_parallel=shared,
            reuse_working_set_bytes=reuse_ws_elems * elem_bytes,
            reuse_factor=reuse_factor,
        ))
    return out


def instruction_mix(kernel: Kernel, shape: MatrixShape,
                    line_bytes: int = 64) -> InstructionMix:
    """Retired-instruction totals after unroll/vectorisation.

    Model assumptions, chosen to match what ``-O3`` LLVM emits for these
    loop shapes:

    * The inner loop's ``vector_width`` divides FMA and unit-stride memory
      issues; invariant references become one broadcast per vector.
    * Strided references cannot use vector loads: one issue per element.
    * Addressing costs one integer op per memory issue; loop control costs
      two integer ops plus one branch per (unrolled) iteration at each
      level, charged to the level's trip count.
    * Guards cost one compare+branch per execution (never vectorised).
    """
    m, n, k = shape.m, shape.n, shape.k
    trips = kernel.resolved_extents(m, n, k)
    inner = kernel.inner
    w = max(1, inner.vector_width)
    unroll = max(1, inner.unroll)

    inner_iters = 1
    for l in kernel.loops:
        inner_iters *= trips[l.var]

    # --- FMAs ------------------------------------------------------------
    flops = 2 * m * n * k
    fma_execs = executions_of(kernel, None, shape) * len(kernel.body.fmas)
    fma_issues = fma_execs / w

    # --- loads / stores ----------------------------------------------------
    load_issues = 0.0
    store_issues = 0.0
    int_ops = 0.0
    for kind, ref, hoist in (
        [("load", ld.ref, ld.hoisted_above) for ld in kernel.body.loads]
        + [("store", st.ref, st.hoisted_above) for st in kernel.body.stores]
    ):
        decl = _decl_of(kernel, ref)
        execs = executions_of(kernel, hoist, shape)
        fastest = _fastest_loop_for(kernel, hoist)
        stride = (ref.linear_coeff(decl, fastest.var, m, n, k)
                  if fastest is not None else 0)
        if hoist is None:
            if stride == 0:
                issues = execs / (w * max(1, unroll))  # broadcast, hoist by HW
            elif abs(stride) == 1:
                issues = execs / w
            else:
                issues = float(execs)  # gather: one issue per element
        else:
            issues = float(execs)
        if kind == "load":
            load_issues += issues
        else:
            store_issues += issues
        int_ops += issues  # address computation

    # --- guards ------------------------------------------------------------
    guard_ops = 0.0
    for g in kernel.body.guards:
        guard_ops += executions_of(kernel, g.hoisted_above, shape)

    # --- loop control --------------------------------------------------------
    branch_ops = 0.0
    running = 1
    for l in kernel.loops:
        running *= trips[l.var]
        level_iters = running
        if l is inner:
            level_iters = level_iters / (w * unroll)
        int_ops += 2.0 * level_iters
        branch_ops += 1.0 * level_iters

    has_chain = kernel.scalar_accum and inner.axis.value == "K"
    # A strict-FP reduction chain is a single serial dependence no matter
    # how far the loop is unrolled or widened; with reassociation allowed
    # (fastmath) — or with no chain at all — every unroll copy and vector
    # lane is an independent accumulator.
    accum_streams = 1 if (has_chain and not kernel.fastmath) else unroll * w

    return InstructionMix(
        flops=flops,
        fma_issues=fma_issues,
        load_issues=load_issues,
        store_issues=store_issues,
        guard_ops=guard_ops,
        int_ops=int_ops,
        branch_ops=branch_ops,
        inner_iterations=inner_iters,
        vector_width=w,
        has_reduction_chain=has_chain,
        accum_streams=max(1, accum_streams),
    )
