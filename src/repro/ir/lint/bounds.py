"""In-bounds proofs for affine references.

Bounds-check elision (Julia's ``@inbounds``, Fig. 2c) is only a legal
modelling choice when every elided check is provably redundant: each index
dimension must be a bare loop variable whose trip count is exactly the
array extent of that dimension.  Anything else — a constant offset, a
scaled index, an axis mismatch like walking ``K`` over an ``M``-extent
dimension — can fault at some shape, so the checks must stay.
"""

from __future__ import annotations

from typing import Tuple

from ..nodes import ArrayRef, Kernel

__all__ = ["provably_in_bounds"]


def provably_in_bounds(kernel: Kernel, ref: ArrayRef) -> Tuple[bool, str]:
    """Is ``ref`` in bounds for every shape?  Returns ``(ok, why)``.

    The proof obligation per dimension ``d``: the index is a single loop
    variable with coefficient 1 and no constant, and that loop's GEMM axis
    equals the array's declared axis for ``d`` (so ``0 <= var < extent``
    holds by the loop bounds themselves).
    """
    decl = kernel.decl(ref.array)
    for d in range(2):
        idx = ref.indices[d]
        nonzero = [(v, c) for v, c in idx.coeffs if c != 0]
        if len(nonzero) != 1 or nonzero[0][1] != 1 or idx.const != 0:
            return False, (f"dim {d} index '{idx}' is not a bare loop "
                           f"variable")
        var = nonzero[0][0]
        axis = kernel.loop(var).axis
        if axis is not decl.shape_axes[d]:
            return False, (f"dim {d} iterates axis {axis.value} but "
                           f"{ref.array} extends over "
                           f"{decl.shape_axes[d].value}")
    return True, "ok"
