"""Pass-legality preconditions: the checks behind ``Pass.preconditions``.

Each optimisation pass in :mod:`repro.ir.passes` declares the conditions
under which its transformation is semantics-preserving; the
:class:`~repro.ir.passes.PassPipeline` evaluates them *before* running the
pass and raises :class:`repro.errors.LintError` on any error-severity
finding, so an illegal transformation fails loudly instead of silently
corrupting the cost model's input.  The checks live here — next to the
dependence analyzer they are built on — and the pass classes stay thin.
"""

from __future__ import annotations

from typing import List

from ..nodes import Kernel, ParallelKind
from .bounds import provably_in_bounds
from .dependence import interchange_legal
from .diagnostics import Diagnostic, Severity

__all__ = [
    "interchange_preconditions",
    "licm_preconditions",
    "elide_bounds_preconditions",
    "unroll_preconditions",
]


def interchange_preconditions(kernel: Kernel,
                              new_order: str) -> List[Diagnostic]:
    """Legality of permuting the nest to ``new_order``.

    ``L005`` when a worksharing/grid loop would be buried below a
    sequential one; ``L001`` when a loop-carried dependence would be
    reversed or a scalar-accumulator reduction would leave the innermost
    position.  Malformed targets (not a permutation) are left to the
    pass's own structural error.
    """
    out: List[Diagnostic] = []
    current = kernel.loop_order
    order = new_order.strip().lower()
    if sorted(order) != sorted(current) or order == current:
        return out
    by_var = {loop.var: loop for loop in kernel.loops}
    n_parallel = sum(1 for loop in kernel.loops
                     if loop.parallel is not ParallelKind.SEQUENTIAL)
    for depth, var in enumerate(order):
        if (by_var[var].parallel is not ParallelKind.SEQUENTIAL
                and depth >= n_parallel):
            out.append(Diagnostic(
                code="L005", severity=Severity.ERROR,
                message=(f"interchange to {order!r} buries parallel loop "
                         f"{var!r} at depth {depth}"),
                kernel=kernel.name, subject="interchange"))
    if kernel.scalar_accum and by_var[order[-1]].axis.value != "K":
        out.append(Diagnostic(
            code="L001", severity=Severity.ERROR,
            message=(f"interchange to {order!r} hoists the reduction loop "
                     f"of a scalar-accumulator kernel out of the innermost "
                     f"position"),
            kernel=kernel.name, subject="interchange"))
    ok, why = interchange_legal(kernel, order)
    if not ok:
        out.append(Diagnostic(
            code="L001", severity=Severity.ERROR,
            message=f"illegal interchange: {why}",
            kernel=kernel.name, subject="interchange"))
    return out


def licm_preconditions(kernel: Kernel) -> List[Diagnostic]:
    """Legality of the hoists loop-invariant motion would perform.

    Hoisting a load above a loop that contains a store to the same array
    through a *different* index function reorders a read against writes it
    depends on (``L004``).  The same-reference read-modify-write case is
    register promotion and stays legal: the hoisted value is the running
    accumulator the store keeps writing back.
    """
    out: List[Diagnostic] = []
    stores_by_array = {}
    for st in kernel.body.stores:
        stores_by_array.setdefault(st.ref.array, []).append(st.ref)
    for ld in kernel.body.loads:
        used = {v for idx in ld.ref.indices for v, c in idx.coeffs if c != 0}
        level = None
        for loop in reversed(kernel.loops):
            if loop.var in used:
                break
            level = loop.var
        if level is None:
            continue
        for wref in stores_by_array.get(ld.ref.array, ()):
            if wref != ld.ref:
                out.append(Diagnostic(
                    code="L004", severity=Severity.ERROR,
                    message=(f"hoisting load {ld.ref} above loop {level!r} "
                             f"crosses store {wref} to the same array"),
                    kernel=kernel.name, subject=f"load {ld.ref}"))
    return out


def elide_bounds_preconditions(kernel: Kernel) -> List[Diagnostic]:
    """Legality of removing per-access bounds checks (``L003``).

    Only applies when the kernel actually carries checks; every guarded
    reference must then be provably in bounds by the loop bounds alone.
    """
    if not kernel.bounds_checked:
        return []
    out: List[Diagnostic] = []
    seen = set()
    for item in list(kernel.body.loads) + list(kernel.body.stores):
        if item.ref in seen:
            continue
        seen.add(item.ref)
        ok, why = provably_in_bounds(kernel, item.ref)
        if not ok:
            out.append(Diagnostic(
                code="L003", severity=Severity.ERROR,
                message=(f"cannot elide bounds check on {item.ref}: {why}"),
                kernel=kernel.name, subject=f"ref {item.ref}"))
    return out


def unroll_preconditions(kernel: Kernel, factor: int) -> List[Diagnostic]:
    """Unrolling is always order-preserving; note (``W002``, info) when a
    strict-FP reduction is unrolled, since without ``fastmath`` the unroll
    amortises loop control but cannot split the accumulator chain."""
    inner = kernel.inner
    if (factor > 1 and kernel.scalar_accum and inner.axis.value == "K"
            and not kernel.fastmath):
        return [Diagnostic(
            code="W002", severity=Severity.INFO,
            message=(f"unroll x{factor} of the strict-FP {inner.var} "
                     f"reduction keeps a single accumulator chain"),
            kernel=kernel.name, subject=f"loop {inner.var}")]
    return []
