"""Dependence analysis over the affine loop-nest IR.

For every (store, load) and (store, store) pair on the same array the
analyzer derives a per-loop **distance/direction vector** from the
:class:`~repro.ir.nodes.IndexExpr` coefficients: how far apart, along each
loop, two iterations touching the same element are.  The canonical GEMM
example is the K-loop reduction on ``C``: the read-modify-write of
``C[i,j]`` carries flow, anti and output dependences along ``k`` (direction
``(=, =, <)`` for an ``ijk`` nest), which is exactly why the reduction
loop cannot be vectorised without ``fastmath`` and why bad interchanges
must be rejected.

Direction symbols, per loop variable (outermost first):

* ``=`` — distance provably zero,
* ``<`` — provably positive (the sink iterates later),
* ``>`` — provably negative,
* ``*`` — unknown (any distance may occur; used both for loop variables
  the references do not use and for coefficient structures the solver
  cannot separate).

The legality test (:func:`interchange_legal`) does not approximate ``*``:
with at most a handful of loops it enumerates the sign patterns a vector
can realise and checks whether any execution-order-reversing realisation
exists under the proposed permutation.  This is exact for this IR.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..nodes import ArrayRef, IndexExpr, Kernel

__all__ = [
    "DependenceKind",
    "Dependence",
    "analyze_dependences",
    "interchange_legal",
]


class DependenceKind(enum.Enum):
    """Classic dependence taxonomy."""

    FLOW = "flow"      # read-after-write (true dependence)
    ANTI = "anti"      # write-after-read
    OUTPUT = "output"  # write-after-write


@dataclass(frozen=True)
class Dependence:
    """One dependence between two references of the same array.

    ``src`` executes first, ``dst`` second (for a loop-independent
    dependence, first/second within one iteration's body).  ``direction``
    and ``distance`` are per kernel loop, outermost first; ``carried_by``
    is the outermost loop with a non-``=`` direction (None for
    loop-independent dependences).
    """

    kind: DependenceKind
    array: str
    src: ArrayRef
    dst: ArrayRef
    direction: Tuple[str, ...]
    distance: Tuple[Optional[int], ...]
    carried_by: Optional[str]

    @property
    def loop_independent(self) -> bool:
        return self.carried_by is None

    def describe(self) -> str:
        vec = ", ".join(self.direction)
        where = (f"carried by {self.carried_by}" if self.carried_by
                 else "loop-independent")
        return (f"{self.kind.value} {self.src} -> {self.dst} "
                f"({vec}) {where}")


# -- per-pair entry computation ----------------------------------------------

_NEGATE = {"=": "=", "<": ">", ">": "<", "*": "*"}
_SIGN_CHOICES = {"=": (0,), "<": (1,), ">": (-1,), "*": (-1, 0, 1)}


def _nonzero_coeffs(idx: IndexExpr) -> Dict[str, int]:
    return {v: c for v, c in idx.coeffs if c != 0}


def _pair_entries(
    kernel: Kernel,
    ref_a: ArrayRef, hoist_a: Optional[str],
    ref_b: ArrayRef, hoist_b: Optional[str],
) -> Optional[Tuple[Dict[str, str], Dict[str, Optional[int]]]]:
    """Per-loop-var direction/distance entries between two references.

    Distances follow the convention ``iteration(b) - iteration(a)``.
    Returns None when the references provably never touch the same
    element (inconsistent or non-integral constraints).
    """
    enc_a = set(kernel.enclosing_vars(hoist_a))
    enc_b = set(kernel.enclosing_vars(hoist_b))
    symbols: Dict[str, str] = {}
    distance: Dict[str, Optional[int]] = {}
    for loop in kernel.loops:
        v = loop.var
        if v not in enc_a and v not in enc_b:
            # Neither statement iterates this loop: no distance along it.
            symbols[v], distance[v] = "=", 0
        else:
            symbols[v], distance[v] = "*", None

    solved: Dict[str, int] = {}
    for d in range(2):
        ia, ib = ref_a.indices[d], ref_b.indices[d]
        avars, bvars = _nonzero_coeffs(ia), _nonzero_coeffs(ib)
        if avars != bvars:
            continue  # mismatched coefficient structure: stays unknown
        if not avars:
            if ia.const != ib.const:
                return None  # constant dims that never coincide
            continue
        if len(avars) > 1:
            continue  # coupled variables: underdetermined, stays unknown
        (v, c), = avars.items()
        if v not in enc_a or v not in enc_b:
            continue  # a hoisted statement does not iterate v
        # c*I_a + const_a == c*I_b + const_b  =>  D = (const_a - const_b)/c
        num = ia.const - ib.const
        if num % c != 0:
            return None  # non-integral distance: independent
        dist = num // c
        if v in solved and solved[v] != dist:
            return None  # the two dims demand different distances
        solved[v] = dist

    for v, dist in solved.items():
        symbols[v] = "=" if dist == 0 else ("<" if dist > 0 else ">")
        distance[v] = dist
    return symbols, distance


def _lex_positive_realisable(symbols: Dict[str, str],
                             order: Sequence[str]) -> bool:
    """Can the distance vector be lexicographically positive?"""
    for v in order:
        s = symbols[v]
        if s == "<" or s == "*":
            return True
        if s == ">":
            return False
    return False


def _zero_realisable(symbols: Dict[str, str], order: Sequence[str]) -> bool:
    return all(symbols[v] in ("=", "*") for v in order)


def _write_pairs(kernel: Kernel) -> Iterator[
        Tuple[ArrayRef, ArrayRef, bool, Dict[str, str], Dict[str, Optional[int]]]]:
    """All same-array access pairs involving a write, with their entries.

    Yields ``(write_ref, other_ref, other_is_store, symbols, distances)``.
    """
    writes = [(st.ref, st.hoisted_above) for st in kernel.body.stores]
    reads = [(ld.ref, ld.hoisted_above) for ld in kernel.body.loads]
    for wref, whoist in writes:
        for rref, rhoist in reads:
            if rref.array != wref.array:
                continue
            pe = _pair_entries(kernel, wref, whoist, rref, rhoist)
            if pe is not None:
                yield wref, rref, False, pe[0], pe[1]
    for x, (wref, whoist) in enumerate(writes):
        for oref, ohoist in writes[x:]:
            if oref.array != wref.array:
                continue
            pe = _pair_entries(kernel, wref, whoist, oref, ohoist)
            if pe is not None:
                yield wref, oref, True, pe[0], pe[1]


def _canonical(symbols: Dict[str, str], distance: Dict[str, Optional[int]],
               order: Sequence[str]) -> Tuple[Tuple[str, ...],
                                              Tuple[Optional[int], ...],
                                              Optional[str]]:
    """Direction/distance tuples for a lex-positive dependence.

    The carrying (first non-``=``) entry is printed ``<`` even when the
    exact distance is unknown: the negative-side instances of a ``*``
    entry belong to the mirrored dependence, which is emitted separately.
    """
    direction: List[str] = []
    carried: Optional[str] = None
    for v in order:
        s = symbols[v]
        if carried is None and s != "=":
            carried = v
            s = "<" if s == "*" else s
        direction.append(s)
    return tuple(direction), tuple(distance[v] for v in order), carried


def analyze_dependences(kernel: Kernel) -> List[Dependence]:
    """All flow/anti/output dependences of the kernel's loop nest."""
    order = [loop.var for loop in kernel.loops]
    deps: List[Dependence] = []
    for wref, oref, other_is_store, symbols, distance in _write_pairs(kernel):
        negated = {v: _NEGATE[s] for v, s in symbols.items()}
        neg_dist = {v: (None if d is None else -d)
                    for v, d in distance.items()}
        if other_is_store:
            same_stmt = oref == wref
            if _lex_positive_realisable(symbols, order):
                direction, dist, carried = _canonical(symbols, distance, order)
                deps.append(Dependence(DependenceKind.OUTPUT, wref.array,
                                       wref, oref, direction, dist, carried))
            if not same_stmt and _zero_realisable(symbols, order):
                direction = tuple("=" for _ in order)
                deps.append(Dependence(DependenceKind.OUTPUT, wref.array,
                                       wref, oref, direction,
                                       tuple(0 for _ in order), None))
            continue
        # write/read pair: a later read is a flow dependence, a later
        # write is an anti dependence, and a same-iteration pair is an
        # anti dependence because the body loads before it stores.
        if _lex_positive_realisable(symbols, order):
            direction, dist, carried = _canonical(symbols, distance, order)
            deps.append(Dependence(DependenceKind.FLOW, wref.array,
                                   wref, oref, direction, dist, carried))
        if _lex_positive_realisable(negated, order):
            direction, dist, carried = _canonical(negated, neg_dist, order)
            deps.append(Dependence(DependenceKind.ANTI, wref.array,
                                   oref, wref, direction, dist, carried))
        if _zero_realisable(symbols, order):
            direction = tuple("=" for _ in order)
            deps.append(Dependence(DependenceKind.ANTI, wref.array,
                                   oref, wref, direction,
                                   tuple(0 for _ in order), None))
    return deps


def _order_reversed(symbols: Dict[str, str], old_order: Sequence[str],
                    new_order: Sequence[str]) -> bool:
    """Does some realisable distance flip execution order under the
    permutation?  Exact: enumerates the sign patterns of unknown entries."""
    choices = [_SIGN_CHOICES[symbols[v]] for v in old_order]
    for combo in itertools.product(*choices):
        by_var = dict(zip(old_order, combo))

        def lex_sign(order: Sequence[str]) -> int:
            for v in order:
                if by_var[v]:
                    return 1 if by_var[v] > 0 else -1
            return 0

        if lex_sign(old_order) > 0 and lex_sign(new_order) < 0:
            return True
    return False


def interchange_legal(kernel: Kernel, new_order: str) -> Tuple[bool, str]:
    """Check whether permuting the nest to ``new_order`` preserves every
    dependence (no source/sink execution-order reversal).  Returns
    ``(ok, why)``; conservative for unknown-direction entries."""
    old = [loop.var for loop in kernel.loops]
    new = list(new_order.strip().lower())
    if sorted(new) != sorted(old):
        return False, (f"target order {new_order!r} is not a permutation "
                       f"of {''.join(old)!r}")
    for wref, oref, _, symbols, _ in _write_pairs(kernel):
        if _order_reversed(symbols, old, new):
            return False, (f"dependence between {wref} and {oref} would be "
                           f"reversed by order {''.join(new)}")
    return True, "ok"
