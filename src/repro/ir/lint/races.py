"""Race detection: stores that do not vary along every parallel loop.

The read-side of parallel sharing is a *feature* the cost model exploits
(``shared_across_parallel`` in :mod:`repro.ir.analysis`: every thread
streaming the same ``B`` panel turns misses into hits).  The write-side
dual is a *bug*: a store whose index does not vary along a worksharing or
grid loop means two workers write the same element concurrently — the
lowering models a kernel no real toolchain could produce correctly.
"""

from __future__ import annotations

from typing import List

from ..nodes import Kernel, ParallelKind
from .diagnostics import Diagnostic, Severity

__all__ = ["race_diagnostics"]


def race_diagnostics(kernel: Kernel) -> List[Diagnostic]:
    """Write-race findings (``R001``/``R002``/``R003``) for one kernel."""
    out: List[Diagnostic] = []
    parallel = kernel.parallel_loops
    if not parallel:
        return out
    for st in kernel.body.stores:
        enclosing = set(kernel.enclosing_vars(st.hoisted_above))
        varies = {v for idx in st.ref.indices
                  for v, c in idx.coeffs if c != 0}
        for loop in parallel:
            grid = loop.parallel is ParallelKind.GRID
            if loop.var not in enclosing:
                out.append(Diagnostic(
                    code="R003",
                    severity=Severity.ERROR,
                    message=(f"store {st.ref} is hoisted outside parallel "
                             f"loop {loop.var!r}: its execution is not owned "
                             f"by any single worker"),
                    kernel=kernel.name,
                    subject=f"store {st.ref}",
                ))
            elif loop.var not in varies:
                out.append(Diagnostic(
                    code="R002" if grid else "R001",
                    severity=Severity.ERROR,
                    message=(f"store {st.ref} does not vary along "
                             f"{'grid dimension' if grid else 'worksharing loop'} "
                             f"{loop.var!r}: concurrent workers write the "
                             f"same elements"),
                    kernel=kernel.name,
                    subject=f"store {st.ref}",
                ))
    return out
