"""Static analysis over the kernel IR: the linter behind ``repro lint``.

Layers, innermost first:

* :mod:`~repro.ir.lint.diagnostics` — stable-coded findings (``R001``,
  ``L003``, ...) with severities;
* :mod:`~repro.ir.lint.dependence` — distance/direction vectors for every
  same-array access pair, and exact interchange legality;
* :mod:`~repro.ir.lint.races` — stores that do not vary along every
  parallel loop;
* :mod:`~repro.ir.lint.bounds` — in-bounds proofs for affine references;
* :mod:`~repro.ir.lint.legality` — the per-pass preconditions the
  :class:`~repro.ir.passes.PassPipeline` gates on;
* :mod:`~repro.ir.lint.linter` — kernel/lowering/registry drivers;
* :mod:`~repro.ir.lint.serialize` — the JSON schema ``repro lint`` and
  ``repro audit`` share for ``--format json``.
"""

from .bounds import provably_in_bounds
from .dependence import (
    Dependence,
    DependenceKind,
    analyze_dependences,
    interchange_legal,
)
from .diagnostics import CODES, Diagnostic, DiagnosticSet, Severity
from .legality import (
    elide_bounds_preconditions,
    interchange_preconditions,
    licm_preconditions,
    unroll_preconditions,
)
from .linter import LintResult, lint_kernel, lint_lowering, lint_registry
from .races import race_diagnostics
from .serialize import (
    diagnostic_payload,
    lane_payload,
    sweep_payload,
    sweep_to_json,
)

__all__ = [
    "CODES",
    "Diagnostic",
    "DiagnosticSet",
    "Severity",
    "Dependence",
    "DependenceKind",
    "analyze_dependences",
    "interchange_legal",
    "race_diagnostics",
    "provably_in_bounds",
    "interchange_preconditions",
    "licm_preconditions",
    "elide_bounds_preconditions",
    "unroll_preconditions",
    "LintResult",
    "lint_kernel",
    "lint_lowering",
    "lint_registry",
    "diagnostic_payload",
    "lane_payload",
    "sweep_payload",
    "sweep_to_json",
]
