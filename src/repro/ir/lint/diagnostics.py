"""Diagnostics framework for the kernel IR linter.

Every finding the linter (or a pass precondition) produces is a
:class:`Diagnostic` with a *stable code* from the :data:`CODES` registry,
a severity, and a human-readable message.  Stable codes are the contract:
tests, CI gates and suppression lists key on ``R001``/``L003``, never on
message text.

Code families:

* ``V0xx`` — structural verification failures,
* ``D0xx`` — dependence facts (informational),
* ``R0xx`` — data races across parallel loops,
* ``L0xx`` — pass-legality violations (transformations that would change
  the kernel's semantics),
* ``W0xx`` — performance or modelling warnings.

The performance-portability auditor (:mod:`repro.ir.audit`) adds three
further families over the same framework:

* ``P0xx`` — memory-access / locality hazards (coalescing, cache lines,
  NUMA placement, cache-footprint thrash),
* ``O0xx`` — occupancy and register-residency hazards,
* ``F0xx`` — precision-safety findings (mixed-precision accumulation,
  reassociated reductions, degraded software fallbacks).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Tuple

__all__ = ["Severity", "Diagnostic", "DiagnosticSet", "CODES"]


#: Registry of stable diagnostic codes and their one-line meanings.
CODES = {
    "V001": "kernel failed structural IR verification",
    "D001": "loop-carried dependence (informational)",
    "R001": "store does not vary along a CPU worksharing loop (write race)",
    "R002": "store does not vary along a GPU grid dimension (write race)",
    "R003": "store executes outside an enclosing parallel loop",
    "L001": "loop interchange would reverse a loop-carried dependence",
    "L002": "vectorising a strict-FP reduction reassociates the sum",
    "L003": "bounds-check elision on a not-provably-in-bounds reference",
    "L004": "invariant motion would hoist a load across a dependent store",
    "L005": "transformation would break the kernel's parallel structure",
    "W001": "strided store in the innermost loop defeats vectorisation",
    "W002": "unrolled strict-FP reduction keeps a single accumulator chain",
    "W003": "strided load in the innermost CPU loop (one line per access)",
    # -- performance-portability audit (repro.ir.audit) -------------------
    "P001": "uncoalesced global access: large stride across threadIdx.x",
    "P002": "cache-line-hostile stride in the innermost CPU loop",
    "P003": "unpinned worksharing threads on a multi-NUMA CPU",
    "P004": "operand footprint exceeds the lane's L2-thrash threshold",
    "O001": "occupancy at or below half of the hardware maximum",
    "O002": "register pressure drops resident blocks below the nominal count",
    "O003": "rolled strict-FP reduction leaves a single accumulator stream",
    "O004": "block size is not a multiple of the warp size",
    "F001": "FP16 inputs accumulate into an FP32 accumulator (mixed precision)",
    "F002": "reassociated (fastmath) reduction in a narrow accumulator",
    "F003": "fastmath reassociation forfeits bitwise-reproducible FP64 sums",
    "F004": "precision supported only through a degraded software fallback",
}


class Severity(enum.Enum):
    """How bad a diagnostic is.

    ``ERROR`` findings fail :class:`~repro.ir.passes.PassPipeline` gating
    and make ``repro lint`` exit nonzero; ``WARNING`` and ``INFO`` are
    reported but do not gate.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        return {"error": 0, "warning": 1, "info": 2}[self.value]


@dataclass(frozen=True)
class Diagnostic:
    """One linter finding: a stable code, a severity and a message.

    ``kernel`` names the kernel the finding is about; ``subject`` names
    the construct (a reference, a pass, a loop) when there is one.
    """

    code: str
    severity: Severity
    message: str
    kernel: str = ""
    subject: str = ""

    def __post_init__(self) -> None:
        if self.code not in CODES:
            raise ValueError(
                f"unknown diagnostic code {self.code!r}; register it in "
                f"repro.ir.lint.diagnostics.CODES")

    @property
    def is_error(self) -> bool:
        return self.severity is Severity.ERROR

    def __str__(self) -> str:
        where = f" [{self.kernel}]" if self.kernel else ""
        return f"{self.severity.value} {self.code}{where}: {self.message}"


@dataclass
class DiagnosticSet:
    """An ordered collection of diagnostics with severity filters."""

    diagnostics: List[Diagnostic] = field(default_factory=list)

    def add(self, diag: Diagnostic) -> None:
        self.diagnostics.append(diag)

    def extend(self, diags: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diags)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __bool__(self) -> bool:
        return bool(self.diagnostics)

    @property
    def errors(self) -> Tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics
                     if d.severity is Severity.ERROR)

    @property
    def warnings(self) -> Tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics
                     if d.severity is Severity.WARNING)

    @property
    def infos(self) -> Tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics
                     if d.severity is Severity.INFO)

    @property
    def codes(self) -> Tuple[str, ...]:
        return tuple(d.code for d in self.diagnostics)

    def sorted(self) -> "DiagnosticSet":
        """A copy ordered most-severe first (stable within a severity)."""
        return DiagnosticSet(sorted(self.diagnostics,
                                    key=lambda d: d.severity.rank))

    def render(self) -> str:
        """Aligned diagnostics table (see :func:`repro.ir.pretty.render_diagnostics`)."""
        from ..pretty import render_diagnostics

        return render_diagnostics(self.diagnostics)
