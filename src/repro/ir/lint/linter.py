"""The kernel linter: run every analysis over a kernel or the whole study.

:func:`lint_kernel` is the single-kernel entry point (verification, race
detection, dependence facts, stride warnings); :func:`lint_lowering` lints
what a programming-model frontend actually produces for a target, folding
in any pass-gating failure; :func:`lint_registry` sweeps every registered
model × device × precision — the engine behind ``repro lint``.

Model and machine imports happen inside the functions: the pass modules
import :mod:`repro.ir.lint` for their preconditions, and the models import
the passes, so a module-level import of the registry here would be
circular.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ...core.types import MatrixShape, Precision
from ...errors import IRVerificationError, LintError
from ..analysis import StrideClass, reference_info
from ..nodes import Kernel, ParallelKind
from .dependence import analyze_dependences
from .diagnostics import Diagnostic, DiagnosticSet, Severity
from .races import race_diagnostics

__all__ = ["lint_kernel", "lint_lowering", "lint_registry", "LintResult"]

#: Stride classes are shape-scaled, so any non-degenerate shape works.
_REPRESENTATIVE_SHAPE = MatrixShape(64, 64, 64)


def lint_kernel(kernel: Kernel) -> DiagnosticSet:
    """All findings for one kernel, most fundamental first.

    A kernel that fails structural verification gets a single ``V001`` —
    the deeper analyses assume a verified nest and are skipped.
    """
    diags = DiagnosticSet()
    try:
        kernel.verify()
    except IRVerificationError as exc:
        diags.add(Diagnostic(
            code="V001", severity=Severity.ERROR, message=str(exc),
            kernel=kernel.name))
        return diags

    diags.extend(race_diagnostics(kernel))

    for dep in analyze_dependences(kernel):
        if dep.carried_by is not None:
            diags.add(Diagnostic(
                code="D001", severity=Severity.INFO,
                message=dep.describe(), kernel=kernel.name,
                subject=f"array {dep.array}"))

    on_gpu = any(l.parallel is ParallelKind.GRID for l in kernel.loops)
    for info in reference_info(kernel, _REPRESENTATIVE_SHAPE):
        if info.stride_class != StrideClass.STRIDED:
            continue
        if info.kind == "store":
            diags.add(Diagnostic(
                code="W001", severity=Severity.WARNING,
                message=(f"store {info.ref} is strided "
                         f"({info.inner_stride_elems} elements) in its "
                         f"fastest loop: scatter stores defeat "
                         f"vectorisation"),
                kernel=kernel.name, subject=f"store {info.ref}"))
        elif not on_gpu:
            diags.add(Diagnostic(
                code="W003", severity=Severity.INFO,
                message=(f"load {info.ref} is strided "
                         f"({info.inner_stride_elems} elements) in the "
                         f"inner loop: one cache line per element"),
                kernel=kernel.name, subject=f"load {info.ref}"))
    return diags


@dataclass(frozen=True)
class LintResult:
    """One row of a registry sweep: a (model, target, precision) lint."""

    model: str
    target: str
    precision: str
    skipped: str = ""          # non-empty: unsupported combo, not linted
    diagnostics: Tuple[Diagnostic, ...] = ()

    @property
    def error_count(self) -> int:
        return sum(1 for d in self.diagnostics if d.is_error)

    @property
    def clean(self) -> bool:
        return not self.skipped and self.error_count == 0


def lint_lowering(model, spec, precision) -> DiagnosticSet:
    """Lint what ``model`` lowers for ``spec`` at ``precision``.

    A :class:`repro.errors.LintError` raised by pass gating becomes its
    own diagnostics; otherwise the lowered kernel is linted and the
    non-blocking findings recorded by the pipeline are folded in.
    """
    from ...machine.cpu import CPUSpec

    diags = DiagnosticSet()
    try:
        if isinstance(spec, CPUSpec):
            lowering = model.lower_cpu(spec, precision)
        else:
            lowering = model.lower_gpu(spec, precision)
    except LintError as exc:
        diags.extend(exc.diagnostics)
        return diags
    diags.extend(lint_kernel(lowering.kernel))
    for rec in lowering.pass_records:
        diags.extend(rec.diagnostics)
    return diags


def lint_registry(models: Optional[Sequence[str]] = None,
                  device: str = "all",
                  precisions: Optional[Sequence[Precision]] = None,
                  ) -> List[LintResult]:
    """Sweep every registered model × device × precision.

    ``models`` restricts to registry names (default: all, extensions
    included); ``device`` is ``"cpu"``, ``"gpu"`` or ``"all"``;
    ``precisions`` defaults to every :class:`~repro.core.types.Precision`.
    Unsupported combinations become skipped rows, not failures.
    """
    from ...core.types import Precision
    from ...machine.catalog import CPU_CATALOG, GPU_CATALOG
    from ...models.registry import all_models, model_by_name

    if models is None:
        chosen = all_models(include_extensions=True)
    else:
        chosen = [model_by_name(name) for name in models]
    precs = list(precisions) if precisions is not None else list(Precision)

    specs = []
    if device in ("cpu", "all"):
        specs += list(CPU_CATALOG.values())
    if device in ("gpu", "all"):
        specs += list(GPU_CATALOG.values())
    if not specs:
        raise ValueError(f"device must be 'cpu', 'gpu' or 'all', "
                         f"not {device!r}")

    out: List[LintResult] = []
    for model in chosen:
        for spec in specs:
            for prec in precs:
                support = model.supports(spec, prec)
                if not support.supported:
                    out.append(LintResult(
                        model=model.name, target=spec.name,
                        precision=prec.value, skipped=support.reason))
                    continue
                diags = lint_lowering(model, spec, prec)
                out.append(LintResult(
                    model=model.name, target=spec.name,
                    precision=prec.value,
                    diagnostics=tuple(diags)))
    return out
