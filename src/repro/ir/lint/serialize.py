"""One JSON serializer for both static-analysis sweeps.

``repro lint --format json`` and ``repro audit --format json`` share this
module so the two commands emit the same diagnostic schema — a CI consumer
parses one shape regardless of which gate produced it.  The lane payload
is duck-typed over :class:`repro.ir.lint.linter.LintResult` and
:class:`repro.ir.audit.auditor.AuditResult`: audit-only fields (``device``,
``degraded``, ``verdict``) appear only when the result carries them.

The schema is documented in ``docs/API.md`` and pinned by the snapshot
tests; treat key renames as breaking changes.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Sequence

from .diagnostics import Diagnostic

__all__ = [
    "diagnostic_payload",
    "lane_payload",
    "sweep_payload",
    "sweep_to_json",
]


def diagnostic_payload(diag: Diagnostic) -> Dict[str, Any]:
    """One finding: stable code, severity, message, anchors."""
    return {
        "code": diag.code,
        "severity": diag.severity.value,
        "message": diag.message,
        "kernel": diag.kernel,
        "subject": diag.subject,
    }


def _verdict_payload(verdict: Any) -> Dict[str, Any]:
    return {
        "predicted_efficiency": verdict.predicted_efficiency,
        "band": verdict.band.value if verdict.band is not None else None,
        "bound": verdict.bound,
        "reference": verdict.reference,
        "occupancy_fraction": verdict.occupancy_fraction,
        "hazards": list(verdict.hazards),
        "estimate": {
            "cycles": verdict.estimate.cycles,
            "terms": dict(verdict.estimate.terms),
            "migration_tax": verdict.estimate.migration_tax,
        },
    }


def lane_payload(result: Any) -> Dict[str, Any]:
    """One (model, target, precision) row of a lint or audit sweep."""
    payload: Dict[str, Any] = {
        "model": result.model,
        "target": result.target,
        "precision": result.precision,
        "skipped": result.skipped,
        "diagnostics": [diagnostic_payload(d) for d in result.diagnostics],
    }
    device = getattr(result, "device", None)
    if device is not None:
        payload["device"] = device
    degraded = getattr(result, "degraded", None)
    if degraded is not None:
        payload["degraded"] = degraded
    verdict = getattr(result, "verdict", None)
    if verdict is not None:
        payload["verdict"] = _verdict_payload(verdict)
    return payload


def sweep_payload(kind: str, results: Sequence[Any]) -> Dict[str, Any]:
    """A whole sweep plus its totals, ready for ``json.dumps``."""
    lanes = [lane_payload(r) for r in results]
    return {
        "kind": kind,
        "lanes": lanes,
        "totals": {
            "lanes": len(lanes),
            "skipped": sum(1 for r in results if r.skipped),
            "errors": sum(r.error_count for r in results),
            "warnings": sum(
                sum(1 for d in r.diagnostics
                    if d.severity.value == "warning")
                for r in results),
        },
    }


def sweep_to_json(kind: str, results: Sequence[Any]) -> str:
    """The exact text the CLI prints for ``--format json``."""
    return json.dumps(sweep_payload(kind, results), indent=2, sort_keys=True)
