"""Inner-loop unrolling.

The unroll factor is the mechanism behind the paper's A100 finding: "the
generated PTX ... indicated a difference in unrolled loop instructions,
2 for CUDA.jl and 4 in the native CUDA" (Sec. IV-B).  Unrolling amortises
loop-control overhead and, for reduction loops under fastmath, multiplies
the number of independent accumulator chains that hide FMA latency.
"""

from __future__ import annotations

from dataclasses import replace

from ...errors import IRVerificationError
from ..lint.legality import unroll_preconditions
from ..nodes import Kernel
from .base import Pass

__all__ = ["UnrollInnerLoop"]


class UnrollInnerLoop(Pass):
    """Set the innermost loop's unroll factor."""
    name = "unroll"
    last_detail = ""

    def __init__(self, factor: int):
        if factor < 1:
            raise IRVerificationError(f"unroll factor {factor} must be >= 1")
        self.factor = factor

    def preconditions(self, kernel: Kernel):
        return unroll_preconditions(kernel, self.factor)

    def run(self, kernel: Kernel) -> Kernel:
        inner = kernel.inner
        if inner.unroll == self.factor:
            self.last_detail = "no change"
            return kernel
        loops = kernel.loops[:-1] + (replace(inner, unroll=self.factor),)
        self.last_detail = f"inner loop {inner.var} unrolled x{self.factor}"
        return kernel.replace(loops=loops)
