"""Loop-invariant code motion.

Hoists every load (and, for scalar-accumulator kernels, the C store) out of
the deepest run of loops whose variables it does not use.  This models both
the explicit ``temp`` variables in the paper's source (Fig. 2) and what
LLVM's LICM does regardless.
"""

from __future__ import annotations

from typing import Optional

from ..lint.legality import licm_preconditions
from ..nodes import Kernel, LoadOp, StoreOp
from .base import Pass

__all__ = ["LoopInvariantMotion"]


def _hoist_level(kernel: Kernel, used_vars) -> Optional[str]:
    level: Optional[str] = None
    for loop in reversed(kernel.loops):
        if loop.var in used_vars:
            break
        level = loop.var
    return level


class LoopInvariantMotion(Pass):
    """Hoist loop-invariant loads (and sink scalar-accumulator stores)."""
    name = "licm"
    last_detail = ""

    def preconditions(self, kernel: Kernel):
        return licm_preconditions(kernel)

    def run(self, kernel: Kernel) -> Kernel:
        hoisted = []
        loads = []
        for ld in kernel.body.loads:
            used = {v for idx in ld.ref.indices for v in idx.variables}
            level = _hoist_level(kernel, used)
            if level is not None and ld.hoisted_above != level:
                loads.append(LoadOp(ld.ref, hoisted_above=level))
                hoisted.append(f"{ld.ref} above {level}")
            else:
                loads.append(ld)

        stores = []
        for st in kernel.body.stores:
            # A store may only sink below loops it is invariant over when the
            # value is accumulated in a register (scalar_accum), otherwise
            # every iteration's write is observable.
            if kernel.scalar_accum:
                used = {v for idx in st.ref.indices for v in idx.variables}
                level = _hoist_level(kernel, used)
                if level is not None and st.hoisted_above != level:
                    stores.append(StoreOp(st.ref, hoisted_above=level))
                    hoisted.append(f"{st.ref} (store) below {level}")
                    continue
            stores.append(st)

        self.last_detail = "; ".join(hoisted)
        if not hoisted:
            return kernel
        return kernel.replace(body=kernel.body.with_(loads=tuple(loads),
                                                     stores=tuple(stores)))
