"""Loop interchange with a legality check.

GEMM's only loop-carried dependence is the accumulation into ``C`` along
``k``; any permutation of ``i``/``j``/``k`` preserves semantics because
floating-point accumulation order along ``k`` is unchanged by permuting the
*nest* (each ``C[i,j]`` still sees its ``k`` updates in order).  What the
pass must preserve is the *parallel structure*: a worksharing or grid loop
must stay outermost, otherwise the lowering is invalid.
"""

from __future__ import annotations

from dataclasses import replace

from ...errors import IRVerificationError
from ..lint.legality import interchange_preconditions
from ..nodes import Kernel, ParallelKind
from .base import Pass
from .invariant import LoopInvariantMotion

__all__ = ["InterchangeLoops"]


class InterchangeLoops(Pass):
    """Permute the loop nest to a new order, with a legality check."""
    name = "interchange"
    last_detail = ""

    def __init__(self, new_order: str, rehoist: bool = True):
        self.new_order = new_order.strip().lower()
        self.rehoist = rehoist

    def preconditions(self, kernel: Kernel):
        return interchange_preconditions(kernel, self.new_order)

    def run(self, kernel: Kernel) -> Kernel:
        current = kernel.loop_order
        if sorted(self.new_order) != sorted(current):
            raise IRVerificationError(
                f"interchange target {self.new_order!r} is not a permutation of {current!r}"
            )
        if self.new_order == current:
            self.last_detail = "no change"
            return kernel

        by_var = {l.var: l for l in kernel.loops}
        new_loops = tuple(by_var[v] for v in self.new_order)

        # Parallel loops must remain outermost after the permutation.
        n_parallel = sum(1 for l in kernel.loops
                         if l.parallel is not ParallelKind.SEQUENTIAL)
        for idx, l in enumerate(new_loops):
            is_par = l.parallel is not ParallelKind.SEQUENTIAL
            if is_par and idx >= n_parallel:
                raise IRVerificationError(
                    f"interchange would bury parallel loop {l.var!r} at depth {idx}"
                )

        if kernel.scalar_accum and self.new_order[-1] != "k":
            raise IRVerificationError(
                "interchange would hoist the reduction loop of a scalar-accumulator kernel"
            )

        # Unroll/vector annotations belong to the *position*, not the var:
        # reset them; the frontend re-runs its vectorise/unroll passes.
        new_loops = tuple(replace(l, unroll=1, vector_width=1) for l in new_loops)
        out = kernel.replace(loops=new_loops)

        # Old hoist levels may be invalid; clear and optionally re-derive.
        body = out.body.with_(
            loads=tuple(type(ld)(ld.ref) for ld in out.body.loads),
            stores=tuple(type(st)(st.ref) for st in out.body.stores),
            guards=tuple(type(g)(g.ref) for g in out.body.guards),
        )
        out = out.replace(body=body)
        if self.rehoist:
            out = LoopInvariantMotion().run(out)
        self.last_detail = f"{current} -> {self.new_order}"
        return out
