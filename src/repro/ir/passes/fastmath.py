"""Fast-math flag control.

``fastmath=True`` permits floating-point reassociation, the prerequisite
for vectorising / multi-accumulator-unrolling a ``k`` reduction.  Numba's
``@njit(fastmath=True)`` (Fig. 2d) and ``-ffast-math`` builds set it;
strict-IEEE builds do not.
"""

from __future__ import annotations

from ..nodes import Kernel
from .base import Pass

__all__ = ["SetFastMath"]


class SetFastMath(Pass):
    """Set or clear the fastmath flag (permits FP reassociation).

    Unconditionally legal (it widens or narrows what *later* passes may
    do, never reorders anything itself), so it keeps the default empty
    :meth:`~repro.ir.passes.base.Pass.preconditions`.
    """
    name = "fastmath"
    last_detail = ""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled

    def run(self, kernel: Kernel) -> Kernel:
        if kernel.fastmath == self.enabled:
            self.last_detail = "no change"
            return kernel
        self.last_detail = f"fastmath={self.enabled}"
        return kernel.replace(fastmath=self.enabled)
