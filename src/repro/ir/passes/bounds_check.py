"""Bounds-check insertion and elision.

Julia emits a bounds check per array access unless ``@inbounds`` (or
``--check-bounds=no``) is in effect; Numba's ``@njit`` default and C elide
them entirely.  The elision pass models ``@inbounds``; the insertion pass
lets ablations measure what the checks cost.
"""

from __future__ import annotations

from ..lint.legality import elide_bounds_preconditions
from ..nodes import Guard, Kernel
from .base import Pass

__all__ = ["ElideBoundsChecks", "InsertBoundsChecks"]


class ElideBoundsChecks(Pass):
    """Remove per-access bounds checks (the effect of Julia's ``@inbounds``)."""
    name = "elide-bounds"
    last_detail = ""

    def preconditions(self, kernel: Kernel):
        return elide_bounds_preconditions(kernel)

    def run(self, kernel: Kernel) -> Kernel:
        # Grid guards (hoisted above the k loop in GPU kernels) are control
        # flow, not safety checks: they stay.
        keep = tuple(g for g in kernel.body.guards if g.hoisted_above is not None
                     and not kernel.bounds_checked)
        if not kernel.bounds_checked and len(keep) == len(kernel.body.guards):
            self.last_detail = "no bounds checks present"
            return kernel
        if kernel.bounds_checked:
            keep = ()
        removed = len(kernel.body.guards) - len(keep)
        self.last_detail = f"removed {removed} checks"
        return kernel.replace(
            body=kernel.body.with_(guards=keep), bounds_checked=False
        )


class InsertBoundsChecks(Pass):
    """Add a bounds check per array access (Julia without ``@inbounds``)."""
    name = "insert-bounds"
    last_detail = ""

    def run(self, kernel: Kernel) -> Kernel:
        if kernel.bounds_checked:
            self.last_detail = "already checked"
            return kernel
        guards = list(kernel.body.guards)
        for ld in kernel.body.loads:
            guards.append(Guard(ld.ref, hoisted_above=ld.hoisted_above))
        for st in kernel.body.stores:
            guards.append(Guard(st.ref, hoisted_above=st.hoisted_above))
        self.last_detail = f"inserted {len(guards) - len(kernel.body.guards)} checks"
        return kernel.replace(
            body=kernel.body.with_(guards=tuple(guards)), bounds_checked=True
        )
