"""Inner-loop auto-vectorisation with a legality check.

Legality model (matching LLVM's loop vectoriser on these kernels):

* Every store in the inner body must be unit-stride or absent from the
  inner loop (hoisted): scatter stores defeat vectorisation.
* A kernel whose inner loop is the reduction (``scalar_accum`` over ``k``)
  carries a loop-carried dependence on the accumulator; vectorising it
  reassociates the sum, which is only legal under ``fastmath``.  Without
  fastmath the pass leaves the loop scalar — exactly why a strict-FP
  element-per-thread CPU kernel cannot vectorise its dot product.
* Guards in the inner body (per-access bounds checks) block vectorisation:
  the early-exit branch makes the trip count non-computable.  This is the
  cost Julia pays without ``@inbounds``.
"""

from __future__ import annotations

from dataclasses import replace

from ...errors import IRVerificationError
from ..lint.diagnostics import Diagnostic, Severity
from ..nodes import Kernel
from .base import Pass

__all__ = ["VectorizeInnerLoop", "vectorization_legal"]


def vectorization_legal(kernel: Kernel) -> "tuple[bool, str]":
    """Check whether the inner loop may be vectorised.  Returns (ok, why)."""
    inner = kernel.inner
    # Per-access bounds checks in the inner body block vectorisation.
    inner_guards = [g for g in kernel.body.guards if g.hoisted_above is None]
    if inner_guards:
        return False, "bounds checks in inner loop"

    m, n, k = 64, 64, 64  # any representative shape: strides are shape-scaled
    for st in kernel.body.stores:
        if st.hoisted_above is not None:
            continue
        decl = kernel.decl(st.ref.array)
        stride = st.ref.linear_coeff(decl, inner.var, m, n, k)
        if stride == 0:
            continue
        if abs(stride) != 1:
            return False, f"store {st.ref} has stride {stride} in {inner.var}"

    if kernel.scalar_accum and inner.axis.value == "K" and not kernel.fastmath:
        return False, "reduction over k without fastmath (reassociation illegal)"
    return True, "ok"


class VectorizeInnerLoop(Pass):
    """Vectorise the innermost loop when legal (see module docstring)."""
    name = "vectorize"
    last_detail = ""

    def __init__(self, width: int, force: bool = False):
        if width < 1:
            raise IRVerificationError(f"vector width {width} must be >= 1")
        self.width = width
        self.force = force

    def preconditions(self, kernel: Kernel):
        # An unforced run degrades gracefully (it leaves the loop scalar),
        # so only a *forced* illegal vectorisation is a gating error.
        if not self.force:
            return []
        ok, why = vectorization_legal(kernel)
        if ok:
            return []
        return [Diagnostic(
            code="L002", severity=Severity.ERROR,
            message=f"forced vectorisation x{self.width} is illegal: {why}",
            kernel=kernel.name, subject="vectorize")]

    def run(self, kernel: Kernel) -> Kernel:
        ok, why = vectorization_legal(kernel)
        if not ok and not self.force:
            self.last_detail = f"not vectorised: {why}"
            return kernel
        inner = kernel.inner
        if inner.vector_width == self.width:
            self.last_detail = "no change"
            return kernel
        loops = kernel.loops[:-1] + (replace(inner, vector_width=self.width),)
        self.last_detail = f"inner loop {inner.var} vectorised x{self.width}"
        return kernel.replace(loops=loops)
