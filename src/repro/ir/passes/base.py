"""Pass infrastructure: a tiny, logged, verifying, *gated* pass pipeline.

Each programming-model frontend assembles the pipeline its real toolchain
would run (e.g. Julia: invariant motion, bounds-check elision via
``@inbounds``, vectorise, unroll×2; nvcc: the same but unroll×4).  The
pipeline verifies the kernel after every pass so a broken transformation
fails loudly rather than silently corrupting the cost model's input.

On top of verification, every pass declares :meth:`Pass.preconditions` —
the static-analysis legality facts that must hold *before* it may run
(interchange must not reverse a dependence, bounds-check elision needs an
in-bounds proof, ...; see :mod:`repro.ir.lint.legality`).  The pipeline
evaluates them and raises :class:`repro.errors.LintError` on any
error-severity finding.  Calling ``pass.run(kernel)`` directly stays
ungated — that is the escape hatch tests use to study illegal transforms.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Tuple

from ...errors import LintError
from ..nodes import Kernel

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from ..lint.diagnostics import Diagnostic

__all__ = ["Pass", "PassPipeline", "PassRecord"]


class Pass(abc.ABC):
    """One IR-to-IR transformation."""

    #: Short identifier used in logs and pipeline descriptions.
    name: str = "pass"

    @abc.abstractmethod
    def run(self, kernel: Kernel) -> Kernel:
        """Return the transformed kernel (input is immutable)."""

    def preconditions(self, kernel: Kernel) -> List["Diagnostic"]:
        """Legality findings that must be clean before this pass may run.

        Error-severity diagnostics block the pass when run through a
        gating :class:`PassPipeline`; warnings and infos are recorded on
        the :class:`PassRecord`.  The default is unconditional legality.
        """
        return []

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name}>"


@dataclass(frozen=True)
class PassRecord:
    """What one pass did, for trace output and tests."""

    name: str
    changed: bool
    detail: str = ""
    #: Non-blocking precondition findings (warnings/infos) at gate time.
    diagnostics: Tuple["Diagnostic", ...] = ()


@dataclass
class PassPipeline:
    """An ordered list of passes applied with verification and logging.

    With ``gate=True`` (the default) each pass's :meth:`Pass.preconditions`
    are checked first and an error-severity finding aborts the pipeline
    with a :class:`repro.errors.LintError` carrying the diagnostics.
    """

    passes: List[Pass] = field(default_factory=list)
    gate: bool = True

    def add(self, p: Pass) -> "PassPipeline":
        self.passes.append(p)
        return self

    def run(self, kernel: Kernel,
            context: str = "") -> Tuple[Kernel, List[PassRecord]]:
        kernel.verify()
        records: List[PassRecord] = []
        for p in self.passes:
            diags = tuple(p.preconditions(kernel)) if self.gate else ()
            errors = tuple(d for d in diags if d.is_error)
            if errors:
                where = f" ({context})" if context else ""
                raise LintError(
                    f"pass {p.name!r} rejected kernel "
                    f"{kernel.name!r}{where}: "
                    + "; ".join(f"{d.code}: {d.message}" for d in errors),
                    diagnostics=errors,
                    kernel=kernel.name,
                    context=context,
                )
            after = p.run(kernel)
            after.verify()
            records.append(PassRecord(
                name=p.name,
                changed=after != kernel,
                detail=getattr(p, "last_detail", ""),
                diagnostics=diags,
            ))
            kernel = after
        return kernel, records

    def describe(self) -> str:
        return " -> ".join(p.name for p in self.passes) or "(empty)"
