"""Pass infrastructure: a tiny, logged, verifying pass pipeline.

Each programming-model frontend assembles the pipeline its real toolchain
would run (e.g. Julia: invariant motion, bounds-check elision via
``@inbounds``, vectorise, unroll×2; nvcc: the same but unroll×4).  The
pipeline verifies the kernel after every pass so a broken transformation
fails loudly rather than silently corrupting the cost model's input.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import List, Tuple

from ..nodes import Kernel

__all__ = ["Pass", "PassPipeline", "PassRecord"]


class Pass(abc.ABC):
    """One IR-to-IR transformation."""

    #: Short identifier used in logs and pipeline descriptions.
    name: str = "pass"

    @abc.abstractmethod
    def run(self, kernel: Kernel) -> Kernel:
        """Return the transformed kernel (input is immutable)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name}>"


@dataclass(frozen=True)
class PassRecord:
    """What one pass did, for trace output and tests."""

    name: str
    changed: bool
    detail: str = ""


@dataclass
class PassPipeline:
    """An ordered list of passes applied with verification and logging."""

    passes: List[Pass] = field(default_factory=list)

    def add(self, p: Pass) -> "PassPipeline":
        self.passes.append(p)
        return self

    def run(self, kernel: Kernel) -> Tuple[Kernel, List[PassRecord]]:
        kernel.verify()
        records: List[PassRecord] = []
        for p in self.passes:
            after = p.run(kernel)
            after.verify()
            records.append(PassRecord(
                name=p.name,
                changed=after != kernel,
                detail=getattr(p, "last_detail", ""),
            ))
            kernel = after
        return kernel, records

    def describe(self) -> str:
        return " -> ".join(p.name for p in self.passes) or "(empty)"
