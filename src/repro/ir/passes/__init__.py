"""Optimisation passes applied by programming-model frontends."""

from .base import Pass, PassPipeline, PassRecord
from .bounds_check import ElideBoundsChecks, InsertBoundsChecks
from .fastmath import SetFastMath
from .interchange import InterchangeLoops
from .invariant import LoopInvariantMotion
from .unroll import UnrollInnerLoop
from .vectorize import VectorizeInnerLoop, vectorization_legal

__all__ = [
    "Pass",
    "PassPipeline",
    "PassRecord",
    "ElideBoundsChecks",
    "InsertBoundsChecks",
    "SetFastMath",
    "InterchangeLoops",
    "LoopInvariantMotion",
    "UnrollInnerLoop",
    "VectorizeInnerLoop",
    "vectorization_legal",
]
