"""Pretty-printer: render a kernel IR as Fig. 2/3-style pseudo-code.

Used by ``repro kernel <model>`` so users can *see* what a frontend
lowered — loop order, hoisted temporaries, guards, unroll/vector
annotations — in the same shape the paper presents its listings.
"""

from __future__ import annotations

from typing import List, Optional

from .nodes import Kernel, Loop, ParallelKind

__all__ = ["render_kernel", "render_diagnostics"]

_INDENT = "    "


def _loop_header(loop: Loop) -> str:
    head = f"for {loop.var} in 0..{loop.axis.value}:"
    tags = []
    if loop.parallel is ParallelKind.THREADS:
        tags.append("parallel-threads")
    elif loop.parallel is ParallelKind.GRID:
        tags.append("grid")
    if loop.unroll > 1:
        tags.append(f"unroll x{loop.unroll}")
    if loop.vector_width > 1:
        tags.append(f"vectorize x{loop.vector_width}")
    if tags:
        head += "   # " + ", ".join(tags)
    return head


def render_kernel(kernel: Kernel) -> str:
    """Render the kernel as indented pseudo-code.

    Placement rules mirror execution: a statement hoisted above loop ``v``
    prints just before ``v``'s header (it runs once per iteration of the
    enclosing loops); a store *sunk* below ``v`` prints after ``v``'s body.
    """
    flags = [kernel.precision.value, kernel.arrays[0].layout.value]
    if kernel.fastmath:
        flags.append("fastmath")
    if kernel.bounds_checked:
        flags.append("bounds-checked")
    if kernel.scalar_accum:
        flags.append("scalar-accum")
    lines: List[str] = [f"kernel {kernel.name}  [{', '.join(flags)}]"]

    def emit_level(var: Optional[str], depth: int) -> None:
        """Statements attached above loop ``var`` (or the inner body)."""
        here = lambda h: (h == var) if var is not None else (h is None)
        pad = _INDENT * depth
        for g in kernel.body.guards:
            if here(g.hoisted_above):
                r, c = g.ref.indices
                lines.append(f"{pad}if not ({r} in range && {c} in range): "
                             f"return   # guard on {g.ref.array}")
        for ld in kernel.body.loads:
            if here(ld.hoisted_above):
                tag = "   # hoisted temp" if ld.hoisted_above else ""
                lines.append(f"{pad}t_{ld.ref.array} = {ld.ref}{tag}")
        if var is None:
            acc = "acc" if kernel.scalar_accum else "t_C"
            for fma in kernel.body.fmas:
                lines.append(f"{pad}{acc} += t_{fma.a.array} * t_{fma.b.array}")
            for st in kernel.body.stores:
                if st.hoisted_above is None:
                    lines.append(f"{pad}{st.ref} = t_C")

    for depth, loop in enumerate(kernel.loops):
        emit_level(loop.var, depth)
        if kernel.scalar_accum and loop.axis.value == "K":
            lines.append(_INDENT * depth + "acc = 0")
        lines.append(_INDENT * depth + _loop_header(loop))
    emit_level(None, len(kernel.loops))

    # stores sunk below a loop print after that loop's body, at its depth
    loop_vars = [l.var for l in kernel.loops]
    for st in kernel.body.stores:
        if st.hoisted_above is not None:
            depth = loop_vars.index(st.hoisted_above)
            src = "acc" if kernel.scalar_accum else "t_C"
            lines.append(_INDENT * depth
                         + f"{st.ref} = {src}   # stored once, after the "
                           f"{st.hoisted_above} loop")
    return "\n".join(lines)


def render_diagnostics(diagnostics) -> str:
    """Render linter findings as an aligned ``severity code kernel message``
    table.  Duck-typed over anything with ``severity``/``code``/``kernel``/
    ``message`` attributes so it accepts lists, tuples and
    :class:`~repro.ir.lint.diagnostics.DiagnosticSet`."""
    diags = list(diagnostics)
    if not diags:
        return "no findings"
    sev_w = max(len(d.severity.value) for d in diags)
    ker_w = max(len(d.kernel) for d in diags)
    lines: List[str] = []
    for d in diags:
        where = d.kernel.ljust(ker_w) + "  " if ker_w else ""
        lines.append(f"{d.severity.value.ljust(sev_w)}  {d.code}  "
                     f"{where}{d.message}")
    return "\n".join(lines)
