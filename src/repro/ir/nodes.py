"""Loop-nest IR for hand-rolled dense kernels.

This is a deliberately small, analysable representation of the kernels in
Figs. 2 and 3 of the paper: a perfect (or near-perfect) loop nest over
symbolic extents ``M``/``N``/``K`` whose body is a sequence of loads, a
fused-multiply-add chain and a store.  Programming-model frontends build a
kernel here, run the optimisation passes their real toolchain would run
(loop-invariant motion, unrolling, vectorisation, bounds-check elision) and
hand the result to the cost engine, which reads off an instruction mix and
per-reference stride classes.

The IR is immutable; passes rebuild nodes via :func:`dataclasses.replace`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Any, Dict, Iterator, Optional, Tuple

from ..core.types import Layout, Precision
from ..errors import IRVerificationError

__all__ = [
    "AxisRole",
    "IndexExpr",
    "ArrayDecl",
    "ArrayRef",
    "Guard",
    "LoadOp",
    "StoreOp",
    "FMAOp",
    "Body",
    "Loop",
    "ParallelKind",
    "Kernel",
]


class AxisRole(enum.Enum):
    """Which GEMM dimension a loop iterates (for extent resolution)."""

    M = "M"  # rows of A / C
    N = "N"  # cols of B / C
    K = "K"  # reduction dimension

    def extent(self, m: int, n: int, k: int) -> int:
        return {"M": m, "N": n, "K": k}[self.value]


@dataclass(frozen=True)
class IndexExpr:
    """Affine index expression ``sum(coeff[v] * v) + const`` over loop vars."""

    coeffs: Tuple[Tuple[str, int], ...] = ()
    const: int = 0

    @classmethod
    def var(cls, name: str) -> "IndexExpr":
        return cls(((name, 1),))

    def coeff(self, var: str) -> int:
        for name, c in self.coeffs:
            if name == var:
                return c
        return 0

    @property
    def variables(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self.coeffs)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = [f"{c}*{v}" if c != 1 else v for v, c in self.coeffs]
        if self.const or not parts:
            parts.append(str(self.const))
        return " + ".join(parts)


@dataclass(frozen=True)
class ArrayDecl:
    """Declaration of a matrix operand.

    ``role`` is ``"A"``, ``"B"`` or ``"C"``; ``shape_axes`` names the GEMM
    axes of its two dimensions (A is M×K, B is K×N, C is M×N).
    """

    name: str
    role: str
    shape_axes: Tuple[AxisRole, AxisRole]
    layout: Layout
    dtype: Precision

    def element_stride(self, axis_index: int, m: int, n: int, k: int) -> int:
        """Linear element stride of dimension ``axis_index`` given a shape."""
        rows = self.shape_axes[0].extent(m, n, k)
        cols = self.shape_axes[1].extent(m, n, k)
        if self.layout is Layout.ROW_MAJOR:
            return cols if axis_index == 0 else 1
        return 1 if axis_index == 0 else rows


@dataclass(frozen=True)
class ArrayRef:
    """A 2-D reference ``array[idx0, idx1]``."""

    array: str
    indices: Tuple[IndexExpr, IndexExpr]

    def linear_coeff(self, decl: ArrayDecl, var: str, m: int, n: int, k: int) -> int:
        """Element stride of this reference w.r.t. loop variable ``var``."""
        return sum(
            self.indices[d].coeff(var) * decl.element_stride(d, m, n, k)
            for d in range(2)
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.array}[{self.indices[0]}, {self.indices[1]}]"


@dataclass(frozen=True)
class Guard:
    """A bounds check (compare + branch).

    ``hoisted_above`` plays the same role as for loads: a GPU kernel's
    ``if row < M && col < N`` guard executes once per thread, i.e. it is
    hoisted above the ``k`` loop, while Julia's per-access checks (without
    ``@inbounds``) run in the innermost body.
    """

    ref: ArrayRef
    hoisted_above: Optional[str] = None


@dataclass(frozen=True)
class LoadOp:
    """Load one element; ``hoisted_above`` names the loop this load was
    moved out of by loop-invariant code motion (None = in place)."""

    ref: ArrayRef
    hoisted_above: Optional[str] = None


@dataclass(frozen=True)
class StoreOp:
    ref: ArrayRef
    hoisted_above: Optional[str] = None


@dataclass(frozen=True)
class FMAOp:
    """``acc += a * b``: one multiply and one add (2 flops)."""

    a: ArrayRef
    b: ArrayRef


@dataclass(frozen=True)
class Body:
    """Straight-line statement list of the innermost loop body."""

    guards: Tuple[Guard, ...] = ()
    loads: Tuple[LoadOp, ...] = ()
    fmas: Tuple[FMAOp, ...] = ()
    stores: Tuple[StoreOp, ...] = ()

    def with_(self, **kw: Any) -> "Body":
        return replace(self, **kw)


class ParallelKind(enum.Enum):
    """How a loop level is distributed."""

    SEQUENTIAL = "seq"
    THREADS = "threads"      # CPU worksharing (omp for / @threads / prange)
    GRID = "grid"            # GPU thread-grid dimension


@dataclass(frozen=True)
class Loop:
    """One loop level."""

    var: str
    axis: AxisRole
    parallel: ParallelKind = ParallelKind.SEQUENTIAL
    unroll: int = 1
    vector_width: int = 1

    def __post_init__(self) -> None:
        if self.unroll < 1 or self.vector_width < 1:
            raise IRVerificationError(
                f"loop {self.var}: unroll/vector_width must be >= 1"
            )


@dataclass(frozen=True)
class Kernel:
    """A complete kernel: loop nest (outermost first) + innermost body.

    ``fastmath`` records whether floating-point reassociation is allowed,
    which gates vectorisation of the ``k`` reduction.  ``scalar_accum``
    marks kernels that keep the running sum in a register and store C once
    (the GPU style of Fig. 3) versus read-modify-write of C in the inner
    loop (the CPU style of Fig. 2).
    """

    name: str
    arrays: Tuple[ArrayDecl, ...]
    loops: Tuple[Loop, ...]
    body: Body
    precision: Precision
    fastmath: bool = False
    scalar_accum: bool = False
    bounds_checked: bool = False

    # -- convenience -------------------------------------------------------

    def decl(self, array: str) -> ArrayDecl:
        for d in self.arrays:
            if d.name == array:
                return d
        raise IRVerificationError(f"{self.name}: no array {array!r}")

    def loop(self, var: str) -> Loop:
        for l in self.loops:
            if l.var == var:
                return l
        raise IRVerificationError(f"{self.name}: no loop {var!r}")

    @property
    def inner(self) -> Loop:
        return self.loops[-1]

    @property
    def loop_order(self) -> str:
        """Loop variables outermost-to-innermost, e.g. ``'ikj'``."""
        return "".join(l.var for l in self.loops)

    @property
    def parallel_loops(self) -> Tuple[Loop, ...]:
        """The worksharing/grid loops, outermost first."""
        return tuple(l for l in self.loops
                     if l.parallel is not ParallelKind.SEQUENTIAL)

    def enclosing_vars(self, hoisted_above: Optional[str]) -> Tuple[str, ...]:
        """Loop variables enclosing a statement hoisted above ``hoisted_above``
        (all of them when the statement sits in the innermost body).  An
        unknown hoist variable means the statement is enclosed by every
        loop, mirroring how stride analysis treats it."""
        if hoisted_above is None:
            return tuple(l.var for l in self.loops)
        out = []
        for l in self.loops:
            if l.var == hoisted_above:
                break
            out.append(l.var)
        else:
            return tuple(l.var for l in self.loops)
        return tuple(out)

    def loops_below(self, var: str) -> Tuple[Loop, ...]:
        """Loops strictly inside loop ``var``."""
        for i, l in enumerate(self.loops):
            if l.var == var:
                return self.loops[i + 1:]
        raise IRVerificationError(f"{self.name}: no loop {var!r}")

    def all_refs(self) -> Iterator[ArrayRef]:
        for g in self.body.guards:
            yield g.ref
        for ld in self.body.loads:
            yield ld.ref
        for st in self.body.stores:
            yield st.ref

    def replace(self, **kw: Any) -> "Kernel":
        return replace(self, **kw)

    # -- verification -------------------------------------------------------

    def verify(self) -> None:
        """Structural sanity checks; raises :class:`IRVerificationError`."""
        if not self.loops:
            raise IRVerificationError(f"{self.name}: empty loop nest")
        seen = set()
        for l in self.loops:
            if l.var in seen:
                raise IRVerificationError(f"{self.name}: duplicate loop var {l.var!r}")
            seen.add(l.var)
        grid_levels = [l for l in self.loops if l.parallel is ParallelKind.GRID]
        thread_levels = [l for l in self.loops if l.parallel is ParallelKind.THREADS]
        if grid_levels and thread_levels:
            raise IRVerificationError(f"{self.name}: mixes GRID and THREADS loops")
        if len(thread_levels) > 1:
            raise IRVerificationError(f"{self.name}: multiple THREADS loops")
        if grid_levels and self.loops[: len(grid_levels)] != tuple(grid_levels):
            raise IRVerificationError(f"{self.name}: GRID loops must be outermost")
        array_names = {d.name for d in self.arrays}
        for ref in self.all_refs():
            if ref.array not in array_names:
                raise IRVerificationError(f"{self.name}: reference to undeclared {ref.array!r}")
            for idx in ref.indices:
                for v in idx.variables:
                    if v not in seen:
                        raise IRVerificationError(
                            f"{self.name}: index uses unknown loop var {v!r}"
                        )
        for ld in self.body.loads:
            if ld.hoisted_above is not None and ld.hoisted_above not in seen:
                raise IRVerificationError(
                    f"{self.name}: load hoisted above unknown loop {ld.hoisted_above!r}"
                )
        if not self.body.fmas:
            raise IRVerificationError(f"{self.name}: body performs no FMA")

    def resolved_extents(self, m: int, n: int, k: int) -> Dict[str, int]:
        """Map each loop var to its concrete trip count for a shape."""
        return {l.var: l.axis.extent(m, n, k) for l in self.loops}
