"""repro: a performance-portability study framework.

Reproduces Godoy et al., *"Evaluating performance and portability of
high-level programming models: Julia, Python/Numba, and Kokkos on exascale
nodes"* as a self-contained Python library: machine models of the paper's
four architectures, programming-model frontends with a small kernel IR and
compiler passes, discrete-event CPU/GPU execution simulators, real runnable
GEMM kernels, and a benchmark harness that regenerates every figure and
table of the evaluation.

Quick start::

    from repro import fig7, table3
    print(fig7().render())
    print(table3().render())

See README.md for the architecture overview and DESIGN.md for the full
system inventory.
"""

from ._version import __version__
from .config import RunConfig
from .core.metrics import metric_comparison, phi_marowka, phi_paper, pp_pennycook
from .core.types import DeviceKind, Layout, MatrixShape, Precision
from .errors import (
    CellFailure,
    ConfigError,
    ExperimentError,
    FaultError,
    IRVerificationError,
    JournalError,
    KernelValidationError,
    LintError,
    LoweringError,
    MachineModelError,
    ReproError,
    RetryExhaustedError,
    RunInterrupted,
    UnsupportedConfigurationError,
)
from .harness import (
    Experiment,
    FigureResult,
    Measurement,
    PAPER_SIZES,
    QUICK_SIZES,
    ResultSet,
    RetryPolicy,
    RunOptions,
    fig4,
    fig5,
    fig6,
    fig7,
    run_campaign,
    run_experiment,
    table1,
    table2,
    table3,
)
from .machine import (
    A100,
    AMPERE_ALTRA,
    CRUSHER,
    CPUSpec,
    EPYC_7A53,
    GPUSpec,
    MI250X,
    Node,
    WOMBAT,
    cpu_by_name,
    gpu_by_name,
    node_by_name,
)
from .models import (
    ProgrammingModel,
    all_models,
    model_by_name,
    portable_models,
    reference_model_for,
)
from .service import CampaignSpec

__all__ = [
    "__version__",
    "RunConfig",
    "metric_comparison",
    "phi_marowka",
    "phi_paper",
    "pp_pennycook",
    "DeviceKind",
    "Layout",
    "MatrixShape",
    "Precision",
    "ReproError",
    "CellFailure",
    "ConfigError",
    "ExperimentError",
    "FaultError",
    "IRVerificationError",
    "JournalError",
    "KernelValidationError",
    "LintError",
    "LoweringError",
    "MachineModelError",
    "RetryExhaustedError",
    "RunInterrupted",
    "UnsupportedConfigurationError",
    "Experiment",
    "FigureResult",
    "Measurement",
    "RetryPolicy",
    "RunOptions",
    "PAPER_SIZES",
    "QUICK_SIZES",
    "ResultSet",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "run_campaign",
    "run_experiment",
    "table1",
    "table2",
    "table3",
    "A100",
    "AMPERE_ALTRA",
    "CRUSHER",
    "CPUSpec",
    "EPYC_7A53",
    "GPUSpec",
    "MI250X",
    "Node",
    "WOMBAT",
    "cpu_by_name",
    "gpu_by_name",
    "node_by_name",
    "ProgrammingModel",
    "all_models",
    "model_by_name",
    "portable_models",
    "reference_model_for",
    "CampaignSpec",
]
