"""Numerical validation of kernels against the NumPy reference."""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..arrays.random import FillPolicy, make_gemm_operands
from ..core.types import Layout, MatrixShape, Precision
from ..errors import KernelValidationError
from .reference import reference_gemm

__all__ = ["tolerance_for", "validate_kernel", "assert_allclose_gemm"]


def tolerance_for(precision: Precision, k: int) -> float:
    """Relative tolerance for a K-long accumulation in a given precision.

    Two error sources: each product rounds at the *input* precision (the
    hand-rolled FP16 kernels multiply in half before accumulating in
    single, Fig. 1c), and the K-long sum accumulates ~sqrt(K) rounding at
    the accumulator precision.  The constants leave headroom for the worst
    loop order.
    """
    eps_in = float(np.finfo(precision.np_dtype).eps)
    eps_acc = float(np.finfo(precision.accum_dtype).eps)
    return 8.0 * eps_in + 16.0 * eps_acc * max(1.0, k) ** 0.5


def assert_allclose_gemm(result: np.ndarray, expected: np.ndarray,
                         precision: Precision, k: int,
                         context: str = "") -> None:
    """Raise :class:`KernelValidationError` unless ``result`` matches the
    reference within the precision- and K-aware tolerance."""
    rtol = tolerance_for(precision, k)
    scale = np.maximum(np.abs(expected), 1.0)
    err = np.max(np.abs(result.astype(np.float64) - expected.astype(np.float64))
                 / scale)
    if not np.isfinite(err) or err > rtol:
        raise KernelValidationError(
            f"{context or 'kernel'}: max relative error {err:.3e} exceeds "
            f"tolerance {rtol:.3e} (precision={precision.value}, K={k})")


def validate_kernel(kernel_fn: Callable[[np.ndarray, np.ndarray, np.ndarray], None],
                    shape: MatrixShape,
                    precision: Precision = Precision.FP64,
                    layout: Layout = Layout.ROW_MAJOR,
                    fill: Optional[FillPolicy] = None,
                    accumulates: bool = True) -> np.ndarray:
    """Run ``kernel_fn(A, B, C)`` on fresh operands and check against NumPy.

    ``accumulates=False`` marks store-once kernels (GPU style) whose output
    overwrites C; for those, C is pre-filled with garbage so a kernel that
    accidentally accumulates (or skips elements) fails validation.
    Returns the kernel's C for further inspection.
    """
    policy = fill if fill is not None else FillPolicy(seed=1234)
    a, b, c = make_gemm_operands(shape.m, shape.n, shape.k, precision, layout,
                                 policy)
    expected = reference_gemm(a, b, precision)
    if not accumulates:
        c[:] = 777.0  # must be fully overwritten
    kernel_fn(a, b, c)
    assert_allclose_gemm(c, expected, precision, shape.k,
                         context=getattr(kernel_fn, "__name__", "kernel"))
    return c
