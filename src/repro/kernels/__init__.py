"""Real, runnable GEMM kernels and their validation against NumPy."""

from .blocked import gemm_blocked, pick_block_size
from .naive import (
    LOOP_ORDERS,
    gemm_ijk,
    gemm_ijk_accum,
    gemm_ikj,
    gemm_jik,
    gemm_jki,
    gemm_kij,
    gemm_kji,
    naive_gemm,
)
from .reference import reference_gemm
from .validate import assert_allclose_gemm, tolerance_for, validate_kernel
from .vectorized import gemm_colwise, gemm_dot_rows, gemm_outer, gemm_rowwise

__all__ = [
    "gemm_blocked",
    "pick_block_size",
    "LOOP_ORDERS",
    "gemm_ijk",
    "gemm_ijk_accum",
    "gemm_ikj",
    "gemm_jik",
    "gemm_jki",
    "gemm_kij",
    "gemm_kji",
    "naive_gemm",
    "reference_gemm",
    "assert_allclose_gemm",
    "tolerance_for",
    "validate_kernel",
    "gemm_colwise",
    "gemm_dot_rows",
    "gemm_outer",
    "gemm_rowwise",
]
