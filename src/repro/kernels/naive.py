"""Pure-Python hand-rolled GEMM variants — the real, runnable counterparts
of the paper's Fig. 2 kernels.

These exist to keep the IR honest: every loop order the IR reasons about is
executable, so tests can check that loop interchange, invariant hoisting
and the layout conventions preserve numerics exactly.  They are O(n^3)
interpreted Python — use small sizes (the benchmarks cap at n=48).

Accumulation semantics match the paper: CPU kernels read-modify-write C in
the inner loop; the ``_accum`` variant keeps a scalar accumulator like the
GPU kernels of Fig. 3.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

__all__ = [
    "gemm_ijk",
    "gemm_ikj",
    "gemm_jki",
    "gemm_jik",
    "gemm_kij",
    "gemm_kji",
    "gemm_ijk_accum",
    "LOOP_ORDERS",
    "naive_gemm",
]


def _dims(a: np.ndarray, b: np.ndarray, c: np.ndarray):
    m, k = a.shape
    k2, n = b.shape
    if k2 != k or c.shape != (m, n):
        raise ValueError(f"shape mismatch: A{a.shape} B{b.shape} C{c.shape}")
    return m, n, k


def gemm_ijk(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> None:
    """Textbook order; C updated innermost along k."""
    m, n, k = _dims(a, b, c)
    for i in range(m):
        for j in range(n):
            for l in range(k):
                c[i, j] += a[i, l] * b[l, j]


def gemm_ikj(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> None:
    """The C/OpenMP and Numba order (Fig. 2a/2d): ``temp = A[i,k]``."""
    m, n, k = _dims(a, b, c)
    for i in range(m):
        for l in range(k):
            temp = a[i, l]
            for j in range(n):
                c[i, j] += temp * b[l, j]


def gemm_jki(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> None:
    """The Julia order (Fig. 2c): ``temp = B[l,j]``, column sweeps."""
    m, n, k = _dims(a, b, c)
    for j in range(n):
        for l in range(k):
            temp = b[l, j]
            for i in range(m):
                c[i, j] += temp * a[i, l]


def gemm_jik(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> None:
    """Column-outer variant of the textbook order."""
    m, n, k = _dims(a, b, c)
    for j in range(n):
        for i in range(m):
            for l in range(k):
                c[i, j] += a[i, l] * b[l, j]


def gemm_kij(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> None:
    """Reduction-outermost order with the hoisted A temp."""
    m, n, k = _dims(a, b, c)
    for l in range(k):
        for i in range(m):
            temp = a[i, l]
            for j in range(n):
                c[i, j] += temp * b[l, j]


def gemm_kji(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> None:
    """Reduction-outermost order with the hoisted B temp."""
    m, n, k = _dims(a, b, c)
    for l in range(k):
        for j in range(n):
            temp = b[l, j]
            for i in range(m):
                c[i, j] += temp * a[i, l]


def gemm_ijk_accum(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> None:
    """GPU-style scalar accumulation (Fig. 3): one register sum per C
    element, stored once — overwrites rather than accumulates into C."""
    m, n, k = _dims(a, b, c)
    for i in range(m):
        for j in range(n):
            tmp = c.dtype.type(0)
            for l in range(k):
                tmp += a[i, l] * b[l, j]
            c[i, j] = tmp


LOOP_ORDERS: Dict[str, Callable[[np.ndarray, np.ndarray, np.ndarray], None]] = {
    "ijk": gemm_ijk,
    "ikj": gemm_ikj,
    "jki": gemm_jki,
    "jik": gemm_jik,
    "kij": gemm_kij,
    "kji": gemm_kji,
}


def naive_gemm(order: str, a: np.ndarray, b: np.ndarray, c: np.ndarray) -> None:
    """Dispatch on loop order string (any permutation of ``'ijk'``)."""
    try:
        fn = LOOP_ORDERS[order.lower()]
    except KeyError:
        raise ValueError(f"unknown loop order {order!r}") from None
    fn(a, b, c)
