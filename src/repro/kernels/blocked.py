"""Cache-blocked GEMM.

The optimisation the paper's *naive* kernels deliberately forgo — included
so the ablation benchmarks can show what the hand-rolled baseline leaves on
the table, and so the cache model has a tiled access pattern to validate
against.
"""

from __future__ import annotations

import numpy as np

__all__ = ["gemm_blocked", "pick_block_size"]


def pick_block_size(cache_bytes: int, itemsize: int) -> int:
    """Largest power-of-two tile with three tiles resident in the cache."""
    if cache_bytes <= 0 or itemsize <= 0:
        raise ValueError("cache size and item size must be positive")
    target = int((cache_bytes / (3 * itemsize)) ** 0.5)
    block = 1
    while block * 2 <= target:
        block *= 2
    return max(8, block)


def gemm_blocked(a: np.ndarray, b: np.ndarray, c: np.ndarray,
                 block: int = 64) -> None:
    """Tiled ``C += A @ B`` with ``block``-square tiles (NumPy micro-GEMMs)."""
    if block < 1:
        raise ValueError("block must be >= 1")
    m, k = a.shape
    k2, n = b.shape
    if k2 != k or c.shape != (m, n):
        raise ValueError(f"shape mismatch: A{a.shape} B{b.shape} C{c.shape}")
    for i0 in range(0, m, block):
        i1 = min(i0 + block, m)
        for l0 in range(0, k, block):
            l1 = min(l0 + block, k)
            a_tile = a[i0:i1, l0:l1]
            for j0 in range(0, n, block):
                j1 = min(j0 + block, n)
                c[i0:i1, j0:j1] += a_tile @ b[l0:l1, j0:j1]
