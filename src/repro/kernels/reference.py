"""Reference GEMM: NumPy's BLAS-backed matmul, with the study's
mixed-precision accumulation convention."""

from __future__ import annotations

import numpy as np

from ..core.types import Precision

__all__ = ["reference_gemm"]


def reference_gemm(a: np.ndarray, b: np.ndarray,
                   precision: Precision) -> np.ndarray:
    """``A @ B`` accumulated in the precision's accumulation dtype.

    FP16 inputs are promoted to FP32 before the product, matching the
    paper's half-in / single-accumulate kernels (Fig. 1c).
    """
    acc = precision.accum_dtype
    return np.matmul(a.astype(acc, copy=False), b.astype(acc, copy=False))
