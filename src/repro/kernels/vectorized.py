"""NumPy-vectorised GEMM variants.

Each mirrors one of the paper's kernels with the *innermost* loop replaced
by an array operation — exactly what the guides' "vectorise the inner
loop" idiom produces, and the fastest honest hand-rolled form available in
pure NumPy.  These run at realistic sizes (thousands), so the real-kernel
benchmark (E11) uses them to demonstrate the loop-order and layout effects
the simulator models.
"""

from __future__ import annotations

import numpy as np

__all__ = ["gemm_rowwise", "gemm_colwise", "gemm_outer", "gemm_dot_rows"]


def _dims(a: np.ndarray, b: np.ndarray, c: np.ndarray):
    m, k = a.shape
    k2, n = b.shape
    if k2 != k or c.shape != (m, n):
        raise ValueError(f"shape mismatch: A{a.shape} B{b.shape} C{c.shape}")
    return m, n, k


def gemm_rowwise(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> None:
    """C/OpenMP-shaped (ik|j): ``C[i,:] += A[i,k] * B[k,:]``.

    Streams rows of B; ideal for row-major data.
    """
    m, n, k = _dims(a, b, c)
    for i in range(m):
        ci = c[i, :]
        ai = a[i, :]
        for l in range(k):
            ci += ai[l] * b[l, :]


def gemm_colwise(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> None:
    """Julia-shaped (jk|i): ``C[:,j] += B[k,j] * A[:,k]``.

    Streams columns of A; ideal for column-major data.
    """
    m, n, k = _dims(a, b, c)
    for j in range(n):
        cj = c[:, j]
        bj = b[:, j]
        for l in range(k):
            cj += bj[l] * a[:, l]


def gemm_outer(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> None:
    """k-outermost rank-1 updates: ``C += outer(A[:,k], B[k,:])``."""
    m, n, k = _dims(a, b, c)
    for l in range(k):
        c += np.outer(a[:, l], b[l, :])


def gemm_dot_rows(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> None:
    """Thread-per-row flavour: each row of C is one mat-vec."""
    m, n, k = _dims(a, b, c)
    for i in range(m):
        c[i, :] += a[i, :] @ b
