"""Host<->device transfer estimation for GEMM operands.

The paper's timing methodology *excludes* transfers (a warm-up iteration
moves the data; only kernel time is reported), but the harness still
models them so examples can show end-to-end cost and the tracer can
corroborate activity, as nvprof did in the study.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.types import MatrixShape, Precision
from ..machine.gpu import GPUSpec

__all__ = ["TransferEstimate", "gemm_transfer_estimate"]

#: Fixed per-copy setup latency (driver call, pinning checks).
COPY_LATENCY_US = 10.0


@dataclass(frozen=True)
class TransferEstimate:
    h2d_bytes: int
    d2h_bytes: int
    h2d_seconds: float
    d2h_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.h2d_seconds + self.d2h_seconds


def gemm_transfer_estimate(spec: GPUSpec, shape: MatrixShape,
                           precision: Precision) -> TransferEstimate:
    """A and B up, C down, at host-link bandwidth plus per-copy latency."""
    in_bytes = (shape.m * shape.k + shape.k * shape.n) * precision.bytes
    out_bytes = shape.m * shape.n * precision.accum_dtype.itemsize
    link = spec.host_link_gbs * 1e9
    h2d = 2 * COPY_LATENCY_US * 1e-6 + in_bytes / link
    d2h = COPY_LATENCY_US * 1e-6 + out_bytes / link
    return TransferEstimate(in_bytes, out_bytes, h2d, d2h)
