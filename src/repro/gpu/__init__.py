"""GPU execution simulation: launch, occupancy, coalescing, wave scheduling."""

from .coalescing import AccessCoalescing, CoalescingReport, analyze_coalescing
from .launch import LaunchConfig, paper_launch
from .occupancy import Occupancy, occupancy
from .transfer import TransferEstimate, gemm_transfer_estimate
from .warp_sim import (GPUKernelTiming, IssueProfile, classify_kernel_bound,
                       simulate_gpu_kernel)

__all__ = [
    "AccessCoalescing",
    "CoalescingReport",
    "analyze_coalescing",
    "LaunchConfig",
    "paper_launch",
    "Occupancy",
    "occupancy",
    "TransferEstimate",
    "gemm_transfer_estimate",
    "GPUKernelTiming",
    "IssueProfile",
    "classify_kernel_bound",
    "simulate_gpu_kernel",
]
