"""Wave-based simulation of a GPU GEMM kernel launch.

Execution model (the granularity GPU performance discussions in the paper
operate at):

1. The grid's blocks are scheduled onto CUs in *waves*: each CU holds
   ``occupancy.blocks_per_cu`` resident blocks, so the grid drains in
   ``total_blocks / (CUs * blocks_per_cu)`` waves (fractional tail).
2. Within a wave, each CU interleaves its resident warps over the
   per-thread ``k`` loop.  A wave's duration is the largest of three
   bounds, all in cycles:

   * **issue throughput**: resident_warps x K x (per-iteration issue
     cycles), where issue cycles is the max over execution units (FMA
     pipes, LSU, transaction servicing, integer/branch) — the unit model
     of an in-order SM;
   * **dependency latency**: K x fma_latency / accumulator_streams for a
     single warp — the serial FMA chain that unrolling breaks (the
     CUDA.jl unroll-2 vs CUDA unroll-4 mechanism of Sec. IV-B);
   * **memory latency**: K x mem_latency / resident_warps — unhidden load
     latency when occupancy is too low.

3. The launch pays a fixed host-side overhead, and the whole kernel is
   additionally bounded by DRAM bandwidth on its cache-filtered traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.types import MatrixShape
from ..ir.nodes import Kernel
from ..machine.gpu import GPUSpec
from ..sim.roofline import estimate_dram_traffic
from .coalescing import analyze_coalescing
from .launch import LaunchConfig
from .occupancy import occupancy

__all__ = ["GPUKernelTiming", "simulate_gpu_kernel", "IssueProfile",
           "classify_kernel_bound"]


def classify_kernel_bound(issue_bound: str, compute_seconds: float,
                          dram_seconds: float) -> str:
    """Binding resource of a kernel, labelled by comparison.

    A dead heat goes to DRAM: when the bandwidth bound has risen to meet
    the compute-side bound, bandwidth is what stops the kernel going
    faster.  Comparing magnitudes (not float identity against the result
    of ``max``) keeps the label stable under later rescaling of the
    kernel time (e.g. L2-thrash factors).
    """
    return "dram" if dram_seconds >= compute_seconds else issue_bound


@dataclass(frozen=True)
class IssueProfile:
    """Per-model instruction-issue adjustments supplied by the frontend.

    ``issue_multiplier`` scales every issue-cycle term: generated code that
    spends extra instructions per iteration (bounds management, 64-bit
    index arithmetic, no load batching) issues proportionally more.
    ``extra_int_per_iter`` adds integer instructions per thread per k
    iteration on top of the structural ones.
    """

    issue_multiplier: float = 1.0
    extra_int_per_iter: float = 0.0
    #: L2-thrashing penalty: when the streamed operand footprint exceeds
    #: the threshold, multiply kernel time by ``thrash_factor``.  Models the
    #: "repeatable slowdown at the largest size" of Kokkos/HIP (Sec. IV-B).
    thrash_threshold_bytes: float = float("inf")
    thrash_factor: float = 1.0


@dataclass(frozen=True)
class GPUKernelTiming:
    """Breakdown of one simulated kernel execution."""

    kernel_seconds: float        # device-side time
    launch_seconds: float        # host-side fixed overhead
    waves: float
    wave_cycles: float
    bound: str                   # "issue" | "chain" | "latency" | "dram"
    occupancy_fraction: float
    issue_cycles_per_iter: float
    dram_bytes: float

    @property
    def total_seconds(self) -> float:
        return self.kernel_seconds + self.launch_seconds

    def gflops(self, shape: MatrixShape) -> float:
        return shape.flops / self.total_seconds / 1e9


def simulate_gpu_kernel(
    kernel: Kernel,
    launch: LaunchConfig,
    spec: GPUSpec,
    shape: MatrixShape,
    profile: IssueProfile = IssueProfile(),
) -> GPUKernelTiming:
    """Simulate one launch of a thread-per-element GEMM kernel."""
    occ = occupancy(spec, launch.threads_per_block)
    coal = analyze_coalescing(kernel, launch, spec, shape)

    k_trip = shape.k
    inner = kernel.inner
    unroll = max(1, inner.unroll)

    n_loads = sum(1 for ld in kernel.body.loads if ld.hoisted_above is None)
    n_stores = sum(1 for st in kernel.body.stores if st.hoisted_above is None)
    n_mem = n_loads + n_stores

    w = spec.warp_size

    # --- per-warp, per-k-iteration issue cycles by unit -------------------
    fma_cycles = w / spec.fma_rate(kernel.precision)
    lsu_cycles = n_mem * w / spec.lsu_per_cycle
    tx_cycles = coal.transactions_per_warp_k_iter / spec.transactions_per_cycle
    # integer work: addressing per memory op + loop control amortised by
    # unrolling + model-specific extras
    int_per_thread = n_mem + (3.0 / unroll) + profile.extra_int_per_iter
    int_cycles = int_per_thread * w / spec.int_per_cycle

    # L2 bandwidth: bytes the warp moves per iteration over the per-CU
    # share of L2 bandwidth.  For the naive kernel this is the binding
    # resource on the vendor path and carries the precision dependence
    # (half the payload at FP32).
    l2_cycles = 0.0
    if spec.caches.levels:
        l2 = spec.caches.level("L2")
        l2_bytes_per_cu_cycle = (l2.bandwidth_gbs * 1e9
                                 / (spec.compute_units * spec.clock_ghz * 1e9))
        l2_cycles = coal.bytes_per_warp_k_iter / l2_bytes_per_cu_cycle

    issue = max(fma_cycles, lsu_cycles, tx_cycles, int_cycles, l2_cycles)
    issue *= profile.issue_multiplier

    # --- wave duration -----------------------------------------------------
    # Unrolling splits the accumulator chain only under fastmath (strict FP
    # forbids reassociating the sum); otherwise the chain stays serial and
    # must be hidden by warp-level parallelism alone.
    accum_streams = unroll if kernel.fastmath else 1
    chain_per_iter = spec.fma_latency_cycles / max(1, accum_streams)

    # Warps whose every thread fails the range guard retire immediately and
    # cost (almost) nothing; partially covered blocks therefore do roughly
    # `active_fraction` of a full block's work.
    active_fraction = launch.active_thread_fraction(shape)

    def wave_time_cycles(resident_warps: int) -> "tuple[float, str]":
        active_warps = max(1.0, resident_warps * active_fraction)
        throughput = active_warps * k_trip * issue
        chain = k_trip * max(chain_per_iter, issue)
        latency = k_trip * spec.mem_latency_cycles / max(1, resident_warps)
        cycles = max(throughput, chain, latency)
        if cycles == throughput:
            return cycles, "issue"
        if cycles == chain:
            return cycles, "chain"
        return cycles, "latency"

    total_blocks = launch.total_blocks(shape)
    blocks_per_wave = spec.compute_units * occ.blocks_per_cu
    waves = total_blocks / blocks_per_wave
    full_waves = total_blocks // blocks_per_wave
    tail_blocks = total_blocks - full_waves * blocks_per_wave

    wave_cycles, bound = wave_time_cycles(occ.warps_per_cu)
    compute_cycles = full_waves * wave_cycles
    if tail_blocks:
        # The tail wave is under-subscribed: fewer resident blocks per CU.
        tail_blocks_per_cu = -(-tail_blocks // spec.compute_units)  # ceil
        tail_resident = min(occ.blocks_per_cu, tail_blocks_per_cu) * occ.warps_per_block
        tail_cycles, tail_bound = wave_time_cycles(tail_resident)
        compute_cycles += tail_cycles
        if full_waves == 0:
            bound = tail_bound
    compute_seconds = compute_cycles / (spec.clock_ghz * 1e9)

    # --- DRAM bandwidth bound ------------------------------------------------
    concurrent_blocks = min(total_blocks, blocks_per_wave)
    traffic = estimate_dram_traffic(
        kernel, shape, spec.caches, active_workers=max(1, concurrent_blocks))
    dram_seconds = traffic.dram_bytes / (spec.hbm_bandwidth_gbs * 1e9)

    kernel_seconds = max(compute_seconds, dram_seconds)
    bound = classify_kernel_bound(bound, compute_seconds, dram_seconds)

    footprint = shape.footprint_bytes(kernel.precision)
    if footprint > profile.thrash_threshold_bytes:
        kernel_seconds *= profile.thrash_factor

    return GPUKernelTiming(
        kernel_seconds=kernel_seconds,
        launch_seconds=spec.launch_overhead_us * 1e-6,
        waves=waves,
        wave_cycles=wave_cycles,
        bound=bound,
        occupancy_fraction=occ.fraction(spec),
        issue_cycles_per_iter=issue,
        dram_bytes=traffic.dram_bytes,
    )
