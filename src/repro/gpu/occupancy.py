"""Occupancy calculation: resident blocks/warps per SM (CU).

A direct transcription of the vendor occupancy calculators, restricted to
the two limits that matter for the hand-rolled GEMM (threads per CU and
blocks per CU; the kernel uses no shared memory and few registers).
Occupancy feeds the latency-hiding term of :mod:`repro.gpu.warp_sim`: a
kernel with too few resident warps cannot cover its FMA and memory
latencies, which is how low occupancy becomes low throughput.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import MachineModelError
from ..machine.gpu import GPUSpec

__all__ = ["Occupancy", "occupancy"]


@dataclass(frozen=True)
class Occupancy:
    """Residency of one kernel on one SM/CU."""

    blocks_per_cu: int
    warps_per_block: int

    @property
    def warps_per_cu(self) -> int:
        return self.blocks_per_cu * self.warps_per_block

    def fraction(self, spec: GPUSpec) -> float:
        """Resident threads over the hardware maximum."""
        max_warps = spec.max_threads_per_cu // spec.warp_size
        return min(1.0, self.warps_per_cu / max_warps)


def occupancy(spec: GPUSpec, threads_per_block: int,
              registers_per_thread: int = 32,
              register_file: int = 65536) -> Occupancy:
    """Resident blocks per CU for a block size.

    ``registers_per_thread`` defaults to what a naive GEMM inner loop
    needs; the register-file limit only binds for pathological values, but
    is modelled so ablations can explore it.
    """
    if threads_per_block < 1:
        raise MachineModelError("threads_per_block must be >= 1")
    if threads_per_block > 1024:
        raise MachineModelError("threads_per_block exceeds the 1024 limit")

    warps_per_block = math.ceil(threads_per_block / spec.warp_size)

    by_threads = spec.max_threads_per_cu // (warps_per_block * spec.warp_size)
    by_blocks = spec.max_blocks_per_cu
    by_registers = register_file // max(1, registers_per_thread * threads_per_block)

    blocks = max(0, min(by_threads, by_blocks, by_registers))
    if blocks == 0:
        raise MachineModelError(
            f"block of {threads_per_block} threads cannot be resident on {spec.name}")
    return Occupancy(blocks_per_cu=blocks, warps_per_block=warps_per_block)
