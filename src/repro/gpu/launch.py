"""Kernel launch configuration: block shape, grid, and thread->index mapping.

The paper launches every GPU GEMM with 32x32 thread blocks (Figs. 6-7
captions) and maps one thread to one C element.  Which matrix axis the
fast thread index (``threadIdx.x``) walks is a per-model choice with large
consequences for coalescing: CUDA/HIP/Numba (row-major) put ``x`` on the
column index ``j``; Julia (column-major) puts ``x`` on the row index ``i``.
Either is coalesced *for its layout* — the mapping only hurts when it
disagrees with the data layout (see :mod:`repro.gpu.coalescing`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from ..core.types import MatrixShape
from ..errors import MachineModelError

__all__ = ["LaunchConfig", "paper_launch"]


@dataclass(frozen=True)
class LaunchConfig:
    """A 2-D launch: ``block_x * block_y`` threads per block.

    ``x_axis`` names the GEMM loop variable (``"i"`` row or ``"j"`` column)
    that ``threadIdx.x`` — the coalescing-relevant index — walks.
    """

    block_x: int
    block_y: int
    x_axis: str = "j"

    def __post_init__(self) -> None:
        if self.block_x < 1 or self.block_y < 1:
            raise MachineModelError("block dimensions must be >= 1")
        if self.block_x * self.block_y > 1024:
            raise MachineModelError(
                f"block {self.block_x}x{self.block_y} exceeds 1024 threads")
        if self.x_axis not in ("i", "j"):
            raise MachineModelError("x_axis must be 'i' or 'j'")

    @property
    def threads_per_block(self) -> int:
        return self.block_x * self.block_y

    @property
    def y_axis(self) -> str:
        return "i" if self.x_axis == "j" else "j"

    def extent_of(self, axis: str, shape: MatrixShape) -> int:
        return shape.m if axis == "i" else shape.n

    def grid(self, shape: MatrixShape) -> Tuple[int, int]:
        """Blocks in (x, y), covering C with ceiling division."""
        gx = math.ceil(self.extent_of(self.x_axis, shape) / self.block_x)
        gy = math.ceil(self.extent_of(self.y_axis, shape) / self.block_y)
        return gx, gy

    def total_blocks(self, shape: MatrixShape) -> int:
        gx, gy = self.grid(shape)
        return gx * gy

    def total_threads(self, shape: MatrixShape) -> int:
        return self.total_blocks(shape) * self.threads_per_block

    def active_thread_fraction(self, shape: MatrixShape) -> float:
        """Fraction of launched threads that pass the bounds guard."""
        return (shape.m * shape.n) / self.total_threads(shape)

    def describe(self) -> str:  # pragma: no cover - cosmetic
        return (f"block {self.block_x}x{self.block_y}, "
                f"threadIdx.x -> {self.x_axis}")


def paper_launch(x_axis: str = "j") -> LaunchConfig:
    """The study's standard 32x32 block."""
    return LaunchConfig(32, 32, x_axis=x_axis)
