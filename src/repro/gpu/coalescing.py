"""Memory-coalescing analysis of GPU kernels.

For every load/store executed inside the per-thread ``k`` loop, counts how
many memory transactions (cache-line requests) one warp's access expands
to, given the launch's thread->index mapping and the arrays' layout:

* stride 0 across ``threadIdx.x``  -> 1 transaction (broadcast);
* unit stride                       -> ``warp_size * elem / line`` transactions;
* large stride                      -> one transaction per thread.

A mapping/layout mismatch (e.g. ``x`` on the column index of column-major
data) turns every warp load into ``warp_size`` transactions — a 16-32x
memory-system amplification that no amount of bandwidth hides, because the
transaction issue rate itself becomes the bottleneck.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..core.types import MatrixShape
from ..ir.nodes import Kernel, ParallelKind
from ..machine.gpu import GPUSpec
from .launch import LaunchConfig

__all__ = ["AccessCoalescing", "CoalescingReport", "analyze_coalescing"]


@dataclass(frozen=True)
class AccessCoalescing:
    """Coalescing of one reference for one warp-wide access."""

    array: str
    kind: str                    # "load" | "store"
    stride_across_x: int         # element stride between adjacent threads
    transactions_per_warp: float
    pattern: str                 # "broadcast" | "coalesced" | "strided"
    per_k_iteration: bool        # executes every k iteration vs once/thread


@dataclass(frozen=True)
class CoalescingReport:
    accesses: Tuple[AccessCoalescing, ...]
    warp_size: int
    line_bytes: int

    #: Sector granularity of L2 accesses: a broadcast or fully strided
    #: access still moves one 32-byte sector per transaction.
    SECTOR_BYTES = 32

    @property
    def transactions_per_warp_k_iter(self) -> float:
        """Transactions one warp issues per reduction-loop iteration."""
        return sum(a.transactions_per_warp for a in self.accesses
                   if a.per_k_iteration)

    @property
    def bytes_per_warp_k_iter(self) -> float:
        """Bytes one warp moves through L2 per reduction-loop iteration.

        Coalesced accesses move exactly the warp's payload; broadcast moves
        one sector; strided moves a sector per thread.  This is the term
        that makes a naive GEMM's single-precision run almost twice its
        double-precision run on the vendor path (half the payload), while
        leaving sector-granular strided patterns precision-independent.
        """
        total = 0.0
        for a in self.accesses:
            if not a.per_k_iteration:
                continue
            if a.pattern == "broadcast":
                total += self.SECTOR_BYTES
            elif a.pattern == "strided":
                total += self.warp_size * self.SECTOR_BYTES
            else:
                total += a.transactions_per_warp * self.line_bytes
        return total

    @property
    def worst_pattern(self) -> str:
        order = {"broadcast": 0, "coalesced": 1, "strided": 2}
        if not self.accesses:
            return "coalesced"
        return max((a for a in self.accesses), key=lambda a: order[a.pattern]).pattern

    def amplification(self) -> float:
        """Ratio of issued transactions to the coalesced ideal (>= 1)."""
        ideal = actual = 0.0
        for a in self.accesses:
            if not a.per_k_iteration:
                continue
            actual += a.transactions_per_warp
            if a.pattern == "broadcast":
                ideal += a.transactions_per_warp
            else:
                elem = self.line_bytes  # per-element bytes folded below
                ideal += max(1.0, a.transactions_per_warp
                             if a.pattern == "coalesced" else 1.0)
        return (actual / ideal) if ideal > 0 else 1.0


def analyze_coalescing(kernel: Kernel, launch: LaunchConfig,
                       spec: GPUSpec, shape: MatrixShape) -> CoalescingReport:
    """Coalescing of every reference in a GPU kernel."""
    grid_vars = [l.var for l in kernel.loops if l.parallel is ParallelKind.GRID]
    if not grid_vars:
        raise ValueError(f"{kernel.name} has no grid loops")
    x_var = launch.x_axis
    line = spec.caches.line_bytes if spec.caches.levels else 128
    m, n, k = shape.m, shape.n, shape.k

    accesses: List[AccessCoalescing] = []
    items = [("load", ld.ref, ld.hoisted_above) for ld in kernel.body.loads]
    items += [("store", st.ref, st.hoisted_above) for st in kernel.body.stores]

    for kind, ref, hoist in items:
        decl = kernel.decl(ref.array)
        stride = ref.linear_coeff(decl, x_var, m, n, k)
        elem = decl.dtype.np_dtype.itemsize if decl.role != "C" else (
            kernel.precision.accum_dtype.itemsize)
        if stride == 0:
            tx, pattern = 1.0, "broadcast"
        elif abs(stride) * elem < line:
            tx = max(1.0, spec.warp_size * abs(stride) * elem / line)
            pattern = "coalesced"
        else:
            tx, pattern = float(spec.warp_size), "strided"
        # per-thread statements hoisted above k run once per thread, not
        # per reduction iteration
        per_k = hoist is None
        accesses.append(AccessCoalescing(
            array=ref.array,
            kind=kind,
            stride_across_x=stride,
            transactions_per_warp=tx,
            pattern=pattern,
            per_k_iteration=per_k,
        ))
    return CoalescingReport(tuple(accesses), spec.warp_size, line)
