"""Vendor HIP: the AMD GPU reference (Fig. 3a, Table II).

``hipcc --amdgpu-target=gfx90a`` on the same thread-per-element kernel;
"HIP closely follows the CUDA kernel model" (Sec. III-B).
"""

from __future__ import annotations

from ..arrays.random import FillPolicy
from ..core.types import DeviceKind, Layout, Precision
from ..gpu.launch import paper_launch
from ..gpu.warp_sim import IssueProfile
from ..ir import builder
from ..ir.passes import LoopInvariantMotion, UnrollInnerLoop
from ..machine.cpu import CPUSpec
from ..machine.gpu import GPUSpec
from .base import GPULowering, ProductivityInfo, ProgrammingModel, Support

__all__ = ["HIPModel", "HIPCC_UNROLL"]

#: hipcc (clang) applies the same x4 unroll as nvcc on this loop.
HIPCC_UNROLL = 4


class HIPModel(ProgrammingModel):
    """The vendor HIP reference for AMD GPUs (Fig. 3a)."""
    name = "hip"
    display = "HIP"
    language = "C"
    paper_version = "hipcc v14.0.0"
    family = "openmp"
    is_reference = True

    def supports_cpu(self, cpu: CPUSpec, precision: Precision) -> Support:
        return Support.no("HIP targets AMD GPUs only")

    def supports_gpu(self, gpu: GPUSpec, precision: Precision) -> Support:
        if "MI250X" not in gpu.name.upper() and "AMD" not in gpu.name.upper():
            return Support.no("HIP runs on AMD GPUs only")
        if precision is Precision.FP16:
            return Support.no("no half-precision vendor kernel in the artifact")
        return Support.yes()

    def lower_gpu(self, gpu: GPUSpec, precision: Precision) -> GPULowering:
        self.require_support(gpu, precision)
        kernel = builder.gpu_thread_per_element("gemm-hip", precision,
                                                Layout.ROW_MAJOR)
        kernel, records = self._run_pipeline([
            LoopInvariantMotion(),
            UnrollInnerLoop(HIPCC_UNROLL),
        ], kernel, target=gpu.name)
        return GPULowering(
            kernel=kernel,
            launch=paper_launch(x_axis="j"),
            profile=IssueProfile(issue_multiplier=1.0),
            fill=FillPolicy(random_fp16=False),
            pass_records=tuple(records),
        )

    def productivity(self, device: DeviceKind) -> ProductivityInfo:
        return ProductivityInfo(kernel_lines=self._listing_lines(device, 18),
                                ceremony_lines=30,
                                needs_compile_step=True,
                                jit_warmup_seconds=0.0)
