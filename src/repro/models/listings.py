"""The paper's kernel source listings (Figs. 2 and 3), verbatim-shaped.

These are the actual hand-rolled kernels the study benchmarks, kept here
so (a) ``repro kernel <model> --source`` can show the real-language code
next to our IR lowering, and (b) the productivity metrics of Sec. V count
*real* lines instead of hand-waved constants — `kernel_lines` in each
model's :class:`~repro.models.base.ProductivityInfo` is validated against
these listings by the test suite.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..core.types import DeviceKind

__all__ = ["listing_for", "kernel_line_count", "LISTINGS"]

# (model name, device) -> source listing
LISTINGS: Dict[Tuple[str, DeviceKind], str] = {}


def _register(model: str, device: DeviceKind, source: str) -> None:
    LISTINGS[(model, device)] = source.strip("\n")


# --- Fig. 2a: C/OpenMP ------------------------------------------------------
_register("c-openmp", DeviceKind.CPU, r"""
void gemm(const double *A, const double *B, double *C,
          const int A_rows, const int A_cols, const int B_cols)
{
#pragma omp parallel for
    for (int i = 0; i < A_rows; i++) {
        for (int k = 0; k < A_cols; k++) {
            const double temp = A[i * A_cols + k];
            for (int j = 0; j < B_cols; j++) {
                C[i * B_cols + j] += temp * B[k * B_cols + j];
            }
        }
    }
}
""")

# --- Fig. 2b: Kokkos (OpenMP backend) --------------------------------------
_register("kokkos", DeviceKind.CPU, r"""
Kokkos::parallel_for(
    "gemm", A_rows, KOKKOS_LAMBDA(const int i) {
        for (int k = 0; k < A_cols; k++) {
            const double temp = A(i, k);
            for (int j = 0; j < B_cols; j++) {
                C(i, j) += temp * B(k, j);
            }
        }
    });
Kokkos::fence();
""")

# --- Fig. 2c: Julia threads --------------------------------------------------
_register("julia", DeviceKind.CPU, r"""
import Base.Threads: @threads

function gemm!(A, B, C)
    B_cols = size(B, 2); A_cols = size(A, 2); A_rows = size(A, 1)
    @threads for j in 1:B_cols
        for l in 1:A_cols
            @inbounds temp = B[l, j]
            for i in 1:A_rows
                @inbounds C[i, j] += temp * A[i, l]
            end
        end
    end
end
""")

# --- Fig. 2d: Python/Numba ----------------------------------------------------
_register("numba", DeviceKind.CPU, r"""
from numba import njit, prange
import numpy as np

@njit(parallel=True, nogil=True, fastmath=True)
def gemm(A: np.ndarray, B: np.ndarray, C: np.ndarray):
    A_rows, A_cols = A.shape
    B_cols = B.shape[1]
    for i in prange(0, A_rows):
        for k in range(0, A_cols):
            temp = A[i, k]
            for j in range(0, B_cols):
                C[i, j] += temp * B[k, j]
""")

# --- Fig. 3a: CUDA / HIP ------------------------------------------------------
_GPU_C = r"""
__global__ void gemm(const double *A, const double *B, double *C,
                     const int n, const int k)
{
    int row = blockIdx.y * blockDim.y + threadIdx.y;
    int col = blockIdx.x * blockDim.x + threadIdx.x;
    double sum = 0.0;
    if (row < n && col < k) {
        for (int i = 0; i < n; i++) {
            sum += A[row * n + i] * B[i * k + col];
        }
        C[row * k + col] = sum;
    }
}
"""
_register("cuda", DeviceKind.GPU, _GPU_C)
_register("hip", DeviceKind.GPU, _GPU_C)

# --- Kokkos GPU (same lambda source, Cuda/Hip backend at compile time) ------
_register("kokkos", DeviceKind.GPU, r"""
Kokkos::parallel_for(
    "gemm", Kokkos::MDRangePolicy<Kokkos::Rank<2>>({0, 0}, {A_rows, B_cols}),
    KOKKOS_LAMBDA(const int i, const int j) {
        double sum = 0.0;
        for (int k = 0; k < A_cols; k++) {
            sum += A(i, k) * B(k, j);
        }
        C(i, j) = sum;
    });
Kokkos::fence();
""")

# --- Fig. 3b/3c: Julia CUDA.jl / AMDGPU.jl ------------------------------------
_register("julia", DeviceKind.GPU, r"""
function gemm!(A, B, C)
    row = (blockIdx().x - 1) * blockDim().x + threadIdx().x
    col = (blockIdx().y - 1) * blockDim().y + threadIdx().y
    if row <= size(C, 1) && col <= size(C, 2)
        tmp = zero(eltype(C))
        for i in 1:size(A, 2)
            @inbounds tmp += A[row, i] * B[i, col]
        end
        @inbounds C[row, col] = tmp
    end
    return nothing
end
""")

# --- Fig. 3d: Python/Numba CUDA ------------------------------------------------
_register("numba", DeviceKind.GPU, r"""
from numba import cuda

@cuda.jit
def gemm(A, B, C):
    i, j = cuda.grid(2)
    if i < C.shape[0] and j < C.shape[1]:
        tmp = 0.
        for k in range(A.shape[1]):
            tmp += A[i, k] * B[k, j]
        C[i, j] = tmp
""")

# --- extension models ----------------------------------------------------------
_register("pyomp", DeviceKind.CPU, r"""
from numba import njit
from numba.openmp import openmp_context as openmp

@njit(fastmath=True)
def gemm(A, B, C):
    A_rows, A_cols = A.shape
    B_cols = B.shape[1]
    with openmp("parallel for"):
        for i in range(A_rows):
            for k in range(A_cols):
                temp = A[i, k]
                for j in range(B_cols):
                    C[i, j] += temp * B[k, j]
""")

_register("kernelabstractions", DeviceKind.GPU, r"""
using KernelAbstractions

@kernel function gemm!(A, B, C)
    row, col = @index(Global, NTuple)
    tmp = zero(eltype(C))
    for i in 1:size(A, 2)
        @inbounds tmp += A[row, i] * B[i, col]
    end
    @inbounds C[row, col] = tmp
end
""")


def listing_for(model: str, device: DeviceKind) -> Optional[str]:
    """The paper's source listing for a (model, device), if one exists."""
    return LISTINGS.get((model, device))


def kernel_line_count(model: str, device: DeviceKind) -> Optional[int]:
    """Non-blank source lines of the listing (the Sec. V LoC measure)."""
    src = listing_for(model, device)
    if src is None:
        return None
    return sum(1 for line in src.splitlines() if line.strip())
