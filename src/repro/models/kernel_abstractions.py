"""KernelAbstractions.jl: Julia's portable GPU layer (extension model).

Sec. III-B: "Julia also provides the KernelAbstractions.jl package for
writing portable kernels while still maintaining dependence on either
CuArray or ROCArray."  The paper benchmarks the vendor-specific CUDA.jl /
AMDGPU.jl kernels; this extension answers its implicit follow-up — what
does the single-source portable layer cost over the native packages?

Lowering: identical kernel shape and launch to the native Julia GPU path
(KernelAbstractions compiles through the same GPUCompiler.jl pipeline),
plus the small, measured-in-the-wild abstraction cost: the ``@kernel``
macro introduces an ``@index(Global, NTuple)`` indexing helper and a
workgroup-size indirection that survive into the IR as a few extra
integer instructions per iteration.  The E13 benchmark pins the resulting
single-digit-percent penalty on both GPUs — the quantitative version of
"future work should continue to explore" (Sec. VI).
"""

from __future__ import annotations


from ..arrays.random import FillPolicy
from ..core.types import DeviceKind, Layout, Precision
from ..gpu.launch import paper_launch
from ..gpu.warp_sim import IssueProfile
from ..ir import builder
from ..ir.passes import LoopInvariantMotion, UnrollInnerLoop
from ..machine.cpu import CPUSpec
from ..machine.gpu import GPUSpec
from .base import GPULowering, ProductivityInfo, ProgrammingModel, Support
from .julia import _GPU_EXTRA_INT, _GPU_QUALITY, CUDAJL_UNROLL

__all__ = ["KernelAbstractionsModel"]

#: Extra integer work of the @index/workgroup indirection, per iteration.
_KA_EXTRA_INT = 3.0
#: Residual abstraction overhead on top of the native package's codegen.
_KA_MULTIPLIER = 1.03


class KernelAbstractionsModel(ProgrammingModel):
    """KernelAbstractions.jl: Julia's single-source portable GPU layer (extension)."""
    name = "kernelabstractions"
    display = "Julia (KernelAbstractions.jl)"
    language = "Julia"
    paper_version = "KernelAbstractions.jl v0.8.3 [55]"
    family = "julia"

    def supports_cpu(self, cpu: CPUSpec, precision: Precision) -> Support:
        return Support.no("modelled for its GPU backends; the CPU path is "
                          "plain Julia threads (use the 'julia' model)")

    def supports_gpu(self, gpu: GPUSpec, precision: Precision) -> Support:
        # single source over CUDA.jl and AMDGPU.jl back ends
        return Support.yes("extension model (paper Sec. III-B, [55])")

    def lower_gpu(self, gpu: GPUSpec, precision: Precision) -> GPULowering:
        self.require_support(gpu, precision)
        kernel = builder.gpu_thread_per_element("gemm-ka-jl", precision,
                                                Layout.COL_MAJOR)
        kernel, records = self._run_pipeline([
            LoopInvariantMotion(),
            UnrollInnerLoop(CUDAJL_UNROLL),  # same GPUCompiler.jl pipeline
        ], kernel, target=gpu.name)
        native_quality = _GPU_QUALITY.get((gpu.name, precision), 1.15)
        profile = IssueProfile(
            issue_multiplier=native_quality * _KA_MULTIPLIER,
            extra_int_per_iter=_GPU_EXTRA_INT.get(gpu.name, 12.0) + _KA_EXTRA_INT,
        )
        return GPULowering(
            kernel=kernel,
            launch=paper_launch(x_axis="i"),
            profile=profile,
            fill=FillPolicy(random_fp16=True),
            pass_records=tuple(records),
        )

    def productivity(self, device: DeviceKind) -> ProductivityInfo:
        # One source for both vendors — the divergence win over CUDA/HIP.
        return ProductivityInfo(kernel_lines=self._listing_lines(device, 14),
                                ceremony_lines=6,
                                needs_compile_step=False,
                                jit_warmup_seconds=3.0)
