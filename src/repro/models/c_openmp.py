"""C/OpenMP: the paper's architecture-specific CPU reference (Fig. 2a).

Compiled with the vendor LLVM compiler (ArmClang 22 on Wombat, AMDClang 14
on Crusher) at ``-O3 -fopenmp [-march=native]``; threads pinned via
``OMP_PROC_BIND=true OMP_PLACES=threads`` (Fig. 8).  Table III divides
every portable model's CPU performance by this one.
"""

from __future__ import annotations

from typing import Optional

from ..config import RunConfig
from ..core.types import DeviceKind, Precision
from ..ir import builder
from ..ir.passes import (
    LoopInvariantMotion,
    UnrollInnerLoop,
    VectorizeInnerLoop,
)
from ..machine.cpu import CPUSpec
from ..machine.gpu import GPUSpec
from ..sched.affinity import PinPolicy
from ..sim.executor import CPUIssueProfile
from .base import CPULowering, ProductivityInfo, ProgrammingModel, Support

__all__ = ["COpenMPModel"]

#: clang -O3 unrolls these inner loops by 4 after vectorisation.
CLANG_UNROLL = 4


class COpenMPModel(ProgrammingModel):
    """The vendor C/OpenMP CPU reference implementation (Fig. 2a)."""
    name = "c-openmp"
    display = "C/OpenMP"
    language = "C"
    paper_version = "ArmClang22 / AMDClang14"
    family = "openmp"
    is_reference = True

    def supports_cpu(self, cpu: CPUSpec, precision: Precision) -> Support:
        if precision is Precision.FP16:
            # "other programming models do not provide seamless
            # half-precision support" (Sec. IV-B) — no _Float16 kernels in
            # the artifact.
            return Support.no("no seamless FP16 support in the C kernels")
        return Support.yes()

    def supports_gpu(self, gpu: GPUSpec, precision: Precision) -> Support:
        return Support.no("C/OpenMP is the CPU reference; GPU references are CUDA/HIP")

    def lower_cpu(self, cpu: CPUSpec, precision: Precision,
                  config: Optional[RunConfig] = None) -> CPULowering:
        self.require_support(cpu, precision)
        kernel = builder.c_openmp_cpu(precision)
        kernel, records = self._run_pipeline([
            LoopInvariantMotion(),
            VectorizeInnerLoop(cpu.simd_lanes(precision)),
            UnrollInnerLoop(CLANG_UNROLL),
        ], kernel, target=cpu.name)

        cfg = config if config is not None else RunConfig.openmp(cpu.cores)
        pin = PinPolicy.COMPACT if cfg.pinning_for("openmp") or config is None \
            else PinPolicy.NONE

        # Reference model: the vendor compiler on its own ISA defines the
        # 1.0x code-quality baseline.
        profile = CPUIssueProfile(issue_multiplier=1.0)
        return CPULowering(
            kernel=kernel,
            pin=pin,
            profile=profile,
            threads=self._threads(cpu, config),
            fill=self._fill(),
            pass_records=tuple(records),
        )

    @staticmethod
    def _fill():
        from ..arrays.random import FillPolicy
        return FillPolicy(random_fp16=False)

    def productivity(self, device: DeviceKind) -> ProductivityInfo:
        # Fig. 2a kernel plus the makefile/launch scripting of Appendix A.
        return ProductivityInfo(kernel_lines=self._listing_lines(device, 22),
                                ceremony_lines=14,
                                needs_compile_step=True,
                                jit_warmup_seconds=0.0)
