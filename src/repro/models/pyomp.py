"""PyOMP: OpenMP-in-Numba (extension model, not part of the paper's grid).

Sec. II cites Mattson et al.'s PyOMP [32], "an OpenMP implementation for
Numba with preliminary results on par with C implementations that
bypasses Python's GIL".  The paper's own Numba results beg the question
PyOMP answers: how much of the gap is the *threading runtime* rather than
the code generator?  PyOMP swaps Numba's thread pool for the OpenMP
runtime — which, crucially, honours ``OMP_PROC_BIND`` — while keeping
Numba's LLVM code generation.

This model therefore lowers exactly like :class:`~repro.models.numba.NumbaModel`
on the CPU but with OpenMP thread semantics (pinning available, OpenMP
environment family).  The E12 benchmark shows it recovers the entire
NUMA-migration share of Numba's gap on Crusher's EPYC, leaving only the
codegen residual — consistent with the cited "on par with C" finding for
simpler kernels.
"""

from __future__ import annotations

from typing import Optional

from ..arrays.random import FillPolicy
from ..config import RunConfig
from ..core.types import DeviceKind, Precision
from ..ir import builder
from ..ir.passes import (
    LoopInvariantMotion,
    SetFastMath,
    UnrollInnerLoop,
    VectorizeInnerLoop,
)
from ..machine.cpu import CPUSpec
from ..machine.gpu import GPUSpec
from ..sched.affinity import PinPolicy
from ..sim.executor import CPUIssueProfile
from .base import CPULowering, ProductivityInfo, ProgrammingModel, Support
from .numba import _CPU_QUALITY as _NUMBA_CPU_QUALITY

__all__ = ["PyOMPModel"]


class PyOMPModel(ProgrammingModel):
    """PyOMP: Numba code generation under the OpenMP runtime (extension, [32])."""
    name = "pyomp"
    display = "Python/PyOMP"
    language = "Python"
    paper_version = "PyOMP (Mattson et al. [32])"
    family = "openmp"  # the whole point: OpenMP runtime semantics

    def supports_cpu(self, cpu: CPUSpec, precision: Precision) -> Support:
        if precision is Precision.FP16:
            return Support.no("inherits Numba's missing FP16 support")
        return Support.yes("extension model (paper Sec. II citation [32])")

    def supports_gpu(self, gpu: GPUSpec, precision: Precision) -> Support:
        return Support.no("PyOMP targets CPUs (OpenMP host runtime)")

    def lower_cpu(self, cpu: CPUSpec, precision: Precision,
                  config: Optional[RunConfig] = None) -> CPULowering:
        self.require_support(cpu, precision)
        kernel = builder.numba_cpu(precision)  # same source as Fig. 2d
        kernel, records = self._run_pipeline([
            SetFastMath(True),
            LoopInvariantMotion(),
            VectorizeInnerLoop(cpu.simd_lanes(precision)),
            UnrollInnerLoop(4),
        ], kernel, target=cpu.name)

        # Same LLVM code generator as Numba: reuse its codegen residual.
        quality = _NUMBA_CPU_QUALITY.get((cpu.name, precision), 1.4)

        cfg = config if config is not None else RunConfig.openmp(cpu.cores)
        pin = PinPolicy.COMPACT if (config is None or cfg.pinning_for("openmp")) \
            else PinPolicy.NONE
        return CPULowering(
            kernel=kernel,
            pin=pin,  # unlike Numba, OMP_PROC_BIND works here
            profile=CPUIssueProfile(issue_multiplier=quality),
            threads=self._threads(cpu, config),
            fill=FillPolicy(random_fp16=False),
            pass_records=tuple(records),
        )

    def productivity(self, device: DeviceKind) -> ProductivityInfo:
        # the Numba decorator plus `with openmp(...)` context lines
        return ProductivityInfo(kernel_lines=self._listing_lines(device, 16),
                                ceremony_lines=3,
                                needs_compile_step=False,
                                jit_warmup_seconds=1.5)
