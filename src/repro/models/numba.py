"""Python/Numba: ``@njit(parallel=True)`` on CPU, ``@cuda.jit`` on NVIDIA.

Lowering facts encoded from the paper:

* **CPU (Fig. 2d)**: row-major NumPy arrays, ``prange`` over rows,
  ``fastmath=True``, ``nogil=True``.  Crucially, "there is currently no
  mechanism for setting a thread binding/pinning policy" — the threads run
  unpinned, which on Crusher's 4-NUMA EPYC costs constant migrations and
  cache refills (the dominant term of its 0.55 efficiency there), while on
  the single-NUMA Altra the remaining gap is Numba's own codegen.
* **NVIDIA GPU (Fig. 3d)**: ``cuda.grid(2)`` thread-per-element kernel.
  Numba's PTX keeps the reduction loop rolled and carries Python-object
  index bookkeeping per access (cf. Oden, PDP'20, cited as [33]), which
  the paper corroborated with nvprof while observing it "consistently
  underperform".
* **AMD GPU**: "Python/Numba support for AMD GPUs is currently deprecated"
  (numba PR #6991) — unsupported, which Table III counts as efficiency 0.
* **FP16**: no half-precision RNG through NumPy (Sec. IV-A): CPU FP16 is
  unsupported; GPU FP16 runs with all-ones inputs (Fig. 7c).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..arrays.random import FillPolicy
from ..config import RunConfig
from ..core.types import DeviceKind, Layout, Precision
from ..gpu.launch import paper_launch
from ..gpu.warp_sim import IssueProfile
from ..ir import builder
from ..ir.passes import (
    LoopInvariantMotion,
    SetFastMath,
    UnrollInnerLoop,
    VectorizeInnerLoop,
)
from ..machine.cpu import CPUSpec
from ..machine.gpu import GPUSpec
from ..sched.affinity import PinPolicy
from ..sim.executor import CPUIssueProfile
from .base import CPULowering, GPULowering, ProductivityInfo, ProgrammingModel, Support

__all__ = ["NumbaModel"]

#: CPU code-quality residual vs the vendor compiler, keyed by
#: (cpu catalog name, precision).  On x86 Numba's LLVM output is close to
#: clang's for this loop; on AArch64 its FP32 vectorisation is notably
#: poorer (the 0.400 efficiency of Table III), consistent with Gmys et
#: al.'s multithreading-gap findings the paper cites.
_CPU_QUALITY: Dict[Tuple[str, Precision], float] = {
    ("AMD EPYC 7A53", Precision.FP64): 1.40,
    ("AMD EPYC 7A53", Precision.FP32): 1.18,
    ("Ampere Altra", Precision.FP64): 1.40,
    ("Ampere Altra", Precision.FP32): 2.50,
}

#: GPU code-quality residual: Numba's PTX for the inner loop issues several
#: times the instructions of nvcc's (rolled loop, 64-bit index bookkeeping,
#: no load batching).
_GPU_QUALITY: Dict[Precision, float] = {
    Precision.FP64: 1.61,
    Precision.FP32: 1.22,
    Precision.FP16: 1.22,
}

#: Integer bookkeeping instructions Numba emits per k iteration on GPU.
_GPU_EXTRA_INT = 100.0


class NumbaModel(ProgrammingModel):
    """Python/Numba: @njit(parallel=True) on CPU, @cuda.jit on NVIDIA (Figs. 2d, 3d)."""
    name = "numba"
    display = "Python/Numba"
    language = "Python"
    paper_version = "Python v3.9.9 / Numba v0.55.1"
    family = "numba"

    def supports_cpu(self, cpu: CPUSpec, precision: Precision) -> Support:
        if precision is Precision.FP16:
            return Support.no(
                "FP16 is not supported for Numba regions combined with "
                "numpy float16 random generation (Sec. IV-A)")
        return Support.yes()

    def supports_gpu(self, gpu: GPUSpec, precision: Precision) -> Support:
        if "NVIDIA" not in gpu.name.upper():
            return Support.no(
                "Numba's AMD GPU (ROCm) target is deprecated (numba #6991)")
        if precision is Precision.FP16:
            return Support(True, "inputs populated with ones: no FP16 RNG "
                                 "through numpy (Sec. IV-B)")
        return Support.yes()

    # -- CPU -----------------------------------------------------------------

    def lower_cpu(self, cpu: CPUSpec, precision: Precision,
                  config: Optional[RunConfig] = None) -> CPULowering:
        self.require_support(cpu, precision)
        kernel = builder.numba_cpu(precision)
        kernel, records = self._run_pipeline([
            SetFastMath(True),  # @njit(fastmath=True) in Fig. 2d
            LoopInvariantMotion(),
            VectorizeInnerLoop(cpu.simd_lanes(precision)),
            UnrollInnerLoop(4),
        ], kernel, target=cpu.name)

        quality = _CPU_QUALITY.get((cpu.name, precision), 1.4)
        return CPULowering(
            kernel=kernel,
            # No pinning API exists: always unpinned, whatever the config.
            pin=PinPolicy.NONE,
            profile=CPUIssueProfile(issue_multiplier=quality),
            threads=self._threads(cpu, config),
            fill=FillPolicy(random_fp16=False),
            pass_records=tuple(records),
        )

    # -- GPU -----------------------------------------------------------------

    def lower_gpu(self, gpu: GPUSpec, precision: Precision) -> GPULowering:
        self.require_support(gpu, precision)
        kernel = builder.gpu_thread_per_element("gemm-numba-cuda", precision,
                                                Layout.ROW_MAJOR)
        kernel, records = self._run_pipeline([
            LoopInvariantMotion(),
            UnrollInnerLoop(1),  # Numba leaves the reduction loop rolled
        ], kernel, target=gpu.name)
        profile = IssueProfile(
            issue_multiplier=_GPU_QUALITY[precision],
            extra_int_per_iter=_GPU_EXTRA_INT,
        )
        return GPULowering(
            kernel=kernel,
            launch=paper_launch(x_axis="j"),
            profile=profile,
            fill=FillPolicy(random_fp16=False),  # ones for FP16
            pass_records=tuple(records),
        )

    def productivity(self, device: DeviceKind) -> ProductivityInfo:
        # Fig. 2d / 3d: decorator + prange; no build step, JIT on first call.
        return ProductivityInfo(kernel_lines=self._listing_lines(device, 13),
                                ceremony_lines=3,
                                needs_compile_step=False,
                                jit_warmup_seconds=1.5)
