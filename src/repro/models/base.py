"""Programming-model frontends: the study's central abstraction.

A :class:`ProgrammingModel` is what the paper benchmarks: a toolchain that
takes the same hand-rolled GEMM and turns it into machine behaviour.  Each
frontend declares:

* its **support matrix** (the paper's gaps: Numba has no AMD GPU backend
  and no FP16 RNG; half precision is "seamless" only in Julia);
* its **lowering**: the kernel IR it builds, the optimisation passes its
  real compiler runs (unroll factors, bounds-check elision, fastmath), the
  launch/threading configuration it can express (Numba cannot pin threads);
* its residual **code-quality factors** — the calibrated part of the
  model, documented next to the paper passage each encodes.

Lowerings feed :mod:`repro.sim.executor` unchanged; two models differ only
by what their toolchains actually differ by.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional, Tuple

from ..arrays.random import FillPolicy
from ..config import RunConfig
from ..core.types import DeviceKind, Layout, Precision
from ..errors import UnsupportedConfigurationError
from ..gpu.launch import LaunchConfig
from ..gpu.warp_sim import IssueProfile
from ..ir.nodes import Kernel
from ..ir.passes.base import PassRecord
from ..machine.cpu import CPUSpec
from ..machine.gpu import GPUSpec
from ..sched.affinity import PinPolicy
from ..sim.executor import CPUIssueProfile

__all__ = [
    "Support",
    "CPULowering",
    "GPULowering",
    "ProductivityInfo",
    "ProgrammingModel",
]


@dataclass(frozen=True)
class Support:
    """Whether and how a (target, precision) combination is supported."""

    supported: bool
    reason: str = ""
    #: Supported, but documented by the paper as performing far below par
    #: and excluded from its figures (e.g. Julia FP16 on the AMD CPU).
    degraded: bool = False

    @classmethod
    def yes(cls, note: str = "") -> "Support":
        return cls(True, note)

    @classmethod
    def no(cls, reason: str) -> "Support":
        return cls(False, reason)


@dataclass(frozen=True)
class CPULowering:
    """Everything the executor needs to run a CPU kernel of this model."""

    kernel: Kernel
    pin: PinPolicy
    profile: CPUIssueProfile
    threads: int
    fill: FillPolicy
    pass_records: Tuple[PassRecord, ...] = ()

    @property
    def layout(self) -> Layout:
        return self.kernel.arrays[0].layout


@dataclass(frozen=True)
class GPULowering:
    """Everything the executor needs to launch a GPU kernel of this model."""

    kernel: Kernel
    launch: LaunchConfig
    profile: IssueProfile
    fill: FillPolicy
    pass_records: Tuple[PassRecord, ...] = ()

    @property
    def layout(self) -> Layout:
        return self.kernel.arrays[0].layout


@dataclass(frozen=True)
class ProductivityInfo:
    """The productivity facts Sec. V discusses qualitatively.

    ``kernel_lines`` counts the lines of the hand-rolled kernel in the
    paper's artifact; ``ceremony_lines`` counts build/launch boilerplate
    (Kokkos' CMake + template instantiations vs a ``@decorator``).
    """

    kernel_lines: int
    ceremony_lines: int
    needs_compile_step: bool
    jit_warmup_seconds: float  # excluded by the harness warm-up, but real

    @property
    def total_lines(self) -> int:
        return self.kernel_lines + self.ceremony_lines


class ProgrammingModel(abc.ABC):
    """One of the study's programming models."""

    #: Stable identifier used in registries and result tables.
    name: str = "abstract"
    #: Legend label, e.g. ``"Julia (AMDGPU.jl)"`` resolved per target.
    display: str = "abstract"
    #: Implementation language shown in Tables I/II.
    language: str = ""
    #: Version string pinned by the paper (Tables I/II).
    paper_version: str = ""
    #: RunConfig family for thread/pinning lookups.
    family: str = "openmp"
    #: True for the architecture-specific reference implementations
    #: (C/OpenMP, CUDA, HIP) that Table III normalises against.
    is_reference: bool = False

    # -- support matrix ------------------------------------------------------

    @abc.abstractmethod
    def supports_cpu(self, cpu: CPUSpec, precision: Precision) -> Support:
        ...

    @abc.abstractmethod
    def supports_gpu(self, gpu: GPUSpec, precision: Precision) -> Support:
        ...

    def supports(self, spec, precision: Precision) -> Support:
        if isinstance(spec, CPUSpec):
            return self.supports_cpu(spec, precision)
        if isinstance(spec, GPUSpec):
            return self.supports_gpu(spec, precision)
        raise TypeError(f"unknown target spec {type(spec).__name__}")

    def require_support(self, spec, precision: Precision) -> None:
        s = self.supports(spec, precision)
        if not s.supported:
            raise UnsupportedConfigurationError(
                self.display, getattr(spec, "name", str(spec)), s.reason)

    # -- lowering -----------------------------------------------------------

    def lower_cpu(self, cpu: CPUSpec, precision: Precision,
                  config: Optional[RunConfig] = None) -> CPULowering:
        raise UnsupportedConfigurationError(self.display, cpu.name,
                                            "no CPU backend")

    def lower_gpu(self, gpu: GPUSpec, precision: Precision) -> GPULowering:
        raise UnsupportedConfigurationError(self.display, gpu.name,
                                            "no GPU backend")

    # -- productivity ---------------------------------------------------------

    def productivity(self, device: DeviceKind) -> ProductivityInfo:
        """Override per model; defaults are neutral."""
        return ProductivityInfo(kernel_lines=20, ceremony_lines=0,
                                needs_compile_step=False,
                                jit_warmup_seconds=0.0)

    # -- helpers -------------------------------------------------------------

    def _run_pipeline(self, passes, kernel: Kernel,
                      target: str = "") -> Tuple[Kernel, Tuple[PassRecord, ...]]:
        """Run this model's passes through a gating pipeline.

        The context string ties a :class:`repro.errors.LintError` back to
        the frontend and target that produced the illegal kernel.
        """
        from ..ir.passes.base import PassPipeline

        context = self.display + (f" on {target}" if target else "")
        out, records = PassPipeline(list(passes)).run(kernel, context=context)
        return out, tuple(records)

    def _listing_lines(self, device: DeviceKind, fallback: int) -> int:
        """Kernel LoC measured from the paper's actual source listing
        (:mod:`repro.models.listings`), falling back when no listing
        exists for this (model, device)."""
        from .listings import kernel_line_count

        lines = kernel_line_count(self.name, device)
        return lines if lines is not None else fallback

    def _threads(self, cpu: CPUSpec, config: Optional[RunConfig]) -> int:
        cfg = config if config is not None else RunConfig()
        return cfg.threads_for(self.family, cpu.cores)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name}>"
