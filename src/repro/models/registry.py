"""Model registry: look up programming models by name, enumerate the study.

The registry also answers the Table III structural question: which model is
the *reference* for a given target (C/OpenMP on CPUs, CUDA on NVIDIA, HIP
on AMD GPUs).
"""

from __future__ import annotations

from typing import Dict, List, Union

from ..machine.cpu import CPUSpec
from ..machine.gpu import GPUSpec
from .base import ProgrammingModel
from .c_openmp import COpenMPModel
from .cuda import CUDAModel
from .hip import HIPModel
from .julia import JuliaModel
from .kernel_abstractions import KernelAbstractionsModel
from .kokkos import KokkosModel
from .numba import NumbaModel
from .pyomp import PyOMPModel

__all__ = [
    "all_models",
    "portable_models",
    "extension_models",
    "model_by_name",
    "reference_model_for",
    "MODELS",
    "EXTENSION_MODELS",
]

#: The six models the paper benchmarks (Tables I/II).
MODELS: Dict[str, ProgrammingModel] = {
    m.name: m for m in (
        COpenMPModel(),
        CUDAModel(),
        HIPModel(),
        KokkosModel(),
        JuliaModel(),
        NumbaModel(),
    )
}

#: Models the paper cites but does not benchmark — PyOMP [32] and
#: KernelAbstractions.jl [55].  Usable everywhere by name; excluded from
#: the figure/table reproductions so those stay faithful to the paper.
EXTENSION_MODELS: Dict[str, ProgrammingModel] = {
    m.name: m for m in (
        PyOMPModel(),
        KernelAbstractionsModel(),
    )
}


def all_models(include_extensions: bool = False) -> List[ProgrammingModel]:
    """The paper's six models, optionally plus the cited-but-unbenchmarked extensions."""
    models = list(MODELS.values())
    if include_extensions:
        models += list(EXTENSION_MODELS.values())
    return models


def extension_models() -> List[ProgrammingModel]:
    """PyOMP and KernelAbstractions.jl (paper citations [32] and [55])."""
    return list(EXTENSION_MODELS.values())


def portable_models() -> List[ProgrammingModel]:
    """The three models Table III scores: Kokkos, Julia, Python/Numba."""
    return [m for m in MODELS.values() if not m.is_reference]


def model_by_name(name: str) -> ProgrammingModel:
    """Resolve a model by registry name, searching extensions too."""
    key = name.strip().lower()
    if key in MODELS:
        return MODELS[key]
    if key in EXTENSION_MODELS:
        return EXTENSION_MODELS[key]
    available = sorted(MODELS) + sorted(EXTENSION_MODELS)
    raise KeyError(f"unknown model {name!r}; available: {available}")


def reference_model_for(spec: Union[CPUSpec, GPUSpec]) -> ProgrammingModel:
    """The architecture-specific reference implementation of Sec. V."""
    if isinstance(spec, CPUSpec):
        return MODELS["c-openmp"]
    if isinstance(spec, GPUSpec):
        return MODELS["cuda"] if "NVIDIA" in spec.name.upper() else MODELS["hip"]
    raise TypeError(f"unknown target spec {type(spec).__name__}")
