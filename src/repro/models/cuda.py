"""Vendor CUDA: the NVIDIA GPU reference (Fig. 3a, Table II).

``nvcc -arch=sm_80`` on the thread-per-element kernel.  The PTX inspection
in Sec. IV-B found nvcc unrolls the reduction loop by 4 — the baseline the
CUDA.jl comparison hinges on.
"""

from __future__ import annotations

from ..arrays.random import FillPolicy
from ..core.types import DeviceKind, Layout, Precision
from ..gpu.launch import paper_launch
from ..gpu.warp_sim import IssueProfile
from ..ir import builder
from ..ir.passes import LoopInvariantMotion, UnrollInnerLoop
from ..machine.cpu import CPUSpec
from ..machine.gpu import GPUSpec
from .base import GPULowering, ProductivityInfo, ProgrammingModel, Support

__all__ = ["CUDAModel", "NVCC_UNROLL"]

#: Sec. IV-B: "unrolled loop instructions ... 4 in the native CUDA".
NVCC_UNROLL = 4


class CUDAModel(ProgrammingModel):
    """The vendor CUDA reference for NVIDIA GPUs (Fig. 3a)."""
    name = "cuda"
    display = "CUDA"
    language = "C"
    paper_version = "nvcc v11.5.1"
    family = "openmp"  # irrelevant on GPU; present for interface uniformity
    is_reference = True

    def supports_cpu(self, cpu: CPUSpec, precision: Precision) -> Support:
        return Support.no("CUDA targets NVIDIA GPUs only")

    def supports_gpu(self, gpu: GPUSpec, precision: Precision) -> Support:
        if "NVIDIA" not in gpu.name.upper():
            return Support.no("CUDA runs on NVIDIA GPUs only")
        if precision is Precision.FP16:
            # The artifact has no __half vendor kernel; Fig. 7c compares
            # only Julia and Numba at half precision.
            return Support.no("no half-precision vendor kernel in the artifact")
        return Support.yes()

    def lower_gpu(self, gpu: GPUSpec, precision: Precision) -> GPULowering:
        self.require_support(gpu, precision)
        kernel = builder.gpu_thread_per_element("gemm-cuda", precision,
                                                Layout.ROW_MAJOR)
        kernel, records = self._run_pipeline([
            LoopInvariantMotion(),
            UnrollInnerLoop(NVCC_UNROLL),
        ], kernel, target=gpu.name)
        return GPULowering(
            kernel=kernel,
            launch=paper_launch(x_axis="j"),  # row-major: x walks columns
            profile=IssueProfile(issue_multiplier=1.0),
            fill=FillPolicy(random_fp16=False),
            pass_records=tuple(records),
        )

    def productivity(self, device: DeviceKind) -> ProductivityInfo:
        return ProductivityInfo(kernel_lines=self._listing_lines(device, 18),
                                ceremony_lines=30,
                                needs_compile_step=True,
                                jit_warmup_seconds=0.0)
