"""Julia: ``Threads.@threads`` on CPU, CUDA.jl / AMDGPU.jl on GPUs.

Lowering facts encoded from the paper:

* **CPU (Fig. 2c)**: column-major arrays, ``@threads`` over columns,
  ``temp = B[l, j]`` hoisted, ``@inbounds`` elides bounds checks, pinning
  via ``JULIA_EXCLUSIVE=1``.  Performance "almost on par with the vendor
  OpenMP implementations" — the residual is Julia's LLVM pipeline missing
  the last few percent of the vendor compilers' schedule/prefetch tuning.
* **NVIDIA GPU (Fig. 3b)**: CUDA.jl generates PTX with the reduction loop
  unrolled **2x** where nvcc unrolls 4x (Sec. IV-B) — fewer accumulator
  streams and double the loop-control overhead — plus 64-bit
  multi-dimensional index arithmetic in the inner loop ("a difference in
  unrolled loop instructions"), yielding the constant overhead visible in
  Fig. 7a.
* **AMD GPU (Fig. 3c)**: AMDGPU.jl is "comparable to HIP", and at single
  precision "slightly better ... although the differences ... could simply
  be the variability on this particular system" — encoded as a 0.95x
  factor with exactly that caveat.
* **FP16**: the only model with seamless half support.  Native on the Arm
  CPU (Neoverse-N1 FMLA) and on both GPUs; on the AMD CPU Julia's FP16
  falls back to scalar convert-compute-convert, the "very low performance
  (not reported)" path (Sec. IV-A footnote 4).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..arrays.random import FillPolicy
from ..config import RunConfig
from ..core.types import DeviceKind, Layout, Precision
from ..gpu.launch import paper_launch
from ..gpu.warp_sim import IssueProfile
from ..ir import builder
from ..ir.passes import (
    ElideBoundsChecks,
    LoopInvariantMotion,
    UnrollInnerLoop,
    VectorizeInnerLoop,
)
from ..machine.cpu import CPUSpec
from ..machine.gpu import GPUSpec
from ..sched.affinity import PinPolicy
from ..sim.executor import CPUIssueProfile
from .base import CPULowering, GPULowering, ProductivityInfo, ProgrammingModel, Support

__all__ = ["JuliaModel", "CUDAJL_UNROLL"]

#: Sec. IV-B PTX inspection: CUDA.jl unrolls the reduction loop by 2.
CUDAJL_UNROLL = 2

#: Julia's LLVM pipeline vs the vendor compilers on the same CPU loop:
#: the few-percent residual behind "almost on par" (Fig. 4/5), keyed by
#: (cpu catalog name, precision).  Calibrated against Table III.
_CPU_QUALITY: Dict[Tuple[str, Precision], float] = {
    ("AMD EPYC 7A53", Precision.FP64): 1.10,
    ("AMD EPYC 7A53", Precision.FP32): 1.03,
    ("Ampere Altra", Precision.FP64): 1.10,
    ("Ampere Altra", Precision.FP32): 1.11,
    ("Ampere Altra", Precision.FP16): 1.10,
    # Immature FP16 on x86: scalar convert/compute/convert per element
    # (JuliaLang issue #45542, cited by the paper) — "very low performance".
    ("AMD EPYC 7A53", Precision.FP16): 30.0,
}

#: GPU residual code-quality factors keyed by (gpu catalog name, precision).
#: The A100 values encode the inner-loop instruction surplus that the
#: paper's PTX diff identified; the MI250X FP32 value below 1.0 encodes the
#: measured slightly-better-than-HIP result with the paper's variability
#: caveat.
_GPU_QUALITY: Dict[Tuple[str, Precision], float] = {
    ("NVIDIA A100", Precision.FP64): 1.16,
    ("NVIDIA A100", Precision.FP32): 1.16,
    ("NVIDIA A100", Precision.FP16): 1.16,
    ("AMD MI250X (1 GCD)", Precision.FP64): 1.107,
    ("AMD MI250X (1 GCD)", Precision.FP32): 0.95,
    ("AMD MI250X (1 GCD)", Precision.FP16): 1.05,
}

#: Extra integer instructions per inner iteration on GPUs: 64-bit
#: 2-D index arithmetic that CUDA.jl/AMDGPU.jl emit without the strength
#: reduction nvcc/hipcc apply.
_GPU_EXTRA_INT = {
    "NVIDIA A100": 14.0,
    "AMD MI250X (1 GCD)": 10.0,
}


class JuliaModel(ProgrammingModel):
    """Julia: @threads on CPU, CUDA.jl/AMDGPU.jl on GPUs (Figs. 2c, 3b-c)."""
    name = "julia"
    display = "Julia"
    language = "Julia"
    paper_version = "v1.7.2 / v1.8.0-rc1"
    family = "julia"

    def supports_cpu(self, cpu: CPUSpec, precision: Precision) -> Support:
        if precision is Precision.FP16 and not cpu.native_fp16:
            # Runs, but the paper obtained "very low performance on Crusher
            # AMD CPUs (not reported in this work)".
            return Support(True, "FP16 not native; very low performance "
                                 "(excluded from the paper's figures)",
                           degraded=True)
        return Support.yes()

    def supports_gpu(self, gpu: GPUSpec, precision: Precision) -> Support:
        # CUDA.jl and AMDGPU.jl cover both vendors at all three precisions,
        # including FP16 RNG on device (Sec. IV-B).
        return Support.yes()

    # -- CPU -----------------------------------------------------------------

    def lower_cpu(self, cpu: CPUSpec, precision: Precision,
                  config: Optional[RunConfig] = None) -> CPULowering:
        self.require_support(cpu, precision)
        kernel = builder.julia_threads_cpu(precision)
        lanes = cpu.simd_lanes(precision)
        fp16_soft = precision is Precision.FP16 and not cpu.native_fp16
        kernel, records = self._run_pipeline([
            LoopInvariantMotion(),
            ElideBoundsChecks(),  # the @inbounds in Fig. 2c
            VectorizeInnerLoop(1 if fp16_soft else lanes),
            UnrollInnerLoop(1 if fp16_soft else 4),
        ], kernel, target=cpu.name)

        cfg = config if config is not None else RunConfig.julia(cpu.cores)
        pin = PinPolicy.COMPACT if (config is None or cfg.pinning_for("julia")) \
            else PinPolicy.NONE
        quality = _CPU_QUALITY.get((cpu.name, precision), 1.10)
        return CPULowering(
            kernel=kernel,
            pin=pin,
            profile=CPUIssueProfile(issue_multiplier=quality),
            threads=self._threads(cpu, config),
            fill=FillPolicy(random_fp16=True),  # Julia has FP16 RNG
            pass_records=tuple(records),
        )

    # -- GPU -----------------------------------------------------------------

    def lower_gpu(self, gpu: GPUSpec, precision: Precision) -> GPULowering:
        self.require_support(gpu, precision)
        # Julia arrays are column-major; CUDA.jl kernels put threadIdx.x on
        # the row index, keeping accesses coalesced for that layout.
        kernel = builder.gpu_thread_per_element("gemm-julia-gpu", precision,
                                                Layout.COL_MAJOR)
        kernel, records = self._run_pipeline([
            LoopInvariantMotion(),
            UnrollInnerLoop(CUDAJL_UNROLL),
        ], kernel, target=gpu.name)
        quality = _GPU_QUALITY.get((gpu.name, precision), 1.15)
        profile = IssueProfile(
            issue_multiplier=quality,
            extra_int_per_iter=_GPU_EXTRA_INT.get(gpu.name, 12.0),
        )
        return GPULowering(
            kernel=kernel,
            launch=paper_launch(x_axis="i"),  # column-major: x walks rows
            profile=profile,
            fill=FillPolicy(random_fp16=True),
            pass_records=tuple(records),
        )

    def productivity(self, device: DeviceKind) -> ProductivityInfo:
        # Fig. 2c / 3b-c: the shortest kernels in the study; no build step,
        # but a first-call JIT compilation the harness warm-up absorbs.
        return ProductivityInfo(kernel_lines=self._listing_lines(device, 12),
                                ceremony_lines=4,
                                needs_compile_step=False,
                                jit_warmup_seconds=2.5)
