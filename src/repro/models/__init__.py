"""Programming-model frontends: C/OpenMP, Kokkos, Julia, Numba, CUDA, HIP."""

from .base import (
    CPULowering,
    GPULowering,
    ProductivityInfo,
    ProgrammingModel,
    Support,
)
from .c_openmp import COpenMPModel
from .cuda import CUDAModel
from .hip import HIPModel
from .julia import JuliaModel
from .kernel_abstractions import KernelAbstractionsModel
from .kokkos import KokkosModel
from .numba import NumbaModel
from .pyomp import PyOMPModel
from .registry import (
    EXTENSION_MODELS,
    MODELS,
    all_models,
    extension_models,
    model_by_name,
    portable_models,
    reference_model_for,
)

__all__ = [
    "CPULowering",
    "GPULowering",
    "ProductivityInfo",
    "ProgrammingModel",
    "Support",
    "COpenMPModel",
    "CUDAModel",
    "HIPModel",
    "JuliaModel",
    "KernelAbstractionsModel",
    "KokkosModel",
    "NumbaModel",
    "PyOMPModel",
    "MODELS",
    "EXTENSION_MODELS",
    "all_models",
    "extension_models",
    "model_by_name",
    "portable_models",
    "reference_model_for",
]
