"""C++/Kokkos v3.6.01 with OpenMP, CUDA and HIP back ends (Fig. 2b, Tables I/II).

Lowering facts encoded from the paper:

* **CPU (OpenMP back end)**: the artifact's Kokkos GEMM parallelises rows
  with the same inner loops as the C version; on Crusher's EPYC it matches
  C/OpenMP (e = 0.994), so the lowering is C-equivalent there.  On
  Wombat's Arm CPU "Kokkos ... experiences a slowdown in both cases" —
  ArmClang's schedule for the template-expanded lambda loses ~15% against
  the plain C loop, encoded as an arch-keyed quality factor.
* **NVIDIA GPU (CUDA back end)**: "Kokkos ... consistently underperform[s],
  which raises questions about the configuration and/or actual GPU runs"
  (verified active via nvprof).  Kokkos's template-chosen iteration
  mapping disagrees with its device array layout here: ``threadIdx.x``
  walks the column index over ``LayoutLeft`` (column-major) views, so the
  B operand is accessed with a large stride — one memory transaction per
  thread per iteration, a 4x memory-system amplification that matches the
  measured 0.26 double-precision efficiency.  This is the library's
  known failure mode the paper alludes to: "Templates set this kind of
  optimization ... earlier than the actual code generation phases"
  (Sec. II-b).
* **AMD GPU (HIP back end)**: coalesced (the HIP specialisation maps
  row-of-wavefront correctly) but with template overhead, a growing
  single-precision gap, and "a repeatable slowdown at the largest size",
  encoded as an L2-thrash penalty once the operand footprint passes the
  GCD's L2 reach.
* **FP16**: no seamless half support (Sec. IV-B) — unsupported.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..arrays.random import FillPolicy
from ..config import RunConfig
from ..core.types import DeviceKind, Layout, Precision
from ..gpu.launch import paper_launch
from ..gpu.warp_sim import IssueProfile
from ..ir import builder
from ..ir.passes import (
    LoopInvariantMotion,
    UnrollInnerLoop,
    VectorizeInnerLoop,
)
from ..machine.cpu import CPUSpec
from ..machine.gpu import GPUSpec
from ..sched.affinity import PinPolicy
from ..sim.executor import CPUIssueProfile
from .base import CPULowering, GPULowering, ProductivityInfo, ProgrammingModel, Support

__all__ = ["KokkosModel"]

#: CPU residual vs the vendor C/OpenMP build, keyed by (cpu name, precision).
_CPU_QUALITY: Dict[Tuple[str, Precision], float] = {
    ("AMD EPYC 7A53", Precision.FP64): 1.00,
    ("AMD EPYC 7A53", Precision.FP32): 1.00,
    ("Ampere Altra", Precision.FP64): 1.17,
    ("Ampere Altra", Precision.FP32): 1.20,
}

#: GPU residual factors keyed by (gpu name, precision).  The CUDA FP32
#: value below 1.0 is a calibration residual: the strided-access mechanism
#: is sector-granular and therefore precision-independent, while the
#: measured FP32 efficiency (0.208) sits somewhat above what that predicts;
#: see EXPERIMENTS.md.
_GPU_QUALITY: Dict[Tuple[str, Precision], float] = {
    ("NVIDIA A100", Precision.FP64): 1.03,
    ("NVIDIA A100", Precision.FP32): 0.72,
    ("AMD MI250X (1 GCD)", Precision.FP64): 1.19,
    ("AMD MI250X (1 GCD)", Precision.FP32): 1.48,
}

#: Footprint beyond which the Kokkos/HIP kernel's scheduling pattern starts
#: thrashing the GCD's 8 MiB L2 (the "repeatable slowdown at the largest
#: size" of Fig. 6a); threshold ~= 3 x 16384^2 x 8 bytes.
_HIP_THRASH_THRESHOLD = 5.0e9
_HIP_THRASH_FACTOR = 1.18


class KokkosModel(ProgrammingModel):
    """C++/Kokkos with OpenMP, CUDA and HIP back ends (Fig. 2b)."""
    name = "kokkos"
    display = "Kokkos"
    language = "C++"
    paper_version = "v3.6.01"
    family = "kokkos"

    def supports_cpu(self, cpu: CPUSpec, precision: Precision) -> Support:
        if precision is Precision.FP16:
            return Support.no("no seamless FP16 support (Sec. IV-B)")
        return Support.yes()

    def supports_gpu(self, gpu: GPUSpec, precision: Precision) -> Support:
        if precision is Precision.FP16:
            return Support.no("no seamless FP16 support (Sec. IV-B)")
        return Support.yes("backend: " + ("Cuda" if "NVIDIA" in gpu.name.upper() else "Hip"))

    # -- CPU -----------------------------------------------------------------

    def lower_cpu(self, cpu: CPUSpec, precision: Precision,
                  config: Optional[RunConfig] = None) -> CPULowering:
        self.require_support(cpu, precision)
        # C-equivalent row-parallel loop nest (see module docstring).
        kernel = builder.build_gemm(
            "gemm-kokkos-openmp", precision, "ikj", Layout.ROW_MAJOR,
            parallel_vars=("i",), hoist_invariant=True,
        )
        kernel, records = self._run_pipeline([
            LoopInvariantMotion(),
            VectorizeInnerLoop(cpu.simd_lanes(precision)),
            UnrollInnerLoop(4),
        ], kernel, target=cpu.name)

        cfg = config if config is not None else RunConfig.openmp(cpu.cores)
        pin = PinPolicy.COMPACT if (config is None or cfg.pinning_for("kokkos")) \
            else PinPolicy.NONE
        quality = _CPU_QUALITY.get((cpu.name, precision), 1.1)
        return CPULowering(
            kernel=kernel,
            pin=pin,
            profile=CPUIssueProfile(issue_multiplier=quality),
            threads=self._threads(cpu, config),
            fill=FillPolicy(random_fp16=False),
            pass_records=tuple(records),
        )

    # -- GPU -----------------------------------------------------------------

    def lower_gpu(self, gpu: GPUSpec, precision: Precision) -> GPULowering:
        self.require_support(gpu, precision)
        is_cuda = "NVIDIA" in gpu.name.upper()
        # Kokkos device Views default to LayoutLeft (column-major).
        kernel = builder.gpu_thread_per_element(
            "gemm-kokkos-" + ("cuda" if is_cuda else "hip"),
            precision, Layout.COL_MAJOR)
        kernel, records = self._run_pipeline([
            LoopInvariantMotion(),
            UnrollInnerLoop(4),  # the underlying nvcc/hipcc still unroll
        ], kernel, target=gpu.name)

        quality = _GPU_QUALITY.get((gpu.name, precision), 1.2)
        if is_cuda:
            # Mapping/layout mismatch: x on the column index of LayoutLeft
            # data -> strided B accesses (module docstring).
            launch = paper_launch(x_axis="j")
            profile = IssueProfile(issue_multiplier=quality,
                                   extra_int_per_iter=6.0)
        else:
            launch = paper_launch(x_axis="i")  # coalesced for LayoutLeft
            profile = IssueProfile(
                issue_multiplier=quality,
                extra_int_per_iter=6.0,
                thrash_threshold_bytes=_HIP_THRASH_THRESHOLD,
                thrash_factor=_HIP_THRASH_FACTOR,
            )
        return GPULowering(
            kernel=kernel,
            launch=launch,
            profile=profile,
            fill=FillPolicy(random_fp16=False),
            pass_records=tuple(records),
        )

    def productivity(self, device: DeviceKind) -> ProductivityInfo:
        # The lambda kernel is compact but carries CMake + template
        # instantiation ceremony ("its own compilation framework", App. A).
        return ProductivityInfo(kernel_lines=self._listing_lines(device, 16),
                                ceremony_lines=60,
                                needs_compile_step=True,
                                jit_warmup_seconds=0.0)
