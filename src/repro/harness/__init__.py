"""Benchmark harness: experiments, runner, results, reports, paper figures."""

from .crossover import CrossoverPoint, CrossoverStudy, device_crossover
from .experiment import Experiment, PAPER_SIZES, QUICK_SIZES
from .gnuplot import to_dat, to_gnuplot_script, write_gnuplot_bundle
from .export import (
    result_set_to_csv,
    result_set_to_dict,
    result_set_to_json,
    table3_to_dict,
    table3_to_json,
)
from .figures import (
    FigureResult,
    PAPER_PHI,
    PAPER_TABLE3,
    Table3Result,
    Table3Row,
    crusher_cpu_experiment,
    crusher_gpu_experiment,
    fig4,
    fig5,
    fig6,
    fig7,
    table1,
    table2,
    table3,
    wombat_cpu_experiment,
    wombat_gpu_experiment,
)
from .report import ascii_chart, ascii_table, efficiency_table, render_result_set
from .report_all import full_report
from .results import Measurement, ResultSet
from .roofline_view import RooflinePoint, RooflineView, roofline_view
from .scaling import (
    ScalingPoint,
    ScalingResult,
    default_thread_counts,
    thread_scaling,
    weak_scaling,
)
from .runner import run_experiment, run_measurement
from .variance import EfficiencyDistribution, VarianceStudy, variance_study
from .verify import (
    CellCheck,
    VerificationReport,
    verify_table3,
)

__all__ = [
    "CrossoverPoint",
    "CrossoverStudy",
    "device_crossover",
    "Experiment",
    "PAPER_SIZES",
    "QUICK_SIZES",
    "FigureResult",
    "PAPER_PHI",
    "PAPER_TABLE3",
    "Table3Result",
    "Table3Row",
    "crusher_cpu_experiment",
    "crusher_gpu_experiment",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "table1",
    "table2",
    "table3",
    "wombat_cpu_experiment",
    "wombat_gpu_experiment",
    "ascii_chart",
    "ascii_table",
    "render_result_set",
    "efficiency_table",
    "full_report",
    "to_dat",
    "to_gnuplot_script",
    "write_gnuplot_bundle",
    "Measurement",
    "ResultSet",
    "result_set_to_csv",
    "result_set_to_dict",
    "result_set_to_json",
    "table3_to_dict",
    "table3_to_json",
    "RooflinePoint",
    "RooflineView",
    "roofline_view",
    "ScalingPoint",
    "ScalingResult",
    "default_thread_counts",
    "thread_scaling",
    "weak_scaling",
    "run_experiment",
    "run_measurement",
    "CellCheck",
    "VerificationReport",
    "verify_table3",
    "EfficiencyDistribution",
    "VarianceStudy",
    "variance_study",
]
