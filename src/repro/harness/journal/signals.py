"""Graceful shutdown: turn SIGINT/SIGTERM into a journal-finalizing exit.

On shared HPC front-ends a campaign dies by ``Ctrl-C``, by the batch
system's SIGTERM at the end of an allocation, or by preemption.  With a
write-ahead journal active, none of those should lose state: the engine
wants one chance to write its ``run-close`` record and tell the user how
to resume.  :func:`graceful_shutdown` installs handlers that raise
:class:`KeyboardInterrupt` for both signals — funnelling SIGTERM into
the same well-trodden interrupt path the engine already finalizes — and
restores the previous handlers on exit.

Handlers can only be installed from the main thread (a CPython rule);
elsewhere the context manager degrades to a no-op, which is safe: a
non-main-thread engine run still finalizes on ``KeyboardInterrupt``
delivered to it, it just cannot intercept raw signals.
"""

from __future__ import annotations

import contextlib
import signal
import threading
from typing import Iterator

__all__ = ["EXIT_INTERRUPTED", "EXIT_FSCK_CORRUPT", "graceful_shutdown"]

#: Exit code of a run interrupted by SIGINT/SIGTERM after the journal
#: was finalized (the shell convention for death-by-SIGINT, 128 + 2).
EXIT_INTERRUPTED = 130

#: Exit code of ``repro fsck`` when corruption was found (and handled).
EXIT_FSCK_CORRUPT = 3


def _raise_interrupt(signum, frame):  # pragma: no cover - signal path
    raise KeyboardInterrupt(f"signal {signum}")


@contextlib.contextmanager
def graceful_shutdown() -> Iterator[None]:
    """Route SIGINT/SIGTERM into ``KeyboardInterrupt`` for this block.

    The engine catches the interrupt, finalizes the journal with a
    ``run-close(interrupted)`` record and raises
    :class:`~repro.errors.RunInterrupted`; the CLI maps that to exit
    code :data:`EXIT_INTERRUPTED` instead of dying mid-write.
    """
    if threading.current_thread() is not threading.main_thread():
        yield
        return
    previous = {}
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[sig] = signal.signal(sig, _raise_interrupt)
        except (ValueError, OSError):  # pragma: no cover - exotic hosts
            pass
    try:
        yield
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
