"""``repro fsck``: integrity verification of the whole persistent store.

Three stores accumulate state across campaigns — the result cache, the
run-journal registry, and exported JSON artifacts — and all three live
on filesystems that bit-rot, fill up, and host processes that die
mid-write.  ``fsck_store`` walks them all:

* **cache entries** must parse, carry the current schema/constants
  versions, name the fingerprint they are filed under, and match their
  embedded SHA-256 content digest.  Undecodable or digest-mismatched
  entries are *quarantined* (moved aside for post-mortem, never served
  again); stale-but-honest entries are evicted; orphaned ``*.tmp``
  files from writers killed mid-``put`` are removed.
* **journals** must replay cleanly; a torn tail is recovered by
  truncating to the longest valid record prefix (the write-ahead
  guarantee makes that prefix trustworthy), unreadable journals are
  quarantined into ``<runs_root>/quarantine/`` (so ``repro runs list``
  stops tripping over them), and unclosed runs are reported as
  resumable.
* **artifacts** (paths passed explicitly) must match their embedded
  content digest.

The report distinguishes *corruption* (bit-flips, torn tails — data that
lies about itself) from *hygiene* findings (stale versions, orphaned
temp files, resumable runs); ``repro fsck`` exits non-zero only for the
former.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Iterable, List, Optional

from ...errors import JournalError
from ...ioutil import content_digest, read_json_artifact
from ..export import SCHEMA_VERSION
from ..engine.cache import LOCK_GRACE_SECONDS, TMP_GRACE_SECONDS, ResultCache
from ..engine.fingerprint import CONSTANTS_VERSION
from .journal import load_journal, _truncate_to_valid_prefix
from .registry import RunRegistry

__all__ = ["FsckIssue", "FsckReport", "fsck_store"]


@dataclass(frozen=True)
class FsckIssue:
    """One finding: what was wrong where, and what fsck did about it."""

    severity: str   # "corrupt" | "warning"
    kind: str       # e.g. "cache-digest", "journal-tail", "tmp-orphan"
    path: str
    detail: str
    action: str     # what fsck did: "quarantined", "evicted", ...

    def render(self) -> str:
        """One report line for this finding."""
        flag = "CORRUPT" if self.severity == "corrupt" else "warning"
        return (f"  [{flag}] {self.kind}: {self.path}\n"
                f"          {self.detail} -> {self.action}")


@dataclass
class FsckReport:
    """Everything one ``fsck_store`` pass checked, found and repaired."""

    cache_root: str = ""
    runs_root: str = ""
    cache_entries: int = 0
    journals: int = 0
    artifacts: int = 0
    tmp_removed: int = 0
    #: Stale ``*.lock`` sidecars reaped (SIGKILL'd writers; age-graced).
    locks_removed: int = 0
    #: Journals owned by a live process (ACTIVE sidecar) — skipped, not
    #: findings: an in-flight journal legitimately ends mid-record.
    active_skipped: int = 0
    issues: List[FsckIssue] = field(default_factory=list)

    @property
    def corrupt(self) -> bool:
        """Whether any finding was actual corruption (non-zero exit)."""
        return any(i.severity == "corrupt" for i in self.issues)

    @property
    def clean(self) -> bool:
        """Whether the store came through without a single finding."""
        return not self.issues

    def add(self, severity: str, kind: str, path: str, detail: str,
            action: str) -> None:
        """Record one finding."""
        self.issues.append(FsckIssue(severity, kind, path, detail, action))

    def render(self) -> str:
        """The ``repro fsck`` report."""
        corrupt = sum(1 for i in self.issues if i.severity == "corrupt")
        warnings = len(self.issues) - corrupt
        lines = [
            f"fsck: cache {self.cache_root or '(skipped)'}",
            f"      runs  {self.runs_root or '(skipped)'}",
            f"checked {self.cache_entries} cache entries, "
            f"{self.journals} journals, {self.artifacts} artifacts"
            + (f"; removed {self.tmp_removed} orphaned tmp file(s)"
               if self.tmp_removed else "")
            + (f"; skipped {self.active_skipped} ACTIVE journal(s) "
               f"owned by live processes" if self.active_skipped else ""),
        ]
        lines += [issue.render() for issue in self.issues]
        lines.append(
            "store is clean" if self.clean else
            f"{corrupt} corrupt, {warnings} warning(s)"
            + (" — corrupt entries quarantined/recovered" if corrupt else ""))
        return "\n".join(lines)


# -- cache ----------------------------------------------------------------

def _quarantine_into(root: str, path: str) -> str:
    """Move a corrupt file into ``<root>/quarantine/`` for post-mortem."""
    qdir = os.path.join(root, "quarantine")
    os.makedirs(qdir, exist_ok=True)
    dest = os.path.join(qdir, os.path.basename(path))
    n = 1
    while os.path.exists(dest):
        dest = os.path.join(qdir, f"{os.path.basename(path)}.{n}")
        n += 1
    os.replace(path, dest)
    return dest


def _quarantine(cache: ResultCache, path: str) -> str:
    """Move a corrupt cache entry aside, never to be served again."""
    return _quarantine_into(cache.root, path)


def _check_cache_entry(cache: ResultCache, path: str,
                       report: FsckReport) -> None:
    fingerprint = os.path.splitext(os.path.basename(path))[0]
    try:
        with open(path) as fh:
            entry = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        dest = _quarantine(cache, path)
        report.add("corrupt", "cache-parse", path,
                   f"undecodable entry ({exc})", f"quarantined to {dest}")
        return
    if (entry.get("schema") != SCHEMA_VERSION
            or entry.get("constants") != CONSTANTS_VERSION):
        os.unlink(path)
        report.add("warning", "cache-stale", path,
                   f"schema/constants {entry.get('schema')!r}/"
                   f"{entry.get('constants')!r} predate this build",
                   "evicted")
        return
    if entry.get("fingerprint") != fingerprint:
        dest = _quarantine(cache, path)
        report.add("corrupt", "cache-misfiled", path,
                   f"entry names fingerprint {entry.get('fingerprint')!r}",
                   f"quarantined to {dest}")
        return
    stated = entry.get("digest")
    if stated is None:
        os.unlink(path)
        report.add("warning", "cache-undigested", path,
                   "entry predates content digests", "evicted")
        return
    actual = content_digest(entry.get("measurement"))
    if stated != actual:
        dest = _quarantine(cache, path)
        report.add("corrupt", "cache-digest", path,
                   f"content digest mismatch (stated {stated[:12]}..., "
                   f"actual {actual[:12]}...)", f"quarantined to {dest}")


def _fsck_cache(cache: ResultCache, report: FsckReport) -> None:
    report.cache_root = cache.root
    for path in list(cache._entry_paths()):
        report.cache_entries += 1
        _check_cache_entry(cache, path, report)
    # Only temp files past the grace window: a younger one may be a live
    # worker's in-flight write (the process-pool engine races fsck-able
    # stores), and unlinking it would corrupt that worker's put.
    for tmp in list(cache.orphan_tmp_paths(min_age_s=TMP_GRACE_SECONDS)):
        try:
            os.unlink(tmp)
            report.tmp_removed += 1
            report.add("warning", "tmp-orphan", tmp,
                       "writer died mid-put", "removed")
        except OSError:
            pass
    # Same age-grace logic for lock sidecars: a SIGKILL'd worker's flock
    # died with it, so a stale sidecar can never wedge a digest — but a
    # younger one may be held right now, and unlinking a *held* lock
    # file would give the next locker a different inode.
    for lock in list(cache.stale_lock_paths(min_age_s=LOCK_GRACE_SECONDS)):
        try:
            os.unlink(lock)
            report.locks_removed += 1
            report.add("warning", "lock-orphan", lock,
                       "writer died holding its digest lock", "removed")
        except OSError:
            pass


# -- journals -------------------------------------------------------------

def _fsck_runs(registry: RunRegistry, report: FsckReport) -> None:
    report.runs_root = registry.root
    for run_id in registry.run_ids():
        report.journals += 1
        path = registry.path_for(run_id)
        if registry.active_info(run_id) is not None:
            # A live owner is appending to this journal right now: its
            # tail may legitimately be mid-write, and truncating or
            # flagging it would fight the owner.  Leave it alone.
            report.active_skipped += 1
            continue
        try:
            state = load_journal(path)
        except JournalError as exc:
            dest = _quarantine_into(registry.root, path)
            report.add("corrupt", "journal-unreadable", path, str(exc),
                       f"quarantined to {dest}")
            continue
        if state.dropped:
            _truncate_to_valid_prefix(path, state.valid_lines)
            report.add("corrupt", "journal-tail", path,
                       f"{state.dropped} torn/corrupt trailing record(s)",
                       f"recovered: truncated to {state.valid_lines} "
                       f"valid record(s)")
        if state.status == "open":
            report.add("warning", "journal-unclosed", path,
                       f"run never closed ({state.done_cells}/"
                       f"{state.total_cells} cells journaled)",
                       f"resumable: repro run --resume {run_id}")


# -- artifacts ------------------------------------------------------------

def _fsck_artifacts(paths: Iterable[str], report: FsckReport) -> None:
    for path in paths:
        report.artifacts += 1
        try:
            read_json_artifact(path)
        except (OSError, json.JSONDecodeError) as exc:
            report.add("corrupt", "artifact-parse", path,
                       f"unreadable artifact ({exc})", "left in place")
        except ValueError as exc:
            severity = ("warning" if "no embedded content digest" in str(exc)
                        else "corrupt")
            report.add(severity, "artifact-digest", path, str(exc),
                       "left in place")


def fsck_store(cache: Optional[ResultCache] = None,
               registry: Optional[RunRegistry] = None,
               artifacts: Iterable[str] = ()) -> FsckReport:
    """Verify (and where safe, repair) the persistent store.

    ``cache``/``registry`` default to the process-wide locations; pass
    explicit instances to check relocated stores.  ``artifacts`` are
    extra exported-JSON paths to digest-verify.  Returns the
    :class:`FsckReport`; ``report.corrupt`` drives the non-zero exit.
    """
    report = FsckReport()
    _fsck_cache(cache if cache is not None else ResultCache(), report)
    _fsck_runs(registry if registry is not None else RunRegistry(), report)
    _fsck_artifacts(artifacts, report)
    return report
