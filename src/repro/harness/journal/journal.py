"""The write-ahead run journal: crash-safe record of one sweep campaign.

A :class:`RunJournal` is an append-only JSONL log.  Every event of a
campaign — the opening manifest, each cell completing or failing, the
final close — is one line, fsync'd before the engine proceeds, so the
journal is always at most one *partial* line behind reality no matter
when the process dies.  Each record carries a checksum over its own
canonical rendering; on load the reader replays the longest valid prefix
and drops a torn tail (a record half-written at the instant of death)
instead of refusing the whole file.

Record types, in the order a run writes them::

    run-open    manifest (experiment dict), campaign fingerprint,
                resilience options, the planned cell list
    cell-start  a cell began executing (its fingerprint is now in flight)
    cell-done   a cell completed; embeds the full measurement payload
                (+ per-cell health metadata on breaker-enabled runs)
    cell-failed a cell permanently failed; embeds the degraded payload
    breaker     a lane's circuit breaker changed state (breaker runs)
    campaign    service metadata: the campaign's scheduler state
                (queued/admitted/running/done/failed), tenant, priority
                and — on the first record — the full CampaignSpec
                payload, making the journal the daemon's durable queue
    run-resume  a later process picked the run back up
    run-close   status "complete" | "interrupted" | "failed"

(The ``campaign`` record type postdates PR 4; older readers skip unknown
types in their dispatch loop, so mixed-version stores stay readable.)

Because ``cell-done``/``cell-failed`` embed the full-fidelity
measurement (the same schema the result cache and exporters use), a
resumed run can replay completed cells *byte-identically* without
touching the simulator — and without depending on the cache, which may
be disabled, relocated or since evicted.

Write-failure policy (disk full, quota): the journal is a durability
aid, never a correctness dependency of the *running* process — results
live in memory until the run returns them.  So an ``OSError`` during
:meth:`RunJournal.append` flips the journal into *degraded* mode: the
failed record (and every later one) is dropped and counted, the file
handle is closed, one warning lands on stderr, and the run continues
to completion.  What is lost is exactly resumability — the on-disk
prefix stays a valid journal (the torn-tail truncation handles any
half-written line), but a crash after degradation re-executes the
un-journaled cells.  ``degraded`` / ``dropped_appends`` expose the
state to callers; ``repro fsck`` sees a clean, merely-short journal.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ...chaos.plan import chaos_strike
from ...core.types import Precision
from ...errors import JournalError
from ...ioutil import canonical_json
from ..export import measurement_from_dict, measurement_to_dict
from ..results import Measurement

__all__ = ["JOURNAL_FORMAT", "RunJournal", "JournalState", "load_journal"]

#: Version of the journal record format; bumped on incompatible changes.
JOURNAL_FORMAT = 1

#: Statuses a ``run-close`` record may carry.
_CLOSE_STATUSES = ("complete", "interrupted", "failed")


def _record_checksum(seq: int, rtype: str, data: Dict[str, Any]) -> str:
    """Truncated SHA-256 over the record's canonical rendering."""
    body = canonical_json({"seq": seq, "type": rtype, "data": data})
    return hashlib.sha256(body.encode()).hexdigest()[:16]


class RunJournal:
    """Append-only, fsync'd, per-record-checksummed log of one run.

    Writers are thread-safe: the engine's worker threads all funnel
    through one lock, and every append is flushed and fsync'd before
    returning, so a completed cell is durable the moment the engine
    moves on.
    """

    def __init__(self, path: str, run_id: str, *, _seq: int = 0) -> None:
        self.path = path
        self.run_id = run_id
        self._seq = _seq
        self._lock = threading.Lock()
        self._fh = None
        self._finalized = False
        self._degraded = False
        self._degrade_reason = ""
        self._dropped_appends = 0

    # -- constructors -----------------------------------------------------

    @classmethod
    def create(cls, path: str, run_id: str) -> "RunJournal":
        """A fresh journal; the file appears on the first append."""
        if os.path.exists(path):
            raise JournalError(f"journal {path} already exists")
        os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
        return cls(path, run_id)

    @classmethod
    def reopen(cls, path: str) -> "RunJournal":
        """Continue an existing journal (the resume path).

        Loads the valid prefix to find the last sequence number; if the
        file carries a torn tail, the tail is truncated away first so
        appended records always follow a valid one.
        """
        state = load_journal(path)
        if state.dropped:
            _truncate_to_valid_prefix(path, state.valid_lines)
        return cls(path, state.run_id, _seq=state.records)

    # -- appends ----------------------------------------------------------

    def append(self, rtype: str, **data: Any) -> None:
        """Durably append one record (write + flush + fsync).

        A write failure (disk full, quota) degrades the journal instead
        of crashing the run: this and every later record are dropped
        and counted, the on-disk prefix stays valid, and the run merely
        loses resumability (see the module docstring for the policy).
        """
        with self._lock:
            if self._finalized:
                return
            if self._degraded:
                self._dropped_appends += 1
                return
            self._seq += 1
            record = {"seq": self._seq, "type": rtype, "data": data,
                      "chk": _record_checksum(self._seq, rtype, data)}
            try:
                # Chaos strike point "journal-append": an armed plan can
                # simulate the disk filling mid-campaign right here.
                chaos_strike("journal-append", rtype)
                if self._fh is None:
                    self._fh = open(self.path, "a")
                self._fh.write(json.dumps(record, sort_keys=True,
                                          separators=(",", ":")) + "\n")
                self._fh.flush()
                os.fsync(self._fh.fileno())
            except OSError as exc:
                # The record never became durable; rewind the sequence
                # so state reflects exactly the on-disk valid prefix.
                self._seq -= 1
                self._degraded = True
                self._degrade_reason = str(exc)
                self._dropped_appends = 1
                if self._fh is not None:
                    with_fh = self._fh
                    self._fh = None
                    try:
                        with_fh.close()
                    except OSError:
                        pass
                print(f"repro: journal {self.run_id}: write failed "
                      f"({exc}); journaling disabled for the rest of "
                      f"this run — results are unaffected, but cells "
                      f"from here on would re-execute on resume",
                      file=sys.stderr)

    @property
    def degraded(self) -> bool:
        """Whether a write failure disabled journaling for this run."""
        return self._degraded

    @property
    def degrade_reason(self) -> str:
        """The error that degraded the journal ("" while healthy)."""
        return self._degrade_reason

    @property
    def dropped_appends(self) -> int:
        """Records dropped since the journal degraded."""
        return self._dropped_appends

    def open_run(self, manifest: Dict[str, Any], campaign: str,
                 options: Dict[str, Any],
                 cells: List[Dict[str, Any]]) -> None:
        """The write-ahead manifest: what this run is going to do."""
        self.append("run-open", format=JOURNAL_FORMAT, run_id=self.run_id,
                    created=time.time(), manifest=manifest,
                    campaign=campaign, options=options, cells=cells)

    def resume_run(self, completed: int, total: int) -> None:
        """Mark that a new process picked this run back up."""
        self.append("run-resume", resumed=time.time(),
                    completed=completed, total=total)

    def cell_start(self, index: int, model: str, shape: str,
                   fingerprint: str) -> None:
        """A cell is about to execute (write-ahead, before the work)."""
        self.append("cell-start", index=index, model=model, shape=shape,
                    fingerprint=fingerprint)

    def cell_done(self, index: int, fingerprint: str,
                  measurement: Measurement, *, cached: bool,
                  wall_s: float, attempts: int = 1,
                  faults: int = 0,
                  health: Optional[Dict[str, Any]] = None) -> None:
        """A cell completed; the embedded payload makes it replayable.

        ``health`` is the per-cell health metadata of breaker-enabled
        runs (native outcome plus simulated costs); replaying it in cell
        order walks every lane's state machine through identical
        transitions on resume.  ``None`` — every non-breaker run — keeps
        the record bytes exactly as before the health layer existed.
        """
        data: Dict[str, Any] = dict(index=index, fingerprint=fingerprint,
                                    cached=cached, wall_s=wall_s,
                                    attempts=attempts, faults=faults,
                                    measurement=measurement_to_dict(
                                        measurement))
        if health is not None:
            data["health"] = health
        self.append("cell-done", **data)

    def cell_failed(self, index: int, fingerprint: str,
                    measurement: Measurement, *, attempts: int,
                    faults: int, reason: str,
                    health: Optional[Dict[str, Any]] = None) -> None:
        """A cell permanently failed; the degraded payload is replayable."""
        data: Dict[str, Any] = dict(index=index, fingerprint=fingerprint,
                                    attempts=attempts, faults=faults,
                                    reason=reason,
                                    measurement=measurement_to_dict(
                                        measurement))
        if health is not None:
            data["health"] = health
        self.append("cell-failed", **data)

    def campaign_state(self, state: str, *, tenant: str = "",
                       priority: int = 0,
                       spec: Optional[Dict[str, Any]] = None,
                       **extra: Any) -> None:
        """One service-lifecycle transition of a submitted campaign.

        Written by the campaign service right after ``run-open`` (with
        the serialized :class:`~repro.service.spec.CampaignSpec` so a
        restarted daemon can rebuild its queue from journals alone) and
        again at every state change.  ``extra`` carries per-state detail —
        e.g. a failure reason.
        """
        data: Dict[str, Any] = dict(state=state, tenant=tenant,
                                    priority=priority, at=time.time())
        if spec is not None:
            data["spec"] = spec
        data.update(extra)
        self.append("campaign", **data)

    def breaker(self, *, lane: str, **payload: Any) -> None:
        """One breaker transition (the write-ahead lane-state history).

        Takes the keys of
        :meth:`repro.harness.health.BreakerTransition.payload` so the
        engine can journal a drained transition verbatim; ``repro
        health`` reconstructs the history from these records.
        """
        self.append("breaker", lane=lane, **payload)

    def close_run(self, status: str, completed: int, total: int) -> None:
        """Finalize the journal; further appends become no-ops."""
        if status not in _CLOSE_STATUSES:
            raise JournalError(f"unknown run-close status {status!r}")
        self.append("run-close", status=status, completed=completed,
                    total=total, closed=time.time())
        with self._lock:
            self._finalized = True
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    @property
    def opened(self) -> bool:
        """Whether a ``run-open`` record was written (or pre-existed)."""
        return self._seq > 0

    @property
    def finalized(self) -> bool:
        """Whether a ``run-close`` record has been written."""
        return self._finalized

    def close(self) -> None:
        """Release the file handle without finalizing the run."""
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None


@dataclass
class JournalState:
    """The loaded, validated view of one journal file.

    Built by :func:`load_journal` from the longest valid record prefix.
    ``completed`` maps cell fingerprints to their replayable
    measurements — the input to a resumed engine run.
    """

    run_id: str
    path: str
    created: float = 0.0
    manifest: Dict[str, Any] = field(default_factory=dict)
    campaign: str = ""
    options: Dict[str, Any] = field(default_factory=dict)
    cells: List[Dict[str, Any]] = field(default_factory=list)
    completed: Dict[str, Measurement] = field(default_factory=dict)
    #: Fingerprint -> per-cell health metadata (breaker-enabled runs).
    outcomes: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: Breaker transition payloads, in journal order.
    breaker_events: List[Dict[str, Any]] = field(default_factory=list)
    #: Latest ``campaign`` record's data (service-submitted runs only):
    #: scheduler state, tenant, priority, and the spec payload from the
    #: first such record.  Empty for plain ``repro run`` journals.
    service_meta: Dict[str, Any] = field(default_factory=dict)
    status: str = "open"
    records: int = 0
    valid_lines: int = 0
    dropped: int = 0
    resumes: int = 0

    @property
    def total_cells(self) -> int:
        """How many cells the campaign planned."""
        return len(self.cells)

    @property
    def done_cells(self) -> int:
        """How many planned cells have replayable results."""
        return len(self.completed)

    @property
    def remaining_cells(self) -> int:
        """How many planned cells still need executing."""
        return self.total_cells - self.done_cells

    @property
    def resumable(self) -> bool:
        """Whether ``repro run --resume`` has anything left to do."""
        return self.status != "complete"

    def describe(self) -> str:
        """One-line summary for ``repro runs list``."""
        exp = self.manifest.get("exp_id", "?")
        tail = f", {self.dropped} torn record(s)" if self.dropped else ""
        return (f"{self.run_id}  {self.status:<11s} "
                f"{self.done_cells}/{self.total_cells} cells  {exp}{tail}")


def _parse_record(line: str, expect_seq: int) -> Optional[Dict[str, Any]]:
    """One validated record, or ``None`` if the line is torn/corrupt."""
    try:
        record = json.loads(line)
    except json.JSONDecodeError:
        return None
    if not isinstance(record, dict):
        return None
    seq = record.get("seq")
    rtype = record.get("type")
    data = record.get("data")
    chk = record.get("chk")
    if seq != expect_seq or not isinstance(rtype, str) \
            or not isinstance(data, dict):
        return None
    if chk != _record_checksum(seq, rtype, data):
        return None
    return record


def load_journal(path: str) -> JournalState:
    """Load a journal, replaying the longest valid record prefix.

    Torn-tail recovery: reading stops at the first record that fails to
    parse, breaks the sequence, or fails its checksum; everything after
    it is counted in ``dropped`` (a crash can only tear the tail, and a
    bit-flip invalidates exactly the records from the flip onward —
    either way the valid prefix is the trustworthy write-ahead history).
    Raises :class:`~repro.errors.JournalError` if the file is unreadable
    or does not begin with a valid ``run-open`` record.
    """
    try:
        with open(path) as fh:
            lines = fh.read().splitlines()
    except OSError as exc:
        raise JournalError(f"cannot read journal {path}: {exc}") from exc
    records: List[Dict[str, Any]] = []
    for i, line in enumerate(lines):
        record = _parse_record(line, expect_seq=i + 1)
        if record is None:
            break
        records.append(record)
    if not records or records[0]["type"] != "run-open":
        raise JournalError(
            f"journal {path} has no valid run-open record")
    head = records[0]["data"]
    state = JournalState(
        run_id=head.get("run_id", ""),
        path=path,
        created=head.get("created", 0.0),
        manifest=head.get("manifest", {}),
        campaign=head.get("campaign", ""),
        options=head.get("options", {}),
        cells=list(head.get("cells", [])),
        records=len(records),
        valid_lines=len(records),
        dropped=len(lines) - len(records),
    )
    default_precision = Precision.parse(
        state.manifest.get("precision", "fp64"))
    for record in records[1:]:
        rtype, data = record["type"], record["data"]
        if rtype in ("cell-done", "cell-failed"):
            m = measurement_from_dict(data["measurement"],
                                      default_precision=default_precision)
            state.completed[data["fingerprint"]] = m
            if isinstance(data.get("health"), dict):
                state.outcomes[data["fingerprint"]] = data["health"]
        elif rtype == "breaker":
            state.breaker_events.append(dict(data))
        elif rtype == "campaign":
            # Later records carry state transitions but not the spec;
            # keep the spec from whichever record last carried one.
            spec = state.service_meta.get("spec")
            state.service_meta = dict(data)
            if "spec" not in state.service_meta and spec is not None:
                state.service_meta["spec"] = spec
        elif rtype == "run-close":
            state.status = data.get("status", "failed")
        elif rtype == "run-resume":
            state.resumes += 1
            state.status = "open"
    return state


def _truncate_to_valid_prefix(path: str, valid_lines: int) -> None:
    """Rewrite the journal keeping only its first ``valid_lines`` lines."""
    with open(path) as fh:
        lines = fh.read().splitlines()
    from ...ioutil import atomic_write_text
    kept = lines[:valid_lines]
    atomic_write_text(path, "".join(line + "\n" for line in kept))
