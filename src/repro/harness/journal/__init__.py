"""Crash-safe campaigns: write-ahead journal, resume, fsck.

The robustness layer above the sweep engine.  Long multi-model ×
multi-size × multi-precision campaigns — the runs behind the paper's
Figs. 4–7 and Table III — are routinely killed on shared nodes by
preemption, OOM or Ctrl-C.  This package makes a killed campaign a
checkpoint instead of a loss:

* :class:`RunJournal` — an append-only, fsync'd, per-record-checksummed
  JSONL write-ahead log of one run, with torn-tail recovery on load;
* :class:`RunRegistry` — the journals on disk, listed by run id
  (``$REPRO_RUNS_DIR``, default ``$XDG_CACHE_HOME/repro/runs``);
* :func:`resume_run` — replay completed cells from the journal and
  execute only the remainder, byte-identical to an uninterrupted run;
* :func:`graceful_shutdown` — SIGINT/SIGTERM finalize the journal and
  exit with :data:`EXIT_INTERRUPTED` instead of losing state;
* :func:`fsck_store` — verify content digests across the result cache,
  the journals and exported artifacts; quarantine/evict corruption.
"""

from __future__ import annotations

from .fsck import FsckIssue, FsckReport, fsck_store
from .journal import JOURNAL_FORMAT, JournalState, RunJournal, load_journal
from .registry import ACTIVE_STALE_SECONDS, RunRegistry, default_runs_dir
from .resume import restore_campaign, resume_run
from .signals import EXIT_FSCK_CORRUPT, EXIT_INTERRUPTED, graceful_shutdown

__all__ = [
    "JOURNAL_FORMAT",
    "RunJournal",
    "JournalState",
    "load_journal",
    "RunRegistry",
    "default_runs_dir",
    "ACTIVE_STALE_SECONDS",
    "restore_campaign",
    "resume_run",
    "graceful_shutdown",
    "EXIT_INTERRUPTED",
    "EXIT_FSCK_CORRUPT",
    "FsckIssue",
    "FsckReport",
    "fsck_store",
]
