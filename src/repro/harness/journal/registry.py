"""The run registry: every journaled campaign, listed by run id.

One directory (``$REPRO_RUNS_DIR``, defaulting next to the result cache
under ``$XDG_CACHE_HOME/repro/runs``) holds one ``<run-id>.jsonl``
write-ahead journal per campaign.  The registry mints collision-free run
ids, creates fresh journals, reopens interrupted ones for resume, and
enumerates everything for ``repro runs list``.
"""

from __future__ import annotations

import os
import time
import uuid
from typing import List, Optional

from ...errors import JournalError
from .journal import JournalState, RunJournal, load_journal

__all__ = ["RunRegistry", "default_runs_dir"]


def default_runs_dir() -> str:
    """``$REPRO_RUNS_DIR``, else ``$XDG_CACHE_HOME/repro/runs``."""
    explicit = os.environ.get("REPRO_RUNS_DIR")
    if explicit:
        return explicit
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache")
    return os.path.join(base, "repro", "runs")


class RunRegistry:
    """Journals on disk, addressed by run id."""

    def __init__(self, root: Optional[str] = None) -> None:
        self.root = root or default_runs_dir()

    # -- identity ---------------------------------------------------------

    def path_for(self, run_id: str) -> str:
        """The journal file backing ``run_id``."""
        if not run_id or os.sep in run_id or run_id.startswith("."):
            raise JournalError(f"malformed run id {run_id!r}")
        return os.path.join(self.root, run_id + ".jsonl")

    def new_run_id(self) -> str:
        """A fresh, human-sortable, collision-free run id."""
        while True:
            stamp = time.strftime("%Y%m%d-%H%M%S")
            run_id = f"run-{stamp}-{uuid.uuid4().hex[:6]}"
            if not os.path.exists(self.path_for(run_id)):
                return run_id

    # -- lifecycle --------------------------------------------------------

    def create(self, run_id: Optional[str] = None) -> RunJournal:
        """A fresh journal under a new (or caller-chosen) run id."""
        rid = run_id or self.new_run_id()
        return RunJournal.create(self.path_for(rid), rid)

    def load(self, run_id: str) -> JournalState:
        """The validated state of one run (torn tail already dropped)."""
        path = self.path_for(run_id)
        if not os.path.exists(path):
            known = ", ".join(self.run_ids()) or "none on record"
            raise JournalError(f"no run {run_id!r} in {self.root} "
                               f"(known: {known})")
        return load_journal(path)

    def reopen(self, run_id: str) -> RunJournal:
        """The journal of an existing run, opened for appending."""
        return RunJournal.reopen(self.path_for(run_id))

    # -- enumeration ------------------------------------------------------

    def run_ids(self) -> List[str]:
        """Every run id on record, sorted (ids embed their timestamp)."""
        if not os.path.isdir(self.root):
            return []
        return sorted(name[:-6] for name in os.listdir(self.root)
                      if name.endswith(".jsonl"))

    def runs(self) -> List[JournalState]:
        """Loaded state of every readable run, unreadable ones skipped.

        A journal can vanish between the directory listing and the load
        (quarantined by a concurrent ``repro fsck``, or deleted by hand)
        — that surfaces as :class:`OSError` rather than a parse failure,
        and is skipped the same way.
        """
        out: List[JournalState] = []
        for run_id in self.run_ids():
            try:
                out.append(self.load(run_id))
            except (JournalError, OSError):
                continue
        return out

    def render_list(self) -> str:
        """The ``repro runs list`` table.

        Unreadable entries are flagged inline rather than silently
        dropped, so a quarantined or truncated-away journal still shows
        up as something to investigate.
        """
        run_ids = self.run_ids()
        if not run_ids:
            return f"no journaled runs in {self.root}"
        lines = [f"runs dir: {self.root}"]
        for run_id in run_ids:
            if not os.path.exists(self.path_for(run_id)):
                lines.append(f"  {run_id}  MISSING "
                             f"(journal file vanished from {self.root})")
                continue
            try:
                lines.append("  " + self.load(run_id).describe())
            except (JournalError, OSError):
                lines.append(f"  {run_id}  UNREADABLE "
                             f"(journal corrupt; run `repro fsck`)")
        return "\n".join(lines)
