"""The run registry: every journaled campaign, listed by run id.

One directory (``$REPRO_RUNS_DIR``, defaulting next to the result cache
under ``$XDG_CACHE_HOME/repro/runs``) holds one ``<run-id>.jsonl``
write-ahead journal per campaign.  The registry mints collision-free run
ids, creates fresh journals, reopens interrupted ones for resume, and
enumerates everything for ``repro runs list``.

ACTIVE state: a run owned by a live process (the campaign-service daemon
mid-campaign, or a long ``repro run``) carries a ``<run-id>.active``
sidecar naming the owner's pid and a heartbeat timestamp.  An open
journal with a live sidecar is *work in progress*, not a torn artifact:
``repro runs list`` shows it as ``ACTIVE (pid N)`` instead of a
resumable leftover, and ``repro fsck`` skips it entirely (truncating a
journal another process is appending to would corrupt it).  Sidecars
whose pid is dead are stale — pruned on sight, so a SIGKILLed owner's
run degrades to the ordinary resumable ``open`` state.
"""

from __future__ import annotations

import json
import os
import time
import uuid
from typing import Any, Dict, List, Optional

from ...errors import JournalError
from ...ioutil import atomic_write_text
from .journal import JournalState, RunJournal, load_journal

__all__ = ["RunRegistry", "default_runs_dir", "ACTIVE_STALE_SECONDS"]

#: A heartbeat older than this marks a sidecar stale even if a process
#: with the recorded pid exists (pid reuse, or an owner that hung
#: without releasing).  Generous on purpose: pid liveness is the primary
#: signal and owners beat far more often than this.
ACTIVE_STALE_SECONDS = 24 * 3600.0


def _pid_alive(pid: int) -> bool:
    """Whether a process with this pid exists (permission-blind)."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, not ours
        return True
    except OSError:  # pragma: no cover - exotic platforms
        return False
    return True


def default_runs_dir() -> str:
    """``$REPRO_RUNS_DIR``, else ``$XDG_CACHE_HOME/repro/runs``."""
    explicit = os.environ.get("REPRO_RUNS_DIR")
    if explicit:
        return explicit
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache")
    return os.path.join(base, "repro", "runs")


class RunRegistry:
    """Journals on disk, addressed by run id."""

    def __init__(self, root: Optional[str] = None) -> None:
        self.root = root or default_runs_dir()

    # -- identity ---------------------------------------------------------

    def path_for(self, run_id: str) -> str:
        """The journal file backing ``run_id``."""
        if not run_id or os.sep in run_id or run_id.startswith("."):
            raise JournalError(f"malformed run id {run_id!r}")
        return os.path.join(self.root, run_id + ".jsonl")

    def new_run_id(self) -> str:
        """A fresh, human-sortable, collision-free run id."""
        while True:
            stamp = time.strftime("%Y%m%d-%H%M%S")
            run_id = f"run-{stamp}-{uuid.uuid4().hex[:6]}"
            if not os.path.exists(self.path_for(run_id)):
                return run_id

    # -- lifecycle --------------------------------------------------------

    def create(self, run_id: Optional[str] = None) -> RunJournal:
        """A fresh journal under a new (or caller-chosen) run id."""
        rid = run_id or self.new_run_id()
        return RunJournal.create(self.path_for(rid), rid)

    def load(self, run_id: str) -> JournalState:
        """The validated state of one run (torn tail already dropped)."""
        path = self.path_for(run_id)
        if not os.path.exists(path):
            known = ", ".join(self.run_ids()) or "none on record"
            raise JournalError(f"no run {run_id!r} in {self.root} "
                               f"(known: {known})")
        return load_journal(path)

    def reopen(self, run_id: str) -> RunJournal:
        """The journal of an existing run, opened for appending."""
        return RunJournal.reopen(self.path_for(run_id))

    # -- liveness ---------------------------------------------------------

    def active_path(self, run_id: str) -> str:
        """The liveness sidecar next to ``run_id``'s journal."""
        return self.path_for(run_id)[:-len(".jsonl")] + ".active"

    def mark_active(self, run_id: str, pid: Optional[int] = None) -> None:
        """Claim ``run_id`` for a live process (pid + heartbeat sidecar)."""
        os.makedirs(self.root, exist_ok=True)
        now = time.time()
        atomic_write_text(self.active_path(run_id), json.dumps(
            {"pid": pid if pid is not None else os.getpid(),
             "started": now, "heartbeat": now},
            sort_keys=True) + "\n")

    def heartbeat(self, run_id: str) -> None:
        """Refresh ``run_id``'s heartbeat (no-op if not marked active)."""
        path = self.active_path(run_id)
        try:
            with open(path) as fh:
                info = json.load(fh)
        except (OSError, json.JSONDecodeError):
            return
        info["heartbeat"] = time.time()
        atomic_write_text(path, json.dumps(info, sort_keys=True) + "\n")

    def release_active(self, run_id: str) -> None:
        """Drop the liveness claim (the owner finished or is shutting down)."""
        try:
            os.unlink(self.active_path(run_id))
        except OSError:
            pass

    def active_info(self, run_id: str) -> Optional[Dict[str, Any]]:
        """The live owner of ``run_id``, or ``None``.

        A sidecar only counts when its pid is alive *and* its heartbeat
        is fresh (:data:`ACTIVE_STALE_SECONDS`); anything else — dead
        owner, unreadable file, ancient heartbeat — is pruned on the
        spot so the run re-enters the ordinary resumable lifecycle.
        """
        path = self.active_path(run_id)
        try:
            with open(path) as fh:
                info = json.load(fh)
            pid = int(info.get("pid", 0))
            beat = float(info.get("heartbeat", 0.0))
        except (OSError, ValueError, TypeError):
            if os.path.exists(path):
                self.release_active(run_id)
            return None
        if not _pid_alive(pid) or time.time() - beat > ACTIVE_STALE_SECONDS:
            self.release_active(run_id)
            return None
        return info

    def heartbeat_age(self, run_id: str) -> Optional[float]:
        """Seconds since ``run_id``'s live owner last heartbeat.

        ``None`` when the run has no live ACTIVE sidecar (not running,
        dead owner, or already pruned).  The age is how ``repro status``
        tells a healthy campaign from one whose owner stopped making
        progress without dying.
        """
        info = self.active_info(run_id)
        if info is None:
            return None
        return max(0.0, time.time() - float(info.get("heartbeat", 0.0)))

    # -- enumeration ------------------------------------------------------

    def run_ids(self) -> List[str]:
        """Every run id on record, sorted (ids embed their timestamp)."""
        if not os.path.isdir(self.root):
            return []
        return sorted(name[:-6] for name in os.listdir(self.root)
                      if name.endswith(".jsonl"))

    def runs(self) -> List[JournalState]:
        """Loaded state of every readable run, unreadable ones skipped.

        A journal can vanish between the directory listing and the load
        (quarantined by a concurrent ``repro fsck``, or deleted by hand)
        — that surfaces as :class:`OSError` rather than a parse failure,
        and is skipped the same way.
        """
        out: List[JournalState] = []
        for run_id in self.run_ids():
            try:
                out.append(self.load(run_id))
            except (JournalError, OSError):
                continue
        return out

    def render_list(self) -> str:
        """The ``repro runs list`` table.

        Unreadable entries are flagged inline rather than silently
        dropped, so a quarantined or truncated-away journal still shows
        up as something to investigate.
        """
        run_ids = self.run_ids()
        if not run_ids:
            return f"no journaled runs in {self.root}"
        lines = [f"runs dir: {self.root}"]
        for run_id in run_ids:
            if not os.path.exists(self.path_for(run_id)):
                lines.append(f"  {run_id}  MISSING "
                             f"(journal file vanished from {self.root})")
                continue
            try:
                st = self.load(run_id)
            except (JournalError, OSError):
                lines.append(f"  {run_id}  UNREADABLE "
                             f"(journal corrupt; run `repro fsck`)")
                continue
            owner = self.active_info(run_id)
            if owner is not None and st.status == "open":
                exp = st.manifest.get("exp_id", "?")
                lines.append(f"  {st.run_id}  {'ACTIVE':<11s} "
                             f"{st.done_cells}/{st.total_cells} cells  {exp} "
                             f"(pid {owner['pid']})")
            else:
                lines.append("  " + st.describe())
        return "\n".join(lines)
