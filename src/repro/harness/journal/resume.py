"""Resume: complete an interrupted campaign from its write-ahead journal.

The contract is **byte-identity**: a resumed run must produce exactly
the output an uninterrupted run would have — same measurements, same
samples, same rendering.  Three properties make that possible:

* every completed cell's full-fidelity measurement is embedded in the
  journal, so replay needs neither the cache nor the simulator;
* the simulator is deterministic per cell, so the *remaining* cells
  compute the same values they would have computed the first time;
* the run-open record pins the campaign fingerprint (experiment
  manifest + fault model + cost-model constants version), and resume
  *refuses* to run if the current code would fingerprint the campaign
  differently — silently resuming across a constants bump would splice
  incompatible halves together.

The resilience options (fault config, retry policy, ``fail_fast``) are
restored from the journal rather than the environment: they decide
*which* cells fail, so honoring the CLI flags of the moment would break
identity with the original run.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ...errors import JournalError
from ...sim.faults import FaultConfig, FaultKind
from ..experiment import Experiment
from ..health import BreakerPolicy, FallbackLadder
from ..results import ResultSet
from ..engine.fingerprint import campaign_fingerprint
from ..engine.options import RetryPolicy, RunOptions
from .journal import JournalState
from .registry import RunRegistry

__all__ = ["restore_campaign", "resume_run"]


def _faults_from_payload(payload: dict) -> FaultConfig:
    return FaultConfig(
        rate=float(payload.get("rate", 0.0)),
        seed=int(payload.get("seed", 2023)),
        kinds=tuple(FaultKind(k) for k in payload.get(
            "kinds", [k.value for k in FaultKind])),
        always=tuple(payload.get("always", ())),
    )


def _retry_from_payload(payload: dict) -> RetryPolicy:
    budget = payload.get("max_cell_seconds")
    return RetryPolicy(
        max_attempts=int(payload.get("max_attempts", 1)),
        backoff_base_s=float(payload.get("backoff_base_s", 0.5)),
        backoff_factor=float(payload.get("backoff_factor", 2.0)),
        max_cell_seconds=float(budget) if budget is not None else None,
    )


def restore_campaign(state: JournalState) -> Tuple[Experiment, RunOptions]:
    """Rebuild the experiment and resilience options a journal recorded.

    Verifies the campaign fingerprint: the experiment + fault model must
    fingerprint today exactly as they did when the run opened, otherwise
    the journal belongs to a different code/constants state and replayed
    cells could not be byte-identical — :class:`JournalError` is raised
    instead of producing a silently-spliced campaign.
    """
    if not state.manifest:
        raise JournalError(f"journal {state.path} carries no manifest")
    experiment = Experiment.from_dict(state.manifest)
    opt_payload = state.options or {}
    faults = _faults_from_payload(opt_payload.get("faults", {}))
    retry = _retry_from_payload(opt_payload.get("retry", {}))
    breaker = (BreakerPolicy.from_payload(opt_payload["breaker"])
               if "breaker" in opt_payload else BreakerPolicy())
    fallback = (FallbackLadder.from_payload(opt_payload["fallback"])
                if "fallback" in opt_payload else None)
    # The *effective* ladder joins the fingerprint: an absent fallback
    # payload means the run used registry-derived defaults, which must
    # re-derive identically for the resumed halves to splice.
    effective = fallback
    if breaker.enabled and effective is None:
        effective = FallbackLadder.default_for(experiment)
    expected = campaign_fingerprint(experiment, faults, breaker=breaker,
                                    fallback=effective)
    if state.campaign and state.campaign != expected:
        raise JournalError(
            f"run {state.run_id} was journaled under campaign fingerprint "
            f"{state.campaign[:12]}... but this build computes "
            f"{expected[:12]}... — the experiment, fault model, breaker "
            f"policy or cost-model constants changed; rerun instead of "
            f"resuming")
    options = RunOptions(
        retry=retry, faults=faults,
        fail_fast=bool(opt_payload.get("fail_fast", False)),
        breaker=breaker, fallback=fallback,
    )
    return experiment, options


def resume_run(run_id: str, registry: Optional[RunRegistry] = None,
               engine=None, *, options: Optional[RunOptions] = None,
               ) -> ResultSet:
    """Complete (or re-emit) a journaled run; byte-identical output.

    Loads the journal, restores the recorded campaign, replays every
    completed cell from the embedded payloads and executes only the
    remainder, appending to the same journal.  A run that was already
    complete simply replays in full — still byte-identical, which makes
    resume idempotent.

    ``options`` may override *execution* knobs only (cache, jobs,
    profiler); the resilience layer always comes from the journal.
    ``engine`` is forwarded to :func:`repro.harness.runner.run_campaign`.
    """
    from dataclasses import replace
    from ...service.spec import CampaignSpec
    from ..runner import run_campaign

    reg = registry if registry is not None else RunRegistry()
    state = reg.load(run_id)
    experiment, restored = restore_campaign(state)
    if options is not None:
        restored = replace(restored, cache=options.cache,
                           jobs=options.jobs, profiler=options.profiler)
    journal = reg.reopen(run_id)
    journal.resume_run(completed=state.done_cells, total=state.total_cells)
    restored = replace(restored, journal=journal,
                       replay=dict(state.completed),
                       replay_meta=dict(state.outcomes))
    try:
        return run_campaign(CampaignSpec(experiment=experiment),
                            engine=engine, options=restored)
    finally:
        journal.close()
