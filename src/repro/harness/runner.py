"""The experiment runner: lowers, simulates, samples, traces.

Methodology transcribed from Sec. IV: each kernel runs ``reps`` times
(at least 5-10); the first, warm-up repetition — which carries JIT
compilation for Julia/Numba, device allocation and H2D transfers — is
excluded from the reported statistics but *is* recorded in the trace, so
the nvprof-style summary shows everything that actually happened.
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING, Optional

from ..core.types import DeviceKind, MatrixShape
from ..errors import ConfigError
from ..gpu.transfer import gemm_transfer_estimate
from ..gpu.warp_sim import simulate_gpu_kernel
from ..models.base import ProgrammingModel
from ..sim.executor import simulate_cpu_kernel
from ..sim.variability import VariabilityModel
from ..trace.events import EventKind
from ..trace.profiler import Profiler
from .experiment import Experiment
from .results import Measurement, ResultSet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .engine import RunOptions

__all__ = ["run_experiment", "run_experiment_serial", "run_measurement"]


def run_measurement(
    model: ProgrammingModel,
    experiment: Experiment,
    shape: MatrixShape,
    profiler: Optional[Profiler] = None,
) -> Measurement:
    """Simulate one (model, size) cell of an experiment."""
    spec = experiment.target_spec
    precision = experiment.precision
    support = model.supports(spec, precision)
    if not support.supported:
        return Measurement(
            model=model.name, display=model.display, shape=shape,
            precision=precision, supported=False, note=support.reason,
        )

    prof = profiler if profiler is not None else Profiler()
    noise = VariabilityModel.for_node(experiment.node_name,
                                      seed=experiment.seed)
    key = f"{experiment.exp_id}:{model.name}:{shape}:{precision.value}"
    productivity = model.productivity(experiment.device)
    warmup_extra = productivity.jit_warmup_seconds

    if experiment.device is DeviceKind.CPU:
        lowering = model.lower_cpu(spec, precision)
        timing = simulate_cpu_kernel(
            lowering.kernel, spec, shape,
            threads=experiment.effective_threads,
            pin=lowering.pin, profile=lowering.profile,
        )
        nominal = timing.total_seconds
        bound = timing.bound
        if warmup_extra:
            prof.record(EventKind.JIT_COMPILE, f"{model.name}-jit",
                        warmup_extra)
        times = noise.samples(nominal, key, experiment.reps + experiment.warmup,
                              warmup_extra_seconds=warmup_extra)
        for rep, t in enumerate(times):
            prof.record(EventKind.PARALLEL_REGION,
                        f"{lowering.kernel.name}", t,
                        rep=rep, threads=experiment.effective_threads,
                        size=shape.m)
    else:
        lowering = model.lower_gpu(spec, precision)
        timing = simulate_gpu_kernel(lowering.kernel, lowering.launch, spec,
                                     shape, lowering.profile)
        nominal = timing.total_seconds
        bound = timing.bound
        transfers = gemm_transfer_estimate(spec, shape, precision)
        if experiment.include_transfers:
            # end-to-end mode: every repetition moves A, B in and C out
            nominal += transfers.total_seconds
            if transfers.total_seconds > timing.total_seconds:
                bound = "transfer"
        if warmup_extra:
            prof.record(EventKind.JIT_COMPILE, f"{model.name}-jit",
                        warmup_extra)
        prof.record(EventKind.MEMCPY_H2D, "A,B -> device",
                    transfers.h2d_seconds, bytes=transfers.h2d_bytes)
        # Warm-up composition (see EXPERIMENTS.md, "Warm-up accounting"):
        # in the paper's kernel-only mode the warm-up repetition carries the
        # one-time H2D copy on top of JIT; in end-to-end mode every
        # repetition (warm-up included) already pays the full transfer via
        # ``nominal``, so adding H2D again would double-count it.
        warmup_total = warmup_extra
        if not experiment.include_transfers:
            warmup_total += transfers.h2d_seconds
        times = noise.samples(nominal, key, experiment.reps + experiment.warmup,
                              warmup_extra_seconds=warmup_total)
        for rep, t in enumerate(times):
            prof.record(EventKind.KERNEL, lowering.kernel.name, t,
                        rep=rep, grid=lowering.launch.grid(shape),
                        block=(lowering.launch.block_x, lowering.launch.block_y),
                        size=shape.m)
        prof.record(EventKind.MEMCPY_D2H, "C -> host",
                    transfers.d2h_seconds, bytes=transfers.d2h_bytes)

    return Measurement(
        model=model.name,
        display=model.display,
        shape=shape,
        precision=precision,
        times_s=tuple(times),
        warmup_count=experiment.warmup,
        supported=True,
        note=support.reason,
        bound=bound,
    )


def run_experiment(experiment: Experiment,
                   profiler: Optional[Profiler] = None,
                   engine: Optional[object] = None,
                   *, options: Optional["RunOptions"] = None) -> ResultSet:
    """The one entrypoint: run every (model, size) cell of an experiment.

    Delegates to :mod:`repro.harness.engine`: cells fan out over a thread
    pool and hit the persistent result cache, with a deterministic merge
    that makes the output bit-identical to a serial reference loop.

    * ``engine`` selects the executor: ``None`` (the process-wide default,
      configured from ``REPRO_CACHE``/``REPRO_CACHE_DIR``/``REPRO_JOBS``/
      ``REPRO_ENGINE``), the strings ``"parallel"`` / ``"serial"`` /
      ``"process"``, or a ready-made
      :class:`~repro.harness.engine.SweepEngine` instance.
    * ``options`` is the frozen :class:`~repro.harness.engine.RunOptions`
      bag — cache/jobs overrides plus the resilience layer (fault
      injection, retry policy, ``fail_fast``).  ``None`` means the
      process-wide default, itself seeded from the ``REPRO_FAULTS``
      family of environment variables.
    * ``profiler`` is a convenience shorthand for
      ``options.with_profiler(profiler)``.
    """
    from .engine import SweepEngine, default_engine, default_run_options
    opts = options if options is not None else default_run_options()
    opts = opts.with_profiler(profiler)
    if isinstance(engine, SweepEngine):
        eng = engine
    elif engine is None:
        if opts.cache is None and opts.jobs is None:
            eng = default_engine()
        else:
            eng = SweepEngine.from_env(cache_enabled=opts.cache,
                                       max_workers=opts.jobs)
    elif engine in ("parallel", "serial", "process"):
        eng = SweepEngine.from_env(cache_enabled=opts.cache,
                                   parallel=(engine != "serial"),
                                   max_workers=(1 if engine == "serial"
                                                else opts.jobs),
                                   mode=("process" if engine == "process"
                                         else None))
    else:
        raise ConfigError(
            f"engine must be None, 'parallel', 'serial', 'process' or a "
            f"SweepEngine, got {engine!r}")
    return eng.run(experiment, options=opts)


def run_experiment_serial(experiment: Experiment,
                          profiler: Optional[Profiler] = None) -> ResultSet:
    """Deprecated shim: serial, cache-less sweep through the unified API.

    Historically the hand-rolled reference loop; now a thin wrapper over
    ``run_experiment(experiment, engine="serial", options=...)`` kept only
    for backwards compatibility.  Call :func:`run_experiment` instead.
    """
    warnings.warn(
        "run_experiment_serial() is deprecated; use "
        "run_experiment(experiment, engine=\"serial\", "
        "options=RunOptions(cache=False)) instead",
        DeprecationWarning, stacklevel=2)
    from .engine import RunOptions
    return run_experiment(experiment, engine="serial",
                          options=RunOptions(cache=False, profiler=profiler))
