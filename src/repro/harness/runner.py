"""The experiment runner: lowers, simulates, samples, traces.

Methodology transcribed from Sec. IV: each kernel runs ``reps`` times
(at least 5-10); the first, warm-up repetition — which carries JIT
compilation for Julia/Numba, device allocation and H2D transfers — is
excluded from the reported statistics but *is* recorded in the trace, so
the nvprof-style summary shows everything that actually happened.
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING, Optional

from ..core.types import DeviceKind, MatrixShape
from ..errors import ConfigError
from ..gpu.transfer import gemm_transfer_estimate
from ..gpu.warp_sim import simulate_gpu_kernel
from ..models.base import ProgrammingModel
from ..sim.executor import simulate_cpu_kernel
from ..sim.variability import VariabilityModel
from ..trace.events import EventKind
from ..trace.profiler import Profiler
from .experiment import Experiment
from .results import Measurement, ResultSet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..service.spec import CampaignSpec
    from .engine import RunOptions, SweepEngine

__all__ = ["run_campaign", "run_experiment", "run_experiment_serial",
           "run_measurement", "resolve_engine"]


def run_measurement(
    model: ProgrammingModel,
    experiment: Experiment,
    shape: MatrixShape,
    profiler: Optional[Profiler] = None,
) -> Measurement:
    """Simulate one (model, size) cell of an experiment."""
    spec = experiment.target_spec
    precision = experiment.precision
    support = model.supports(spec, precision)
    if not support.supported:
        return Measurement(
            model=model.name, display=model.display, shape=shape,
            precision=precision, supported=False, note=support.reason,
        )

    prof = profiler if profiler is not None else Profiler()
    noise = VariabilityModel.for_node(experiment.node_name,
                                      seed=experiment.seed)
    key = f"{experiment.exp_id}:{model.name}:{shape}:{precision.value}"
    productivity = model.productivity(experiment.device)
    warmup_extra = productivity.jit_warmup_seconds

    if experiment.device is DeviceKind.CPU:
        lowering = model.lower_cpu(spec, precision)
        timing = simulate_cpu_kernel(
            lowering.kernel, spec, shape,
            threads=experiment.effective_threads,
            pin=lowering.pin, profile=lowering.profile,
        )
        nominal = timing.total_seconds
        bound = timing.bound
        if warmup_extra:
            prof.record(EventKind.JIT_COMPILE, f"{model.name}-jit",
                        warmup_extra)
        times = noise.samples(nominal, key, experiment.reps + experiment.warmup,
                              warmup_extra_seconds=warmup_extra)
        for rep, t in enumerate(times):
            prof.record(EventKind.PARALLEL_REGION,
                        f"{lowering.kernel.name}", t,
                        rep=rep, threads=experiment.effective_threads,
                        size=shape.m)
    else:
        lowering = model.lower_gpu(spec, precision)
        timing = simulate_gpu_kernel(lowering.kernel, lowering.launch, spec,
                                     shape, lowering.profile)
        nominal = timing.total_seconds
        bound = timing.bound
        transfers = gemm_transfer_estimate(spec, shape, precision)
        if experiment.include_transfers:
            # end-to-end mode: every repetition moves A, B in and C out
            nominal += transfers.total_seconds
            if transfers.total_seconds > timing.total_seconds:
                bound = "transfer"
        if warmup_extra:
            prof.record(EventKind.JIT_COMPILE, f"{model.name}-jit",
                        warmup_extra)
        prof.record(EventKind.MEMCPY_H2D, "A,B -> device",
                    transfers.h2d_seconds, bytes=transfers.h2d_bytes)
        # Warm-up composition (see EXPERIMENTS.md, "Warm-up accounting"):
        # in the paper's kernel-only mode the warm-up repetition carries the
        # one-time H2D copy on top of JIT; in end-to-end mode every
        # repetition (warm-up included) already pays the full transfer via
        # ``nominal``, so adding H2D again would double-count it.
        warmup_total = warmup_extra
        if not experiment.include_transfers:
            warmup_total += transfers.h2d_seconds
        times = noise.samples(nominal, key, experiment.reps + experiment.warmup,
                              warmup_extra_seconds=warmup_total)
        for rep, t in enumerate(times):
            prof.record(EventKind.KERNEL, lowering.kernel.name, t,
                        rep=rep, grid=lowering.launch.grid(shape),
                        block=(lowering.launch.block_x, lowering.launch.block_y),
                        size=shape.m)
        prof.record(EventKind.MEMCPY_D2H, "C -> host",
                    transfers.d2h_seconds, bytes=transfers.d2h_bytes)

    return Measurement(
        model=model.name,
        display=model.display,
        shape=shape,
        precision=precision,
        times_s=tuple(times),
        warmup_count=experiment.warmup,
        supported=True,
        note=support.reason,
        bound=bound,
    )


def resolve_engine(engine: Optional[object], opts: "RunOptions",
                   mode: Optional[str] = None) -> "SweepEngine":
    """The executor a campaign resolves to.

    * a ready-made :class:`~repro.harness.engine.SweepEngine` passes
      through untouched;
    * the legacy strings ``"parallel"`` / ``"serial"`` / ``"thread"`` /
      ``"process"`` force that executor shape;
    * ``None`` with ``mode`` set (a :class:`CampaignSpec`'s ``engine``
      field) behaves like the matching string;
    * ``None`` with every engine knob unset (``mode``, ``opts.cache``,
      ``opts.jobs`` all ``None``) returns the process-wide default
      engine, keeping the zero-configuration path shared and warm.
    """
    from .engine import SweepEngine, default_engine
    if isinstance(engine, SweepEngine):
        return engine
    if engine is None and mode is not None:
        engine = mode
    if engine is None:
        if opts.cache is None and opts.jobs is None:
            return default_engine()
        return SweepEngine.from_env(cache_enabled=opts.cache,
                                    max_workers=opts.jobs)
    if engine in ("parallel", "serial", "thread", "process"):
        return SweepEngine.from_env(
            cache_enabled=opts.cache,
            parallel=(engine != "serial"),
            max_workers=(1 if engine == "serial" else opts.jobs),
            # "thread" pins the mode (CLI > env); the legacy "parallel"
            # string keeps deferring to REPRO_ENGINE, as it always has.
            mode=("process" if engine == "process"
                  else "thread" if engine == "thread" else None))
    raise ConfigError(
        f"engine must be None, 'parallel', 'serial', 'thread', 'process' "
        f"or a SweepEngine, got {engine!r}")


def run_campaign(spec: "CampaignSpec",
                 profiler: Optional[Profiler] = None,
                 engine: Optional[object] = None,
                 *, options: Optional["RunOptions"] = None) -> ResultSet:
    """The one entrypoint: run every cell a :class:`CampaignSpec` asks for.

    Delegates to :mod:`repro.harness.engine`: cells fan out over the
    selected executor and hit the persistent result cache, with a
    deterministic merge that makes the output bit-identical to a serial
    reference loop.

    * ``spec`` is the frozen request object every surface (CLI, env,
      daemon wire API) resolves into — see
      :func:`repro.config.resolve_campaign_spec` for the precedence pass.
    * ``options`` is the *base* :class:`~repro.harness.engine.RunOptions`
      the spec's non-``None`` resilience fields overlay; ``None`` means
      the process-wide default, itself seeded from the ``REPRO_FAULTS``
      family of environment variables.  Callers that carry run state the
      spec cannot express (a journal, a replay map — the resume path)
      pass it here.
    * ``engine`` overrides the spec's executor selection (instance or
      legacy string); ``None`` resolves it from ``spec.engine`` /
      ``opts.cache`` / ``opts.jobs`` via :func:`resolve_engine`.
    * ``profiler`` is a convenience shorthand for
      ``options.with_profiler(profiler)``.
    """
    opts = spec.run_options(base=options)
    opts = opts.with_profiler(profiler)
    eng = resolve_engine(engine, opts, mode=spec.engine)
    return eng.run(spec.experiment, options=opts)


def run_experiment(experiment: Experiment,
                   profiler: Optional[Profiler] = None,
                   engine: Optional[object] = None,
                   *, options: Optional["RunOptions"] = None) -> ResultSet:
    """Deprecated shim: run one experiment through the campaign API.

    Historically the package's entrypoint; superseded by
    :func:`run_campaign`, which takes the one serializable
    :class:`~repro.service.spec.CampaignSpec` request object shared with
    the campaign service and the journal.  The keyword surface and
    semantics are unchanged — this delegates to
    ``run_campaign(CampaignSpec(experiment=experiment), ...)`` — so
    existing callers keep working while they migrate.
    """
    warnings.warn(
        "run_experiment() is deprecated; build a CampaignSpec and call "
        "run_campaign(spec) instead (see repro.config.resolve_campaign_spec)",
        DeprecationWarning, stacklevel=2)
    from ..service.spec import CampaignSpec
    return run_campaign(CampaignSpec(experiment=experiment),
                        profiler=profiler, engine=engine, options=options)


def run_experiment_serial(experiment: Experiment,
                          profiler: Optional[Profiler] = None) -> ResultSet:
    """Deprecated shim: serial, cache-less sweep through the unified API.

    Historically the hand-rolled reference loop; now a thin wrapper over
    ``run_campaign`` with a serial, cache-less spec, kept only for
    backwards compatibility.  Call :func:`run_campaign` instead.
    """
    warnings.warn(
        "run_experiment_serial() is deprecated; use "
        "run_campaign(CampaignSpec(experiment=experiment, engine=\"serial\", "
        "cache=False)) instead",
        DeprecationWarning, stacklevel=2)
    from ..service.spec import CampaignSpec
    from .engine import RunOptions
    return run_campaign(CampaignSpec(experiment=experiment, engine="serial",
                                     cache=False),
                        options=RunOptions(profiler=profiler))
