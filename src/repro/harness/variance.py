"""The variability analysis the paper leaves on the table.

Sec. IV: "the results are the most likely performance value without doing
an exhaustive variability analysis", and for the one anomalous result —
Julia/AMDGPU.jl slightly *beating* HIP at single precision — the authors
conjecture it "could simply be the variability on this particular
system".  This module does the exhaustive version: re-run an experiment
under many independent noise seeds and report the distribution of each
efficiency, so conjectures like that one become quantitative statements
("Julia > HIP in x% of runs; the mean exceeds 1 by y sigma").
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..errors import ExperimentError
from ..service.spec import CampaignSpec
from .experiment import Experiment
from .report import ascii_table
from .runner import run_campaign
from .stats import mean, stdev

__all__ = ["EfficiencyDistribution", "VarianceStudy", "variance_study"]


@dataclass(frozen=True)
class EfficiencyDistribution:
    """Across-seed distribution of one model's mean efficiency."""

    model: str
    reference: str
    samples: tuple

    @property
    def mean(self) -> float:
        return mean(self.samples)

    @property
    def stdev(self) -> float:
        return stdev(self.samples)

    @property
    def minimum(self) -> float:
        return min(self.samples)

    @property
    def maximum(self) -> float:
        return max(self.samples)

    def fraction_above(self, threshold: float) -> float:
        """Fraction of runs whose efficiency exceeds ``threshold`` —
        e.g. ``fraction_above(1.0)`` answers "how often does the portable
        model beat the vendor?"."""
        return sum(1 for s in self.samples if s > threshold) / len(self.samples)

    def sigma_distance(self, threshold: float) -> float:
        """How many standard deviations the mean sits from ``threshold``
        (inf for a degenerate, noise-free distribution)."""
        if self.stdev == 0:
            return math.inf if self.mean != threshold else 0.0
        return (self.mean - threshold) / self.stdev


@dataclass
class VarianceStudy:
    experiment_id: str
    reference: str
    seeds: int
    distributions: Dict[str, EfficiencyDistribution] = field(default_factory=dict)

    def distribution(self, model: str) -> EfficiencyDistribution:
        return self.distributions[model]

    def render(self) -> str:
        rows = []
        for model, dist in self.distributions.items():
            rows.append([
                model,
                f"{dist.mean:.3f}",
                f"{dist.stdev:.4f}",
                f"{dist.minimum:.3f}",
                f"{dist.maximum:.3f}",
                f"{dist.fraction_above(1.0):.0%}",
            ])
        head = (f"efficiency distributions over {self.seeds} seeds "
                f"({self.experiment_id}, reference {self.reference})")
        return head + "\n" + ascii_table(
            ["model", "mean e", "stdev", "min", "max", "beats vendor"], rows)


def variance_study(
    experiment: Experiment,
    reference: str,
    models: Optional[Sequence[str]] = None,
    seeds: int = 25,
    seed_base: int = 10_000,
) -> VarianceStudy:
    """Re-run ``experiment`` under ``seeds`` independent noise seeds.

    Deterministic overall: seed ``seed_base + i`` for run ``i``.
    """
    if seeds < 2:
        raise ExperimentError("a variance study needs at least 2 seeds")
    targets = [m for m in (models or experiment.models) if m != reference]
    samples: Dict[str, List[float]] = {m: [] for m in targets}
    for i in range(seeds):
        exp = dataclasses.replace(experiment, seed=seed_base + i)
        rs = run_campaign(CampaignSpec(experiment=exp))
        for model in targets:
            e = rs.mean_efficiency(model, reference)
            if e is not None:
                samples[model].append(e)
    study = VarianceStudy(experiment_id=experiment.exp_id,
                          reference=reference, seeds=seeds)
    for model, values in samples.items():
        if values:
            study.distributions[model] = EfficiencyDistribution(
                model=model, reference=reference, samples=tuple(values))
    return study
