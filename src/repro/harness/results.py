"""Measurement records and result sets."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from ..core.types import MatrixShape, Precision
from ..errors import ExperimentError
from .experiment import Experiment
from .stats import mean, stdev

__all__ = ["Measurement", "ResultSet"]


@dataclass(frozen=True)
class Measurement:
    """Timing of one (model, size) cell of an experiment.

    ``times_s`` holds every repetition *including* the warm-up at index 0;
    reported numbers follow the paper's methodology and exclude it.
    ``supported=False`` cells carry no samples, only the reason (e.g.
    "Numba's AMD GPU target is deprecated").  ``failed=True`` marks a
    cell that *should* have run but permanently failed (injected faults,
    exhausted retries, an isolated execution error); such cells also set
    ``supported=False`` so no consumer ever reads samples from them, and
    Table III's accounting charges them as e = 0 like the paper does for
    unsupported cells.

    Substitution provenance (the breaker/fallback layer): a cell whose
    native lane was OPEN and that was served by a fallback lane keeps
    its original ``model``/``display`` (so it slots into the same
    table/figure column) but records where it really ran —
    ``substituted_from`` names the sick origin lane (``"numba@gpu"``),
    ``served_by`` the lane that produced the samples (``"numba@cpu"``),
    and ``ladder_hops`` how far down the declared ladder the serve
    landed.  A cell with ``substituted_from`` set but ``served_by``
    empty was rerouted and *still* failed (ladder exhausted).
    """

    model: str
    display: str
    shape: MatrixShape
    precision: Precision
    times_s: Tuple[float, ...] = ()
    warmup_count: int = 1
    supported: bool = True
    note: str = ""
    bound: str = ""
    failed: bool = False
    substituted_from: str = ""
    served_by: str = ""
    ladder_hops: int = 0

    @property
    def status(self) -> str:
        """Per-cell status: ``"ok"``, ``"unsupported"``, ``"failed"`` or
        ``"substituted"``."""
        if self.failed:
            return "failed"
        if self.substituted:
            return "substituted"
        return "ok" if self.supported else "unsupported"

    @property
    def substituted(self) -> bool:
        """Whether a fallback lane served this cell (and it succeeded)."""
        return bool(self.substituted_from) and bool(self.served_by) \
            and not self.failed

    @property
    def kernel_times(self) -> Tuple[float, ...]:
        return self.times_s[self.warmup_count:]

    @property
    def seconds(self) -> float:
        """The reported time: mean of post-warm-up repetitions."""
        if not self.supported:
            raise ExperimentError(f"{self.model} unsupported: {self.note}")
        return mean(self.kernel_times)

    @property
    def gflops(self) -> float:
        return self.shape.flops / self.seconds / 1e9

    @property
    def stdev_seconds(self) -> float:
        return stdev(self.kernel_times)

    def summary(self) -> str:  # pragma: no cover - cosmetic
        if self.failed:
            return f"{self.display} @{self.shape}: FAILED ({self.note})"
        if not self.supported:
            return f"{self.display} @{self.shape}: unsupported ({self.note})"
        return (f"{self.display} @{self.shape}: {self.gflops:.1f} GFLOP/s "
                f"({self.seconds * 1e3:.2f} ms +/- {self.stdev_seconds * 1e3:.2f})")


@dataclass
class ResultSet:
    """All measurements of one experiment."""

    experiment: Experiment
    measurements: List[Measurement] = field(default_factory=list)

    def add(self, m: Measurement) -> None:
        self.measurements.append(m)

    # -- lookups --------------------------------------------------------------

    def models(self) -> List[str]:
        seen: List[str] = []
        for m in self.measurements:
            if m.model not in seen:
                seen.append(m.model)
        return seen

    def sizes(self) -> List[int]:
        seen: List[int] = []
        for m in self.measurements:
            if m.shape.m not in seen:
                seen.append(m.shape.m)
        return sorted(seen)

    def shapes(self) -> List[MatrixShape]:
        """Every distinct problem shape, sorted by (m, n, k)."""
        seen: List[MatrixShape] = []
        for m in self.measurements:
            if m.shape not in seen:
                seen.append(m.shape)
        return sorted(seen, key=lambda s: (s.m, s.n, s.k))

    def cell_by_shape(self, model: str, shape: MatrixShape) -> Measurement:
        """Exact lookup by the full (model, MatrixShape) key."""
        for m in self.measurements:
            if m.model == model and m.shape == shape:
                return m
        raise KeyError(f"no measurement for ({model}, {shape})")

    def cell(self, model: str,
             size: Union[int, MatrixShape]) -> Measurement:
        """Look up one cell by full shape, or by size for square sweeps.

        An integer ``size`` means "the square sweep point m=n=k=size"; for
        a sweep that never mixes shapes with the same leading dimension it
        also matches the single rectangular cell with ``shape.m == size``.
        When several distinct shapes share an ``m`` (e.g. the E17 aspect
        sweep) an integer key is ambiguous and raises ``KeyError`` instead
        of silently returning the first match — use :meth:`cell_by_shape`.
        """
        if isinstance(size, MatrixShape):
            return self.cell_by_shape(model, size)
        matches = [m for m in self.measurements
                   if m.model == model and m.shape.m == size]
        if not matches:
            raise KeyError(f"no measurement for ({model}, {size})")
        distinct = {m.shape for m in matches}
        if len(distinct) == 1:
            return matches[0]
        square = MatrixShape.square(size)
        for m in matches:
            if m.shape == square:
                return m
        raise KeyError(
            f"ambiguous size {size} for {model}: shapes "
            f"{sorted(map(str, distinct))}; use cell_by_shape()")

    def supported(self, model: str) -> bool:
        return any(m.supported for m in self.measurements if m.model == model)

    # -- degraded-mode queries ----------------------------------------------

    def failed(self, model: str) -> bool:
        """Whether any cell of this model permanently failed."""
        return any(m.failed for m in self.measurements if m.model == model)

    def failed_cells(self) -> List[Measurement]:
        """Every permanently failed cell, in insertion order."""
        return [m for m in self.measurements if m.failed]

    @property
    def degraded(self) -> bool:
        """Whether this sweep lost at least one cell to failures."""
        return any(m.failed for m in self.measurements)

    def substituted_cells(self) -> List[Measurement]:
        """Every fallback-served cell, in insertion order."""
        return [m for m in self.measurements if m.substituted]

    @property
    def substituted(self) -> bool:
        """Whether any cell of this sweep was served by a fallback lane."""
        return any(m.substituted for m in self.measurements)

    def status_counts(self) -> Dict[str, int]:
        """Cell counts per status — the degraded-mode report headline."""
        out = {"ok": 0, "unsupported": 0, "failed": 0, "substituted": 0}
        for m in self.measurements:
            out[m.status] += 1
        return out

    def series(self, model: str) -> Tuple[List[int], List[float]]:
        """(sizes, GFLOP/s) for one model, skipping unsupported cells."""
        xs: List[int] = []
        ys: List[float] = []
        for shape in self.shapes():
            try:
                m = self.cell_by_shape(model, shape)
            except KeyError:
                continue
            if m.supported:
                xs.append(shape.m)
                ys.append(m.gflops)
        return xs, ys

    # -- efficiency -------------------------------------------------------------

    def efficiency_series(self, model: str, reference: str) -> List[float]:
        """Per-shape efficiency e(shape) = perf(model) / perf(reference).

        Failed cells contribute 0.0 — the cell was attempted and produced
        nothing, the paper's e = 0 accounting for lost coverage — whereas
        *unsupported* cells are skipped entirely (they never belonged in
        the mean, matching how Table III derives one number per panel).

        Substituted cells are priced against what *actually ran*: a
        same-model substitution (``numba@gpu`` served by ``numba@cpu``)
        contributes the honest ratio of the measured samples, while a
        cross-model substitution contributes 0.0 — the model under test
        produced nothing, and crediting it with the reference's own
        samples would silently inflate e to 1.
        """
        out: List[float] = []
        for shape in self.shapes():
            try:
                mm = self.cell_by_shape(model, shape)
                mr = self.cell_by_shape(reference, shape)
            except KeyError:
                continue
            if not mr.supported:
                continue
            if mm.failed:
                out.append(0.0)
            elif mm.substituted:
                served_model = mm.served_by.partition("@")[0]
                out.append(mm.gflops / mr.gflops
                           if served_model == mm.model else 0.0)
            elif mm.supported:
                out.append(mm.gflops / mr.gflops)
        return out

    def mean_efficiency(self, model: str, reference: str) -> Optional[float]:
        """The e_i(a) of Eq. (2): mean over the sweep; None if unsupported."""
        series = self.efficiency_series(model, reference)
        if not series:
            return None
        return mean(series)

    # -- export -----------------------------------------------------------------

    def to_rows(self) -> List[Dict[str, object]]:
        rows: List[Dict[str, object]] = []
        for m in self.measurements:
            rows.append({
                "experiment": self.experiment.exp_id,
                "model": m.model,
                "size": m.shape.m,
                "n": m.shape.n,
                "k": m.shape.k,
                "precision": m.precision.value,
                "supported": m.supported,
                "status": m.status,
                "gflops": round(m.gflops, 2) if m.supported else None,
                "seconds": m.seconds if m.supported else None,
                "note": m.note,
            })
        return rows
