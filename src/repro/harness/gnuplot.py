"""Gnuplot export: turn result sets into ``.dat`` + ``.gp`` files.

No plotting library ships offline, so for publication-grade figures the
harness emits gnuplot inputs: a whitespace table with one size column and
one GFLOP/s column per model (unsupported cells as ``?``, gnuplot's
missing-data marker), plus a ready-to-run script that reproduces the
paper's figure style (GFLOP/s vs matrix size, one series per model).
"""

from __future__ import annotations

import os
from typing import List, Optional, Tuple

from .results import ResultSet

__all__ = ["to_dat", "to_gnuplot_script", "write_gnuplot_bundle"]


def to_dat(rs: ResultSet) -> str:
    """Whitespace-separated data table with a commented header row."""
    models = rs.models()
    displays = [rs.cell(m, rs.sizes()[0]).display.replace(" ", "_")
                for m in models]
    lines = ["# size " + " ".join(displays)]
    for size in rs.sizes():
        cells: List[str] = [str(size)]
        for model in models:
            m = rs.cell(model, size)
            cells.append(f"{m.gflops:.3f}" if m.supported else "?")
        lines.append(" ".join(cells))
    return "\n".join(lines) + "\n"


def to_gnuplot_script(rs: ResultSet, dat_filename: str,
                      out_filename: Optional[str] = None) -> str:
    """A gnuplot script plotting every model series from the .dat file."""
    exp = rs.experiment
    out = out_filename or f"{exp.exp_id}.png"
    models = rs.models()
    displays = [rs.cell(m, rs.sizes()[0]).display for m in models]
    plots = ", \\\n     ".join(
        f"'{dat_filename}' using 1:{i + 2} with linespoints "
        f"title '{display}'"
        for i, display in enumerate(displays)
    )
    return "\n".join([
        "set terminal pngcairo size 900,600",
        f"set output '{out}'",
        f"set title '{exp.title} ({exp.precision.label} precision)'",
        "set xlabel 'matrix size (M = N = K)'",
        "set ylabel 'GFLOP/s'",
        "set key top left",
        "set datafile missing '?'",
        "set grid",
        f"plot {plots}",
        "",
    ])


def write_gnuplot_bundle(rs: ResultSet, directory: str) -> Tuple[str, str]:
    """Write ``<exp_id>.dat`` and ``<exp_id>.gp``; returns their paths.

    Writes are atomic (temp file + ``os.replace``) so an interrupted
    export never leaves a half-written bundle over a previous one.
    """
    from ..ioutil import atomic_write_text
    os.makedirs(directory, exist_ok=True)
    base = rs.experiment.exp_id
    dat_path = os.path.join(directory, f"{base}.dat")
    gp_path = os.path.join(directory, f"{base}.gp")
    atomic_write_text(dat_path, to_dat(rs))
    atomic_write_text(gp_path, to_gnuplot_script(rs, f"{base}.dat"))
    return dat_path, gp_path
