"""Small statistics helpers for timing samples."""

from __future__ import annotations

import math
from typing import Sequence, Tuple

__all__ = ["mean", "median", "stdev", "ci95", "summarize", "geomean"]


def mean(xs: Sequence[float]) -> float:
    if not xs:
        raise ValueError("empty sample")
    return sum(xs) / len(xs)


def median(xs: Sequence[float]) -> float:
    if not xs:
        raise ValueError("empty sample")
    s = sorted(xs)
    n = len(s)
    mid = n // 2
    return s[mid] if n % 2 else 0.5 * (s[mid - 1] + s[mid])


def stdev(xs: Sequence[float]) -> float:
    """Sample standard deviation (ddof=1); 0 for a single sample."""
    n = len(xs)
    if n == 0:
        raise ValueError("empty sample")
    if n == 1:
        return 0.0
    m = mean(xs)
    return math.sqrt(sum((x - m) ** 2 for x in xs) / (n - 1))


def ci95(xs: Sequence[float]) -> Tuple[float, float]:
    """Normal-approximation 95% confidence interval of the mean."""
    m = mean(xs)
    half = 1.96 * stdev(xs) / math.sqrt(len(xs))
    return (m - half, m + half)


def geomean(xs: Sequence[float]) -> float:
    if not xs:
        raise ValueError("empty sample")
    if any(x <= 0 for x in xs):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(x) for x in xs) / len(xs))


def summarize(xs: Sequence[float]) -> dict:
    return {
        "n": len(xs),
        "mean": mean(xs),
        "median": median(xs),
        "stdev": stdev(xs),
        "min": min(xs),
        "max": max(xs),
    }
