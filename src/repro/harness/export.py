"""Structured export of results: JSON and CSV.

Lets downstream users regenerate the paper's plots in their own tooling
(the repository itself renders ASCII only, since no plotting library is
assumed).  The schema is stable and round-trip tested.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any, Dict

from .figures import Table3Result
from .results import ResultSet

__all__ = ["result_set_to_dict", "result_set_to_json", "result_set_to_csv",
           "table3_to_dict", "table3_to_json"]

SCHEMA_VERSION = 1


def result_set_to_dict(rs: ResultSet) -> Dict[str, Any]:
    """Full-fidelity dict: experiment metadata + every sample."""
    exp = rs.experiment
    return {
        "schema": SCHEMA_VERSION,
        "experiment": {
            "id": exp.exp_id,
            "title": exp.title,
            "node": exp.node_name,
            "device": exp.device.value,
            "precision": exp.precision.value,
            "models": list(exp.models),
            "sizes": list(exp.sizes),
            "threads": exp.threads,
            "reps": exp.reps,
            "warmup": exp.warmup,
            "seed": exp.seed,
        },
        "measurements": [
            {
                "model": m.model,
                "display": m.display,
                "size": m.shape.m,
                "supported": m.supported,
                "note": m.note,
                "bound": m.bound,
                "times_s": list(m.times_s),
                "warmup_count": m.warmup_count,
                "gflops": m.gflops if m.supported else None,
                "seconds_mean": m.seconds if m.supported else None,
            }
            for m in rs.measurements
        ],
    }


def result_set_to_json(rs: ResultSet, indent: int = 2) -> str:
    """JSON string form of :func:`result_set_to_dict`."""
    return json.dumps(result_set_to_dict(rs), indent=indent, sort_keys=False)


def result_set_to_csv(rs: ResultSet) -> str:
    """Flat per-cell CSV (one row per model x size)."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(["experiment", "model", "size", "precision", "supported",
                     "gflops", "seconds_mean", "seconds_stdev", "note"])
    for m in rs.measurements:
        writer.writerow([
            rs.experiment.exp_id,
            m.model,
            m.shape.m,
            m.precision.value,
            m.supported,
            f"{m.gflops:.3f}" if m.supported else "",
            f"{m.seconds:.6e}" if m.supported else "",
            f"{m.stdev_seconds:.3e}" if m.supported else "",
            m.note,
        ])
    return buf.getvalue()


def table3_to_dict(t3: Table3Result) -> Dict[str, Any]:
    """Structured form of Table III: one row per (model, precision)."""
    out: Dict[str, Any] = {"schema": SCHEMA_VERSION, "rows": []}
    for row in t3.rows:
        out["rows"].append({
            "model": row.model,
            "precision": row.precision.value,
            "efficiencies": dict(row.efficiencies),
            "phi": row.phi,
        })
    return out


def table3_to_json(t3: Table3Result, indent: int = 2) -> str:
    """JSON string form of :func:`table3_to_dict`."""
    return json.dumps(table3_to_dict(t3), indent=indent)
