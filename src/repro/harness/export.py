"""Structured export of results: JSON and CSV.

Lets downstream users regenerate the paper's plots in their own tooling
(the repository itself renders ASCII only, since no plotting library is
assumed).  The schema is stable and round-trip tested:
``result_set_from_dict(result_set_to_dict(rs))`` reconstructs an equal
:class:`~repro.harness.results.ResultSet`, sample for sample.  The same
(de)serialisers back the sweep engine's on-disk result cache.

Schema history:

* v1 — original export; measurements carried ``size`` (the leading
  dimension only) and no ``precision``, so non-square shapes and
  mixed-precision sweeps were not reconstructible.
* v2 — adds per-measurement ``precision`` and the full ``shape`` (m, n,
  k), plus ``include_transfers`` on the experiment block.  v1 documents
  are still accepted by the loader: precision falls back to the
  experiment's, shapes are assumed square.
* v3 — degraded-mode plumbing: each cell record carries a ``status``
  (``"ok"`` / ``"unsupported"`` / ``"failed"``) and the document a
  top-level ``degraded`` flag.  v1/v2 documents load with every cell's
  ``failed`` defaulting to False (those schemas predate the fault
  layer, so nothing in them can be a failed cell).
* v4 — substitution provenance (the breaker/fallback layer): cells a
  fallback lane served carry ``substituted_from`` / ``served_by`` /
  ``ladder_hops`` (and ``status`` may now be ``"substituted"``), and
  the document a top-level ``substituted`` flag.  The per-cell keys are
  sparse — present only on cells with provenance — so a non-breaker
  export differs from its v3 form only in the schema number and the
  document-level flag.  v1/v2/v3 documents load with no cell
  substituted (they predate the health layer).
"""

from __future__ import annotations

import json
from typing import Any, Dict
import csv
import io

from ..core.types import MatrixShape, Precision
from ..errors import ExperimentError
from .experiment import Experiment
from .figures import Table3Result
from .results import Measurement, ResultSet

__all__ = ["result_set_to_dict", "result_set_from_dict",
           "result_set_to_json", "result_set_from_json",
           "result_set_to_csv", "write_result_set_artifact",
           "measurement_to_dict", "measurement_from_dict",
           "table3_to_dict", "table3_to_json",
           "SCHEMA_VERSION", "SUPPORTED_SCHEMAS"]

SCHEMA_VERSION = 4

#: Schema versions :func:`result_set_from_dict` can load.
SUPPORTED_SCHEMAS = (1, 2, 3, 4)


def measurement_to_dict(m: Measurement) -> Dict[str, Any]:
    """Full-fidelity dict of one measurement (schema v4 cell record)."""
    out = {
        "model": m.model,
        "display": m.display,
        "size": m.shape.m,
        "shape": {"m": m.shape.m, "n": m.shape.n, "k": m.shape.k},
        "precision": m.precision.value,
        "supported": m.supported,
        "status": m.status,
        "note": m.note,
        "bound": m.bound,
        "times_s": list(m.times_s),
        "warmup_count": m.warmup_count,
        "gflops": m.gflops if m.supported else None,
        "seconds_mean": m.seconds if m.supported else None,
    }
    if m.substituted_from:
        # Sparse provenance keys: only cells the health layer touched.
        out["substituted_from"] = m.substituted_from
        out["served_by"] = m.served_by
        out["ladder_hops"] = m.ladder_hops
    return out


def measurement_from_dict(data: Dict[str, Any],
                          default_precision: Precision = Precision.FP64,
                          ) -> Measurement:
    """Inverse of :func:`measurement_to_dict`.

    Accepts v1/v2 cell records too: without a ``shape`` block the shape
    is taken to be square of ``size``; without ``precision`` the caller's
    ``default_precision`` (the experiment-level setting) applies; without
    a ``status`` (pre-v3) no cell can be ``failed``.
    """
    if "shape" in data:
        sh = data["shape"]
        shape = MatrixShape(int(sh["m"]), int(sh["n"]), int(sh["k"]))
    else:
        shape = MatrixShape.square(int(data["size"]))
    raw_precision = data.get("precision")
    precision = (Precision.parse(raw_precision) if raw_precision
                 else default_precision)
    return Measurement(
        model=data["model"],
        display=data.get("display", data["model"]),
        shape=shape,
        precision=precision,
        times_s=tuple(float(t) for t in data.get("times_s", ())),
        warmup_count=int(data.get("warmup_count", 1)),
        supported=bool(data.get("supported", True)),
        note=data.get("note", ""),
        bound=data.get("bound", ""),
        failed=data.get("status") == "failed",
        substituted_from=data.get("substituted_from", ""),
        served_by=data.get("served_by", ""),
        ladder_hops=int(data.get("ladder_hops", 0)),
    )


def result_set_to_dict(rs: ResultSet) -> Dict[str, Any]:
    """Full-fidelity dict: experiment metadata + every sample."""
    exp = rs.experiment
    return {
        "schema": SCHEMA_VERSION,
        "experiment": {
            "id": exp.exp_id,
            "title": exp.title,
            "node": exp.node_name,
            "device": exp.device.value,
            "precision": exp.precision.value,
            "models": list(exp.models),
            "sizes": list(exp.sizes),
            "threads": exp.threads,
            "reps": exp.reps,
            "warmup": exp.warmup,
            "seed": exp.seed,
            "include_transfers": exp.include_transfers,
        },
        "degraded": rs.degraded,
        "substituted": rs.substituted,
        "measurements": [measurement_to_dict(m) for m in rs.measurements],
    }


def result_set_from_dict(data: Dict[str, Any]) -> ResultSet:
    """Inverse of :func:`result_set_to_dict`.

    Raises :class:`~repro.errors.ExperimentError` on unknown schema
    versions so stale cache entries and foreign documents fail loudly.
    """
    schema = data.get("schema")
    if schema not in SUPPORTED_SCHEMAS:
        raise ExperimentError(
            f"unsupported result-set schema {schema!r}; "
            f"this build reads {SUPPORTED_SCHEMAS}")
    exp_data = data["experiment"]
    experiment = Experiment(
        exp_id=exp_data["id"],
        title=exp_data.get("title", exp_data["id"]),
        node_name=exp_data["node"],
        device=_device_from_value(exp_data.get("device", "cpu")),
        precision=Precision.parse(exp_data.get("precision", "fp64")),
        models=tuple(exp_data["models"]),
        sizes=tuple(int(s) for s in exp_data["sizes"]),
        threads=exp_data.get("threads"),
        reps=int(exp_data.get("reps", 10)),
        warmup=int(exp_data.get("warmup", 1)),
        seed=int(exp_data.get("seed", 2023)),
        include_transfers=bool(exp_data.get("include_transfers", False)),
    )
    rs = ResultSet(experiment)
    for mdata in data.get("measurements", ()):
        rs.add(measurement_from_dict(mdata,
                                     default_precision=experiment.precision))
    return rs


def _device_from_value(value: str):
    from ..core.types import DeviceKind
    return DeviceKind(value)


def result_set_to_json(rs: ResultSet, indent: int = 2) -> str:
    """JSON string form of :func:`result_set_to_dict`."""
    return json.dumps(result_set_to_dict(rs), indent=indent, sort_keys=False)


def result_set_from_json(text: str) -> ResultSet:
    """Inverse of :func:`result_set_to_json`."""
    return result_set_from_dict(json.loads(text))


def write_result_set_artifact(path: str, rs: ResultSet) -> str:
    """Atomically write ``rs`` as a digest-carrying JSON artifact.

    The file embeds a SHA-256 content digest over the document (the
    ``digest`` key, excluded from its own hash), written via temp file +
    ``os.replace`` so a kill mid-export never leaves a truncated
    artifact.  ``repro fsck <path>`` verifies the digest later;
    :func:`result_set_from_dict` ignores the extra key, so digested
    artifacts load exactly like plain exports.  Returns the digest.
    """
    from ..ioutil import write_json_artifact
    return write_json_artifact(path, result_set_to_dict(rs))


def result_set_to_csv(rs: ResultSet) -> str:
    """Flat per-cell CSV (one row per model x shape)."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(["experiment", "model", "size", "n", "k", "precision",
                     "supported", "gflops", "seconds_mean", "seconds_stdev",
                     "note", "status"])
    for m in rs.measurements:
        writer.writerow([
            rs.experiment.exp_id,
            m.model,
            m.shape.m,
            m.shape.n,
            m.shape.k,
            m.precision.value,
            m.supported,
            f"{m.gflops:.3f}" if m.supported else "",
            f"{m.seconds:.6e}" if m.supported else "",
            f"{m.stdev_seconds:.3e}" if m.supported else "",
            m.note,
            m.status,
        ])
    return buf.getvalue()


def table3_to_dict(t3: Table3Result) -> Dict[str, Any]:
    """Structured form of Table III: one row per (model, precision)."""
    out: Dict[str, Any] = {"schema": SCHEMA_VERSION, "rows": [],
                           "degraded_cells": list(t3.degraded_cells),
                           "substituted_cells": list(t3.substituted_cells)}
    for row in t3.rows:
        out["rows"].append({
            "model": row.model,
            "precision": row.precision.value,
            "efficiencies": dict(row.efficiencies),
            "phi": row.phi,
        })
    return out


def table3_to_json(t3: Table3Result, indent: int = 2) -> str:
    """JSON string form of :func:`table3_to_dict`."""
    return json.dumps(table3_to_dict(t3), indent=indent)
