"""Text rendering: tables and ASCII charts for figures.

No plotting dependency is available offline, so figures render as ASCII
line charts — adequate for the study's purpose (relative ordering and
curve shape) and diffable in CI.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from .results import ResultSet

__all__ = ["ascii_table", "ascii_chart", "efficiency_table", "render_result_set"]

_MARKERS = "ox+*#@%&"


def ascii_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Monospace table with column auto-sizing."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    out: List[str] = []
    for ridx, row in enumerate(cells):
        out.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
        if ridx == 0:
            out.append("  ".join("-" * w for w in widths))
    return "\n".join(out)


def ascii_chart(series: Dict[str, Tuple[Sequence[float], Sequence[float]]],
                width: int = 64, height: int = 16,
                ylabel: str = "GFLOP/s", xlabel: str = "matrix size") -> str:
    """Plot several (x, y) series on one ASCII grid."""
    pts = [(x, y) for xs, ys in series.values() for x, y in zip(xs, ys)]
    if not pts:
        return "(no data)"
    xmin = min(p[0] for p in pts)
    xmax = max(p[0] for p in pts)
    ymax = max(p[1] for p in pts)
    ymin = 0.0
    xspan = (xmax - xmin) or 1.0
    yspan = (ymax - ymin) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for idx, (name, (xs, ys)) in enumerate(series.items()):
        mark = _MARKERS[idx % len(_MARKERS)]
        for x, y in zip(xs, ys):
            col = int((x - xmin) / xspan * (width - 1))
            row = height - 1 - int((y - ymin) / yspan * (height - 1))
            grid[row][col] = mark

    lines = []
    for r, rowchars in enumerate(grid):
        yval = ymax - r * yspan / (height - 1)
        prefix = f"{yval:9.0f} |" if r % 4 == 0 or r == height - 1 else " " * 9 + " |"
        lines.append(prefix + "".join(rowchars))
    lines.append(" " * 10 + "+" + "-" * width)
    lines.append(" " * 10 + f" {xmin:.0f}{' ' * max(1, width - 16)}{xmax:.0f}")
    legend = "   ".join(f"{_MARKERS[i % len(_MARKERS)]} {name}"
                        for i, name in enumerate(series))
    lines.append(f"  [{ylabel} vs {xlabel}]  {legend}")
    return "\n".join(lines)


def efficiency_table(rs: ResultSet, reference: str) -> str:
    """Per-size efficiency of every model against ``reference`` — the
    ratio curves behind the paper's 'constant overhead' observations."""
    models = [m for m in rs.models() if m != reference and rs.supported(m)]
    if not models:
        return "(no portable models supported)"
    headers = ["size"] + [rs.cell(m, rs.sizes()[0]).display for m in models]
    rows: List[List[object]] = []
    for size in rs.sizes():
        ref_cell = rs.cell(reference, size)
        if not ref_cell.supported:
            continue
        row: List[object] = [size]
        for model in models:
            cell = rs.cell(model, size)
            row.append(f"{cell.gflops / ref_cell.gflops:.3f}"
                       if cell.supported else "n/a")
        rows.append(row)
    mean_row: List[object] = ["mean e"]
    for model in models:
        e = rs.mean_efficiency(model, reference)
        mean_row.append(f"{e:.3f}" if e is not None else "n/a")
    rows.append(mean_row)
    return (f"efficiency vs {rs.cell(reference, rs.sizes()[0]).display}\n"
            + ascii_table(headers, rows))


def render_result_set(rs: ResultSet, chart: bool = True) -> str:
    """Table + chart for one experiment panel.

    Degraded sweeps stay renderable: permanently failed cells show as
    ``FAIL`` and a banner summarises the lost coverage (the paper's
    e = 0 accounting), instead of the report crashing mid-campaign.
    Substituted cells (served by a fallback lane while their native lane
    was breaker-open) render their measured number with a ``*`` marker
    and a provenance note, so a self-healed sweep can never pass for a
    clean one.
    """
    exp = rs.experiment
    headers = ["size"] + [rs.cell(m, rs.sizes()[0]).display for m in rs.models()]
    rows: List[List[object]] = []
    for size in rs.sizes():
        row: List[object] = [size]
        for model in rs.models():
            m = rs.cell(model, size)
            if m.supported:
                row.append(f"{m.gflops:.0f}*" if m.substituted
                           else f"{m.gflops:.0f}")
            else:
                row.append("FAIL" if m.failed else "n/a")
        rows.append(row)
    parts = [exp.describe()]
    if rs.degraded:
        counts = rs.status_counts()
        parts.append(f"  DEGRADED: {counts['failed']} of "
                     f"{len(rs.measurements)} cells failed "
                     f"(reported as e=0)")
    if rs.substituted:
        counts = rs.status_counts()
        parts.append(f"  SUBSTITUTED: {counts['substituted']} of "
                     f"{len(rs.measurements)} cells served by fallback "
                     f"lanes (marked *)")
    parts += ["", ascii_table(headers, rows)]
    if chart:
        series = {}
        for model in rs.models():
            xs, ys = rs.series(model)
            if xs:
                series[rs.cell(model, xs[0]).display] = (xs, ys)
        if series:
            parts += ["", ascii_chart(series)]
    unsupported = [
        f"  note: {rs.cell(model, rs.sizes()[0]).display} unsupported - "
        f"{rs.cell(model, rs.sizes()[0]).note}"
        for model in rs.models()
        if not rs.supported(model) and not rs.failed(model)
    ]
    parts += unsupported
    parts += [
        f"  note: {m.display} @{m.shape} failed - {m.note}"
        for m in rs.failed_cells()
    ]
    parts += [
        f"  note: {m.display} @{m.shape} substituted - served by "
        f"{m.served_by} (lane {m.substituted_from} open, "
        f"{m.ladder_hops} hop(s))"
        for m in rs.substituted_cells()
    ]
    return "\n".join(parts)
