"""Run options: the one immutable bag of knobs behind ``run_experiment``.

Replaces the loose keyword arguments that used to thread through
``runner.run_experiment`` and ``SweepEngine.run`` — cache toggles, job
counts, profilers, and (new with the fault layer) the retry policy and
fault configuration all travel together in a frozen :class:`RunOptions`.

Retries happen in *simulated* time: the exponential backoff of
:class:`RetryPolicy` charges seconds against the per-cell budget and the
trace timeline without ever sleeping, so a fault-heavy campaign still
runs at full host speed and remains bit-reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Mapping, Optional

from ...errors import ConfigError
from ...sim.faults import FaultConfig
from ...trace.profiler import Profiler
from ..health import BreakerPolicy, FallbackLadder
from .watchdog import WatchdogPolicy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ...harness.journal import RunJournal
    from ..results import Measurement

__all__ = ["RetryPolicy", "RunOptions"]


@dataclass(frozen=True)
class RetryPolicy:
    """Deterministic retry/backoff budget for one sweep cell.

    * ``max_attempts`` — total attempts per cell (1 = no retries);
    * ``backoff_base_s`` / ``backoff_factor`` — exponential backoff in
      simulated seconds: attempt *k*'s failure waits
      ``base * factor**(k-1)`` before attempt *k+1*;
    * ``max_cell_seconds`` — per-cell simulated-time budget covering
      failed attempts plus backoff; ``None`` means unbounded.
    """

    max_attempts: int = 1
    backoff_base_s: float = 0.5
    backoff_factor: float = 2.0
    max_cell_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError(f"max_attempts {self.max_attempts} < 1")
        if self.backoff_base_s < 0:
            raise ConfigError("backoff base must be non-negative")
        if self.backoff_factor < 1.0:
            raise ConfigError("backoff factor must be >= 1")
        if self.max_cell_seconds is not None and self.max_cell_seconds <= 0:
            raise ConfigError("per-cell budget must be positive")

    def backoff_s(self, attempt: int) -> float:
        """Simulated backoff after failed attempt number ``attempt``."""
        if attempt < 1:
            raise ConfigError(f"attempt numbers are 1-based, got {attempt}")
        return self.backoff_base_s * self.backoff_factor ** (attempt - 1)

    def describe(self) -> str:
        if self.max_attempts == 1:
            return "no retries"
        budget = (f", budget {self.max_cell_seconds:g}s/cell"
                  if self.max_cell_seconds is not None else "")
        return (f"up to {self.max_attempts} attempts, backoff "
                f"{self.backoff_base_s:g}s x{self.backoff_factor:g}{budget}")


@dataclass(frozen=True)
class RunOptions:
    """Everything one ``run_experiment`` call may tune, in one place.

    Tri-state ``cache``/``jobs`` (``None`` = environment default) keep
    the zero-configuration path identical to passing no options at all.
    Construct with keywords — the dataclass is frozen, and positional
    construction is considered private.
    """

    cache: Optional[bool] = None
    jobs: Optional[int] = None
    profiler: Optional[Profiler] = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    faults: FaultConfig = field(default_factory=FaultConfig)
    fail_fast: bool = False
    #: Write-ahead journal for this run (crash-safe campaigns).  ``None``
    #: keeps the classic, unjournaled engine behaviour.
    journal: Optional["RunJournal"] = None
    #: Fingerprint -> measurement replay map from a prior run's journal;
    #: cells found here are served without touching cache or simulator.
    replay: Optional[Mapping[str, "Measurement"]] = None
    #: Explicit run identity; defaults to the journal's (if any).
    run_id: Optional[str] = None
    #: Per-lane circuit breaker policy; the default (threshold 0) keeps
    #: the health layer entirely out of the run path.
    breaker: BreakerPolicy = field(default_factory=BreakerPolicy)
    #: Explicit fallback routing; ``None`` derives ladders from the model
    #: registry's device-support matrix when breakers are enabled.
    fallback: Optional[FallbackLadder] = None
    #: Fingerprint -> per-cell health metadata from a prior run's journal
    #: (breaker resumes replay these through the lane state machines).
    replay_meta: Optional[Mapping[str, Mapping[str, object]]] = None
    #: Process-engine supervision (hang deadlines, pool respawn bounds).
    #: Parent-side scaffolding only: never fingerprinted or journaled,
    #: so the policy cannot change result bytes.
    watchdog: WatchdogPolicy = field(default_factory=WatchdogPolicy)

    def __post_init__(self) -> None:
        if self.jobs is not None and self.jobs < 1:
            raise ConfigError(f"jobs {self.jobs} < 1")

    @classmethod
    def from_env(cls) -> "RunOptions":
        """Options from ``REPRO_FAULTS`` / ``REPRO_RETRIES`` /
        ``REPRO_BACKOFF`` / ``REPRO_MAX_CELL_SECONDS`` / ``REPRO_FAIL_FAST``
        / ``REPRO_BREAKER`` / ``REPRO_FALLBACK`` / ``REPRO_WATCHDOG``.

        Cache and job-count environment knobs stay with
        :meth:`SweepEngine.from_env`; this covers the resilience layer so
        campaign-level commands (``repro report``, figures, Table III)
        inherit fault/retry settings without new plumbing.
        """
        from ...config import RunConfig
        cfg = RunConfig.from_os_environ()
        faults_spec = cfg.get("REPRO_FAULTS")
        faults = FaultConfig.parse(faults_spec) if faults_spec else FaultConfig()
        raw_retries = cfg.get("REPRO_RETRIES")
        try:
            retries = int(raw_retries) if raw_retries is not None else 0
        except ValueError as exc:
            raise ConfigError(
                f"REPRO_RETRIES={raw_retries!r} is not an integer") from exc
        if retries < 0:
            raise ConfigError(f"REPRO_RETRIES={retries} must be >= 0")
        retry = RetryPolicy(
            max_attempts=retries + 1,
            backoff_base_s=cfg.get_float("REPRO_BACKOFF", 0.5),
            max_cell_seconds=cfg.get_float("REPRO_MAX_CELL_SECONDS", None),
        )
        breaker_spec = cfg.get("REPRO_BREAKER")
        breaker = (BreakerPolicy.parse(breaker_spec) if breaker_spec
                   else BreakerPolicy())
        fallback_spec = cfg.get("REPRO_FALLBACK")
        fallback = (FallbackLadder.parse(fallback_spec) if fallback_spec
                    else None)
        watchdog_spec = cfg.get("REPRO_WATCHDOG")
        watchdog = (WatchdogPolicy.parse(watchdog_spec) if watchdog_spec
                    else WatchdogPolicy())
        return cls(
            retry=retry,
            faults=faults,
            fail_fast=cfg.get_bool("REPRO_FAIL_FAST", False),
            breaker=breaker,
            fallback=fallback,
            watchdog=watchdog,
        )

    def with_profiler(self, profiler: Optional[Profiler]) -> "RunOptions":
        """Copy with ``profiler`` swapped in (``None`` leaves it alone)."""
        if profiler is None:
            return self
        return replace(self, profiler=profiler)

    def payload(self) -> dict:
        """The resilience knobs as a JSON-serialisable dict.

        Written into the journal's ``run-open`` record so resume can
        restore exactly the fault/retry configuration that shaped the
        original run (those knobs decide *which* cells fail, so byte-
        identical resume must reuse them, not the current environment).
        """
        out = {
            "faults": self.faults.payload(),
            "retry": {
                "max_attempts": self.retry.max_attempts,
                "backoff_base_s": self.retry.backoff_base_s,
                "backoff_factor": self.retry.backoff_factor,
                "max_cell_seconds": self.retry.max_cell_seconds,
            },
            "fail_fast": self.fail_fast,
        }
        # Breaker knobs join the payload only when enabled, keeping the
        # journal bytes of every non-breaker run identical to PR 4's.
        if self.breaker.enabled:
            out["breaker"] = self.breaker.payload()
            if self.fallback is not None:
                out["fallback"] = self.fallback.payload()
        return out

    @property
    def resilient(self) -> bool:
        """Whether any fault/retry machinery is active for this run."""
        return (self.faults.enabled or self.retry.max_attempts > 1
                or self.fail_fast or self.breaker.enabled)
