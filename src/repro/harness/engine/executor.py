"""The sweep engine: concurrent, cached execution of experiment cells.

``SweepEngine.run`` is contractually bit-identical to
:func:`repro.harness.runner.run_experiment_serial`: cells fan out over a
``concurrent.futures`` thread pool (every cell is an independent,
deterministic simulation) and merge back into the :class:`ResultSet` in
serial cell order.  A persistent :class:`ResultCache` keyed by cell
fingerprints makes warm re-runs — a second ``repro report``, regenerating
a figure after editing prose — skip the simulator entirely.

Trace fidelity: when a caller passes a :class:`Profiler`, each executed
cell records into a private profiler and the engine replays the events
into the caller's profiler in cell order, so the simulated timeline is
byte-identical to the serial one; cache *reads* are bypassed for such
runs (a cached cell would leave no trace events to corroborate).

Observability: every run produces a :class:`SweepReport` with per-cell
wall-clock timings and cache outcomes, renderable as an ASCII table or as
a :mod:`repro.trace` timeline (``CELL``/``CACHE_HIT``/``CACHE_MISS``
events).
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ...core.types import MatrixShape
from ...models.base import ProgrammingModel
from ...models.registry import model_by_name
from ...trace.events import EventKind
from ...trace.profiler import Profiler
from ..experiment import Experiment
from ..results import Measurement, ResultSet
from ..runner import run_measurement
from .cache import ResultCache
from .fingerprint import cell_fingerprint

__all__ = ["CellRecord", "SweepReport", "SweepEngine"]


@dataclass(frozen=True)
class CellRecord:
    """Observability record of one executed or cache-served cell."""

    model: str
    shape: str
    fingerprint: str
    cached: bool
    wall_s: float


@dataclass
class SweepReport:
    """What one engine run did: per-cell timings plus cache counters."""

    experiment_id: str
    cells: List[CellRecord] = field(default_factory=list)
    cache_stats: Dict[str, int] = field(default_factory=dict)
    parallel: bool = False
    workers: int = 1
    wall_s: float = 0.0

    @property
    def cached_cells(self) -> int:
        return sum(1 for c in self.cells if c.cached)

    @property
    def executed_cells(self) -> int:
        return sum(1 for c in self.cells if not c.cached)

    def timeline(self) -> Profiler:
        """The run as a :mod:`repro.trace` timeline (wall-clock spans)."""
        prof = Profiler()
        for cell in self.cells:
            kind = EventKind.CACHE_HIT if cell.cached else EventKind.CACHE_MISS
            prof.record(kind, f"{cell.model}@{cell.shape}", 0.0,
                        fingerprint=cell.fingerprint)
            prof.record(EventKind.CELL, f"{cell.model}@{cell.shape}",
                        cell.wall_s, cached=cell.cached)
        return prof

    def render(self) -> str:
        """ASCII summary for ``repro run --engine-stats``."""
        lines = [
            f"sweep {self.experiment_id}: {len(self.cells)} cells "
            f"({self.cached_cells} cached, {self.executed_cells} executed) "
            f"in {self.wall_s * 1e3:.1f} ms wall "
            f"[{'parallel x' + str(self.workers) if self.parallel else 'serial'}]",
        ]
        if self.cache_stats:
            lines.append(
                "cache: " + ", ".join(f"{v} {k}"
                                      for k, v in self.cache_stats.items()))
        for cell in self.cells:
            origin = "cache" if cell.cached else "sim"
            lines.append(f"  {cell.model:>12s} @{cell.shape:<18s} "
                         f"{cell.wall_s * 1e3:9.3f} ms  [{origin}]")
        return "\n".join(lines)


class SweepEngine:
    """Concurrent, cached executor of experiment sweeps."""

    def __init__(self, cache: Optional[ResultCache] = None,
                 parallel: bool = True,
                 max_workers: Optional[int] = None) -> None:
        self.cache = cache
        self.parallel = parallel
        self.max_workers = max_workers
        self.last_report: Optional[SweepReport] = None

    @classmethod
    def from_env(cls, cache_enabled: Optional[bool] = None,
                 parallel: Optional[bool] = None,
                 max_workers: Optional[int] = None) -> "SweepEngine":
        """Engine configured from ``REPRO_CACHE``/``REPRO_CACHE_DIR``/
        ``REPRO_JOBS``; keyword arguments override the environment."""
        from ...config import RunConfig
        cfg = RunConfig.from_os_environ()
        if cache_enabled is None:
            cache_enabled = cfg.get_bool("REPRO_CACHE", True)
        if max_workers is None:
            jobs = cfg.get_int("REPRO_JOBS", 0)
            max_workers = jobs or None
        if parallel is None:
            parallel = max_workers != 1
        return cls(cache=ResultCache() if cache_enabled else None,
                   parallel=parallel, max_workers=max_workers)

    # -- execution --------------------------------------------------------

    def run(self, experiment: Experiment,
            profiler: Optional[Profiler] = None) -> ResultSet:
        """Run every cell; bit-identical to the serial reference loop."""
        run_start = time.perf_counter()
        cells: List[Tuple[ProgrammingModel, MatrixShape]] = [
            (model_by_name(name), shape)
            for name in experiment.models
            for shape in experiment.shapes()
        ]
        fingerprints = [cell_fingerprint(experiment, model.name, shape)
                        for model, shape in cells]
        measurements: List[Optional[Measurement]] = [None] * len(cells)
        records: List[Optional[CellRecord]] = [None] * len(cells)

        use_cache_reads = self.cache is not None and profiler is None
        misses: List[int] = []
        for i, (model, shape) in enumerate(cells):
            cached = self.cache.get(fingerprints[i]) if use_cache_reads else None
            if cached is None:
                misses.append(i)
            else:
                measurements[i] = cached
                records[i] = CellRecord(model.name, str(shape),
                                        fingerprints[i], True, 0.0)

        traces: List[Optional[Profiler]] = [None] * len(cells)

        def execute(i: int) -> None:
            model, shape = cells[i]
            cell_prof = Profiler() if profiler is not None else None
            t0 = time.perf_counter()
            m = run_measurement(model, experiment, shape, cell_prof)
            wall = time.perf_counter() - t0
            if self.cache is not None:
                self.cache.put(fingerprints[i], m,
                               metadata={"experiment": experiment.exp_id})
            measurements[i] = m
            traces[i] = cell_prof
            records[i] = CellRecord(model.name, str(shape),
                                    fingerprints[i], False, wall)

        workers = 1
        if self.parallel and len(misses) > 1:
            workers = min(len(misses),
                          self.max_workers or (os.cpu_count() or 4))
        if workers > 1:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                for future in [pool.submit(execute, i) for i in misses]:
                    future.result()
        else:
            for i in misses:
                execute(i)

        if profiler is not None:
            # Deterministic replay: cell order, original durations — the
            # resulting timeline equals the serial run's byte for byte.
            for cell_prof in traces:
                if cell_prof is None:
                    continue
                for ev in cell_prof.events:
                    profiler.record(ev.kind, ev.name, ev.duration_s,
                                    **ev.metadata)

        results = ResultSet(experiment)
        for m in measurements:
            assert m is not None
            results.add(m)
        self.last_report = SweepReport(
            experiment_id=experiment.exp_id,
            cells=[r for r in records if r is not None],
            cache_stats=(self.cache.stats.snapshot()
                         if self.cache is not None else {}),
            parallel=workers > 1,
            workers=workers,
            wall_s=time.perf_counter() - run_start,
        )
        return results
