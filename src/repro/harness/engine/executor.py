"""The sweep engine: concurrent, cached, fault-tolerant execution of cells.

``SweepEngine.run`` is contractually bit-identical to the serial
reference loop: cells fan out over a ``concurrent.futures`` executor
(every cell is an independent, deterministic simulation) and merge back
into the :class:`ResultSet` in serial cell order.  Two fan-out modes
exist: ``mode="thread"`` (the classic GIL-bound pool — cheap, but the
Python-heavy simulator loops serialize on the GIL) and
``mode="process"`` (``--engine process`` / ``REPRO_ENGINE=process``),
which dispatches each cache-missed cell to a ``ProcessPoolExecutor``
worker carrying a frozen payload (see
:mod:`repro.harness.engine.worker`), scaling ``--jobs`` past one core.
The parent stays the single writer of the journal and the sole merge
point; workers write the (multi-process-safe) result cache themselves.
A persistent :class:`ResultCache` keyed by cell fingerprints makes warm
re-runs — a second ``repro report``, regenerating a figure after editing
prose — skip the simulator entirely.

Fault tolerance: a :class:`~repro.harness.engine.options.RunOptions` may
carry a deterministic :class:`~repro.sim.faults.FaultConfig` and a
:class:`~repro.harness.engine.options.RetryPolicy`.  Faulted attempts
retry with exponential backoff in *simulated* time; a cell that keeps
failing is isolated into a degraded ``failed`` measurement (the paper's
e = 0 accounting) instead of killing the sweep — unless ``fail_fast``
asks for the campaign to abort.  Failed cells are never written to the
cache, and fault-enabled runs fingerprint their cells separately, so
retries cannot poison clean results.

Trace fidelity: when a caller passes a :class:`Profiler`, each executed
cell records into a private profiler — fault (``FAULT``) and backoff
(``RETRY``) spans included — and the engine replays the events into the
caller's profiler in cell order, so the simulated timeline is
byte-identical to the serial one; cache *reads* are bypassed for such
runs (a cached cell would leave no trace events to corroborate).

Self-healing: an enabled :class:`~repro.harness.health.BreakerPolicy`
activates the per-lane health subsystem (:mod:`repro.harness.health`).
Lanes that keep failing permanently trip OPEN and their cells reroute
down a :class:`~repro.harness.health.FallbackLadder`; substituted
measurements carry full provenance, breaker transitions are journaled
and traced, and after a simulated cooldown a probe cell decides whether
the lane re-closes.  Because breaker state crosses cell boundaries,
breaker-enabled runs execute serially in cell order and bypass cache
reads (native successes are still written); with breakers disabled —
the default — every code path is byte-identical to the pre-health
engine.

Observability: every run produces a :class:`SweepReport` with per-cell
wall-clock offsets/timings, attempt counts and cache outcomes,
renderable as an ASCII table (with a degraded-cell section) or as a
:mod:`repro.trace` timeline whose cell spans sit at their real
wall-clock offsets.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import os
import sys
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from ...core.types import MatrixShape, Precision
from ...errors import (
    CellFailure,
    ConfigError,
    RetryExhaustedError,
    RunInterrupted,
    WorkerLost,
)
from ...models.base import ProgrammingModel
from ...models.registry import model_by_name
from ...sim.faults import FaultInjector
from ...trace.events import EventKind
from ...trace.profiler import Profiler
from ..experiment import Experiment
from ..export import measurement_from_dict, measurement_to_dict
from ..health import (
    BreakerState,
    BreakerTransition,
    FallbackLadder,
    HealthRegistry,
    resolve_hop,
)
from ..results import Measurement, ResultSet
from .cache import ResultCache
from .fingerprint import campaign_fingerprint, cell_fingerprint
from .options import RunOptions
from .worker import (
    CellTask,
    RunPayload,
    attempt_cell,
    execute_cell_payload,
    failed_measurement,
)

__all__ = ["CellRecord", "SweepReport", "SweepEngine", "ENGINE_MODES"]

#: Executor modes ``SweepEngine`` accepts: a GIL-bound thread pool (the
#: classic engine) or a true multi-core process pool.
ENGINE_MODES = ("thread", "process")

#: Trace event kind for each breaker state a lane can transition *into*.
_BREAKER_EVENT = {
    BreakerState.OPEN: EventKind.BREAKER_OPEN,
    BreakerState.HALF_OPEN: EventKind.BREAKER_HALF_OPEN,
    BreakerState.CLOSED: EventKind.BREAKER_CLOSE,
}


@dataclass(frozen=True)
class CellRecord:
    """Observability record of one executed, served or failed cell."""

    model: str
    shape: str
    fingerprint: str
    cached: bool
    wall_s: float
    #: Wall-clock offset of this cell from the start of the engine run —
    #: real (possibly overlapping) positions under the thread-pool fan-out.
    start_s: float = 0.0
    #: "ok" | "cached" | "replayed" | "failed" | "substituted"
    status: str = "ok"
    attempts: int = 1
    faults: int = 0
    #: Lane that actually served the cell when it was substituted ("").
    served_by: str = ""

    @property
    def failed(self) -> bool:
        return self.status == "failed"

    @property
    def replayed(self) -> bool:
        return self.status == "replayed"

    @property
    def substituted(self) -> bool:
        return self.status == "substituted"


@dataclass
class SweepReport:
    """What one engine run did: per-cell timings plus cache counters."""

    experiment_id: str
    cells: List[CellRecord] = field(default_factory=list)
    cache_stats: Dict[str, int] = field(default_factory=dict)
    parallel: bool = False
    workers: int = 1
    #: Which executor fanned the cells out: "thread" or "process".
    engine: str = "thread"
    wall_s: float = 0.0
    #: Run identity when the sweep is journaled ("" otherwise).
    run_id: str = ""
    #: Breaker transition history, in cell order (breaker runs only).
    transitions: List[BreakerTransition] = field(default_factory=list)
    #: Worker-pool kill/rebuild cycles the watchdog performed (process
    #: engine only; 0 on a healthy run).
    respawns: int = 0
    #: Cells the watchdog resubmitted after a pool crash or hang.
    redrives: int = 0

    @property
    def cached_cells(self) -> int:
        return sum(1 for c in self.cells if c.cached)

    @property
    def replayed_cells(self) -> int:
        return sum(1 for c in self.cells if c.replayed)

    @property
    def executed_cells(self) -> int:
        return sum(1 for c in self.cells if not c.cached and not c.replayed)

    @property
    def failed_cells(self) -> int:
        return sum(1 for c in self.cells if c.failed)

    @property
    def substituted_cells(self) -> int:
        return sum(1 for c in self.cells if c.substituted)

    @property
    def total_attempts(self) -> int:
        return sum(c.attempts for c in self.cells)

    @property
    def degraded(self) -> bool:
        return self.failed_cells > 0

    def timeline(self) -> Profiler:
        """The run as a :mod:`repro.trace` timeline.

        Cells are laid out at their *real* wall-clock offsets (concurrent
        cells overlap, exactly as they ran) rather than stacked end to
        end from t=0, so a Chrome-trace export shows the actual fan-out.
        """
        prof = Profiler()
        for cell in sorted(self.cells, key=lambda c: (c.start_s, c.model,
                                                      c.shape)):
            if cell.cached:
                kind = EventKind.CACHE_HIT
            elif cell.replayed:
                kind = EventKind.REPLAY
            else:
                kind = EventKind.CACHE_MISS
            prof.record_at(kind, f"{cell.model}@{cell.shape}", cell.start_s,
                           0.0, fingerprint=cell.fingerprint)
            prof.record_at(EventKind.CELL, f"{cell.model}@{cell.shape}",
                           cell.start_s, cell.wall_s, cached=cell.cached,
                           status=cell.status, attempts=cell.attempts)
            if cell.substituted:
                prof.record_at(EventKind.SUBSTITUTION,
                               f"{cell.model}@{cell.shape}<-{cell.served_by}",
                               cell.start_s, 0.0, served_by=cell.served_by)
        for tr in self.transitions:
            # Anchor each transition at its cell's wall-clock offset (the
            # breaker clock itself is simulated lane time).
            offset = (self.cells[tr.cell_index].start_s
                      if 0 <= tr.cell_index < len(self.cells) else 0.0)
            prof.record_at(_BREAKER_EVENT[tr.to_state], tr.lane, offset, 0.0,
                           cell=tr.cell_index, at_s=tr.at_s,
                           reason=tr.reason)
        return prof

    def _fanout_label(self) -> str:
        if not self.parallel:
            return "serial"
        if self.engine == "process":
            return f"process x{self.workers}"
        return f"parallel x{self.workers}"

    def render(self) -> str:
        """ASCII summary for ``repro run --engine-stats``."""
        lines = [
            f"sweep {self.experiment_id}: {len(self.cells)} cells "
            f"({self.cached_cells} cached, "
            + (f"{self.replayed_cells} replayed, " if self.replayed_cells
               else "")
            + f"{self.executed_cells} executed"
            + (f", {self.substituted_cells} SUBSTITUTED"
               if self.substituted_cells else "")
            + (f", {self.failed_cells} FAILED" if self.degraded else "")
            + f") in {self.wall_s * 1e3:.1f} ms wall "
            f"[{self._fanout_label()}]",
        ]
        if self.run_id:
            lines.append(f"run: {self.run_id} (journaled)")
        if self.cache_stats:
            lines.append(
                "cache: " + ", ".join(f"{v} {k}"
                                      for k, v in self.cache_stats.items()))
        if self.respawns or self.redrives:
            lines.append(f"watchdog: {self.respawns} pool respawn(s), "
                         f"{self.redrives} cell redrive(s)")
        for cell in self.cells:
            origin = {"cached": "cache", "failed": "FAILED",
                      "replayed": "replay",
                      "substituted": f"<- {cell.served_by}",
                      }.get(cell.status, "sim")
            retries = (f"  ({cell.attempts} attempts, {cell.faults} faults)"
                       if cell.attempts > 1 or cell.faults else "")
            lines.append(f"  {cell.model:>12s} @{cell.shape:<18s} "
                         f"{cell.wall_s * 1e3:9.3f} ms  [{origin}]{retries}")
        if self.degraded:
            lines.append("degraded cells (reported as e=0):")
            for cell in self.cells:
                if cell.failed:
                    lines.append(f"  {cell.model} @{cell.shape} failed after "
                                 f"{cell.attempts} attempts "
                                 f"({cell.faults} faults)")
        if self.transitions:
            lines.append("breaker transitions:")
            for tr in self.transitions:
                lines.append(f"  {tr.describe()}")
        return "\n".join(lines)


class SweepEngine:
    """Concurrent, cached, fault-tolerant executor of experiment sweeps."""

    def __init__(self, *, cache: Optional[ResultCache] = None,
                 parallel: bool = True,
                 max_workers: Optional[int] = None,
                 mode: str = "thread") -> None:
        if mode not in ENGINE_MODES:
            raise ConfigError(
                f"engine mode must be one of {'/'.join(ENGINE_MODES)}, "
                f"got {mode!r}")
        self.cache = cache
        self.parallel = parallel
        self.max_workers = max_workers
        self.mode = mode
        self.last_report: Optional[SweepReport] = None

    @classmethod
    def from_env(cls, cache_enabled: Optional[bool] = None,
                 parallel: Optional[bool] = None,
                 max_workers: Optional[int] = None,
                 mode: Optional[str] = None) -> "SweepEngine":
        """Engine configured from ``REPRO_CACHE``/``REPRO_CACHE_DIR``/
        ``REPRO_JOBS``/``REPRO_ENGINE``; keyword arguments override the
        environment."""
        from ...config import RunConfig
        cfg = RunConfig.from_os_environ()
        if cache_enabled is None:
            cache_enabled = cfg.get_bool("REPRO_CACHE", True)
        if max_workers is None:
            jobs = cfg.get_int("REPRO_JOBS", 0)
            max_workers = jobs or None
        if parallel is None:
            parallel = max_workers != 1
        if mode is None:
            mode = cfg.get("REPRO_ENGINE") or "thread"
        return cls(cache=ResultCache() if cache_enabled else None,
                   parallel=parallel, max_workers=max_workers, mode=mode)

    @staticmethod
    def _mp_context():
        """Start method for worker processes: ``fork`` where available.

        A spawned worker re-imports the whole package (~half the cost of
        a cold seed sweep, per worker); forking inherits the warm parent
        for ~milliseconds.  Workers never touch the parent's journal or
        thread state, so forking is safe here.
        """
        if "fork" in multiprocessing.get_all_start_methods():
            return multiprocessing.get_context("fork")
        return multiprocessing.get_context()  # pragma: no cover - non-POSIX

    # -- execution --------------------------------------------------------

    def run(self, experiment: Experiment,
            profiler: Optional[Profiler] = None,
            *, options: Optional[RunOptions] = None) -> ResultSet:
        """Run every cell; bit-identical to the serial reference loop.

        ``options`` threads the resilience layer through the run: fault
        injection, per-cell retries with simulated backoff, and the
        ``fail_fast`` abort switch.  Without options (or with the
        defaults) behaviour is the classic engine: any error propagates.

        Crash safety: with ``options.journal`` set, every event of the
        run lands in the write-ahead journal (fsync'd before the engine
        proceeds), SIGINT/SIGTERM finalize the journal and surface as
        :class:`~repro.errors.RunInterrupted`, and fingerprints found in
        ``options.replay`` are served from a prior run's journal without
        touching cache or simulator — the resume path.
        """
        opts = options if options is not None else RunOptions()
        if profiler is None:
            profiler = opts.profiler
        journal = opts.journal
        replay = opts.replay or {}
        replay_meta = opts.replay_meta or {}
        run_id = (journal.run_id if journal is not None
                  else (opts.run_id or ""))
        injector = (FaultInjector(opts.faults) if opts.faults.enabled
                    else None)
        health: Optional[HealthRegistry] = None
        if opts.breaker.enabled:
            ladder = (opts.fallback if opts.fallback is not None
                      else FallbackLadder.default_for(experiment))
            health = HealthRegistry(opts.breaker, ladder, experiment)
        run_start = time.perf_counter()
        cells: List[Tuple[ProgrammingModel, MatrixShape]] = [
            (model_by_name(name), shape)
            for name in experiment.models
            for shape in experiment.shapes()
        ]
        fingerprints = [cell_fingerprint(experiment, model.name, shape,
                                         faults=opts.faults)
                        for model, shape in cells]
        if journal is not None and not journal.opened:
            journal.open_run(
                manifest=experiment.to_dict(),
                campaign=campaign_fingerprint(
                    experiment, opts.faults, breaker=opts.breaker,
                    fallback=health.ladder if health is not None else None),
                options=opts.payload(),
                cells=[{"index": i, "model": model.name,
                        "shape": str(shape), "fingerprint": fingerprints[i]}
                       for i, (model, shape) in enumerate(cells)],
            )
        measurements: List[Optional[Measurement]] = [None] * len(cells)
        records: List[Optional[CellRecord]] = [None] * len(cells)

        if health is None:
            for i, (model, shape) in enumerate(cells):
                replayed = replay.get(fingerprints[i])
                if replayed is None:
                    continue
                measurements[i] = replayed
                records[i] = CellRecord(
                    model=model.name, shape=str(shape),
                    fingerprint=fingerprints[i], cached=False, wall_s=0.0,
                    start_s=time.perf_counter() - run_start,
                    status="replayed")

        # Breaker runs bypass cache reads: routing depends on lane state
        # accumulated across cells, so a cache hit would starve the state
        # machine of the native outcome that drives it (same precedent as
        # profiler runs, which need the trace events a hit would skip).
        use_cache_reads = (self.cache is not None and profiler is None
                           and health is None)
        misses: List[int] = []
        if health is not None:
            misses = list(range(len(cells)))
        else:
            for i, (model, shape) in enumerate(cells):
                if measurements[i] is not None:
                    continue
                cached = (self.cache.get(fingerprints[i]) if use_cache_reads
                          else None)
                if cached is None:
                    misses.append(i)
                else:
                    measurements[i] = cached
                    records[i] = CellRecord(
                        model=model.name, shape=str(shape),
                        fingerprint=fingerprints[i], cached=True, wall_s=0.0,
                        start_s=time.perf_counter() - run_start,
                        status="cached")
                    if journal is not None:
                        journal.cell_done(i, fingerprints[i], cached,
                                          cached=True, wall_s=0.0)

        traces: List[Optional[Profiler]] = [None] * len(cells)

        def execute(i: int) -> None:
            model, shape = cells[i]
            cell_prof = Profiler() if profiler is not None else None
            if journal is not None:
                journal.cell_start(i, model.name, str(shape),
                                   fingerprints[i])
            t0 = time.perf_counter()
            start_s = t0 - run_start
            m, attempts, faults_hit, _spent = self._attempt_cell(
                model, shape, experiment, opts, injector, cell_prof)
            wall = time.perf_counter() - t0
            if self.cache is not None and not m.failed:
                # Failed cells are never cached: a transient node condition
                # must not outlive the run that suffered it.
                self.cache.put(fingerprints[i], m,
                               metadata={"experiment": experiment.exp_id})
            if journal is not None:
                if m.failed:
                    journal.cell_failed(i, fingerprints[i], m,
                                        attempts=attempts, faults=faults_hit,
                                        reason=m.note)
                else:
                    journal.cell_done(i, fingerprints[i], m, cached=False,
                                      wall_s=wall, attempts=attempts,
                                      faults=faults_hit)
            measurements[i] = m
            traces[i] = cell_prof
            records[i] = CellRecord(
                model=model.name, shape=str(shape),
                fingerprint=fingerprints[i], cached=False, wall_s=wall,
                start_s=start_s, status="failed" if m.failed else "ok",
                attempts=attempts, faults=faults_hit)

        def execute_health(i: int) -> None:
            # One cell under the health subsystem, in strict cell order:
            # route -> native attempt (unless the lane is OPEN) -> serve
            # via the fallback ladder if the lane is/just went OPEN ->
            # charge simulated costs to the lane clock -> journal the
            # per-cell health metadata that makes resume byte-identical.
            model, shape = cells[i]
            fp = fingerprints[i]
            lane = health.lane_for(model.name)
            replayed = replay.get(fp)
            if replayed is not None:
                meta = health.require_meta(replay_meta.get(fp), fp)
                health.feed_replay(lane, meta, i)
                # Transitions replayed here were journaled by the original
                # process; keep them in the report history only.
                health.drain()
                measurements[i] = replayed
                records[i] = CellRecord(
                    model=model.name, shape=str(shape), fingerprint=fp,
                    cached=False, wall_s=0.0,
                    start_s=time.perf_counter() - run_start,
                    status="replayed", served_by=replayed.served_by)
                return
            cell_prof = Profiler() if profiler is not None else None
            if journal is not None:
                journal.cell_start(i, model.name, str(shape), fp)
            t0 = time.perf_counter()
            start_s = t0 - run_start
            decision = lane.route(i)
            meta = {"native": "none", "native_cost_s": 0.0,
                    "serve_cost_s": 0.0}
            attempts = 0
            faults_hit = 0
            m: Optional[Measurement] = None
            if decision != "substitute":
                m, attempts, faults_hit, spent_s = self._attempt_cell(
                    model, shape, experiment, opts, injector, cell_prof)
                native_cost = spent_s + (0.0 if m.failed
                                         else sum(m.times_s))
                meta["native"] = "failed" if m.failed else "ok"
                meta["native_cost_s"] = native_cost
                lane.record_native(not m.failed, native_cost, i)
            final = m
            serve_cost = 0.0
            if ((m is None or m.failed)
                    and lane.state is BreakerState.OPEN):
                served, serve_cost, hops_tried = self._serve_via_ladder(
                    model, shape, experiment, opts, injector, cell_prof,
                    health, lane.lane)
                if served is not None:
                    final = served
                else:
                    reason = (m.note if m is not None
                              else f"lane {lane.lane} open")
                    final = Measurement(
                        model=model.name, display=model.display,
                        shape=shape, precision=experiment.precision,
                        supported=False, failed=True,
                        note=(f"{reason}; fallback ladder exhausted "
                              f"({hops_tried} hop(s) tried)"),
                        substituted_from=lane.lane, ladder_hops=hops_tried)
                meta["serve_cost_s"] = serve_cost
            lane.record_substituted(serve_cost)
            assert final is not None
            wall = time.perf_counter() - t0
            for tr in health.drain():
                if journal is not None:
                    journal.breaker(**tr.payload())
                if cell_prof is not None:
                    cell_prof.record(_BREAKER_EVENT[tr.to_state], tr.lane,
                                     0.0, cell=tr.cell_index, at_s=tr.at_s,
                                     reason=tr.reason)
            if (self.cache is not None and not final.failed
                    and not final.substituted):
                # Only native successes are cached: a substituted cell is
                # a routing outcome of *this* run's lane state, not a
                # reusable property of the (experiment, model, shape) key.
                self.cache.put(fp, final,
                               metadata={"experiment": experiment.exp_id})
            if journal is not None:
                if final.failed:
                    journal.cell_failed(i, fp, final, attempts=attempts,
                                        faults=faults_hit, reason=final.note,
                                        health=meta)
                else:
                    journal.cell_done(i, fp, final, cached=False,
                                      wall_s=wall, attempts=attempts,
                                      faults=faults_hit, health=meta)
            measurements[i] = final
            traces[i] = cell_prof
            if final.failed:
                status = "failed"
            elif final.substituted:
                status = "substituted"
            else:
                status = "ok"
            records[i] = CellRecord(
                model=model.name, shape=str(shape), fingerprint=fp,
                cached=False, wall_s=wall, start_s=start_s, status=status,
                attempts=attempts, faults=faults_hit,
                served_by=final.served_by)

        workers = 1
        if health is None and self.parallel and len(misses) > 1:
            workers = min(len(misses),
                          self.max_workers or (os.cpu_count() or 4))

        def drive_serial() -> None:
            fn = execute if health is None else execute_health
            for i in misses:
                fn(i)

        def drive_threads() -> None:
            pool = ThreadPoolExecutor(max_workers=workers)
            try:
                futures = [pool.submit(execute, i) for i in misses]
                for future in futures:
                    future.result()
            finally:
                # In-flight cells finish (and journal themselves);
                # never-started ones are cancelled.
                pool.shutdown(wait=True, cancel_futures=True)

        starts: Dict[int, float] = {}

        def absorb(result: dict) -> None:
            # Parent-side merge of one worker result: re-raise fail-fast
            # errors as their original class, mirror the worker's cache
            # store into the parent counters, journal through the single
            # parent writer, and reconstruct the private trace.
            i = result["index"]
            err = result.get("error")
            if err is not None:
                err_cls = {"RetryExhaustedError": RetryExhaustedError,
                           "WorkerLost": WorkerLost}.get(
                               err["type"], CellFailure)
                raise err_cls(err["message"], cell=err["cell"],
                              attempts=err["attempts"], reason=err["reason"])
            payload = result["measurement"]
            m = measurement_from_dict(
                payload, default_precision=Precision.parse(
                    payload.get("precision", "fp64")))
            if self.cache is not None and result["stored"]:
                self.cache.stats.record(stores=1)
            wall = result["wall_s"]
            model, shape = cells[i]
            if journal is not None:
                # The start/done pair lands here, in drain (= cell) order,
                # keeping the record stream identical to a serial run's.
                # Recovery semantics are unchanged: a cell without its
                # done record re-executes on resume either way.
                journal.cell_start(i, model.name, str(shape),
                                   fingerprints[i])
                if m.failed:
                    journal.cell_failed(i, fingerprints[i], m,
                                        attempts=result["attempts"],
                                        faults=result["faults"],
                                        reason=m.note)
                else:
                    journal.cell_done(i, fingerprints[i], m, cached=False,
                                      wall_s=wall,
                                      attempts=result["attempts"],
                                      faults=result["faults"])
            if result.get("events") is not None:
                prof = Profiler()
                for kind, name, duration_s, meta in result["events"]:
                    prof.record(EventKind(kind), name, duration_s, **meta)
                traces[i] = prof
            measurements[i] = m
            records[i] = CellRecord(
                model=model.name, shape=str(shape),
                fingerprint=fingerprints[i], cached=False, wall_s=wall,
                start_s=starts.get(i, 0.0),
                status="failed" if m.failed else "ok",
                attempts=result["attempts"], faults=result["faults"])

        watchdog_counts = {"respawns": 0, "redrives": 0}

        def drive_process() -> None:
            # Supervised fan-out: the parent is the watchdog.  It waits
            # on the *oldest* outstanding cell (submit order = cell
            # order, so that wait doubles as the deterministic merge);
            # a worker that vanishes (SIGKILL, segfault — surfaced as
            # BrokenProcessPool on every pending future at once) or
            # hangs past the policy deadline gets the whole pool killed
            # and rebuilt, finished results harvested, and unfinished
            # cells resubmitted.  A cell that exhausts its redrive
            # budget fails through the normal degraded-cell path, so
            # the journal record stream stays deterministic either way.
            wd = opts.watchdog
            payload = RunPayload(
                experiment=experiment.to_dict(), faults=opts.faults,
                retry=opts.retry, fail_fast=opts.fail_fast,
                traced=profiler is not None,
                cache_root=(self.cache.root if self.cache is not None
                            else None))
            pool = ProcessPoolExecutor(max_workers=workers,
                                       mp_context=self._mp_context())
            outstanding: Dict[int, object] = {}  # index -> future
            ready: Dict[int, dict] = {}          # index -> result dict
            drives: Dict[int, int] = {}          # index -> submissions

            def submit(i: int) -> None:
                model, shape = cells[i]
                starts.setdefault(i, time.perf_counter() - run_start)
                drives[i] = drives.get(i, 0) + 1
                task = CellTask(index=i, model=model.name,
                                shape=(shape.m, shape.n, shape.k),
                                fingerprint=fingerprints[i])
                outstanding[i] = pool.submit(execute_cell_payload,
                                             payload, task)

            def harvest() -> None:
                # Results that landed before the pool broke are still
                # good; keeping them means recovery never re-runs a
                # finished cell.
                for j, future in list(outstanding.items()):
                    if not future.done() or future.cancelled():
                        continue
                    try:
                        ready[j] = future.result(timeout=0)
                    except Exception:
                        continue
                    del outstanding[j]

            def lost_result(i: int, why: str) -> dict:
                # Synthetic worker result for a cell the watchdog gave
                # up on; flows through absorb() like any real failure.
                model, shape = cells[i]
                cell = f"{model.name}@{shape}"
                attempts = drives.get(i, 1)
                if opts.fail_fast:
                    return {"index": i,
                            "error": {"type": "WorkerLost",
                                      "message": f"cell {cell}: {why}",
                                      "cell": cell, "attempts": attempts,
                                      "reason": why}}
                m = failed_measurement(model, shape, experiment, why)
                return {"index": i, "error": None,
                        "measurement": measurement_to_dict(m),
                        "attempts": attempts, "faults": 0, "wall_s": 0.0,
                        "stored": False, "events": None}

            def recover(why: str) -> None:
                nonlocal pool
                watchdog_counts["respawns"] += 1
                harvest()
                # kill(), not terminate(): a hung worker may be blocked
                # in native code where SIGTERM never gets a look-in.
                for proc in list(dict(getattr(pool, "_processes", None)
                                      or {}).values()):
                    with contextlib.suppress(Exception):
                        proc.kill()
                pool.shutdown(wait=False, cancel_futures=True)
                if watchdog_counts["respawns"] > wd.max_respawns:
                    print(f"repro: watchdog: {why}; respawn budget "
                          f"({wd.max_respawns}) exhausted, failing "
                          f"{len(outstanding)} unfinished cell(s)",
                          file=sys.stderr)
                    for j in sorted(outstanding):
                        ready[j] = lost_result(
                            j, f"{why}; worker-pool respawn budget "
                               f"({wd.max_respawns}) exhausted")
                    outstanding.clear()
                    return
                print(f"repro: watchdog: {why}; respawning worker pool "
                      f"({watchdog_counts['respawns']}/{wd.max_respawns})",
                      file=sys.stderr)
                pool = ProcessPoolExecutor(max_workers=workers,
                                           mp_context=self._mp_context())
                resubmit = sorted(outstanding)
                outstanding.clear()
                for j in resubmit:
                    if drives.get(j, 0) > wd.max_redrives:
                        ready[j] = lost_result(
                            j, f"{why}; cell re-driven "
                               f"{drives[j] - 1} time(s) without "
                               f"completing (redrive budget "
                               f"{wd.max_redrives})")
                    else:
                        watchdog_counts["redrives"] += 1
                        submit(j)

            timeout = wd.cell_timeout_s if wd.enabled else None
            try:
                for i in misses:
                    submit(i)
                pos = 0
                while pos < len(misses):  # submit order = cell order
                    i = misses[pos]
                    if i in ready:
                        absorb(ready.pop(i))
                        pos += 1
                        continue
                    try:
                        result = outstanding[i].result(timeout=timeout)
                    except FuturesTimeoutError:
                        recover(f"hung worker: no result for cell "
                                f"{pos + 1}/{len(misses)} within "
                                f"{wd.cell_timeout_s:g}s")
                        continue
                    except BrokenProcessPool:
                        if not wd.enabled:
                            raise
                        recover("worker lost (killed or crashed)")
                        continue
                    del outstanding[i]
                    absorb(result)
                    pos += 1
            except KeyboardInterrupt:
                # Drain before the journal closes: cancel whatever never
                # started, wait out the in-flight workers, and absorb
                # (and journal) their results so close_run('interrupted')
                # counts them as completed.
                for j, future in list(outstanding.items()):
                    if future.cancel():
                        del outstanding[j]
                for j in sorted(set(outstanding) | set(ready)):
                    with contextlib.suppress(Exception):
                        absorb(ready.pop(j) if j in ready
                               else outstanding[j].result())
                raise
            finally:
                pool.shutdown(wait=True, cancel_futures=True)

        if self.mode == "process" and health is None and workers > 1:
            drive = drive_process
        elif workers > 1:
            drive = drive_threads
        else:
            drive = drive_serial
        self._execute_all(drive, journal, run_id, measurements, len(cells))

        if profiler is not None:
            # Deterministic replay: cell order, original durations — the
            # resulting timeline equals the serial run's byte for byte.
            for cell_prof in traces:
                if cell_prof is None:
                    continue
                for ev in cell_prof.events:
                    profiler.record(ev.kind, ev.name, ev.duration_s,
                                    **ev.metadata)

        if journal is not None and not journal.finalized:
            journal.close_run("complete", completed=len(cells),
                              total=len(cells))
        results = ResultSet(experiment)
        for m in measurements:
            assert m is not None
            results.add(m)
        self.last_report = SweepReport(
            experiment_id=experiment.exp_id,
            cells=[r for r in records if r is not None],
            cache_stats=(self.cache.stats.snapshot()
                         if self.cache is not None else {}),
            parallel=workers > 1,
            workers=workers,
            engine=self.mode,
            wall_s=time.perf_counter() - run_start,
            run_id=run_id,
            transitions=(list(health.transitions) if health is not None
                         else []),
            respawns=watchdog_counts["respawns"],
            redrives=watchdog_counts["redrives"],
        )
        return results

    def _execute_all(self, drive, journal, run_id: str,
                     measurements: List[Optional[Measurement]],
                     total: int) -> None:
        """Drive the cell fan-out, finalizing the journal on interrupt.

        ``drive`` is one of the serial/thread-pool/process-pool loops
        built in :meth:`run`.  With a journal active, SIGINT/SIGTERM are
        routed into ``KeyboardInterrupt`` (see
        :func:`~repro.harness.journal.graceful_shutdown`); in-flight
        cells are allowed to finish and journal their results (the
        process drive drains its workers first), pending cells are
        cancelled, a ``run-close(interrupted)`` record is written, and
        :class:`~repro.errors.RunInterrupted` tells the caller how to
        resume.  ``fail_fast`` aborts close the journal as ``failed``
        before the :class:`CellFailure` propagates.
        """
        from ..journal.signals import graceful_shutdown

        guard = (graceful_shutdown() if journal is not None
                 else contextlib.nullcontext())
        try:
            with guard:
                drive()
        except KeyboardInterrupt:
            done = sum(1 for m in measurements if m is not None)
            if journal is not None and not journal.finalized:
                journal.close_run("interrupted", completed=done, total=total)
            raise RunInterrupted(
                f"sweep interrupted after {done}/{total} cells"
                + (f"; resume with: repro run --resume {run_id}"
                   if run_id else ""),
                run_id=run_id, completed=done, total=total) from None
        except CellFailure:
            if journal is not None and not journal.finalized:
                done = sum(1 for m in measurements if m is not None)
                journal.close_run("failed", completed=done, total=total)
            raise

    # -- the retry loop ---------------------------------------------------

    def _attempt_cell(self, model: ProgrammingModel, shape: MatrixShape,
                      experiment: Experiment, opts: RunOptions,
                      injector: Optional[FaultInjector],
                      cell_prof: Optional[Profiler], *,
                      lane: str = "",
                      ) -> Tuple[Measurement, int, int, float]:
        """Run one cell under the retry policy.

        Thin wrapper over :func:`~repro.harness.engine.worker.attempt_cell`
        — the same loop the process-pool workers run, so the two engines
        cannot drift.  See that function for the full contract.
        """
        return attempt_cell(model, shape, experiment, opts, injector,
                            cell_prof, lane=lane)

    # -- fallback routing --------------------------------------------------

    def _serve_via_ladder(self, model: ProgrammingModel, shape: MatrixShape,
                          experiment: Experiment, opts: RunOptions,
                          injector: Optional[FaultInjector],
                          cell_prof: Optional[Profiler],
                          health: HealthRegistry, origin: str,
                          ) -> Tuple[Optional[Measurement], float, int]:
        """Serve one cell of an OPEN lane via its fallback ladder.

        Walks the declared hops in order, skipping hops that resolve back
        to the origin or to a lane the registry currently tracks as OPEN.
        Hop attempts run under the same retry policy but on a *disjoint*
        fault stream (keyed by the serving lane) and never feed the
        serving lane's own health — serving is borrowing, not probing.

        Returns ``(measurement, serve_cost_s, hops_tried)``; the
        measurement is ``None`` when the ladder is exhausted, and
        otherwise keeps the origin cell's model/display with full
        substitution provenance so Table III can price it honestly.
        """
        serve_cost = 0.0
        tried = 0
        cell = f"{model.name}@{shape}"
        for hop in health.ladder.hops_for(origin):
            serve_model, serve_device = resolve_hop(hop, experiment)
            hop_spec = f"{serve_model.name}@{serve_device.value}"
            if hop_spec == origin or health.is_open(hop_spec):
                continue
            serve_exp = (experiment if serve_device is experiment.device
                         else replace(experiment, device=serve_device))
            tried += 1
            sm, _, _, s_spent = self._attempt_cell(
                serve_model, shape, serve_exp, opts, injector, cell_prof,
                lane=hop_spec)
            serve_cost += s_spent
            if sm.failed or not sm.supported:
                continue
            serve_cost += sum(sm.times_s)
            if cell_prof is not None:
                cell_prof.record(EventKind.SUBSTITUTION,
                                 f"{origin}->{hop_spec}:{cell}", serve_cost,
                                 hops=tried)
            return (Measurement(
                model=model.name, display=model.display, shape=shape,
                precision=experiment.precision, times_s=sm.times_s,
                warmup_count=sm.warmup_count, supported=True,
                note=f"served by {hop_spec}; lane {origin} open",
                bound=sm.bound, substituted_from=origin, served_by=hop_spec,
                ladder_hops=tried), serve_cost, tried)
        return None, serve_cost, tried

