"""Persistent on-disk result cache for sweep cells.

One JSON file per measurement, named by its cell fingerprint and sharded
into 256 two-hex-digit subdirectories.  Entries embed the export schema
version, :data:`~repro.harness.engine.fingerprint.CONSTANTS_VERSION`
and a SHA-256 content digest over the measurement payload; any mismatch
on read counts as an eviction (the bad file is deleted) and the cell is
recomputed.  Every corruption path self-heals the same way — a decode
failure, a stale version, a missing/incorrect digest and a semantically
broken payload all evict, count, and return a miss, so one bad byte on
disk can never kill a campaign.  ``repro fsck`` additionally quarantines
(rather than deletes) entries whose digest proves a bit-flip, for
post-mortem.

Writes are atomic (temp file + ``os.replace``) and the in-process
hit/miss/store/evict counters are lock-protected, so the cache is safe
under the engine's thread-pool fan-out.  The store is additionally safe
for *multi-process* writers (the ``--engine process`` fan-out): every
replace and eviction runs under a per-digest advisory file lock
(``fcntl.flock`` on a ``<entry>.lock`` sidecar, degrading to the
in-process lock where ``fcntl`` is unavailable), :meth:`ResultCache.put`
is compare-and-swap — it re-checks for a valid entry under the lock and
drops its own bytes if another writer already landed one — and
:meth:`ResultCache._evict` re-validates under the lock so it can never
unlink a fresh entry that a concurrent writer just produced.

A writer killed between ``mkstemp`` and ``os.replace`` leaves an
orphaned ``*.tmp`` file; :meth:`ResultCache.clear`, ``repro fsck`` and
:meth:`ResultCache.disk_stats` all account for those.  Cleanup only
touches temp files older than :data:`TMP_GRACE_SECONDS`, so it cannot
unlink another worker's in-flight temp file.  Lock sidecars abandoned
by SIGKILL'd workers are reaped the same way, behind the
:data:`LOCK_GRACE_SECONDS` age grace (``flock`` locks die with their
holder, so a *stale* sidecar is pure litter — but removing a *live*
one would hand two processes different inodes for the same digest).

Disk pressure: the cache is an accelerator, never a correctness
dependency, so a full disk must not kill a campaign.  An ``ENOSPC`` /
``EDQUOT`` during :meth:`ResultCache.put` triggers a best-effort
:meth:`ResultCache.reclaim_space` (aged temp orphans + stale locks) and
one retry; if the store is still full the cache flips into *read-only
degraded mode* — reads keep serving, every further store is counted and
skipped, and the campaign recomputes what it cannot cache.
"""

from __future__ import annotations

import contextlib
import errno
import json
import os
import sys
import tempfile
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX
    fcntl = None  # type: ignore[assignment]

from ...chaos.plan import chaos_strike
from ...core.types import Precision
from ...errors import CacheError
from ...ioutil import content_digest
from ..export import (
    SCHEMA_VERSION,
    measurement_from_dict,
    measurement_to_dict,
)
from ..results import Measurement
from .fingerprint import CONSTANTS_VERSION

__all__ = ["CacheStats", "ResultCache", "default_cache_dir",
           "TMP_GRACE_SECONDS", "LOCK_GRACE_SECONDS"]

#: Minimum age before an orphaned ``*.tmp`` file may be unlinked by
#: cleanup (:meth:`ResultCache.clear`, ``repro fsck``).  A concurrent
#: worker's in-flight temp file is at most milliseconds old; anything
#: past this window belongs to a writer that died mid-``put``.
TMP_GRACE_SECONDS = 60.0

#: Same age grace for ``*.lock`` sidecars: a live writer holds its lock
#: for milliseconds, so a sidecar this old belongs to a worker that was
#: SIGKILL'd mid-``put`` (the kernel released the ``flock`` with it).
LOCK_GRACE_SECONDS = 60.0


def default_cache_dir() -> str:
    """``$REPRO_CACHE_DIR``, else ``$XDG_CACHE_HOME/repro/results``."""
    explicit = os.environ.get("REPRO_CACHE_DIR")
    if explicit:
        return explicit
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache")
    return os.path.join(base, "repro", "results")


@dataclass
class CacheStats:
    """In-process cache counters (one engine run or many)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    def record(self, *, hits: int = 0, misses: int = 0, stores: int = 0,
               evictions: int = 0) -> None:
        """Atomically bump one or more counters."""
        with self._lock:
            self.hits += hits
            self.misses += misses
            self.stores += stores
            self.evictions += evictions

    def snapshot(self) -> Dict[str, int]:
        """Point-in-time copy of the counters."""
        with self._lock:
            return {"hits": self.hits, "misses": self.misses,
                    "stores": self.stores, "evictions": self.evictions}

    def as_dict(self) -> Dict[str, int]:
        """Alias of :meth:`snapshot` for symmetry with the exporters."""
        return self.snapshot()


class ResultCache:
    """Fingerprint-keyed persistent store of :class:`Measurement` cells."""

    def __init__(self, root: Optional[str] = None) -> None:
        self.root = root or default_cache_dir()
        self.stats = CacheStats()
        self._io_lock = threading.Lock()
        #: Degraded mode: a full disk flips the store read-only rather
        #: than crashing the campaign (reads keep serving).
        self.read_only = False
        self.pressure_reason = ""
        self._pressure_lock = threading.Lock()
        self._pressure = {"enospc": 0, "skipped_puts": 0, "reclaimed": 0}

    # -- paths ------------------------------------------------------------

    def _path(self, fingerprint: str) -> str:
        if len(fingerprint) < 3:
            raise CacheError(f"malformed fingerprint {fingerprint!r}")
        return os.path.join(self.root, fingerprint[:2], fingerprint + ".json")

    # -- locking ----------------------------------------------------------

    @contextlib.contextmanager
    def _digest_lock(self, path: str):
        """Advisory per-digest lock serialising replace/evict across
        processes.

        Taken on a ``<entry>.lock`` sidecar (never the entry itself, which
        ``os.replace`` swaps out from under an open descriptor).  Falls
        back to the in-process lock where ``fcntl`` is unavailable —
        single-process semantics are unchanged either way.
        """
        if fcntl is None:  # pragma: no cover - non-POSIX
            with self._io_lock:
                yield
            return
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd = os.open(path + ".lock", os.O_CREAT | os.O_RDWR, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            yield
        finally:
            fcntl.flock(fd, fcntl.LOCK_UN)
            os.close(fd)

    # -- read/write -------------------------------------------------------

    def _load_valid(self, path: str) -> "Tuple[str, Optional[Measurement]]":
        """Full validation of one entry file: ``(status, measurement)``.

        ``status`` is ``"missing"``, ``"invalid"`` (any corruption —
        undecodable bytes, stale versions, digest mismatch, semantically
        broken payload) or ``"ok"``.  Pure: touches no counters.
        """
        try:
            with open(path) as fh:
                entry = json.load(fh)
        except FileNotFoundError:
            return "missing", None
        except (OSError, json.JSONDecodeError):
            return "invalid", None
        if (entry.get("schema") != SCHEMA_VERSION
                or entry.get("constants") != CONSTANTS_VERSION
                or "measurement" not in entry
                or entry.get("digest") != content_digest(entry["measurement"])):
            return "invalid", None
        try:
            raw_precision = entry["measurement"].get("precision", "fp64")
            m = measurement_from_dict(
                entry["measurement"],
                default_precision=Precision.parse(raw_precision))
        except (KeyError, TypeError, ValueError):
            return "invalid", None
        return "ok", m

    def get(self, fingerprint: str) -> Optional[Measurement]:
        """The cached measurement, or ``None`` on any miss/bad entry.

        Self-healing is uniform: undecodable files, stale schema or
        constants versions, digest mismatches and semantically corrupt
        payloads all evict the entry, bump the eviction counter and
        return ``None`` so the engine recomputes the cell.
        """
        path = self._path(fingerprint)
        status, m = self._load_valid(path)
        if status == "missing":
            self.stats.record(misses=1)
            return None
        if status == "invalid":
            self._evict(path)
            return None
        self.stats.record(hits=1)
        return m

    def put(self, fingerprint: str, measurement: Measurement,
            metadata: Optional[Dict[str, Any]] = None) -> bool:
        """Store one measurement atomically under its fingerprint.

        Compare-and-swap under the per-digest lock: if a concurrent
        writer already landed a valid entry, this writer's bytes are
        discarded (both raced the same pure cell, so the payloads agree)
        and the method returns ``False``.  Returns ``True`` when this
        call's entry is the one on disk.

        Disk pressure never propagates: ``ENOSPC``/``EDQUOT`` triggers
        one :meth:`reclaim_space` + retry, then flips the store into
        read-only degraded mode (skipped stores counted, reads still
        served) and returns ``False``.  Other ``OSError``\\ s raise.
        """
        if self.read_only:
            with self._pressure_lock:
                self._pressure["skipped_puts"] += 1
            return False
        path = self._path(fingerprint)
        payload = measurement_to_dict(measurement)
        entry = {
            "schema": SCHEMA_VERSION,
            "constants": CONSTANTS_VERSION,
            "fingerprint": fingerprint,
            "metadata": metadata or {},
            "measurement": payload,
            "digest": content_digest(payload),
        }
        directory = os.path.dirname(path)
        try:
            stored = self._write_entry(path, directory, entry, fingerprint)
        except OSError as exc:
            if exc.errno not in (errno.ENOSPC, errno.EDQUOT):
                raise
            self._note_pressure(exc)
            self.reclaim_space()
            try:
                stored = self._write_entry(path, directory, entry,
                                           fingerprint)
            except OSError as retry_exc:
                if retry_exc.errno not in (errno.ENOSPC, errno.EDQUOT):
                    raise
                self._note_pressure(retry_exc, flip=True)
                return False
        if stored:
            self.stats.record(stores=1)
        return stored

    def _write_entry(self, path: str, directory: str, entry: Dict[str, Any],
                     fingerprint: str) -> bool:
        # One atomic CAS write attempt; OSErrors propagate to put()'s
        # pressure handling.  Chaos strike point "cache-put": an armed
        # plan simulates a full disk here by raising ENOSPC.
        chaos_strike("cache-put", fingerprint)
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(entry, fh)
            with self._digest_lock(path):
                status, _ = self._load_valid(path)
                if status == "ok":
                    os.unlink(tmp)
                    return False
                os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return True

    def _note_pressure(self, exc: OSError, flip: bool = False) -> None:
        with self._pressure_lock:
            self._pressure["enospc"] += 1
            if flip and not self.read_only:
                self.read_only = True
                self.pressure_reason = exc.strerror or str(exc)
                print(f"repro: cache: disk pressure ({self.pressure_reason});"
                      " store is now read-only — reads still serve, new"
                      " results recompute instead of caching",
                      file=sys.stderr)

    def pressure_snapshot(self) -> Dict[str, Any]:
        """Point-in-time disk-pressure state and counters."""
        with self._pressure_lock:
            out: Dict[str, Any] = dict(self._pressure)
            out["read_only"] = self.read_only
            if self.pressure_reason:
                out["reason"] = self.pressure_reason
            return out

    def _evict(self, path: str) -> None:
        """Remove a bad entry — unless a concurrent writer already
        replaced it with a valid one (re-checked under the lock)."""
        with self._digest_lock(path):
            status, _ = self._load_valid(path)
            if status == "ok":
                # Our read raced a replace; the entry on disk is fine.
                # Count a plain miss and leave it for the next reader.
                self.stats.record(misses=1)
                return
            try:
                os.unlink(path)
            except OSError:
                pass
        self.stats.record(misses=1, evictions=1)

    # -- maintenance ------------------------------------------------------

    def clear(self) -> int:
        """Delete every entry (plus *aged* lock sidecars and orphaned
        temp files); returns how many *entries* were removed.

        Temp files younger than :data:`TMP_GRACE_SECONDS` and lock
        sidecars younger than :data:`LOCK_GRACE_SECONDS` are left
        alone: they may belong to another worker's in-flight write
        (unlinking a *held* lock file would hand the next locker a
        different inode — two owners for one digest).
        """
        removed = 0
        for path in self._entry_paths():
            try:
                os.unlink(path)
                removed += 1
            except OSError:
                pass
        for extra in list(self.orphan_tmp_paths(
                min_age_s=TMP_GRACE_SECONDS)) + list(self.stale_lock_paths()):
            try:
                os.unlink(extra)
            except OSError:
                pass
        return removed

    def reclaim_space(self) -> int:
        """Best-effort space recovery under disk pressure.

        Unlinks aged temp orphans and stale lock sidecars — the only
        store contents that are pure litter — and returns how many files
        were removed.  Called automatically by :meth:`put` on the first
        ``ENOSPC`` before the store degrades to read-only.
        """
        removed = 0
        for path in list(self.orphan_tmp_paths(
                min_age_s=TMP_GRACE_SECONDS)) + list(self.stale_lock_paths()):
            try:
                os.unlink(path)
                removed += 1
            except OSError:
                pass
        with self._pressure_lock:
            self._pressure["reclaimed"] += removed
        return removed

    def _shard_dirs(self):
        if not os.path.isdir(self.root):
            return
        for shard in sorted(os.listdir(self.root)):
            # Skip fsck's quarantine hold: quarantined entries must never
            # be served, cleared or counted as live store contents again.
            if shard == "quarantine":
                continue
            shard_dir = os.path.join(self.root, shard)
            if os.path.isdir(shard_dir):
                yield shard_dir

    def _entry_paths(self):
        for shard_dir in self._shard_dirs():
            for name in sorted(os.listdir(shard_dir)):
                if name.endswith(".json"):
                    yield os.path.join(shard_dir, name)

    def orphan_tmp_paths(self, min_age_s: float = 0.0):
        """Temp files abandoned by writers killed mid-:meth:`put`.

        With ``min_age_s`` only temp files at least that old (by mtime)
        are yielded — cleanup callers pass :data:`TMP_GRACE_SECONDS` so a
        concurrent worker's in-flight temp file is never touched; stats
        callers pass 0 to count everything.
        """
        now = time.time()
        for shard_dir in self._shard_dirs():
            for name in sorted(os.listdir(shard_dir)):
                if not name.endswith(".tmp"):
                    continue
                path = os.path.join(shard_dir, name)
                if min_age_s > 0.0:
                    try:
                        if now - os.path.getmtime(path) < min_age_s:
                            continue
                    except OSError:
                        continue
                yield path

    def _lock_paths(self):
        for shard_dir in self._shard_dirs():
            for name in sorted(os.listdir(shard_dir)):
                if name.endswith(".lock"):
                    yield os.path.join(shard_dir, name)

    def stale_lock_paths(self, min_age_s: float = LOCK_GRACE_SECONDS):
        """Lock sidecars abandoned by workers killed mid-:meth:`put`.

        Only sidecars at least ``min_age_s`` old (by mtime) are yielded,
        mirroring :meth:`orphan_tmp_paths`'s grace: a live writer holds
        its lock for milliseconds, so anything past the window belongs
        to a SIGKILL'd worker.  Pass 0 to list every sidecar.
        """
        now = time.time()
        for path in self._lock_paths():
            if min_age_s > 0.0:
                try:
                    if now - os.path.getmtime(path) < min_age_s:
                        continue
                except OSError:
                    continue
            yield path

    def disk_stats(self) -> Dict[str, int]:
        """Entry count, total bytes, and orphaned temp files on disk."""
        entries = 0
        size = 0
        for path in self._entry_paths():
            try:
                size += os.path.getsize(path)
                entries += 1
            except OSError:
                pass
        tmp_orphans = sum(1 for _ in self.orphan_tmp_paths())
        return {"entries": entries, "bytes": size,
                "tmp_orphans": tmp_orphans}

    def render_stats(self) -> str:
        """Human-readable summary for ``repro cache stats``."""
        disk = self.disk_stats()
        counters = self.stats.snapshot()
        lines = [
            f"cache dir:  {self.root}",
            f"entries:    {disk['entries']}",
            f"disk bytes: {disk['bytes']}",
            f"schema:     v{SCHEMA_VERSION} "
            f"(constants {CONSTANTS_VERSION})",
            "this process: "
            f"{counters['hits']} hits, {counters['misses']} misses, "
            f"{counters['stores']} stores, "
            f"{counters['evictions']} evictions",
        ]
        if disk["tmp_orphans"]:
            lines.insert(3, f"tmp orphans: {disk['tmp_orphans']} "
                            "(writers killed mid-put; run `repro fsck`)")
        if self.read_only:
            pressure = self.pressure_snapshot()
            lines.append(
                f"DEGRADED: read-only under disk pressure "
                f"({self.pressure_reason}); {pressure['skipped_puts']} "
                f"store(s) skipped, {pressure['reclaimed']} file(s) "
                f"reclaimed")
        return "\n".join(lines)
