"""Persistent on-disk result cache for sweep cells.

One JSON file per measurement, named by its cell fingerprint and sharded
into 256 two-hex-digit subdirectories.  Entries embed the export schema
version and :data:`~repro.harness.engine.fingerprint.CONSTANTS_VERSION`;
a mismatch on read counts as an eviction (the stale file is deleted) and
the cell is recomputed — that is the cache's only implicit invalidation,
everything else is the explicit ``repro cache clear``.

Writes are atomic (temp file + ``os.replace``) and the in-process
hit/miss/store/evict counters are lock-protected, so the cache is safe
under the engine's thread-pool fan-out.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ...core.types import Precision
from ...errors import CacheError
from ..export import (
    SCHEMA_VERSION,
    measurement_from_dict,
    measurement_to_dict,
)
from ..results import Measurement
from .fingerprint import CONSTANTS_VERSION

__all__ = ["CacheStats", "ResultCache", "default_cache_dir"]


def default_cache_dir() -> str:
    """``$REPRO_CACHE_DIR``, else ``$XDG_CACHE_HOME/repro/results``."""
    explicit = os.environ.get("REPRO_CACHE_DIR")
    if explicit:
        return explicit
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache")
    return os.path.join(base, "repro", "results")


@dataclass
class CacheStats:
    """In-process cache counters (one engine run or many)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    def record(self, *, hits: int = 0, misses: int = 0, stores: int = 0,
               evictions: int = 0) -> None:
        """Atomically bump one or more counters."""
        with self._lock:
            self.hits += hits
            self.misses += misses
            self.stores += stores
            self.evictions += evictions

    def snapshot(self) -> Dict[str, int]:
        """Point-in-time copy of the counters."""
        with self._lock:
            return {"hits": self.hits, "misses": self.misses,
                    "stores": self.stores, "evictions": self.evictions}

    def as_dict(self) -> Dict[str, int]:
        """Alias of :meth:`snapshot` for symmetry with the exporters."""
        return self.snapshot()


class ResultCache:
    """Fingerprint-keyed persistent store of :class:`Measurement` cells."""

    def __init__(self, root: Optional[str] = None) -> None:
        self.root = root or default_cache_dir()
        self.stats = CacheStats()
        self._io_lock = threading.Lock()

    # -- paths ------------------------------------------------------------

    def _path(self, fingerprint: str) -> str:
        if len(fingerprint) < 3:
            raise CacheError(f"malformed fingerprint {fingerprint!r}")
        return os.path.join(self.root, fingerprint[:2], fingerprint + ".json")

    # -- read/write -------------------------------------------------------

    def get(self, fingerprint: str) -> Optional[Measurement]:
        """The cached measurement, or ``None`` on miss/stale entry."""
        path = self._path(fingerprint)
        try:
            with open(path) as fh:
                entry = json.load(fh)
        except FileNotFoundError:
            self.stats.record(misses=1)
            return None
        except (OSError, json.JSONDecodeError):
            self._evict(path)
            return None
        if (entry.get("schema") != SCHEMA_VERSION
                or entry.get("constants") != CONSTANTS_VERSION
                or "measurement" not in entry):
            self._evict(path)
            return None
        try:
            raw_precision = entry["measurement"].get("precision", "fp64")
            m = measurement_from_dict(
                entry["measurement"],
                default_precision=Precision.parse(raw_precision))
        except (KeyError, ValueError) as exc:
            raise CacheError(
                f"corrupt cache entry {path}: {exc}") from exc
        self.stats.record(hits=1)
        return m

    def put(self, fingerprint: str, measurement: Measurement,
            metadata: Optional[Dict[str, Any]] = None) -> None:
        """Store one measurement atomically under its fingerprint."""
        path = self._path(fingerprint)
        entry = {
            "schema": SCHEMA_VERSION,
            "constants": CONSTANTS_VERSION,
            "fingerprint": fingerprint,
            "metadata": metadata or {},
            "measurement": measurement_to_dict(measurement),
        }
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(entry, fh)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.record(stores=1)

    def _evict(self, path: str) -> None:
        with self._io_lock:
            try:
                os.unlink(path)
            except OSError:
                pass
        self.stats.record(misses=1, evictions=1)

    # -- maintenance ------------------------------------------------------

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in self._entry_paths():
            try:
                os.unlink(path)
                removed += 1
            except OSError:
                pass
        return removed

    def _entry_paths(self):
        if not os.path.isdir(self.root):
            return
        for shard in sorted(os.listdir(self.root)):
            shard_dir = os.path.join(self.root, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if name.endswith(".json"):
                    yield os.path.join(shard_dir, name)

    def disk_stats(self) -> Dict[str, int]:
        """Entry count and total bytes currently on disk."""
        entries = 0
        size = 0
        for path in self._entry_paths():
            try:
                size += os.path.getsize(path)
                entries += 1
            except OSError:
                pass
        return {"entries": entries, "bytes": size}

    def render_stats(self) -> str:
        """Human-readable summary for ``repro cache stats``."""
        disk = self.disk_stats()
        counters = self.stats.snapshot()
        lines = [
            f"cache dir:  {self.root}",
            f"entries:    {disk['entries']}",
            f"disk bytes: {disk['bytes']}",
            f"schema:     v{SCHEMA_VERSION} "
            f"(constants {CONSTANTS_VERSION})",
            "this process: "
            f"{counters['hits']} hits, {counters['misses']} misses, "
            f"{counters['stores']} stores, "
            f"{counters['evictions']} evictions",
        ]
        return "\n".join(lines)
