"""Parent-side supervision policy for the process engine.

The thread engine shares an address space with its workers, so a crash
there *is* a crash of the run.  The process engine is different: a
worker can vanish without unwinding — SIGKILL'd by the OOM killer, a
segfault in a native extension, a ``kill -9`` from an operator — and
``concurrent.futures`` surfaces that as ``BrokenProcessPool`` on every
pending future at once.  A worker can also simply *hang* (a livelocked
kernel simulation, an NFS stall), which surfaces as nothing at all.

:class:`WatchdogPolicy` is the knob bundle the parent uses to turn both
failure shapes into recoverable events: a per-cell wall-clock deadline
for hang detection, a bound on how many times the pool may be killed
and respawned, and a bound on how many times any one suspect cell is
re-driven before it is failed through the normal degraded-cell path
(the paper's e = 0 accounting).  The policy is parent-side scaffolding,
not methodology: it never enters cell fingerprints or the journal's
options payload, so enabling it cannot change result bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ...errors import ConfigError

__all__ = ["WatchdogPolicy"]


@dataclass(frozen=True)
class WatchdogPolicy:
    """How the process engine supervises its worker pool.

    ``cell_timeout_s`` is the hang deadline: how long the parent waits
    on the oldest outstanding cell before declaring the pool wedged
    (``None`` disables hang detection; crash detection via
    ``BrokenProcessPool`` needs no deadline and is always on while
    ``enabled``).  ``max_respawns`` bounds pool kill/rebuild cycles per
    run; ``max_redrives`` bounds how many times one cell is resubmitted
    after being the suspect of a crash or timeout.
    """

    #: Wall-clock deadline for the oldest outstanding cell (None = off).
    cell_timeout_s: Optional[float] = None
    #: Pool kill/respawn cycles allowed before unfinished cells fail.
    max_respawns: int = 3
    #: Resubmissions allowed per suspect cell before it fails degraded.
    max_redrives: int = 2
    #: Master switch; ``False`` restores the unsupervised PR-7 engine.
    enabled: bool = True

    def __post_init__(self) -> None:
        if self.cell_timeout_s is not None and self.cell_timeout_s <= 0:
            raise ConfigError("watchdog timeout must be positive")
        if self.max_respawns < 0 or self.max_redrives < 0:
            raise ConfigError("watchdog respawns/redrives must be >= 0")

    @classmethod
    def parse(cls, spec: str) -> "WatchdogPolicy":
        """Policy from a ``REPRO_WATCHDOG`` / ``--watchdog`` spec string.

        Grammar (same comma-separated ``key=value`` shape as
        ``REPRO_FAULTS``):

        * ``"off"`` — disable supervision entirely;
        * a bare number (``"30"``) — shorthand for ``timeout=30``;
        * ``"timeout=30,respawns=2,redrives=1"`` — any subset of the
          keys ``timeout`` (seconds, or ``off``), ``respawns``,
          ``redrives``.
        """
        text = (spec or "").strip()
        if not text or text.lower() == "on":
            return cls()
        if text.lower() in ("off", "0", "false", "no"):
            return cls(enabled=False)
        try:
            return cls(cell_timeout_s=float(text))
        except ValueError:
            pass
        kwargs: dict = {}
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ConfigError(
                    f"watchdog spec {spec!r}: expected key=value, "
                    f"got {part!r}")
            key, _, value = part.partition("=")
            key = key.strip().lower()
            value = value.strip()
            try:
                if key == "timeout":
                    parsed: object = (None if value.lower() == "off"
                                      else float(value))
                    field = "cell_timeout_s"
                elif key == "respawns":
                    parsed = int(value)
                    field = "max_respawns"
                elif key == "redrives":
                    parsed = int(value)
                    field = "max_redrives"
                else:
                    raise ConfigError(
                        f"watchdog spec {spec!r}: unknown key {key!r} "
                        f"(expected timeout/respawns/redrives)")
            except ValueError:
                raise ConfigError(
                    f"watchdog spec {spec!r}: bad value for {key!r}: "
                    f"{value!r}") from None
            if field in kwargs:
                raise ConfigError(
                    f"watchdog spec {spec!r}: duplicate key {key!r}")
            kwargs[field] = parsed
        return cls(**kwargs)

    def describe(self) -> str:
        """One-line human rendering for logs and ``--engine-stats``."""
        if not self.enabled:
            return "off"
        timeout = ("none" if self.cell_timeout_s is None
                   else f"{self.cell_timeout_s:g}s")
        return (f"timeout={timeout}, respawns<={self.max_respawns}, "
                f"redrives<={self.max_redrives}")
