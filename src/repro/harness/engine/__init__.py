"""Sweep execution engine: concurrent cell fan-out + persistent caching.

The substrate under ``run_experiment``, the figures, Table III and
``repro report``: every (model, shape) cell of a sweep is fingerprinted,
served from the on-disk :class:`ResultCache` when possible, and executed
concurrently otherwise, with a deterministic merge that keeps engine
output bit-identical to the serial reference loop.

Process-wide configuration (read once, on first use):

* ``REPRO_CACHE=off`` disables the result cache;
* ``REPRO_CACHE_DIR`` relocates it (default
  ``$XDG_CACHE_HOME/repro/results``);
* ``REPRO_JOBS=N`` caps the thread-pool width (``1`` forces serial).
"""

from __future__ import annotations

from typing import Optional

from .cache import CacheStats, ResultCache, default_cache_dir
from .executor import CellRecord, SweepEngine, SweepReport
from .fingerprint import CONSTANTS_VERSION, cell_fingerprint, fingerprint_payload

__all__ = [
    "CacheStats",
    "ResultCache",
    "default_cache_dir",
    "CellRecord",
    "SweepEngine",
    "SweepReport",
    "CONSTANTS_VERSION",
    "cell_fingerprint",
    "fingerprint_payload",
    "default_engine",
    "set_default_engine",
    "reset_default_engine",
]

_default_engine: Optional[SweepEngine] = None


def default_engine() -> SweepEngine:
    """The process-wide engine, built from the environment on first use."""
    global _default_engine
    if _default_engine is None:
        _default_engine = SweepEngine.from_env()
    return _default_engine


def set_default_engine(engine: Optional[SweepEngine]) -> None:
    """Replace the process-wide engine (``None`` resets to lazy re-init)."""
    global _default_engine
    _default_engine = engine


def reset_default_engine() -> None:
    """Drop the process-wide engine so the next use re-reads the env."""
    set_default_engine(None)
