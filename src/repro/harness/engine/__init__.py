"""Sweep execution engine: concurrent cell fan-out + persistent caching.

The substrate under ``run_experiment``, the figures, Table III and
``repro report``: every (model, shape) cell of a sweep is fingerprinted,
served from the on-disk :class:`ResultCache` when possible, and executed
concurrently otherwise, with a deterministic merge that keeps engine
output bit-identical to the serial reference loop.

Process-wide configuration (read once, on first use):

* ``REPRO_CACHE=off`` disables the result cache;
* ``REPRO_CACHE_DIR`` relocates it (default
  ``$XDG_CACHE_HOME/repro/results``);
* ``REPRO_JOBS=N`` caps the worker-pool width (``1`` forces serial);
* ``REPRO_ENGINE=process`` swaps the GIL-bound thread pool for a
  ``ProcessPoolExecutor`` so ``--jobs`` scales past one core;
* ``REPRO_FAULTS`` / ``REPRO_RETRIES`` / ``REPRO_BACKOFF`` /
  ``REPRO_MAX_CELL_SECONDS`` / ``REPRO_FAIL_FAST`` configure the
  resilience layer (see :class:`RunOptions`);
* ``REPRO_WATCHDOG`` tunes process-engine supervision — hang deadlines
  and pool respawn/redrive bounds (see :class:`WatchdogPolicy`).
"""

from __future__ import annotations

from typing import Optional

from .cache import (CacheStats, LOCK_GRACE_SECONDS, ResultCache,
                    TMP_GRACE_SECONDS, default_cache_dir)
from .executor import ENGINE_MODES, CellRecord, SweepEngine, SweepReport
from .fingerprint import (
    CONSTANTS_VERSION,
    campaign_fingerprint,
    cell_fingerprint,
    fingerprint_payload,
)
from .options import RetryPolicy, RunOptions
from .watchdog import WatchdogPolicy
from .worker import CellTask, RunPayload, execute_cell_payload

__all__ = [
    "CacheStats",
    "ResultCache",
    "default_cache_dir",
    "TMP_GRACE_SECONDS",
    "LOCK_GRACE_SECONDS",
    "WatchdogPolicy",
    "CellRecord",
    "CellTask",
    "ENGINE_MODES",
    "RunPayload",
    "execute_cell_payload",
    "SweepEngine",
    "SweepReport",
    "CONSTANTS_VERSION",
    "campaign_fingerprint",
    "cell_fingerprint",
    "fingerprint_payload",
    "RetryPolicy",
    "RunOptions",
    "default_engine",
    "set_default_engine",
    "reset_default_engine",
    "default_run_options",
    "set_default_run_options",
    "reset_default_run_options",
]

_default_engine: Optional[SweepEngine] = None


def default_engine() -> SweepEngine:
    """The process-wide engine, built from the environment on first use."""
    global _default_engine
    if _default_engine is None:
        _default_engine = SweepEngine.from_env()
    return _default_engine


def set_default_engine(engine: Optional[SweepEngine]) -> None:
    """Replace the process-wide engine (``None`` resets to lazy re-init)."""
    global _default_engine
    _default_engine = engine


def reset_default_engine() -> None:
    """Drop the process-wide engine so the next use re-reads the env."""
    set_default_engine(None)


_default_run_options: Optional[RunOptions] = None


def default_run_options() -> RunOptions:
    """The process-wide :class:`RunOptions`, from the environment on
    first use.  ``repro report`` and the figure builders call
    ``run_experiment`` with no explicit options; this is what they get,
    so a campaign inherits ``REPRO_FAULTS``-family knobs (or a CLI
    override installed via :func:`set_default_run_options`) everywhere."""
    global _default_run_options
    if _default_run_options is None:
        _default_run_options = RunOptions.from_env()
    return _default_run_options


def set_default_run_options(options: Optional[RunOptions]) -> None:
    """Replace the process-wide options (``None`` resets to lazy re-init)."""
    global _default_run_options
    _default_run_options = options


def reset_default_run_options() -> None:
    """Drop the process-wide options so the next use re-reads the env."""
    set_default_run_options(None)
