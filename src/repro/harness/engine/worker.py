"""Worker side of the process-pool engine: the frozen payload contract.

``--engine process`` dispatches each cache-missed cell to a worker
subprocess.  The parent ships two frozen, picklable values:

* a per-run :class:`RunPayload` — the experiment manifest as its
  canonical ``Experiment.to_dict()`` dict, the fault/retry configuration
  (frozen dataclasses), the ``fail_fast`` switch, whether the run is
  traced, and the cache root (``None`` when caching is off);
* a per-cell :class:`CellTask` — cell index, model name, shape triple
  and the cell fingerprint.

The worker re-derives everything locally — experiment, model, shape,
fault injector, private profiler — runs the *same* retry loop as the
thread engine (:func:`attempt_cell` is that loop, shared by both), writes
its own cache entry (the concurrency-safe :class:`ResultCache` makes
multi-process writers safe) and returns one plain dict: the measurement
as its export payload, attempt/fault counts, wall time, whether its cache
put landed, the private trace events, and — under ``fail_fast`` — a
structured error the parent re-raises as the original exception class.

Journal writes never happen here: the parent is the journal's single
writer, preserving WAL ordering and checksums.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from ...chaos.plan import chaos_strike
from ...core.types import MatrixShape
from ...errors import CellFailure, ReproError, RetryExhaustedError
from ...models.base import ProgrammingModel
from ...models.registry import model_by_name
from ...sim.faults import Fault, FaultConfig, FaultInjector
from ...trace.events import EventKind
from ...trace.profiler import Profiler
from ..experiment import Experiment
from ..export import measurement_to_dict
from ..results import Measurement
from ..runner import run_measurement
from .cache import ResultCache
from .options import RetryPolicy, RunOptions

__all__ = ["RunPayload", "CellTask", "attempt_cell", "execute_cell_payload"]


@dataclass(frozen=True)
class RunPayload:
    """Per-run frozen state shipped once to every worker."""

    experiment: Dict[str, Any]        # Experiment.to_dict()
    faults: FaultConfig
    retry: RetryPolicy
    fail_fast: bool
    traced: bool
    cache_root: Optional[str]         # None = caching off


@dataclass(frozen=True)
class CellTask:
    """One cell's coordinates, as dispatched to a worker."""

    index: int
    model: str
    shape: Tuple[int, int, int]       # (m, n, k)
    fingerprint: str


# -- the retry loop (shared by the thread and process engines) -------------

def attempt_cell(model: ProgrammingModel, shape: MatrixShape,
                 experiment: Experiment, opts: RunOptions,
                 injector: Optional[FaultInjector],
                 cell_prof: Optional[Profiler], *,
                 lane: str = "",
                 ) -> Tuple[Measurement, int, int, float]:
    """Run one cell under the retry policy.

    Returns ``(measurement, attempts, faults_hit, spent_s)`` where
    ``spent_s`` is the simulated seconds lost to faults and backoff
    (lane clocks charge it on top of the measured kernel time).  All
    timekeeping is simulated: each injected fault charges its class
    cost and each backoff its policy cost against the per-cell budget
    — nothing sleeps.  ``lane`` namespaces the fault stream: fallback
    serves pass the serving lane so rerouting never perturbs the
    faults any other attempt sees.  Raises :class:`CellFailure` (or
    the sharper :class:`RetryExhaustedError`) only under ``fail_fast``.
    """
    retry = opts.retry
    cell = f"{model.name}@{shape}"
    attempts = 0
    faults_hit = 0
    spent_s = 0.0
    while True:
        attempts += 1
        fault = (injector.probe(experiment.exp_id, model.name, shape,
                                attempts, lane=lane)
                 if injector is not None else None)
        if fault is None:
            try:
                m = run_measurement(model, experiment, shape, cell_prof)
            except ReproError as exc:
                # Cell-level isolation of real execution errors: a
                # deterministic simulator error would fail identically
                # on every retry, so it fails the cell immediately.
                reason = f"{type(exc).__name__}: {exc}"
                if opts.fail_fast:
                    raise CellFailure(
                        f"cell {cell} failed: {reason}", cell=cell,
                        attempts=attempts, reason=reason) from exc
                return (failed_measurement(model, shape, experiment, reason),
                        attempts, faults_hit, spent_s)
            return m, attempts, faults_hit, spent_s

        faults_hit += 1
        spent_s += fault.cost_s
        if cell_prof is not None:
            cell_prof.record(EventKind.FAULT,
                             f"{fault.kind.value}:{cell}", fault.cost_s,
                             attempt=attempts, permanent=fault.permanent)
        over_budget = (retry.max_cell_seconds is not None
                       and spent_s >= retry.max_cell_seconds)
        exhausted = attempts >= retry.max_attempts
        if fault.permanent or exhausted or over_budget:
            reason = failure_reason(fault, attempts, spent_s,
                                    exhausted, over_budget)
            if opts.fail_fast:
                err_cls = (RetryExhaustedError
                           if (exhausted or over_budget)
                           and not fault.permanent else CellFailure)
                raise err_cls(f"cell {cell} failed: {reason}",
                              cell=cell, attempts=attempts, reason=reason)
            return (failed_measurement(model, shape, experiment, reason),
                    attempts, faults_hit, spent_s)
        backoff = retry.backoff_s(attempts)
        spent_s += backoff
        if cell_prof is not None:
            cell_prof.record(EventKind.RETRY, f"backoff:{cell}", backoff,
                             attempt=attempts, next_attempt=attempts + 1)


def failure_reason(fault: Fault, attempts: int, spent_s: float,
                   exhausted: bool, over_budget: bool) -> str:
    if fault.permanent:
        return f"{fault.describe()}; cell fails on every attempt"
    if over_budget:
        return (f"{fault.describe()}; per-cell budget exhausted after "
                f"{spent_s:g}s simulated across {attempts} attempts")
    if exhausted:
        return f"{fault.describe()}; retries exhausted ({attempts} attempts)"
    return fault.describe()  # pragma: no cover - defensive


def failed_measurement(model: ProgrammingModel, shape: MatrixShape,
                       experiment: Experiment, reason: str) -> Measurement:
    return Measurement(
        model=model.name, display=model.display, shape=shape,
        precision=experiment.precision, supported=False, failed=True,
        note=reason)


# -- worker entrypoint -----------------------------------------------------

def execute_cell_payload(payload: RunPayload, task: CellTask) -> Dict[str, Any]:
    """Re-derive one cell from its frozen payload and execute it.

    Runs in a worker subprocess.  Never raises on a cell failure: under
    ``fail_fast`` the would-be :class:`CellFailure` /
    :class:`RetryExhaustedError` comes back as a structured ``error``
    dict (exception classes do not survive pickling with their keyword
    state), and the parent re-raises the exact original.
    """
    experiment = Experiment.from_dict(payload.experiment)
    model = model_by_name(task.model)
    shape = MatrixShape(*task.shape)
    # Chaos strike point "worker-cell": an armed plan can SIGKILL or
    # hang this worker here, mid-cell — the uncooperative failures the
    # parent-side watchdog exists to recover from.
    chaos_strike("worker-cell", f"{task.model}@{shape}")
    injector = (FaultInjector(payload.faults) if payload.faults.enabled
                else None)
    cell_prof = Profiler() if payload.traced else None
    opts = RunOptions(retry=payload.retry, faults=payload.faults,
                      fail_fast=payload.fail_fast)
    t0 = time.perf_counter()
    try:
        m, attempts, faults_hit, _spent = attempt_cell(
            model, shape, experiment, opts, injector, cell_prof)
    except CellFailure as exc:  # fail_fast only; includes RetryExhaustedError
        return {"index": task.index,
                "error": {"type": type(exc).__name__,
                          "message": str(exc), "cell": exc.cell,
                          "attempts": exc.attempts, "reason": exc.reason}}
    wall = time.perf_counter() - t0
    stored = False
    if payload.cache_root is not None and not m.failed:
        # The worker writes its own entry; the CAS put makes concurrent
        # writers of the same digest safe (first valid entry wins).
        stored = ResultCache(payload.cache_root).put(
            task.fingerprint, m, metadata={"experiment": experiment.exp_id})
    events = None
    if cell_prof is not None:
        events = [(ev.kind.value, ev.name, ev.duration_s, dict(ev.metadata))
                  for ev in cell_prof.events]
    return {"index": task.index,
            "error": None,
            "measurement": measurement_to_dict(m),
            "attempts": attempts,
            "faults": faults_hit,
            "wall_s": wall,
            "stored": stored,
            "events": events}
