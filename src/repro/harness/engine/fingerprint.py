"""Cell fingerprints: the cache key of one (experiment, model, shape) cell.

A fingerprint must cover *everything* a :func:`repro.harness.runner.run_measurement`
call reads, so that equal fingerprints imply bit-identical measurements:

* the experiment identity and methodology knobs (``exp_id`` seeds the
  variability stream; node, device, precision, threads, reps, warmup,
  seed and ``include_transfers`` all change the samples);
* the cell coordinates (model name, full m/n/k shape);
* :data:`CONSTANTS_VERSION`, the version of the simulator's cost-model
  constants.  Bump it whenever machine specs, kernel cost models or the
  variability model change, and every stale cache entry self-invalidates
  on the next lookup.

The key is a SHA-256 over a canonical JSON rendering, so it is stable
across processes, platforms and dict orderings.
"""

from __future__ import annotations

import hashlib
import json
from typing import Optional

from ..._version import __version__
from ...core.types import MatrixShape
from ...sim.faults import FaultConfig
from ..experiment import Experiment
from ..health import BreakerPolicy, FallbackLadder

__all__ = ["CONSTANTS_VERSION", "campaign_fingerprint", "cell_fingerprint",
           "fingerprint_payload"]

#: Version of the simulator's cost-model constants baked into every
#: fingerprint.  Bump on any change to machine specs, kernel cost models,
#: transfer estimates or the variability model.
CONSTANTS_VERSION = "2026.1"


def fingerprint_payload(experiment: Experiment, model_name: str,
                        shape: MatrixShape,
                        faults: Optional[FaultConfig] = None) -> dict:
    """The canonical, JSON-serialisable identity of one sweep cell.

    An *enabled* fault configuration joins the payload: a degraded
    campaign keys its cells separately, so its entries can never shadow —
    or be shadowed by — fault-free results, and a retried-then-recovered
    store can never poison a clean warm run.  A disabled (or absent)
    config adds nothing, keeping pre-fault-layer fingerprints stable.
    The retry policy is deliberately **not** part of the identity: it
    decides only whether a cell gets measured at all, never the measured
    values, and failed cells are not cached.
    """
    payload = _base_payload(experiment, model_name, shape)
    if faults is not None and faults.enabled:
        payload["faults"] = faults.payload()
    return payload


def _base_payload(experiment: Experiment, model_name: str,
                  shape: MatrixShape) -> dict:
    return {
        "constants": CONSTANTS_VERSION,
        "package": __version__,
        "experiment": experiment.exp_id,
        "node": experiment.node_name,
        "device": experiment.device.value,
        "precision": experiment.precision.value,
        "model": model_name,
        "shape": [shape.m, shape.n, shape.k],
        "threads": experiment.threads,
        "reps": experiment.reps,
        "warmup": experiment.warmup,
        "seed": experiment.seed,
        "include_transfers": experiment.include_transfers,
    }


def cell_fingerprint(experiment: Experiment, model_name: str,
                     shape: MatrixShape,
                     faults: Optional[FaultConfig] = None) -> str:
    """Hex SHA-256 fingerprint of one (experiment, model, shape) cell."""
    payload = fingerprint_payload(experiment, model_name, shape, faults)
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def campaign_fingerprint(experiment: Experiment,
                         faults: Optional[FaultConfig] = None, *,
                         breaker: Optional[BreakerPolicy] = None,
                         fallback: Optional[FallbackLadder] = None) -> str:
    """Hex SHA-256 identity of a whole campaign, for the run journal.

    Covers the full experiment manifest, the fault model (when enabled)
    and :data:`CONSTANTS_VERSION` — everything that decides what a sweep
    computes.  An *enabled* breaker policy (and, with it, the fallback
    ladder actually in force) joins too: breakers change routing, hence
    what a campaign measures, so a breaker run can never be resumed from
    a non-breaker journal or vice versa.  Disabled breakers add nothing,
    keeping every pre-health-layer fingerprint stable.  A journal whose
    recorded campaign fingerprint no longer matches cannot be resumed
    byte-identically, so resume refuses it.
    """
    payload = {
        "constants": CONSTANTS_VERSION,
        "package": __version__,
        "experiment": experiment.to_dict(),
    }
    if faults is not None and faults.enabled:
        payload["faults"] = faults.payload()
    if breaker is not None and breaker.enabled:
        payload["breaker"] = breaker.payload()
        if fallback is not None:
            payload["fallback"] = fallback.payload()
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()
