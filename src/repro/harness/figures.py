"""Reproduction entry points: one function per table/figure of the paper.

Each ``figN()`` returns a :class:`FigureResult` whose panels are
:class:`~repro.harness.results.ResultSet` objects; ``table3()`` computes
the performance-portability table from the same simulations the figures
use.  ``PAPER_TABLE3`` holds the published numbers for comparison in
EXPERIMENTS.md and the regression tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.efficiency import efficiency_table_for
from ..core.metrics import phi_paper
from ..core.types import DeviceKind, Precision
from .experiment import Experiment, QUICK_SIZES
from .report import ascii_table, render_result_set
from .results import ResultSet
from .runner import run_campaign

__all__ = [
    "FigureResult",
    "Table3Row",
    "Table3Result",
    "PAPER_TABLE3",
    "CPU_MODELS",
    "crusher_cpu_experiment",
    "wombat_cpu_experiment",
    "crusher_gpu_experiment",
    "wombat_gpu_experiment",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "table1",
    "table2",
    "table3",
]

#: Models of the CPU figures (Figs. 4-5), reference first.
CPU_MODELS: Tuple[str, ...] = ("c-openmp", "kokkos", "julia", "numba")

#: Table III as published, keyed by precision -> model -> platform -> e.
#: ``None`` is the paper's '-' (Numba on AMD GPUs).
PAPER_TABLE3: Dict[Precision, Dict[str, Dict[str, Optional[float]]]] = {
    Precision.FP64: {
        "kokkos": {"Epyc 7A53": 0.994, "Ampere Altra": 0.854,
                   "MI250x": 0.842, "A100": 0.260},
        "julia": {"Epyc 7A53": 0.912, "Ampere Altra": 0.907,
                  "MI250x": 0.903, "A100": 0.867},
        "numba": {"Epyc 7A53": 0.550, "Ampere Altra": 0.713,
                  "MI250x": None, "A100": 0.130},
    },
    Precision.FP32: {
        "kokkos": {"Epyc 7A53": 1.014, "Ampere Altra": 0.836,
                   "MI250x": 0.677, "A100": 0.208},
        "julia": {"Epyc 7A53": 0.976, "Ampere Altra": 0.900,
                  "MI250x": 1.050, "A100": 0.600},
        "numba": {"Epyc 7A53": 0.655, "Ampere Altra": 0.400,
                  "MI250x": None, "A100": 0.095},
    },
}

#: Published Phi_M values (Table III bottom rows).
PAPER_PHI: Dict[Precision, Dict[str, float]] = {
    Precision.FP64: {"kokkos": 0.738, "julia": 0.897, "numba": 0.348},
    Precision.FP32: {"kokkos": 0.684, "julia": 0.882, "numba": 0.288},
}

_PLATFORM_ORDER = ("Epyc 7A53", "Ampere Altra", "MI250x", "A100")


def _sweep(experiment: Experiment) -> ResultSet:
    """One figure panel through the unified campaign API."""
    from ..service.spec import CampaignSpec
    return run_campaign(CampaignSpec(experiment=experiment))


# --------------------------------------------------------------------------
# experiment builders
# --------------------------------------------------------------------------

def crusher_cpu_experiment(precision: Precision,
                           sizes: Sequence[int] = QUICK_SIZES) -> Experiment:
    """Fig. 4 setup: 64 threads across 4 NUMA regions."""
    return Experiment(
        exp_id=f"crusher-cpu-{precision.value}",
        title="Crusher multithreaded CPU performance (64 threads, 4 NUMA)",
        node_name="Crusher", device=DeviceKind.CPU, precision=precision,
        models=CPU_MODELS, sizes=tuple(sizes), threads=64,
    )


def wombat_cpu_experiment(precision: Precision,
                          sizes: Sequence[int] = QUICK_SIZES,
                          models: Tuple[str, ...] = CPU_MODELS) -> Experiment:
    """Fig. 5 setup: 80 threads, single NUMA."""
    return Experiment(
        exp_id=f"wombat-cpu-{precision.value}",
        title="Wombat multithreaded CPU performance (80 threads)",
        node_name="Wombat", device=DeviceKind.CPU, precision=precision,
        models=models, sizes=tuple(sizes), threads=80,
    )


def crusher_gpu_experiment(precision: Precision,
                           sizes: Sequence[int] = QUICK_SIZES,
                           models: Tuple[str, ...] = ("hip", "kokkos", "julia"),
                           ) -> Experiment:
    """Fig. 6 setup: MI250X, 32x32 thread blocks."""
    return Experiment(
        exp_id=f"crusher-gpu-{precision.value}",
        title="Simple GEMM on Crusher AMD MI250X (32x32 blocks)",
        node_name="Crusher", device=DeviceKind.GPU, precision=precision,
        models=models, sizes=tuple(sizes),
    )


def wombat_gpu_experiment(precision: Precision,
                          sizes: Sequence[int] = QUICK_SIZES,
                          models: Tuple[str, ...] = ("cuda", "kokkos", "julia",
                                                     "numba"),
                          ) -> Experiment:
    """Fig. 7 setup: A100, 32x32 thread blocks."""
    return Experiment(
        exp_id=f"wombat-gpu-{precision.value}",
        title="Simple GEMM on Wombat NVIDIA A100 (32x32 blocks)",
        node_name="Wombat", device=DeviceKind.GPU, precision=precision,
        models=models, sizes=tuple(sizes),
    )


# --------------------------------------------------------------------------
# figures
# --------------------------------------------------------------------------

@dataclass
class FigureResult:
    """All panels of one paper figure."""

    figure_id: str
    caption: str
    panels: Dict[str, ResultSet] = field(default_factory=dict)

    def render(self, charts: bool = True, efficiencies: bool = False) -> str:
        """Render all panels; ``efficiencies=True`` appends each panel's
        per-size ratio table against its architecture reference — the
        quantities behind the paper's 'constant overhead' prose."""
        from ..models.registry import reference_model_for
        from .report import efficiency_table

        parts = [f"=== {self.figure_id}: {self.caption} ==="]
        for label, rs in self.panels.items():
            parts.append(f"--- panel ({label}) ---")
            parts.append(render_result_set(rs, chart=charts))
            if efficiencies:
                ref = reference_model_for(rs.experiment.target_spec)
                if ref.name in rs.models():
                    parts.append(efficiency_table(rs, ref.name))
        return "\n\n".join(parts)


def fig4(sizes: Sequence[int] = QUICK_SIZES) -> FigureResult:
    """Fig. 4: Crusher CPU, double (a) and single (b) precision."""
    return FigureResult(
        figure_id="Fig. 4",
        caption="Crusher multithreaded CPU performance using 64 threads "
                "across 4 NUMA regions",
        panels={
            "a: double": _sweep(crusher_cpu_experiment(Precision.FP64, sizes)),
            "b: single": _sweep(crusher_cpu_experiment(Precision.FP32, sizes)),
        },
    )


def fig5(sizes: Sequence[int] = QUICK_SIZES) -> FigureResult:
    """Fig. 5: Wombat CPU; panel (c) is the Julia-only FP16 run."""
    return FigureResult(
        figure_id="Fig. 5",
        caption="Wombat multithreaded CPU performance using 80 threads",
        panels={
            "a: double": _sweep(wombat_cpu_experiment(Precision.FP64, sizes)),
            "b: single": _sweep(wombat_cpu_experiment(Precision.FP32, sizes)),
            "c: half (Julia)": _sweep(
                wombat_cpu_experiment(Precision.FP16, sizes, models=("julia",))),
        },
    )


def fig6(sizes: Sequence[int] = QUICK_SIZES) -> FigureResult:
    """Fig. 6: Crusher MI250X; (c) is Julia AMDGPU.jl at half precision."""
    return FigureResult(
        figure_id="Fig. 6",
        caption="Simple GEMM performance on Crusher AMD MI250X GPU using "
                "32x32 thread block sizes",
        panels={
            "a: double": _sweep(crusher_gpu_experiment(Precision.FP64, sizes)),
            "b: single": _sweep(crusher_gpu_experiment(Precision.FP32, sizes)),
            "c: half (Julia)": _sweep(
                crusher_gpu_experiment(Precision.FP16, sizes, models=("julia",))),
        },
    )


def fig7(sizes: Sequence[int] = QUICK_SIZES) -> FigureResult:
    """Fig. 7: Wombat A100; (c) compares Julia and Numba at half precision."""
    return FigureResult(
        figure_id="Fig. 7",
        caption="Simple GEMM performance on Wombat NVIDIA A100 using "
                "32x32 thread block sizes",
        panels={
            "a: double": _sweep(wombat_gpu_experiment(Precision.FP64, sizes)),
            "b: single": _sweep(wombat_gpu_experiment(Precision.FP32, sizes)),
            "c: half (Julia, Numba)": _sweep(
                wombat_gpu_experiment(Precision.FP16, sizes,
                                      models=("julia", "numba"))),
        },
    )


# --------------------------------------------------------------------------
# tables
# --------------------------------------------------------------------------

def table1() -> str:
    """Table I: CPU experiment specs (static configuration data)."""
    rows = [
        ["Model", "Ampere Altra 80-core, 1-NUMA", "AMD Epyc 7A53 64-core, 4-NUMA"],
        ["C OpenMP compiler", "ArmClang22", "AMDClang14"],
        ["C OpenMP flags", "-O3 -fopenmp", "-O3 -fopenmp -march=native"],
        ["Kokkos", "v3.6.01 (OpenMP backend)", "v3.6.01 (OpenMP backend)"],
        ["KOKKOS_ARCH", "Armv8-TX2", "Zen 3"],
        ["Julia", "v1.7.2", "v1.8.0-rc1"],
        ["Julia ENV", "JULIA_EXCLUSIVE=1", "JULIA_EXCLUSIVE=1"],
        ["Python / Numba", "v3.9.9 / v0.55.1", "v3.9.9 / v0.55.1"],
        ["Numba ENV", "NUMBA_OPT=3 (default)", "NUMBA_OPT=3 (default)"],
    ]
    return ascii_table(["Programming/System", "Wombat (Arm)", "Crusher (AMD)"], rows)


def table2() -> str:
    """Table II: GPU experiment specs (static configuration data)."""
    rows = [
        ["Model", "A100 Ampere", "MI250X"],
        ["C compiler", "nvcc v11.5.1", "hipcc v14.0.0"],
        ["C flags", "-arch=sm_80", "-amdgpu-target=gfx908"],
        ["Kokkos", "v3.6.01 (Cuda backend)", "v3.6.01 (Hip backend)"],
        ["KOKKOS_ARCH", "Ampere80", "Vega908"],
        ["Julia", "v1.7.2 + CUDA.jl", "v1.8.0-rc1 + AMDGPU.jl"],
        ["Python / Numba", "v3.9.9 / v0.55.1", "Not supported"],
    ]
    return ascii_table(["Programming/System", "Wombat (NVIDIA)", "Crusher (AMD)"], rows)


@dataclass(frozen=True)
class Table3Row:
    """One model's row group: efficiencies per platform plus Phi."""

    model: str
    precision: Precision
    efficiencies: Dict[str, Optional[float]]
    phi: float


@dataclass
class Table3Result:
    rows: List[Table3Row] = field(default_factory=list)
    #: ``"model @shape (platform, precision)"`` labels of permanently
    #: failed cells, when the table was computed from a degraded campaign.
    degraded_cells: List[str] = field(default_factory=list)
    #: ``"model @shape (platform, precision) <- served_by"`` labels of
    #: cells a fallback lane served; their e is computed against what
    #: actually ran (0 for cross-model serves), never silently inflated.
    substituted_cells: List[str] = field(default_factory=list)

    @property
    def degraded(self) -> bool:
        return bool(self.degraded_cells)

    @property
    def substituted(self) -> bool:
        return bool(self.substituted_cells)

    def row(self, model: str, precision: Precision) -> Table3Row:
        for r in self.rows:
            if r.model == model and r.precision == precision:
                return r
        raise KeyError(f"no Table III row for ({model}, {precision})")

    def render(self) -> str:
        headers = ["Architecture", "Kokkos", "Julia", "Python/Numba"]
        body: List[List[object]] = []
        for precision in (Precision.FP64, Precision.FP32):
            body.append([f"{precision.label.capitalize()} precision", "", "", ""])
            for platform in _PLATFORM_ORDER:
                row: List[object] = [f"e_{platform}"]
                for model in ("kokkos", "julia", "numba"):
                    e = self.row(model, precision).efficiencies.get(platform)
                    row.append(f"{e:.3f}" if e is not None else "-")
                body.append(row)
            row = ["Phi_M"]
            for model in ("kokkos", "julia", "numba"):
                row.append(f"{self.row(model, precision).phi:.3f}")
            body.append(row)
        text = ascii_table(headers, body)
        if self.degraded:
            lines = [text, "",
                     f"DEGRADED: {len(self.degraded_cells)} cells failed and "
                     "contribute e=0 to their panel means:"]
            lines += [f"  {label}" for label in self.degraded_cells]
            text = "\n".join(lines)
        if self.substituted:
            lines = [text, "",
                     f"SUBSTITUTED: {len(self.substituted_cells)} cells were "
                     "served by fallback lanes; e is computed against what "
                     "actually ran (0 for cross-model serves):"]
            lines += [f"  {label}" for label in self.substituted_cells]
            text = "\n".join(lines)
        return text


def table3(sizes: Sequence[int] = QUICK_SIZES) -> Table3Result:
    """Table III: per-platform efficiencies and Phi_M for both precisions."""
    result = Table3Result()
    portable = ["kokkos", "julia", "numba"]
    for precision in (Precision.FP64, Precision.FP32):
        panels = {
            "Epyc 7A53": _sweep(crusher_cpu_experiment(precision, sizes)),
            "Ampere Altra": _sweep(wombat_cpu_experiment(precision, sizes)),
            "MI250x": _sweep(crusher_gpu_experiment(
                precision, sizes, models=("hip", "kokkos", "julia", "numba"))),
            "A100": _sweep(wombat_gpu_experiment(precision, sizes)),
        }
        per_model: Dict[str, Dict[str, Optional[float]]] = {m: {} for m in portable}
        for platform, rs in panels.items():
            for cell in efficiency_table_for(rs, portable, platform):
                per_model[cell.model][platform] = cell.value
            result.degraded_cells += [
                f"{m.model} @{m.shape} ({platform}, {precision.value})"
                for m in rs.failed_cells()
            ]
            result.substituted_cells += [
                f"{m.model} @{m.shape} ({platform}, {precision.value}) "
                f"<- {m.served_by}"
                for m in rs.substituted_cells()
            ]
        for model in portable:
            effs = [per_model[model].get(p) for p in _PLATFORM_ORDER]
            result.rows.append(Table3Row(
                model=model,
                precision=precision,
                efficiencies=per_model[model],
                phi=phi_paper(effs),
            ))
    return result
