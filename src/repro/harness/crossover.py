"""CPU vs GPU crossover analysis.

A question the paper's per-device figures invite but never answer: for a
given programming model, at what problem size does moving the GEMM to the
node's GPU start paying — and how does the answer change when the
host<->device transfers the paper's methodology excludes are charged?
This module sweeps sizes on both devices of one node and finds the
crossover, with and without transfer costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..core.types import MatrixShape, Precision
from ..errors import ExperimentError
from ..gpu.transfer import gemm_transfer_estimate
from ..gpu.warp_sim import simulate_gpu_kernel
from ..machine.node import Node
from ..models.registry import model_by_name
from ..sim.executor import simulate_cpu_kernel
from .report import ascii_table

__all__ = ["CrossoverPoint", "CrossoverStudy", "device_crossover"]


@dataclass(frozen=True)
class CrossoverPoint:
    size: int
    cpu_seconds: float
    gpu_kernel_seconds: float
    gpu_e2e_seconds: float     # kernel + H2D + D2H

    @property
    def gpu_wins_kernel(self) -> bool:
        return self.gpu_kernel_seconds < self.cpu_seconds

    @property
    def gpu_wins_e2e(self) -> bool:
        return self.gpu_e2e_seconds < self.cpu_seconds


@dataclass
class CrossoverStudy:
    node: str
    model: str
    display: str
    precision: Precision
    points: List[CrossoverPoint] = field(default_factory=list)

    def crossover_size(self, end_to_end: bool = False) -> Optional[int]:
        """Smallest swept size from which the GPU wins (None: never)."""
        for p in self.points:
            if (p.gpu_wins_e2e if end_to_end else p.gpu_wins_kernel):
                return p.size
        return None

    def render(self) -> str:
        rows = []
        for p in self.points:
            rows.append([
                p.size,
                f"{p.cpu_seconds * 1e3:.2f}",
                f"{p.gpu_kernel_seconds * 1e3:.2f}",
                f"{p.gpu_e2e_seconds * 1e3:.2f}",
                "gpu" if p.gpu_wins_kernel else "cpu",
                "gpu" if p.gpu_wins_e2e else "cpu",
            ])
        head = (f"{self.display} on {self.node}: CPU vs GPU, "
                f"{self.precision.label} precision")
        table = ascii_table(
            ["size", "CPU ms", "GPU-kernel ms", "GPU-e2e ms",
             "winner(kernel)", "winner(e2e)"], rows)
        k = self.crossover_size(False)
        e = self.crossover_size(True)
        notes = [
            f"kernel-only crossover: {'n=%d' % k if k else 'GPU never wins'}",
            f"end-to-end crossover:  {'n=%d' % e if e else 'GPU never wins'}",
        ]
        return head + "\n" + table + "\n" + "\n".join(notes)


def device_crossover(
    node: Node,
    model_name: str,
    precision: Precision = Precision.FP64,
    sizes: Sequence[int] = (128, 256, 512, 1024, 2048, 4096),
    threads: int = 0,
) -> CrossoverStudy:
    """Sweep both devices of ``node`` with one model's kernels."""
    model = model_by_name(model_name)
    cpu = node.cpu
    if not node.has_gpu:
        raise ExperimentError(f"{node.name} has no GPU")
    gpu = node.gpu()
    for spec in (cpu, gpu):
        support = model.supports(spec, precision)
        if not support.supported:
            raise ExperimentError(
                f"{model.display} unsupported on {spec.name}: {support.reason}")

    t = threads if threads else cpu.cores
    cpu_low = model.lower_cpu(cpu, precision)
    gpu_low = model.lower_gpu(gpu, precision)

    study = CrossoverStudy(node=node.name, model=model.name,
                           display=model.display, precision=precision)
    for n in sorted(sizes):
        shape = MatrixShape.square(n)
        cpu_t = simulate_cpu_kernel(cpu_low.kernel, cpu, shape, t,
                                    pin=cpu_low.pin, profile=cpu_low.profile)
        gpu_t = simulate_gpu_kernel(gpu_low.kernel, gpu_low.launch, gpu,
                                    shape, gpu_low.profile)
        transfers = gemm_transfer_estimate(gpu, shape, precision)
        study.points.append(CrossoverPoint(
            size=n,
            cpu_seconds=cpu_t.total_seconds,
            gpu_kernel_seconds=gpu_t.total_seconds,
            gpu_e2e_seconds=gpu_t.total_seconds + transfers.total_seconds,
        ))
    return study
