"""Self-healing sweeps: per-lane health, circuit breakers, fallback routing.

The third leg of the resilience stack (inject -> retry -> adapt).  Fault
injection (:mod:`repro.sim.faults`) makes lanes sick reproducibly and
the retry layer survives transient hits; this package makes the sweep
*adapt*: a lane that keeps failing permanently is tripped OPEN by its
:class:`LaneHealth` breaker, affected cells are rerouted down a
declarative :class:`FallbackLadder` (``numba@gpu -> numba@cpu ->
reference``), substituted measurements carry full provenance into
Table III and the exports, and a simulated-time cooldown earns the sick
lane a probe cell that re-closes or re-opens it.

Everything is deterministic and journaled: breaker thresholds/cooldowns
live in a frozen :class:`BreakerPolicy` on
:class:`~repro.harness.engine.options.RunOptions`, transitions are
write-ahead journal records, and ``repro run --resume`` replays the
whole state machine byte-identically.  ``repro health <run-id>`` renders
the lane-state history after the fact.
"""

from __future__ import annotations

from .breaker import BreakerPolicy, BreakerState, BreakerTransition, LaneHealth
from .ladder import FallbackLadder, resolve_hop
from .registry import HealthRegistry

__all__ = [
    "BreakerPolicy",
    "BreakerState",
    "BreakerTransition",
    "LaneHealth",
    "FallbackLadder",
    "resolve_hop",
    "HealthRegistry",
]
