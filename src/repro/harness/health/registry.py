"""The health registry: every lane's breaker, owned by one engine run.

One :class:`HealthRegistry` per breaker-enabled sweep.  It creates a
:class:`~repro.harness.health.breaker.LaneHealth` per native lane (one
per model of the experiment, on the experiment's device and precision),
answers routing decisions in cell order, accumulates the transition
history for reports/journal, and replays journaled per-cell health
metadata so a resumed run walks every breaker through identical states.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Mapping

from ...errors import JournalError
from .breaker import BreakerPolicy, BreakerState, BreakerTransition, LaneHealth
from .ladder import FallbackLadder

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..experiment import Experiment

__all__ = ["HealthRegistry"]


class HealthRegistry:
    """Breaker state of every native lane of one sweep run."""

    def __init__(self, policy: BreakerPolicy, ladder: FallbackLadder,
                 experiment: "Experiment") -> None:
        self.policy = policy
        self.ladder = ladder
        self.experiment = experiment
        self.device = experiment.device.value
        self.lanes: Dict[str, LaneHealth] = {}
        for name in experiment.models:
            spec = f"{name}@{self.device}"
            if spec not in self.lanes:
                self.lanes[spec] = LaneHealth(spec, policy)
        #: Full transition history of the run, in cell order.
        self.transitions: List[BreakerTransition] = []

    def lane_for(self, model_name: str) -> LaneHealth:
        """The native lane of one model of the experiment."""
        return self.lanes[f"{model_name}@{self.device}"]

    def is_open(self, lane_spec: str) -> bool:
        """Whether a lane is tracked *and* currently OPEN.

        Untracked lanes (fallback targets outside the experiment's native
        lanes, e.g. ``numba@cpu`` during a GPU sweep) are never open —
        their health accrues nowhere, so the ladder simply tries them.
        """
        lane = self.lanes.get(lane_spec)
        return lane is not None and lane.state is BreakerState.OPEN

    def drain(self) -> List[BreakerTransition]:
        """New transitions since the last drain, accumulated into
        :attr:`transitions` (the engine journals the live ones)."""
        out: List[BreakerTransition] = []
        for lane in self.lanes.values():
            out.extend(lane.drain_transitions())
        self.transitions.extend(out)
        return out

    def feed_replay(self, lane: LaneHealth, meta: Mapping[str, object],
                    cell_index: int) -> None:
        """Walk one *replayed* cell through the state machine.

        ``meta`` is the per-cell health record the original run
        journaled (``native`` outcome plus simulated costs); feeding it
        in cell order reproduces exactly the route decisions and
        transitions the original process made, which is what keeps a
        resumed breaker run byte-identical.
        """
        lane.route(cell_index)
        native = meta.get("native", "none")
        if native == "ok":
            lane.record_native(True, float(meta.get("native_cost_s", 0.0)),
                               cell_index)
        elif native == "failed":
            lane.record_native(False, float(meta.get("native_cost_s", 0.0)),
                               cell_index)
        lane.record_substituted(float(meta.get("serve_cost_s", 0.0)))

    def require_meta(self, meta: object, fingerprint: str) -> Mapping[str, object]:
        """Journaled health metadata for one replayed cell, or refuse.

        A breaker-enabled resume without per-cell health records cannot
        reconstruct lane clocks, so it could diverge silently — raising
        :class:`~repro.errors.JournalError` keeps the byte-identity
        contract honest.
        """
        if not isinstance(meta, Mapping):
            raise JournalError(
                f"journal carries no health metadata for replayed cell "
                f"{fingerprint[:12]}...; it was not written by a "
                f"breaker-enabled run and cannot be resumed with breakers")
        return meta

    def describe(self) -> str:
        """Final lane states, one line each (engine-stats section)."""
        return "\n".join(lane.describe() for lane in self.lanes.values())
