"""Per-lane circuit breakers: the state machine behind self-healing sweeps.

A *lane* is one (model, device, precision) column of a sweep — the unit
the paper's Table III scores, and the unit that fails as a whole on real
nodes (a deprecated GPU target, a driver regression, a kernel that OOMs
at every size).  :class:`LaneHealth` tracks one lane through the classic
circuit-breaker cycle:

* ``CLOSED`` — healthy; cells run natively.  ``threshold`` consecutive
  *permanent* cell failures trip the breaker.
* ``OPEN`` — sick; cells are rerouted via the fallback ladder instead of
  burning their full retry budget.  After ``cooldown_s`` of simulated
  lane time the next owned cell becomes a probe.
* ``HALF_OPEN`` — probing; one native cell decides: success re-closes
  the lane, failure re-opens it for another cooldown.

All timekeeping is *simulated* (fault costs, backoffs and measured
kernel seconds advance the lane clock; nothing sleeps), so breaker
behaviour is a pure function of the run's inputs and resume can replay
every transition byte-identically.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List

from ...errors import ConfigError

__all__ = ["BreakerState", "BreakerPolicy", "BreakerTransition",
           "LaneHealth"]


class BreakerState(enum.Enum):
    """Health state of one sweep lane."""

    CLOSED = "closed"        # healthy: cells run natively
    OPEN = "open"            # sick: cells reroute via the fallback ladder
    HALF_OPEN = "half-open"  # probing: one native cell decides


@dataclass(frozen=True)
class BreakerPolicy:
    """When breakers trip and how long they stay open.

    ``threshold`` is the number of *consecutive* permanent cell failures
    that opens a lane; 0 (the default) disables the health subsystem
    entirely, keeping the engine byte-identical to its pre-breaker
    behaviour.  ``cooldown_s`` is simulated lane time an open breaker
    waits before the next owned cell probes the lane.
    """

    threshold: int = 0
    cooldown_s: float = 300.0

    def __post_init__(self) -> None:
        if self.threshold < 0:
            raise ConfigError(
                f"breaker threshold {self.threshold} must be >= 0")
        if self.cooldown_s <= 0:
            raise ConfigError(
                f"breaker cooldown {self.cooldown_s:g}s must be positive")

    @property
    def enabled(self) -> bool:
        """Whether breakers (and fallback routing) are active."""
        return self.threshold > 0

    # -- parsing ----------------------------------------------------------

    @classmethod
    def parse(cls, spec: str) -> "BreakerPolicy":
        """Parse a CLI/env spec like ``threshold=3,cooldown=60``.

        Mirrors :meth:`repro.sim.faults.FaultConfig.parse`: comma-
        separated ``key=value`` items, with a bare integer (``"3"``) as
        shorthand for ``threshold=3``.  Duplicate keys are rejected.
        """
        spec = spec.strip()
        if not spec:
            raise ConfigError("empty breaker spec")
        try:
            return cls(threshold=_parse_threshold(spec))
        except ValueError:
            pass
        kwargs: Dict[str, object] = {}
        seen: set = set()
        for item in spec.split(","):
            item = item.strip()
            if not item:
                continue
            if "=" not in item:
                raise ConfigError(
                    f"breaker spec item {item!r} is not key=value")
            key, _, value = item.partition("=")
            key = key.strip()
            value = value.strip()
            if key in seen:
                raise ConfigError(
                    f"duplicate breaker spec key {key!r}")
            seen.add(key)
            if key == "threshold":
                try:
                    kwargs["threshold"] = _parse_threshold(value)
                except ValueError as exc:
                    raise ConfigError(
                        f"breaker threshold {value!r} is not a positive "
                        f"integer") from exc
            elif key == "cooldown":
                try:
                    kwargs["cooldown_s"] = float(value)
                except ValueError as exc:
                    raise ConfigError(
                        f"breaker cooldown {value!r} is not a number"
                    ) from exc
            else:
                raise ConfigError(
                    f"unknown breaker spec key {key!r}; "
                    "known: threshold, cooldown")
        if "threshold" not in kwargs:
            raise ConfigError(
                "breaker spec needs a threshold (e.g. 'threshold=3')")
        return cls(**kwargs)

    def spec(self) -> str:
        """The canonical spec string; ``parse(spec())`` round-trips."""
        return f"threshold={self.threshold},cooldown={self.cooldown_s:g}"

    # -- identity ---------------------------------------------------------

    def payload(self) -> dict:
        """Canonical JSON-serialisable form (fingerprint / journal)."""
        return {"threshold": self.threshold, "cooldown_s": self.cooldown_s}

    @classmethod
    def from_payload(cls, payload: dict) -> "BreakerPolicy":
        """Inverse of :meth:`payload` (the journal-restore path)."""
        return cls(threshold=int(payload.get("threshold", 0)),
                   cooldown_s=float(payload.get("cooldown_s", 300.0)))

    def describe(self) -> str:
        """One-line human summary."""
        if not self.enabled:
            return "breakers disabled"
        return (f"breakers: open after {self.threshold} consecutive "
                f"failures, probe after {self.cooldown_s:g}s cooldown")


def _parse_threshold(value: str) -> int:
    n = int(value)
    if n < 1:
        raise ValueError(value)
    return n


@dataclass(frozen=True)
class BreakerTransition:
    """One lane changing state: the unit of ``repro health`` history."""

    lane: str               # "model@device", e.g. "numba@gpu"
    from_state: BreakerState
    to_state: BreakerState
    at_s: float             # simulated lane clock at the transition
    cell_index: int         # sweep cell whose processing triggered it
    reason: str

    def payload(self) -> dict:
        """Canonical JSON-serialisable form (the journal record)."""
        return {"lane": self.lane, "from": self.from_state.value,
                "to": self.to_state.value, "at_s": self.at_s,
                "cell": self.cell_index, "reason": self.reason}

    @classmethod
    def from_payload(cls, payload: dict) -> "BreakerTransition":
        """Inverse of :meth:`payload` (the ``repro health`` loader)."""
        return cls(lane=payload.get("lane", "?"),
                   from_state=BreakerState(payload.get("from", "closed")),
                   to_state=BreakerState(payload.get("to", "closed")),
                   at_s=float(payload.get("at_s", 0.0)),
                   cell_index=int(payload.get("cell", -1)),
                   reason=payload.get("reason", ""))

    def describe(self) -> str:
        """One history line for reports and ``repro health``."""
        return (f"{self.lane}: {self.from_state.value} -> "
                f"{self.to_state.value} at cell {self.cell_index} "
                f"({self.reason})")


class LaneHealth:
    """Mutable breaker state machine of one (model, device) lane.

    The engine drives it with exactly three calls per owned cell, in
    order: :meth:`route` (the decision, which may flip an expired OPEN
    breaker to HALF_OPEN), :meth:`record_native` (if the native lane
    ran), and :meth:`record_substituted` (charging the simulated cost of
    any fallback serve to the lane clock).  Replayed cells feed the same
    three calls from journaled metadata, so a resumed run walks the state
    machine through identical transitions.
    """

    def __init__(self, lane: str, policy: BreakerPolicy) -> None:
        self.lane = lane
        self.policy = policy
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.clock_s = 0.0
        self.opened_at_s = 0.0
        self.native_ok = 0
        self.native_failed = 0
        self._pending: List[BreakerTransition] = []

    def _transition(self, to: BreakerState, cell_index: int,
                    reason: str) -> None:
        self._pending.append(BreakerTransition(
            lane=self.lane, from_state=self.state, to_state=to,
            at_s=self.clock_s, cell_index=cell_index, reason=reason))
        self.state = to

    def route(self, cell_index: int) -> str:
        """The decision for one owned cell: ``"run"``, ``"probe"`` or
        ``"substitute"``.  An OPEN breaker whose cooldown has elapsed
        flips to HALF_OPEN here and asks for a probe."""
        if self.state is BreakerState.CLOSED:
            return "run"
        if self.state is BreakerState.OPEN:
            if self.clock_s - self.opened_at_s >= self.policy.cooldown_s:
                self._transition(
                    BreakerState.HALF_OPEN, cell_index,
                    f"cooldown {self.policy.cooldown_s:g}s elapsed; probing")
                return "probe"
            return "substitute"
        return "probe"  # HALF_OPEN: e.g. resumed mid-probe

    def record_native(self, ok: bool, cost_s: float,
                      cell_index: int) -> None:
        """Outcome of a native attempt; advances the lane clock."""
        self.clock_s += cost_s
        if ok:
            self.native_ok += 1
            self.consecutive_failures = 0
            if self.state is not BreakerState.CLOSED:
                self._transition(BreakerState.CLOSED, cell_index,
                                 "probe succeeded; lane re-closed")
            return
        self.native_failed += 1
        self.consecutive_failures += 1
        if self.state is BreakerState.HALF_OPEN:
            self.opened_at_s = self.clock_s
            self._transition(BreakerState.OPEN, cell_index,
                             "probe failed; lane re-opened")
        elif (self.state is BreakerState.CLOSED
              and self.consecutive_failures >= self.policy.threshold):
            self.opened_at_s = self.clock_s
            self._transition(
                BreakerState.OPEN, cell_index,
                f"{self.consecutive_failures} consecutive permanent "
                f"failures (threshold {self.policy.threshold})")

    def record_substituted(self, cost_s: float) -> None:
        """Charge a fallback serve's simulated cost to the lane clock.

        Pure clock advance: substitutions never probe the sick lane, so
        they change no counters and fire no transitions — but they *do*
        move simulated time forward, which is what eventually expires the
        cooldown and earns the lane a probe.
        """
        self.clock_s += cost_s

    def drain_transitions(self) -> List[BreakerTransition]:
        """Transitions since the last drain (engine journals these)."""
        out, self._pending = self._pending, []
        return out

    def describe(self) -> str:
        """One status line for reports and ``repro health``."""
        return (f"{self.lane}: {self.state.value} "
                f"({self.native_ok} ok, {self.native_failed} failed, "
                f"clock {self.clock_s:g}s)")
