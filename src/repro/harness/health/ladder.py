"""Fallback ladders: where a cell goes when its lane's breaker is open.

A ladder maps an *origin* lane (``model@device``) to an ordered list of
fallback *hops*.  Each hop is either another lane of the same node
(``numba@cpu`` — the paper's honest fallback: the same model on the CPU
of that node) or the keyword ``reference``, which resolves to the
architecture-specific reference implementation of Sec. V (C/OpenMP on
CPUs, CUDA on NVIDIA, HIP on AMD GPUs) on the experiment's own device.

Default ladders are derived from the model registry's device-support
matrix (:meth:`FallbackLadder.default_for`); ``--fallback`` overrides
them with an explicit declaration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Tuple

from ...core.types import DeviceKind
from ...errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ...models.base import ProgrammingModel
    from ..experiment import Experiment

__all__ = ["FallbackLadder", "resolve_hop"]

#: The ladder keyword that resolves to the platform reference model.
REFERENCE_HOP = "reference"

_DEVICES = tuple(d.value for d in DeviceKind)


def _check_lane(spec: str, what: str) -> str:
    """Validate a ``model@device`` lane spec; returns it normalised."""
    spec = spec.strip()
    name, sep, device = spec.partition("@")
    if not sep or not name or device not in _DEVICES:
        raise ConfigError(
            f"{what} {spec!r} is not model@device "
            f"(device one of {'/'.join(_DEVICES)})")
    from ...models.registry import model_by_name
    try:
        model_by_name(name)
    except KeyError as exc:
        raise ConfigError(f"{what} {spec!r} names an unknown model") from exc
    return f"{name.strip().lower()}@{device}"


@dataclass(frozen=True)
class FallbackLadder:
    """Declarative origin-lane -> fallback-hops routing table.

    ``rungs`` is a tuple of ``(origin, hops)`` pairs; origins are unique
    and hops are tried in order.  The structure is frozen and hashable
    so it can ride on :class:`~repro.harness.engine.options.RunOptions`
    and join the campaign fingerprint.
    """

    rungs: Tuple[Tuple[str, Tuple[str, ...]], ...] = ()

    def __post_init__(self) -> None:
        seen: set = set()
        for origin, hops in self.rungs:
            if origin in seen:
                raise ConfigError(f"duplicate fallback origin {origin!r}")
            seen.add(origin)
            for hop in hops:
                if hop == origin:
                    raise ConfigError(
                        f"fallback ladder for {origin!r} routes back to "
                        f"itself")

    def hops_for(self, origin: str) -> Tuple[str, ...]:
        """The declared fallback hops of one origin lane (may be empty)."""
        for lane, hops in self.rungs:
            if lane == origin:
                return hops
        return ()

    # -- construction -----------------------------------------------------

    @classmethod
    def parse(cls, spec: str) -> "FallbackLadder":
        """Parse ``'numba@gpu=numba@cpu+reference,julia@gpu=julia@cpu'``.

        Mirrors :meth:`repro.sim.faults.FaultConfig.parse`: comma-
        separated ``origin=hops`` items with ``+``-separated hops (``,``
        splits the option list).  Hops are lanes or ``reference``;
        duplicate origins are rejected.
        """
        spec = spec.strip()
        if not spec:
            raise ConfigError("empty fallback spec")
        rungs: List[Tuple[str, Tuple[str, ...]]] = []
        seen: set = set()
        for item in spec.split(","):
            item = item.strip()
            if not item:
                continue
            if "=" not in item:
                raise ConfigError(
                    f"fallback spec item {item!r} is not origin=hops")
            origin_raw, _, hops_raw = item.partition("=")
            origin = _check_lane(origin_raw, "fallback origin")
            if origin in seen:
                raise ConfigError(
                    f"duplicate fallback spec key {origin!r}")
            seen.add(origin)
            hops: List[str] = []
            for hop in hops_raw.split("+"):
                hop = hop.strip()
                if not hop:
                    continue
                hops.append(hop if hop == REFERENCE_HOP
                            else _check_lane(hop, "fallback hop"))
            if not hops:
                raise ConfigError(
                    f"fallback ladder for {origin!r} declares no hops")
            rungs.append((origin, tuple(hops)))
        return cls(rungs=tuple(rungs))

    def spec(self) -> str:
        """The canonical spec string; ``parse(spec())`` round-trips."""
        return ",".join(f"{origin}=" + "+".join(hops)
                        for origin, hops in self.rungs)

    @classmethod
    def default_for(cls, experiment: "Experiment") -> "FallbackLadder":
        """Ladders derived from the registry's device-support matrix.

        Every non-reference model of the experiment gets an origin lane
        on the experiment's device.  GPU lanes fall back to the same
        model on the node's CPU (when the registry says the model
        supports it at this precision) and then to the platform
        reference; CPU lanes fall straight back to the reference.  The
        reference lane itself gets no ladder — there is nothing more
        honest to substitute.
        """
        from ...models.registry import model_by_name, reference_model_for
        ref = reference_model_for(experiment.target_spec)
        device = experiment.device.value
        rungs: List[Tuple[str, Tuple[str, ...]]] = []
        for name in experiment.models:
            if name == ref.name:
                continue
            hops: List[str] = []
            if experiment.device is DeviceKind.GPU:
                model = model_by_name(name)
                if model.supports(experiment.node.cpu,
                                  experiment.precision).supported:
                    hops.append(f"{name}@cpu")
            hops.append(REFERENCE_HOP)
            rungs.append((f"{name}@{device}", tuple(hops)))
        return cls(rungs=tuple(rungs))

    # -- identity ---------------------------------------------------------

    def payload(self) -> dict:
        """Canonical JSON-serialisable form (fingerprint / journal)."""
        return {"rungs": [[origin, list(hops)]
                          for origin, hops in self.rungs]}

    @classmethod
    def from_payload(cls, payload: dict) -> "FallbackLadder":
        """Inverse of :meth:`payload` (the journal-restore path)."""
        return cls(rungs=tuple((origin, tuple(hops))
                               for origin, hops in payload.get("rungs", ())))

    def describe(self) -> str:
        """One-line human summary."""
        if not self.rungs:
            return "no fallback ladders"
        return "fallbacks: " + "; ".join(
            f"{origin} -> " + " -> ".join(hops)
            for origin, hops in self.rungs)


def resolve_hop(hop: str,
                experiment: "Experiment") -> Tuple["ProgrammingModel",
                                                   DeviceKind]:
    """Resolve one ladder hop to a concrete (model, device) pair.

    ``reference`` resolves to the experiment target's reference model on
    the experiment's own device; ``model@device`` resolves literally.
    """
    from ...models.registry import model_by_name, reference_model_for
    if hop == REFERENCE_HOP:
        return reference_model_for(experiment.target_spec), experiment.device
    name, _, device = hop.partition("@")
    return model_by_name(name), DeviceKind(device)
