"""Experiment definitions: one panel of one figure/table of the paper."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple, Union

from ..core.types import DeviceKind, MatrixShape, Precision
from ..errors import ExperimentError
from ..machine.cpu import CPUSpec
from ..machine.gpu import GPUSpec
from ..machine.node import Node, node_by_name

__all__ = ["Experiment", "PAPER_SIZES", "QUICK_SIZES"]

#: The artifact's sweep (Fig. 9): Ms = 4096, 5120, ..., 20480 — we add a
#: few smaller points so launch-overhead effects at small sizes show.
PAPER_SIZES: Tuple[int, ...] = (1024, 2048) + tuple(range(4096, 20481, 2048))

#: A reduced sweep for unit tests and quick benchmark runs.
QUICK_SIZES: Tuple[int, ...] = (1024, 4096, 8192, 16384)


@dataclass(frozen=True)
class Experiment:
    """One simulated benchmark campaign.

    Corresponds to one figure panel (e.g. Fig. 4a = Crusher CPU, double
    precision, all four CPU models) or a slice of Table III.
    """

    exp_id: str
    title: str
    node_name: str
    device: DeviceKind
    precision: Precision
    models: Tuple[str, ...]
    sizes: Tuple[int, ...] = QUICK_SIZES
    threads: Optional[int] = None  # CPU only; None = all cores
    reps: int = 10
    warmup: int = 1
    seed: int = 2023
    #: Charge host<->device transfers to every GPU repetition instead of
    #: only the warm-up.  The paper's methodology excludes transfers
    #: (default False); enabling this shows the end-to-end picture, where
    #: small problems become PCIe/IF-bound for every model alike.
    include_transfers: bool = False

    def __post_init__(self) -> None:
        if not self.models:
            raise ExperimentError(f"{self.exp_id}: no models")
        if not self.sizes or any(s <= 0 for s in self.sizes):
            raise ExperimentError(f"{self.exp_id}: invalid size sweep")
        if self.reps < 1 or self.warmup < 0:
            raise ExperimentError(f"{self.exp_id}: invalid reps/warmup")
        self.node  # validates node name

    @property
    def node(self) -> Node:
        return node_by_name(self.node_name)

    @property
    def target_spec(self) -> Union[CPUSpec, GPUSpec]:
        if self.device is DeviceKind.CPU:
            return self.node.cpu
        return self.node.gpu()

    @property
    def effective_threads(self) -> int:
        if self.device is not DeviceKind.CPU:
            raise ExperimentError(f"{self.exp_id}: threads is a CPU concept")
        return self.threads if self.threads else self.node.cpu.cores

    def shapes(self):
        return [MatrixShape.square(s) for s in self.sizes]

    def with_sizes(self, sizes: Tuple[int, ...]) -> "Experiment":
        return replace(self, sizes=tuple(sizes))

    # -- (de)serialisation: experiment definitions as config files ---------

    def to_dict(self) -> dict:
        return {
            "exp_id": self.exp_id,
            "title": self.title,
            "node": self.node_name,
            "device": self.device.value,
            "precision": self.precision.value,
            "models": list(self.models),
            "sizes": list(self.sizes),
            "threads": self.threads,
            "reps": self.reps,
            "warmup": self.warmup,
            "seed": self.seed,
            "include_transfers": self.include_transfers,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Experiment":
        """Inverse of :meth:`to_dict`; unknown keys are rejected so config
        typos fail loudly instead of silently using defaults."""
        known = {"exp_id", "title", "node", "device", "precision", "models",
                 "sizes", "threads", "reps", "warmup", "seed",
                 "include_transfers"}
        unknown = set(data) - known
        if unknown:
            raise ExperimentError(f"unknown experiment keys: {sorted(unknown)}")
        return cls(
            exp_id=data["exp_id"],
            title=data.get("title", data["exp_id"]),
            node_name=data["node"],
            device=DeviceKind(data.get("device", "cpu")),
            precision=Precision.parse(data.get("precision", "fp64")),
            models=tuple(data["models"]),
            sizes=tuple(data.get("sizes", QUICK_SIZES)),
            threads=data.get("threads"),
            reps=data.get("reps", 10),
            warmup=data.get("warmup", 1),
            seed=data.get("seed", 2023),
            include_transfers=data.get("include_transfers", False),
        )

    def describe(self) -> str:  # pragma: no cover - cosmetic
        where = self.node.cpu.name if self.device is DeviceKind.CPU \
            else self.node.gpu().name
        return (f"{self.exp_id}: {self.title} [{where}, "
                f"{self.precision.label} precision, "
                f"sizes {self.sizes[0]}..{self.sizes[-1]}]")
