"""Reproduction verification: paper-vs-reproduced in one call.

``repro verify`` (and the EXPERIMENTS.md tables) come from here: every
published Table III cell and Phi value compared against a fresh
simulation, with tolerances from the DESIGN.md calibration policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..core.types import Precision
from .experiment import QUICK_SIZES
from .figures import PAPER_PHI, PAPER_TABLE3, Table3Result, table3
from .report import ascii_table

__all__ = ["CellCheck", "VerificationReport", "verify_table3",
           "E_TOLERANCE", "PHI_TOLERANCE"]

#: Tolerance on per-platform efficiencies (DESIGN.md §5).
E_TOLERANCE = 0.05
#: Tolerance on the aggregate Phi_M values.
PHI_TOLERANCE = 0.03

_PLATFORMS = ("Epyc 7A53", "Ampere Altra", "MI250x", "A100")


@dataclass(frozen=True)
class CellCheck:
    """One compared quantity."""

    label: str
    published: Optional[float]
    reproduced: Optional[float]
    tolerance: float

    @property
    def delta(self) -> Optional[float]:
        if self.published is None or self.reproduced is None:
            return None
        return abs(self.published - self.reproduced)

    @property
    def ok(self) -> bool:
        if self.published is None:
            return self.reproduced is None
        if self.reproduced is None:
            return False
        return self.delta <= self.tolerance


@dataclass
class VerificationReport:
    checks: List[CellCheck] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(c.ok for c in self.checks)

    @property
    def worst_delta(self) -> float:
        deltas = [c.delta for c in self.checks if c.delta is not None]
        return max(deltas, default=0.0)

    def failures(self) -> List[CellCheck]:
        return [c for c in self.checks if not c.ok]

    def render(self) -> str:
        rows = []
        for c in self.checks:
            pub = "-" if c.published is None else f"{c.published:.3f}"
            ours = "-" if c.reproduced is None else f"{c.reproduced:.3f}"
            delta = "" if c.delta is None else f"{c.delta:.3f}"
            rows.append([c.label, pub, ours, delta,
                         "ok" if c.ok else "FAIL"])
        table = ascii_table(["quantity", "paper", "ours", "|delta|", ""],
                            rows)
        verdict = ("REPRODUCED" if self.passed else
                   f"{len(self.failures())} quantities out of tolerance")
        return (table + f"\n\nworst |delta|: {self.worst_delta:.3f}"
                        f"   verdict: {verdict}")


def verify_table3(sizes: Sequence[int] = QUICK_SIZES,
                  computed: Optional[Table3Result] = None) -> VerificationReport:
    """Compare a freshly simulated Table III against the published one."""
    t3 = computed if computed is not None else table3(sizes)
    report = VerificationReport()
    for precision in (Precision.FP64, Precision.FP32):
        for model in ("kokkos", "julia", "numba"):
            row = t3.row(model, precision)
            for platform in _PLATFORMS:
                report.checks.append(CellCheck(
                    label=f"e_{platform} {model} {precision.value}",
                    published=PAPER_TABLE3[precision][model][platform],
                    reproduced=row.efficiencies.get(platform),
                    tolerance=E_TOLERANCE,
                ))
            report.checks.append(CellCheck(
                label=f"Phi {model} {precision.value}",
                published=PAPER_PHI[precision][model],
                reproduced=row.phi,
                tolerance=PHI_TOLERANCE,
            ))
    return report
