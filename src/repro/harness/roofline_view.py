"""Roofline view: place each model's kernel on its machine's roofline.

A standard way to read the study's results: every (model, machine,
precision) point has an arithmetic intensity (from the cache-filtered
traffic model) and an achieved GFLOP/s (from the execution simulation);
the machine contributes a bandwidth slope and a compute ceiling.  The
view makes the paper's qualitative statements quantitative at a glance —
e.g. that the hand-rolled GEMM sits near the ridge on CPUs but far below
the ceiling on GPUs, where instruction issue (not DRAM) binds it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Union

from ..core.types import MatrixShape, Precision
from ..machine.cpu import CPUSpec
from ..machine.gpu import GPUSpec
from ..models.registry import model_by_name
from ..gpu.warp_sim import simulate_gpu_kernel
from ..sim.executor import simulate_cpu_kernel
from ..sim.roofline import estimate_dram_traffic
from .report import ascii_table

__all__ = ["RooflinePoint", "RooflineView", "roofline_view"]


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel on the roofline."""

    label: str
    arithmetic_intensity: float   # flops per DRAM byte
    gflops: float
    roofline_bound: float         # min(peak, AI * BW): the attainable ceiling
    bound_kind: str               # "bandwidth" | "compute"

    @property
    def ceiling_fraction(self) -> float:
        """Achieved fraction of the attainable (roofline) performance."""
        return self.gflops / self.roofline_bound if self.roofline_bound else 0.0


@dataclass
class RooflineView:
    machine: str
    precision: Precision
    peak_gflops: float
    bandwidth_gbs: float
    points: List[RooflinePoint]

    @property
    def ridge_intensity(self) -> float:
        """AI at which the machine turns compute-bound."""
        return self.peak_gflops / self.bandwidth_gbs

    def render(self) -> str:
        head = (f"Roofline: {self.machine}, {self.precision.label} precision "
                f"(peak {self.peak_gflops:.0f} GF/s, "
                f"{self.bandwidth_gbs:.0f} GB/s, "
                f"ridge at {self.ridge_intensity:.1f} flops/byte)")
        rows = [[p.label, f"{p.arithmetic_intensity:.1f}",
                 f"{p.gflops:.0f}", f"{p.roofline_bound:.0f}",
                 f"{p.ceiling_fraction:.2f}", p.bound_kind]
                for p in self.points]
        return head + "\n" + ascii_table(
            ["kernel", "AI (f/B)", "GFLOP/s", "attainable", "fraction",
             "regime"], rows)


def _point(label: str, flops: int, dram_bytes: float, gflops: float,
           peak: float, bw: float) -> RooflinePoint:
    ai = flops / dram_bytes if dram_bytes > 0 else math.inf
    bound = min(peak, ai * bw)
    kind = "compute" if ai >= peak / bw else "bandwidth"
    return RooflinePoint(label, ai, gflops, bound, kind)


def roofline_view(
    spec: Union[CPUSpec, GPUSpec],
    shape: MatrixShape,
    precision: Precision = Precision.FP64,
    models: Sequence[str] = (),
    threads: int = 0,
) -> RooflineView:
    """Build the roofline view of several models' kernels on one machine."""
    is_cpu = isinstance(spec, CPUSpec)
    if is_cpu:
        peak = spec.peak_gflops(precision)
        bw = spec.total_bandwidth_gbs
    else:
        peak = spec.peak_gflops(precision)
        bw = spec.hbm_bandwidth_gbs

    points: List[RooflinePoint] = []
    for name in models:
        model = model_by_name(name)
        support = model.supports(spec, precision)
        if not support.supported:
            continue
        if is_cpu:
            low = model.lower_cpu(spec, precision)
            t = threads if threads else spec.cores
            timing = simulate_cpu_kernel(low.kernel, spec, shape, t,
                                         pin=low.pin, profile=low.profile)
            traffic = estimate_dram_traffic(low.kernel, shape, spec.caches,
                                            active_workers=t)
            gflops = timing.gflops(shape)
        else:
            low = model.lower_gpu(spec, precision)
            timing = simulate_gpu_kernel(low.kernel, low.launch, spec, shape,
                                         low.profile)
            traffic = estimate_dram_traffic(low.kernel, shape, spec.caches,
                                            active_workers=spec.compute_units)
            gflops = timing.gflops(shape)
        points.append(_point(model.display, shape.flops, traffic.dram_bytes,
                             gflops, peak, bw))

    return RooflineView(
        machine=spec.name,
        precision=precision,
        peak_gflops=peak,
        bandwidth_gbs=bw,
        points=points,
    )
