"""Strong-scaling studies: performance versus thread count.

The paper fixes each CPU experiment at the full core count (64 on
Crusher, 80 on Wombat) and sweeps problem size; this module supplies the
orthogonal cut — fixed problem, swept thread count — which is how the
"single node scalability" the abstract refers to is usually assessed, and
which exposes the model differences the size sweep hides: unpinned
runtimes scale worse across NUMA boundaries, and fork/join overhead
bounds speed-up at small problem sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..core.types import MatrixShape, Precision
from ..errors import ExperimentError
from ..machine.cpu import CPUSpec
from ..models.registry import model_by_name
from ..sim.executor import simulate_cpu_kernel
from .report import ascii_table

__all__ = ["ScalingPoint", "ScalingResult", "thread_scaling",
           "weak_scaling", "default_thread_counts"]


@dataclass(frozen=True)
class ScalingPoint:
    """One thread count of a strong-scaling curve."""

    threads: int
    seconds: float
    gflops: float
    speedup: float               # vs the 1-thread (or smallest) point
    parallel_efficiency: float   # speedup / (threads / base_threads)


@dataclass
class ScalingResult:
    """A full strong-scaling curve for one model on one CPU."""

    model: str
    display: str
    cpu: str
    precision: Precision
    shape: MatrixShape
    points: List[ScalingPoint] = field(default_factory=list)

    def point(self, threads: int) -> ScalingPoint:
        for p in self.points:
            if p.threads == threads:
                return p
        raise KeyError(f"no scaling point at {threads} threads")

    @property
    def max_speedup(self) -> float:
        return max(p.speedup for p in self.points)

    def efficiency_at_full(self) -> float:
        return self.points[-1].parallel_efficiency

    def render(self) -> str:
        rows = [[p.threads, f"{p.gflops:.0f}", f"{p.speedup:.2f}",
                 f"{p.parallel_efficiency:.2f}"] for p in self.points]
        head = (f"{self.display} on {self.cpu}, "
                f"{self.shape} {self.precision.label} precision")
        return head + "\n" + ascii_table(
            ["threads", "GFLOP/s", "speedup", "efficiency"], rows)


def default_thread_counts(cores: int) -> Tuple[int, ...]:
    """1, 2, 4, ... up to (and always including) the core count."""
    counts: List[int] = []
    t = 1
    while t < cores:
        counts.append(t)
        t *= 2
    counts.append(cores)
    return tuple(counts)


def thread_scaling(
    model_name: str,
    cpu: CPUSpec,
    shape: MatrixShape,
    precision: Precision = Precision.FP64,
    thread_counts: Optional[Sequence[int]] = None,
) -> ScalingResult:
    """Strong-scale one model's CPU kernel over thread counts.

    Uses nominal (noise-free) simulation: scaling curves are about the
    deterministic structure, and the variability model would only blur
    the parallel-efficiency numbers.
    """
    model = model_by_name(model_name)
    support = model.supports(cpu, precision)
    if not support.supported:
        raise ExperimentError(
            f"{model.display} unsupported on {cpu.name}: {support.reason}")

    counts = tuple(thread_counts) if thread_counts else default_thread_counts(cpu.cores)
    if not counts or any(t <= 0 for t in counts):
        raise ExperimentError("thread counts must be positive")
    counts = tuple(sorted(set(counts)))

    lowering = model.lower_cpu(cpu, precision)
    result = ScalingResult(
        model=model.name, display=model.display, cpu=cpu.name,
        precision=precision, shape=shape,
    )
    base_seconds = None
    base_threads = counts[0]
    for threads in counts:
        timing = simulate_cpu_kernel(
            lowering.kernel, cpu, shape, threads,
            pin=lowering.pin, profile=lowering.profile,
        )
        if base_seconds is None:
            base_seconds = timing.total_seconds
        speedup = base_seconds / timing.total_seconds
        ideal = threads / base_threads
        result.points.append(ScalingPoint(
            threads=threads,
            seconds=timing.total_seconds,
            gflops=timing.gflops(shape),
            speedup=speedup,
            parallel_efficiency=speedup / ideal,
        ))
    return result


def weak_scaling(
    model_name: str,
    cpu: CPUSpec,
    base_shape: MatrixShape,
    precision: Precision = Precision.FP64,
    thread_counts: Optional[Sequence[int]] = None,
) -> ScalingResult:
    """Weak scaling: grow the problem with the thread count.

    GEMM work is O(n^3), so constant work *per thread* means
    ``n(t) = n(1) * t^(1/3)``.  Perfect weak scaling keeps the runtime
    flat; the reported ``parallel_efficiency`` is ``t(base) / t(threads)``
    (1.0 = flat), and ``speedup`` is the achieved aggregate-GFLOP/s gain.
    """
    model = model_by_name(model_name)
    support = model.supports(cpu, precision)
    if not support.supported:
        raise ExperimentError(
            f"{model.display} unsupported on {cpu.name}: {support.reason}")

    counts = tuple(thread_counts) if thread_counts else default_thread_counts(cpu.cores)
    if not counts or any(t <= 0 for t in counts):
        raise ExperimentError("thread counts must be positive")
    counts = tuple(sorted(set(counts)))

    lowering = model.lower_cpu(cpu, precision)
    result = ScalingResult(
        model=model.name, display=model.display, cpu=cpu.name,
        precision=precision, shape=base_shape,
    )
    base_seconds = None
    base_gflops = None
    for threads in counts:
        n = max(1, round(base_shape.m * (threads / counts[0]) ** (1 / 3)))
        shape = MatrixShape.square(n)
        timing = simulate_cpu_kernel(
            lowering.kernel, cpu, shape, threads,
            pin=lowering.pin, profile=lowering.profile,
        )
        gflops = timing.gflops(shape)
        if base_seconds is None:
            base_seconds = timing.total_seconds
            base_gflops = gflops
        result.points.append(ScalingPoint(
            threads=threads,
            seconds=timing.total_seconds,
            gflops=gflops,
            speedup=gflops / base_gflops,
            parallel_efficiency=base_seconds / timing.total_seconds,
        ))
    return result
