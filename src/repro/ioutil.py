"""Durable file I/O primitives: atomic writes and content digests.

Every artifact the harness persists — cache entries, journals, exported
result sets, reports, gnuplot bundles — goes through this module so a
process killed mid-write can never leave a truncated file where a good
one should be.  The pattern is the classic one: write to a temp file in
the *same directory* (same filesystem, so the rename is atomic), fsync,
then ``os.replace`` over the destination.

Content digests are SHA-256 over a canonical JSON rendering (sorted
keys, minimal separators), so they are stable across processes,
platforms and dict orderings — the property ``repro fsck`` relies on to
distinguish a bit-flipped store entry from a legitimate one.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Any, Dict

__all__ = ["atomic_write_text", "canonical_json", "content_digest",
           "write_json_artifact", "read_json_artifact"]


def canonical_json(payload: Any) -> str:
    """The canonical JSON rendering digests are computed over."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def content_digest(payload: Any) -> str:
    """Hex SHA-256 of the canonical JSON rendering of ``payload``."""
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()


def atomic_write_text(path: str, text: str, *, fsync: bool = True) -> None:
    """Write ``text`` to ``path`` atomically (temp file + ``os.replace``).

    A reader (or a crash) can only ever observe the old content or the
    complete new content, never a truncated mix.
    """
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(text)
            if fsync:
                fh.flush()
                os.fsync(fh.fileno())
        os.replace(tmp, path)
    except OSError:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def write_json_artifact(path: str, payload: Dict[str, Any],
                        indent: int = 2) -> str:
    """Atomically write a JSON artifact with an embedded content digest.

    The digest covers every key *except* the ``digest`` field itself, so
    ``repro fsck`` can re-derive and verify it.  Returns the digest.
    """
    body = {k: v for k, v in payload.items() if k != "digest"}
    digest = content_digest(body)
    document = dict(body)
    document["digest"] = digest
    atomic_write_text(path, json.dumps(document, indent=indent) + "\n")
    return digest


def read_json_artifact(path: str) -> Dict[str, Any]:
    """Load a digested JSON artifact, verifying its embedded digest.

    Raises ``ValueError`` when the digest is missing or does not match
    the content — the caller decides whether that is fatal (a loader) or
    a reportable finding (``repro fsck``).
    """
    with open(path) as fh:
        document = json.load(fh)
    if not isinstance(document, dict) or "digest" not in document:
        raise ValueError(f"{path}: no embedded content digest")
    stated = document["digest"]
    body = {k: v for k, v in document.items() if k != "digest"}
    actual = content_digest(body)
    if stated != actual:
        raise ValueError(
            f"{path}: content digest mismatch (stated {stated[:12]}..., "
            f"actual {actual[:12]}...)")
    return document
