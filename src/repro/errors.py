"""Exception hierarchy for the :mod:`repro` library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while the
subclasses keep error handling precise in tests and in the CLI.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "UnsupportedConfigurationError",
    "MachineModelError",
    "IRVerificationError",
    "LintError",
    "AuditError",
    "LoweringError",
    "KernelValidationError",
    "ExperimentError",
    "ConfigError",
    "CacheError",
    "JournalError",
    "FaultError",
    "CellFailure",
    "RetryExhaustedError",
    "WorkerLost",
    "RunInterrupted",
    "ServiceError",
    "AdmissionError",
    "OverloadError",
    "DeadlineExpired",
]


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class UnsupportedConfigurationError(ReproError):
    """A (programming model, device, precision) combination is unsupported.

    Mirrors the paper's support matrix: e.g. Python/Numba on AMD GPUs is
    deprecated, and Numba cannot generate FP16 random inputs.  Table III
    treats such combinations as efficiency 0 rather than an error, so the
    harness catches this exception and records the gap.
    """

    def __init__(self, model: str, target: str, reason: str = ""):
        self.model = model
        self.target = target
        self.reason = reason
        msg = f"{model} is not supported on {target}"
        if reason:
            msg += f": {reason}"
        super().__init__(msg)


class MachineModelError(ReproError):
    """Invalid or inconsistent machine specification."""


class IRVerificationError(ReproError):
    """A kernel IR failed structural verification (e.g. after a bad pass)."""


class LintError(IRVerificationError):
    """A kernel or pass failed static-analysis legality gating.

    Raised by :class:`repro.ir.passes.PassPipeline` when a pass's declared
    preconditions do not hold (an illegal interchange, a forced
    vectorisation of a strict-FP reduction, ...).  Subclasses
    :class:`IRVerificationError` so existing broad catches keep working,
    and carries the structured diagnostics so callers can read the stable
    code(s) and the offending kernel instead of parsing the message:

    * ``diagnostics`` — the error-severity :class:`repro.ir.lint.Diagnostic`
      objects that failed the gate;
    * ``codes`` — their stable codes (e.g. ``("L002",)``);
    * ``kernel`` — the name of the kernel being transformed;
    * ``context`` — who ran the pipeline (e.g. ``"Julia on AMD EPYC 7A53"``).
    """

    def __init__(self, message: str, diagnostics=(), kernel: str = "",
                 context: str = ""):
        self.diagnostics = tuple(diagnostics)
        self.codes = tuple(d.code for d in self.diagnostics)
        self.kernel = kernel
        self.context = context
        super().__init__(message)


class AuditError(ReproError):
    """The performance-portability auditor found an internal contradiction.

    Raised by :mod:`repro.ir.audit` when its independent re-derivation of a
    static quantity disagrees with the analytic model it is cross-checked
    against (e.g. a stride classification that does not reproduce
    :func:`repro.gpu.coalescing.analyze_coalescing`'s transaction count).
    This is never a property of the audited kernel — it means the auditor
    and the simulator have drifted apart and the static verdicts can no
    longer be trusted, so the audit aborts instead of reporting them.
    """


class LoweringError(ReproError):
    """A programming-model frontend could not lower the kernel."""


class KernelValidationError(ReproError):
    """A runnable kernel produced numerically wrong results."""


class ExperimentError(ReproError):
    """An experiment definition or run is inconsistent."""


class ConfigError(ReproError):
    """Invalid environment-style configuration value."""


class CacheError(ReproError):
    """The sweep-result cache was used incorrectly (e.g. a malformed key).

    Corrupt or stale *entries* never raise: any unreadable, stale or
    semantically broken file is self-healed — evicted, counted, and the
    cell recomputed — so one bad byte on disk can never kill a campaign.
    This error is reserved for caller bugs such as malformed fingerprints.
    """


class JournalError(ReproError):
    """A run journal is unreadable, inconsistent or from different code.

    Raised when loading a write-ahead journal whose structure cannot be
    trusted: a checksum failure *before* the tail (torn tails are
    recovered silently, mid-file corruption is not), a missing run-open
    record, or a campaign fingerprint that no longer matches what the
    current code would produce for the recorded experiment — resuming
    such a run could not be byte-identical, so it is refused.
    """


class RunInterrupted(ReproError):
    """A journaled sweep was interrupted (SIGINT/SIGTERM) and finalized.

    Raised by :meth:`repro.harness.engine.SweepEngine.run` after a
    graceful shutdown: completed cells are safely in the write-ahead
    journal, a ``run-close`` record marks the run ``interrupted``, and
    the campaign can be completed with ``repro run --resume <run_id>``.

    * ``run_id`` — the journaled run's identity;
    * ``completed`` / ``total`` — cells finished vs. planned.
    """

    def __init__(self, message: str, run_id: str = "", completed: int = 0,
                 total: int = 0):
        self.run_id = run_id
        self.completed = completed
        self.total = total
        super().__init__(message)


class FaultError(ReproError):
    """An injected node fault hit one attempt of a sweep cell.

    Models the transient failures real campaigns on Crusher/Wombat contend
    with (OOM kills, hung kernels, thermal jitter spikes).  Carries the
    structured fault so the engine's retry loop can account simulated time
    and classify the failure:

    * ``fault`` — the :class:`repro.sim.faults.Fault` that fired;
    * ``cell`` — the ``model@shape`` cell coordinates;
    * ``attempt`` — which attempt (1-based) the fault hit.
    """

    def __init__(self, message: str, fault=None, cell: str = "",
                 attempt: int = 0):
        self.fault = fault
        self.cell = cell
        self.attempt = attempt
        super().__init__(message)


class CellFailure(ReproError):
    """One sweep cell failed permanently.

    Raised out of :meth:`repro.harness.engine.SweepEngine.run` only under
    ``fail_fast``; otherwise the engine isolates the failure, records the
    cell as a degraded ``failed`` measurement (the paper's e=0 accounting)
    and the sweep continues.

    * ``cell`` — the ``model@shape`` cell coordinates;
    * ``attempts`` — how many attempts were made;
    * ``reason`` — human-readable cause (last fault, error class, budget).
    """

    def __init__(self, message: str, cell: str = "", attempts: int = 0,
                 reason: str = ""):
        self.cell = cell
        self.attempts = attempts
        self.reason = reason
        super().__init__(message)


class ServiceError(ReproError):
    """The campaign service refused or failed a request.

    Covers daemon-side faults (an unreachable socket, a malformed wire
    request, an unknown campaign id) as distinct from the usage errors
    :class:`ConfigError` models — the CLI maps these to exit code 1.
    """


class AdmissionError(ServiceError):
    """A campaign submission was rejected by admission control.

    The scheduler's quota layer refused to queue the campaign — the
    tenant is at its per-tenant limit or the daemon at its global one.
    Not a malformed request: resubmitting after queued campaigns drain
    will succeed, which is why it is distinct from :class:`ConfigError`.

    * ``tenant`` — the fair-share account that hit the limit;
    * ``limit`` — the quota that was exceeded.
    """

    def __init__(self, message: str, tenant: str = "", limit: int = 0):
        self.tenant = tenant
        self.limit = limit
        super().__init__(message)


class OverloadError(ServiceError):
    """The service shed a request under load; retry after a delay.

    Raised (and sent over the wire as HTTP 429/503 with a
    ``Retry-After`` header) when the daemon is saturated — the scheduler
    backlog is near the admission ceiling, the scheduler loop has
    stopped granting, or the daemon is draining.  Not a refusal of the
    *request*: resubmitting the identical document after ``retry_after_s``
    is the expected reaction, which is why
    :class:`~repro.service.client.ClientPolicy` retries exactly this
    class (plus connection refusal) and nothing else.

    * ``retry_after_s`` — the daemon's backlog-derived hint for when to
      come back (seconds, >= 1).
    """

    def __init__(self, message: str, retry_after_s: float = 1.0):
        self.retry_after_s = float(retry_after_s)
        super().__init__(message)


class DeadlineExpired(ServiceError):
    """A campaign's request deadline lapsed before its cells finished.

    The service never aborts mid-cell: at the first cell boundary past
    ``deadline_s`` the campaign fails through the ordinary degraded
    path — every remaining cell is journaled as a ``failed`` (e = 0)
    measurement and the campaign lands in the terminal ``expired``
    state, visible in ``repro status`` and raised as this class by
    :meth:`~repro.service.client.ServiceClient.wait`.

    * ``campaign_id`` — the expired campaign;
    * ``deadline_s`` — the budget that lapsed.
    """

    def __init__(self, message: str, campaign_id: str = "",
                 deadline_s: float = 0.0):
        self.campaign_id = campaign_id
        self.deadline_s = float(deadline_s)
        super().__init__(message)


class RetryExhaustedError(CellFailure):
    """A cell kept faulting until the retry policy gave up.

    Subclass of :class:`CellFailure`: exhaustion (max attempts reached or
    the per-cell simulated-time budget spent) is one way a cell fails
    permanently, so broad ``except CellFailure`` handlers keep working.
    """


class WorkerLost(CellFailure):
    """A process-pool worker vanished or hung past its deadline.

    Raised out of the process engine only under ``fail_fast`` when the
    watchdog exhausts its redrive budget for a suspect cell (or its pool
    respawn budget for the run); otherwise the cell is isolated as a
    degraded ``failed`` measurement like any other permanent failure.
    Subclass of :class:`CellFailure` so existing handlers keep working.
    """
