"""Client for the campaign daemon's Unix-socket HTTP API.

Thin stdlib wrapper (``http.client`` with a UDS-connecting socket) used
by ``repro submit`` / ``repro status`` and the tests.  Every method
raises :class:`~repro.errors.ServiceError` when the daemon is
unreachable or answers with an error document; admission refusals come
back as the sharper :class:`~repro.errors.AdmissionError` so callers
can distinguish "retry later" from "fix your request"
(:class:`~repro.errors.ConfigError`), and shed requests as
:class:`~repro.errors.OverloadError` carrying the daemon's
``Retry-After`` hint.

Retries are governed by a frozen :class:`ClientPolicy` and are
deliberately narrow: only :class:`~repro.errors.OverloadError` (the
daemon said "come back later" with 429/503) and connection refusal (no
daemon — one may be restarting) are retryable, and a POST submit is
retried **only** when the spec carries a ``submission_key``, because
without the idempotency token a retried submit whose first ACK was lost
could land the campaign twice.  Backoff is deterministic capped
exponential — no jitter, so tests and drills replay identically.
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from ..errors import (
    AdmissionError,
    ConfigError,
    DeadlineExpired,
    OverloadError,
    ServiceError,
)
from .daemon import default_socket_path
from .spec import CampaignSpec, spec_to_dict

__all__ = ["ClientPolicy", "ServiceClient"]

#: Error kinds the daemon names -> the exception class re-raised here.
_ERROR_KINDS = {
    "AdmissionError": AdmissionError,
    "ConfigError": ConfigError,
    "OverloadError": OverloadError,
    "ServiceError": ServiceError,
}

#: Campaign states past which ``wait`` stops polling.
_TERMINAL_STATES = ("done", "failed", "expired", "quarantined")


@dataclass(frozen=True)
class ClientPolicy:
    """Timeouts and retry behaviour of one :class:`ServiceClient`.

    * ``connect_timeout_s``/``request_timeout_s`` — socket budgets for
      reaching the daemon and for one full request;
    * ``retries`` — attempts *after* the first on a retryable failure
      (shed with 429/503, or connection refused); 0 = never retry;
    * ``backoff_base_s``/``backoff_factor``/``backoff_max_s`` — the
      deterministic capped exponential delay between attempts.  A
      daemon-supplied ``Retry-After`` takes precedence when larger.
    """

    connect_timeout_s: float = 5.0
    request_timeout_s: float = 30.0
    retries: int = 0
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 1.0

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ConfigError(f"retries {self.retries} must be >= 0")
        if self.backoff_base_s <= 0 or self.backoff_factor < 1.0 \
                or self.backoff_max_s < self.backoff_base_s:
            raise ConfigError("client backoff parameters are inconsistent")

    def backoff_s(self, attempt: int) -> float:
        """Delay before retry ``attempt`` (0-based): capped exponential."""
        return min(self.backoff_base_s * self.backoff_factor ** attempt,
                   self.backoff_max_s)


class _UnixHTTPConnection(http.client.HTTPConnection):
    """``http.client`` over an ``AF_UNIX`` path instead of host:port."""

    def __init__(self, path: str, timeout: float = 30.0,
                 connect_timeout: Optional[float] = None) -> None:
        super().__init__("localhost", timeout=timeout)
        self._path = path
        self._connect_timeout = (connect_timeout if connect_timeout
                                 is not None else timeout)

    def connect(self) -> None:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self._connect_timeout)
        try:
            sock.connect(self._path)
        except OSError as exc:
            sock.close()
            error = ServiceError(
                f"no campaign daemon on {self._path} ({exc}); "
                f"start one with: repro serve")
            # Tagged so the retry loop can tell "nobody listening (a
            # daemon may be restarting)" from every other failure.
            error.unreachable = True  # type: ignore[attr-defined]
            raise error from exc
        sock.settimeout(self.timeout)
        self.sock = sock


def _is_retryable(exc: ServiceError) -> bool:
    """Shed by the daemon, or nobody listening — nothing else."""
    return isinstance(exc, OverloadError) \
        or getattr(exc, "unreachable", False)


class ServiceClient:
    """One daemon endpoint, addressed by its socket path.

    ``policy`` (a :class:`ClientPolicy`) governs timeouts and retries;
    the legacy ``timeout`` argument still sets the request budget for
    callers that predate the policy object.
    """

    def __init__(self, socket_path: Optional[str] = None,
                 timeout: float = 30.0,
                 policy: Optional[ClientPolicy] = None) -> None:
        self.socket_path = socket_path or default_socket_path()
        self.policy = (policy if policy is not None
                       else ClientPolicy(request_timeout_s=timeout))
        self.timeout = self.policy.request_timeout_s
        #: Retry accounting across this client's lifetime (read by the
        #: chaos drills and benchmarks).
        self.retries_used = 0

    # -- plumbing ---------------------------------------------------------

    def _request_once(self, method: str, path: str,
                      body: Optional[Dict[str, Any]] = None) -> Any:
        conn = _UnixHTTPConnection(
            self.socket_path, timeout=self.policy.request_timeout_s,
            connect_timeout=self.policy.connect_timeout_s)
        try:
            payload = (json.dumps(body, sort_keys=True).encode()
                       if body is not None else None)
            headers = ({"Content-Type": "application/json"}
                       if payload is not None else {})
            try:
                conn.request(method, path, body=payload, headers=headers)
                response = conn.getresponse()
                raw = response.read()
            except ServiceError:
                raise
            except OSError as exc:
                raise ServiceError(
                    f"campaign daemon on {self.socket_path} did not "
                    f"answer: {exc}") from exc
            content_type = response.headers.get("Content-Type", "")
            if "json" in content_type:
                try:
                    data = json.loads(raw.decode() or "null")
                except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                    raise ServiceError(
                        f"daemon answered non-JSON to {method} {path}") \
                        from exc
            else:
                data = raw.decode()
            if response.status >= 400:
                retry_after = response.headers.get("Retry-After")
                if isinstance(data, dict):
                    kind = _ERROR_KINDS.get(str(data.get("kind")),
                                            ServiceError)
                    message = str(data.get("error",
                                           f"HTTP {response.status}"))
                    if kind is OverloadError:
                        hint = data.get("retry_after_s", retry_after)
                        raise OverloadError(
                            message,
                            retry_after_s=float(hint) if hint else 1.0)
                    raise kind(message)
                raise ServiceError(f"{method} {path} failed: "
                                   f"HTTP {response.status}")
            return data
        finally:
            conn.close()

    def _request(self, method: str, path: str,
                 body: Optional[Dict[str, Any]] = None,
                 retryable: Optional[bool] = None) -> Any:
        """One wire call through the retry policy.

        ``retryable=None`` (the default) retries GETs and refuses to
        retry anything else — POSTs pass an explicit verdict, because a
        retried submit is only safe under an idempotency key.
        """
        if retryable is None:
            retryable = method == "GET"
        attempts = self.policy.retries if retryable else 0
        attempt = 0
        while True:
            try:
                return self._request_once(method, path, body)
            except ServiceError as exc:
                if attempt >= attempts or not _is_retryable(exc):
                    raise
                delay = self.policy.backoff_s(attempt)
                if isinstance(exc, OverloadError):
                    delay = max(delay, exc.retry_after_s)
                time.sleep(delay)
                self.retries_used += 1
                attempt += 1

    # -- API --------------------------------------------------------------

    def ping(self) -> Dict[str, Any]:
        """Liveness probe; raises if no daemon answers."""
        return self._request("GET", "/v1/ping")

    def submit(self, spec: CampaignSpec) -> str:
        """Submit one campaign; returns its id (== the journaled run id).

        Retried under the client policy only when the spec carries a
        ``submission_key`` — the daemon's idempotency map then makes
        the retries exactly-once (a duplicate answer carries the
        original id).
        """
        return self.submit_payload(spec_to_dict(spec))

    def submit_payload(self, payload: Dict[str, Any]) -> str:
        """Submit an already-serialized spec document (``--spec file``)."""
        retryable = payload.get("submission_key") is not None
        answer = self._request("POST", "/v1/campaigns", payload,
                               retryable=retryable)
        return str(answer["id"])

    def campaigns(self) -> List[Dict[str, Any]]:
        """Status rows of every campaign the daemon knows."""
        return list(self._request("GET", "/v1/campaigns")["campaigns"])

    def campaign(self, campaign_id: str) -> Dict[str, Any]:
        """One campaign's status row."""
        return self._request("GET", f"/v1/campaigns/{campaign_id}")

    def report(self, campaign_id: str, fmt: str = "text") -> str:
        """A finished campaign's rendered report (text or export JSON)."""
        return str(self._request(
            "GET", f"/v1/campaigns/{campaign_id}/report?format={fmt}"))

    def status(self) -> Dict[str, Any]:
        """The scheduler/tenant/dedup/cache snapshot."""
        return self._request("GET", "/v1/status")

    def shutdown(self) -> None:
        """Ask the daemon to stop gracefully (journals stay resumable)."""
        self._request("POST", "/v1/shutdown")

    def wait(self, campaign_id: str, timeout: float = 300.0,
             poll_s: float = 0.05) -> Dict[str, Any]:
        """Block until a campaign reaches a terminal state.

        Terminal means ``done``, ``failed``, ``expired`` (the spec's
        deadline lapsed; raised as :class:`DeadlineExpired` so callers
        cannot mistake it for success) or ``quarantined`` (the
        supervisor exhausted its restart budget) — waiting on a
        quarantined campaign would otherwise spin until timeout.

        Polling starts at ``poll_s`` and backs off exponentially to 1 s
        (capped), honouring any ``Retry-After`` the daemon sheds
        status polls with — a thousand waiting clients must not be a
        busy-loop storm.
        """
        deadline = time.monotonic() + timeout
        delay = poll_s
        while True:
            try:
                row = self.campaign(campaign_id)
            except OverloadError as exc:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(min(max(delay, exc.retry_after_s), 2.0))
                delay = min(delay * 2.0, 1.0)
                continue
            state = row.get("state")
            if state == "expired":
                raise DeadlineExpired(
                    f"campaign {campaign_id} expired: "
                    f"{row.get('error', 'deadline lapsed')}",
                    campaign_id=campaign_id,
                    deadline_s=float(row.get("deadline_s") or 0.0))
            if state in _TERMINAL_STATES:
                return row
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"campaign {campaign_id} did not finish within "
                    f"{timeout:g}s (state {row.get('state')!r})")
            time.sleep(delay)
            delay = min(delay * 2.0, 1.0)
