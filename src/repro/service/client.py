"""Client for the campaign daemon's Unix-socket HTTP API.

Thin stdlib wrapper (``http.client`` with a UDS-connecting socket) used
by ``repro submit`` / ``repro status`` and the tests.  Every method
raises :class:`~repro.errors.ServiceError` when the daemon is
unreachable or answers with an error document; admission refusals come
back as the sharper :class:`~repro.errors.AdmissionError` so callers
can distinguish "retry later" from "fix your request"
(:class:`~repro.errors.ConfigError`).
"""

from __future__ import annotations

import http.client
import json
import socket
from typing import Any, Dict, List, Optional

from ..errors import AdmissionError, ConfigError, ServiceError
from .daemon import default_socket_path
from .spec import CampaignSpec, spec_to_dict

__all__ = ["ServiceClient"]

#: Error kinds the daemon names -> the exception class re-raised here.
_ERROR_KINDS = {
    "AdmissionError": AdmissionError,
    "ConfigError": ConfigError,
    "ServiceError": ServiceError,
}


class _UnixHTTPConnection(http.client.HTTPConnection):
    """``http.client`` over an ``AF_UNIX`` path instead of host:port."""

    def __init__(self, path: str, timeout: float = 30.0) -> None:
        super().__init__("localhost", timeout=timeout)
        self._path = path

    def connect(self) -> None:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self.timeout)
        try:
            sock.connect(self._path)
        except OSError as exc:
            sock.close()
            raise ServiceError(
                f"no campaign daemon on {self._path} ({exc}); "
                f"start one with: repro serve") from exc
        self.sock = sock


class ServiceClient:
    """One daemon endpoint, addressed by its socket path."""

    def __init__(self, socket_path: Optional[str] = None,
                 timeout: float = 30.0) -> None:
        self.socket_path = socket_path or default_socket_path()
        self.timeout = timeout

    # -- plumbing ---------------------------------------------------------

    def _request(self, method: str, path: str,
                 body: Optional[Dict[str, Any]] = None) -> Any:
        conn = _UnixHTTPConnection(self.socket_path, timeout=self.timeout)
        try:
            payload = (json.dumps(body, sort_keys=True).encode()
                       if body is not None else None)
            headers = ({"Content-Type": "application/json"}
                       if payload is not None else {})
            try:
                conn.request(method, path, body=payload, headers=headers)
                response = conn.getresponse()
                raw = response.read()
            except ServiceError:
                raise
            except OSError as exc:
                raise ServiceError(
                    f"campaign daemon on {self.socket_path} did not "
                    f"answer: {exc}") from exc
            content_type = response.headers.get("Content-Type", "")
            if "json" in content_type:
                try:
                    data = json.loads(raw.decode() or "null")
                except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                    raise ServiceError(
                        f"daemon answered non-JSON to {method} {path}") \
                        from exc
            else:
                data = raw.decode()
            if response.status >= 400:
                if isinstance(data, dict):
                    kind = _ERROR_KINDS.get(str(data.get("kind")),
                                            ServiceError)
                    raise kind(str(data.get("error", f"HTTP "
                                                     f"{response.status}")))
                raise ServiceError(f"{method} {path} failed: "
                                   f"HTTP {response.status}")
            return data
        finally:
            conn.close()

    # -- API --------------------------------------------------------------

    def ping(self) -> Dict[str, Any]:
        """Liveness probe; raises if no daemon answers."""
        return self._request("GET", "/v1/ping")

    def submit(self, spec: CampaignSpec) -> str:
        """Submit one campaign; returns its id (== the journaled run id)."""
        answer = self._request("POST", "/v1/campaigns", spec_to_dict(spec))
        return str(answer["id"])

    def submit_payload(self, payload: Dict[str, Any]) -> str:
        """Submit an already-serialized spec document (``--spec file``)."""
        answer = self._request("POST", "/v1/campaigns", payload)
        return str(answer["id"])

    def campaigns(self) -> List[Dict[str, Any]]:
        """Status rows of every campaign the daemon knows."""
        return list(self._request("GET", "/v1/campaigns")["campaigns"])

    def campaign(self, campaign_id: str) -> Dict[str, Any]:
        """One campaign's status row."""
        return self._request("GET", f"/v1/campaigns/{campaign_id}")

    def report(self, campaign_id: str, fmt: str = "text") -> str:
        """A finished campaign's rendered report (text or export JSON)."""
        return str(self._request(
            "GET", f"/v1/campaigns/{campaign_id}/report?format={fmt}"))

    def status(self) -> Dict[str, Any]:
        """The scheduler/tenant/dedup/cache snapshot."""
        return self._request("GET", "/v1/status")

    def shutdown(self) -> None:
        """Ask the daemon to stop gracefully (journals stay resumable)."""
        self._request("POST", "/v1/shutdown")

    def wait(self, campaign_id: str, timeout: float = 300.0,
             poll_s: float = 0.05) -> Dict[str, Any]:
        """Block until a campaign reaches a terminal state.

        Terminal means ``done``, ``failed`` or ``quarantined`` (the
        supervisor exhausted its restart budget) — waiting on a
        quarantined campaign would otherwise spin until timeout.
        """
        import time
        deadline = time.monotonic() + timeout
        while True:
            row = self.campaign(campaign_id)
            if row.get("state") in ("done", "failed", "quarantined"):
                return row
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"campaign {campaign_id} did not finish within "
                    f"{timeout:g}s (state {row.get('state')!r})")
            time.sleep(poll_s)
