"""One admitted campaign, executed a cell at a time for the scheduler.

A :class:`CampaignExecution` is the preemptible form of
:meth:`~repro.harness.engine.SweepEngine.run`: the same cell loop —
replay, cache read, retrying attempt, journal records, breaker routing —
but driven *externally*, one cell per :meth:`~CampaignExecution.step`
call, so the fair-share scheduler can interleave many tenants' campaigns
at cell granularity.  The record stream each campaign's journal receives
is identical to what a dedicated engine run would have written, which is
what keeps per-campaign reports byte-identical however the daemon
interleaved them.

Cross-campaign sharing (both deliberately scoped to the service):

* the **result cache** is shared — a cell another tenant's campaign
  already executed is served as a cache hit (journaled ``cached``, wall
  0), so overlapping submissions execute each distinct cell once;
* **lane health** is shared — breakers guard the simulated *node*, not
  one campaign, so consecutive failures across tenants open a lane for
  everyone (see :meth:`CampaignService.lane_for
  <repro.service.service.CampaignService>`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Tuple

from ..errors import CellFailure
from ..harness.engine.executor import CellRecord, SweepEngine
from ..harness.engine.fingerprint import cell_fingerprint
from ..harness.health import BreakerState, FallbackLadder, HealthRegistry
from ..harness.results import Measurement, ResultSet
from ..models.registry import model_by_name
from ..sim.faults import FaultInjector
from .spec import CampaignSpec

__all__ = ["CAMPAIGN_STATES", "Campaign", "CampaignExecution"]

#: Service-lifecycle states a campaign walks through, in order (FAILED
#: replaces DONE when a fail-fast cell aborts it; EXPIRED replaces DONE
#: when the spec's ``deadline_s`` lapsed before the cells did —
#: remaining cells are journaled as degraded e=0 failures so the
#: journal still closes complete; QUARANTINED is the supervisor's
#: terminal state for a campaign that kept crashing the stepping thread
#: past its restart budget).
CAMPAIGN_STATES = ("queued", "admitted", "running", "done", "failed",
                   "expired", "quarantined")


@dataclass
class Campaign:
    """Bookkeeping of one submitted campaign inside the service."""

    campaign_id: str          # == the journaled run id
    spec: CampaignSpec
    state: str = "queued"
    error: str = ""
    #: Whether this object was rebuilt from a journal after a restart.
    recovered: bool = False
    #: Wall-clock submission time the spec's ``deadline_s`` counts from
    #: (a recovered campaign keeps its original journal birth time, so
    #: daemon restarts never extend a deadline).
    submitted_at: float = 0.0
    #: Crash-supervision restarts this service-life (bounded; exceeding
    #: the budget quarantines the campaign instead of requeueing it).
    restarts: int = 0
    stats: Dict[str, int] = field(default_factory=lambda: {
        "executed": 0, "cached": 0, "deduped": 0, "replayed": 0,
        "failed": 0, "substituted": 0})
    results: Optional[ResultSet] = None
    cells_total: int = 0
    cells_done: int = 0

    def status_payload(self) -> Dict[str, Any]:
        """One campaign's row in the ``repro status`` document."""
        out: Dict[str, Any] = {
            "id": self.campaign_id,
            "tenant": self.spec.tenant,
            "priority": self.spec.priority,
            "state": self.state,
            "experiment": self.spec.experiment.exp_id,
            "cells": {"done": self.cells_done, "total": self.cells_total},
            "stats": dict(self.stats),
        }
        if self.error:
            out["error"] = self.error
        if self.recovered:
            out["recovered"] = True
        if self.restarts:
            out["restarts"] = self.restarts
        if self.spec.deadline_s is not None:
            out["deadline_s"] = self.spec.deadline_s
        if self.spec.submission_key is not None:
            out["submission_key"] = self.spec.submission_key
        return out

    def deadline_lapsed(self, now: Optional[float] = None) -> bool:
        """Whether the spec's wall-clock budget has run out."""
        deadline = self.spec.deadline_s
        if deadline is None or not self.submitted_at:
            return False
        return (now if now is not None else time.time()) \
            >= self.submitted_at + deadline


class CampaignExecution:
    """The cell-at-a-time executor of one campaign.

    Construction does no work; the first :meth:`step` lazily builds the
    cell plan (exactly as the engine would), loads any replay state a
    recovered journal carries, and transitions the campaign to
    ``admitted``.  Each subsequent ``step`` advances one cell and
    returns ``True`` while work remains; the step that completes the
    last cell finalizes the journal and returns ``False``.

    ``service`` must provide the shared surface the execution leans on:
    ``cache`` (shared :class:`ResultCache` or ``None``), ``lane_for``
    (shared breaker lanes), ``note_executed``/``dedup_origin``
    (cross-campaign dedup provenance) and ``journal_for``/``registry``.
    """

    def __init__(self, service, campaign: Campaign, journal,
                 replay: Optional[Dict[str, Measurement]] = None,
                 replay_meta: Optional[Dict[str, Dict[str, Any]]] = None,
                 ) -> None:
        self.service = service
        self.campaign = campaign
        self.journal = journal
        self._replay = dict(replay or {})
        self._replay_meta = dict(replay_meta or {})
        self._started = False
        self._next = 0
        # Populated by _start():
        self._cells: List[Tuple[Any, Any]] = []
        self._fps: List[str] = []
        self._measurements: List[Optional[Measurement]] = []
        self._records: List[Optional[CellRecord]] = []
        self._opts = None
        self._injector: Optional[FaultInjector] = None
        self._health: Optional[HealthRegistry] = None
        # Borrowed for its _attempt_cell/_serve_via_ladder loops only;
        # never runs a sweep itself.
        self._engine = SweepEngine(cache=None, parallel=False)
        self._t0 = 0.0

    # -- setup -------------------------------------------------------------

    def _start(self) -> None:
        spec = self.campaign.spec
        experiment = spec.experiment
        opts = spec.run_options(base=self.service.base_options())
        opts = replace(opts, journal=None, profiler=None)
        self._opts = opts
        self._cells = [(model_by_name(name), shape)
                       for name in experiment.models
                       for shape in experiment.shapes()]
        self._fps = [cell_fingerprint(experiment, model.name, shape,
                                      faults=opts.faults)
                     for model, shape in self._cells]
        self.campaign.cells_total = len(self._cells)
        self._measurements = [None] * len(self._cells)
        self._records = [None] * len(self._cells)
        self._injector = (FaultInjector(opts.faults) if opts.faults.enabled
                          else None)
        if opts.breaker.enabled:
            ladder = (opts.fallback if opts.fallback is not None
                      else FallbackLadder.default_for(experiment))
            self._health = HealthRegistry(opts.breaker, ladder, experiment)
            # Swap in the service's shared lanes: breaker state guards
            # the node across tenants, not one campaign's view of it.
            for lane_spec in list(self._health.lanes):
                self._health.lanes[lane_spec] = self.service.lane_for(
                    lane_spec, opts.breaker)
        self._t0 = time.perf_counter()
        self._started = True
        self._set_state("admitted")

    def _set_state(self, state: str, **extra: Any) -> None:
        self.campaign.state = state
        self.journal.campaign_state(
            state, tenant=self.campaign.spec.tenant,
            priority=self.campaign.spec.priority, **extra)

    # -- stepping ----------------------------------------------------------

    def step(self) -> bool:
        """Advance one cell; ``True`` while the campaign has more work.

        A fail-fast cell failure finalizes the journal as ``failed``,
        marks the campaign failed, and returns ``False`` — the scheduler
        retires the campaign; other tenants are unaffected.
        """
        if not self._started:
            self._start()
        if self.campaign.state == "admitted":
            self._set_state("running")
        while (self._next < len(self._cells)
               and self._measurements[self._next] is not None):
            self._next += 1
        if self._next >= len(self._cells):
            self._finish()
            return False
        # Deadline enforcement happens here and only here — at a cell
        # boundary, never mid-cell, and never inside a fingerprint.
        if self.campaign.deadline_lapsed():
            self._expire()
            return False
        i = self._next
        try:
            if self._health is None:
                self._step_plain(i)
            else:
                self._step_health(i)
        except CellFailure as exc:
            self._fail(str(exc))
            return False
        self._next += 1
        self.campaign.cells_done = sum(
            1 for m in self._measurements if m is not None)
        if self.campaign.cells_done >= len(self._cells):
            self._finish()
            return False
        return True

    def _step_plain(self, i: int) -> None:
        model, shape = self._cells[i]
        fp = self._fps[i]
        opts = self._opts
        stats = self.campaign.stats
        replayed = self._replay.get(fp)
        if replayed is not None:
            self._measurements[i] = replayed
            self._records[i] = CellRecord(
                model=model.name, shape=str(shape), fingerprint=fp,
                cached=False, wall_s=0.0,
                start_s=time.perf_counter() - self._t0, status="replayed")
            stats["replayed"] += 1
            return
        cache = self.service.cache if opts.cache is not False else None
        if cache is not None:
            cached = cache.get(fp)
            if cached is not None:
                self._measurements[i] = cached
                self._records[i] = CellRecord(
                    model=model.name, shape=str(shape), fingerprint=fp,
                    cached=True, wall_s=0.0,
                    start_s=time.perf_counter() - self._t0, status="cached")
                self.journal.cell_done(i, fp, cached, cached=True,
                                       wall_s=0.0)
                stats["cached"] += 1
                origin = self.service.dedup_origin(fp)
                if origin and origin != self.campaign.campaign_id:
                    stats["deduped"] += 1
                    self.service.note_dedup(fp, self.campaign.campaign_id)
                return
        self.journal.cell_start(i, model.name, str(shape), fp)
        t0 = time.perf_counter()
        m, attempts, faults_hit, _spent = self._engine._attempt_cell(
            model, shape, self.campaign.spec.experiment, opts,
            self._injector, None)
        wall = time.perf_counter() - t0
        if cache is not None and not m.failed:
            cache.put(fp, m, metadata={
                "experiment": self.campaign.spec.experiment.exp_id})
            self.service.note_executed(fp, self.campaign.campaign_id)
        if m.failed:
            self.journal.cell_failed(i, fp, m, attempts=attempts,
                                     faults=faults_hit, reason=m.note)
            stats["failed"] += 1
        else:
            self.journal.cell_done(i, fp, m, cached=False, wall_s=wall,
                                   attempts=attempts, faults=faults_hit)
        stats["executed"] += 1
        self._measurements[i] = m
        self._records[i] = CellRecord(
            model=model.name, shape=str(shape), fingerprint=fp,
            cached=False, wall_s=wall, start_s=t0 - self._t0,
            status="failed" if m.failed else "ok",
            attempts=attempts, faults=faults_hit)

    def _step_health(self, i: int) -> None:
        # The breaker-enabled cell path, ported from the engine's
        # execute_health loop but running against the service's shared
        # lanes and journaling through this campaign's journal.
        model, shape = self._cells[i]
        fp = self._fps[i]
        opts = self._opts
        health = self._health
        stats = self.campaign.stats
        experiment = self.campaign.spec.experiment
        lane = health.lane_for(model.name)
        replayed = self._replay.get(fp)
        if replayed is not None:
            meta = health.require_meta(self._replay_meta.get(fp), fp)
            health.feed_replay(lane, meta, i)
            health.drain()
            self._measurements[i] = replayed
            self._records[i] = CellRecord(
                model=model.name, shape=str(shape), fingerprint=fp,
                cached=False, wall_s=0.0,
                start_s=time.perf_counter() - self._t0,
                status="replayed", served_by=replayed.served_by)
            stats["replayed"] += 1
            return
        self.journal.cell_start(i, model.name, str(shape), fp)
        t0 = time.perf_counter()
        decision = lane.route(i)
        meta = {"native": "none", "native_cost_s": 0.0, "serve_cost_s": 0.0}
        attempts = 0
        faults_hit = 0
        m: Optional[Measurement] = None
        if decision != "substitute":
            m, attempts, faults_hit, spent_s = self._engine._attempt_cell(
                model, shape, experiment, opts, self._injector, None)
            native_cost = spent_s + (0.0 if m.failed else sum(m.times_s))
            meta["native"] = "failed" if m.failed else "ok"
            meta["native_cost_s"] = native_cost
            lane.record_native(not m.failed, native_cost, i)
        final = m
        serve_cost = 0.0
        if (m is None or m.failed) and lane.state is BreakerState.OPEN:
            served, serve_cost, hops_tried = self._engine._serve_via_ladder(
                model, shape, experiment, opts, self._injector, None,
                health, lane.lane)
            if served is not None:
                final = served
            else:
                reason = (m.note if m is not None
                          else f"lane {lane.lane} open")
                final = Measurement(
                    model=model.name, display=model.display,
                    shape=shape, precision=experiment.precision,
                    supported=False, failed=True,
                    note=(f"{reason}; fallback ladder exhausted "
                          f"({hops_tried} hop(s) tried)"),
                    substituted_from=lane.lane, ladder_hops=hops_tried)
            meta["serve_cost_s"] = serve_cost
        lane.record_substituted(serve_cost)
        assert final is not None
        wall = time.perf_counter() - t0
        for tr in health.drain():
            self.journal.breaker(**tr.payload())
        cache = self.service.cache if opts.cache is not False else None
        if cache is not None and not final.failed and not final.substituted:
            cache.put(fp, final, metadata={"experiment": experiment.exp_id})
            self.service.note_executed(fp, self.campaign.campaign_id)
        if final.failed:
            self.journal.cell_failed(i, fp, final, attempts=attempts,
                                     faults=faults_hit, reason=final.note,
                                     health=meta)
            stats["failed"] += 1
        else:
            self.journal.cell_done(i, fp, final, cached=False, wall_s=wall,
                                   attempts=attempts, faults=faults_hit,
                                   health=meta)
        if final.substituted:
            stats["substituted"] += 1
        stats["executed"] += 1
        self._measurements[i] = final
        if final.failed:
            status = "failed"
        elif final.substituted:
            status = "substituted"
        else:
            status = "ok"
        self._records[i] = CellRecord(
            model=model.name, shape=str(shape), fingerprint=fp,
            cached=False, wall_s=wall, start_s=t0 - self._t0, status=status,
            attempts=attempts, faults=faults_hit, served_by=final.served_by)

    # -- completion --------------------------------------------------------

    def _finish(self) -> None:
        if self.campaign.state in ("done", "failed", "expired"):
            return
        total = len(self._cells)
        results = ResultSet(self.campaign.spec.experiment)
        for m in self._measurements:
            assert m is not None
            results.add(m)
        self.campaign.results = results
        self.campaign.cells_done = total
        # The campaign record must precede run-close: close_run
        # finalizes the journal and turns later appends into no-ops.
        self._set_state("done", stats=dict(self.campaign.stats))
        if not self.journal.finalized:
            self.journal.close_run("complete", completed=total, total=total)
        self.journal.close()

    def _expire(self) -> None:
        """The deadline lapsed: degrade every remaining cell to e = 0.

        Runs the paper's degraded accounting, not an abort: each cell
        not yet measured is journaled as a ``failed`` measurement with a
        deterministic note (no wall-clock values — the report must stay
        byte-reproducible), so the journal closes ``complete`` and the
        result set renders through the ordinary DEGRADED path.  The
        campaign record lands in the terminal ``expired`` state.
        """
        spec = self.campaign.spec
        stats = self.campaign.stats
        note = (f"campaign deadline ({spec.deadline_s:g}s) expired "
                f"before this cell ran")
        for i in range(len(self._cells)):
            if self._measurements[i] is not None:
                continue
            model, shape = self._cells[i]
            m = Measurement(
                model=model.name, display=model.display, shape=shape,
                precision=spec.experiment.precision,
                supported=False, failed=True, note=note)
            self.journal.cell_failed(i, self._fps[i], m, attempts=0,
                                     faults=0, reason=note)
            self._measurements[i] = m
            self._records[i] = CellRecord(
                model=model.name, shape=str(shape), fingerprint=self._fps[i],
                cached=False, wall_s=0.0,
                start_s=time.perf_counter() - self._t0, status="failed")
            stats["failed"] += 1
        total = len(self._cells)
        results = ResultSet(spec.experiment)
        for m in self._measurements:
            assert m is not None
            results.add(m)
        self.campaign.results = results
        self.campaign.cells_done = total
        self.campaign.error = (f"deadline {spec.deadline_s:g}s expired")
        self._set_state("expired", error=self.campaign.error,
                        stats=dict(stats))
        if not self.journal.finalized:
            # Every cell carries a (possibly degraded) measurement, so
            # the journal is complete: reports reconstruct normally.
            self.journal.close_run("complete", completed=total, total=total)
        self.journal.close()

    def _fail(self, reason: str) -> None:
        done = sum(1 for m in self._measurements if m is not None)
        self.campaign.error = reason
        self.campaign.cells_done = done
        self._set_state("failed", error=reason,
                        stats=dict(self.campaign.stats))
        if not self.journal.finalized:
            self.journal.close_run("failed", completed=done,
                                   total=len(self._cells))
        self.journal.close()
