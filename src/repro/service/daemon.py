"""``repro serve``: the campaign daemon and its wire API.

A long-running process that accepts concurrent campaign submissions
over a **local Unix-domain socket** speaking plain HTTP/JSON — stdlib
only, no ports, filesystem permissions as the auth boundary.  Handler
threads enqueue work; one scheduler thread drives
:class:`~repro.service.service.CampaignService.step` so all execution
stays serialized and deterministic.

Endpoints (all JSON; errors are ``{"error": ..., "kind": ...}``):

====== ============================== ===========================================
POST   ``/v1/campaigns``              body = CampaignSpec JSON; 202 ``{"id"}``,
                                      200 ``{"id", "duplicate": true}`` when the
                                      spec's ``submission_key`` was seen before,
                                      409 on admission refusal, 400 on a bad
                                      spec, 429 + ``Retry-After`` when shedding
                                      under load, 503 + ``Retry-After`` while
                                      draining
GET    ``/v1/campaigns``              every campaign's status row
GET    ``/v1/campaigns/<id>``         one campaign's status row
GET    ``/v1/campaigns/<id>/report``  finished campaign's report;
                                      ``?format=text|json`` (default text)
GET    ``/v1/status``                 scheduler/tenant/dedup/cache snapshot
GET    ``/v1/ping``                   liveness/readiness probe: ``{"ok":
                                      true, "pid": N, "state": "ready" |
                                      "degraded" | "draining", "uptime_s"}``
POST   ``/v1/shutdown``               graceful stop (journals stay resumable)
====== ============================== ===========================================

Overload behaviour: handler-thread concurrency is bounded (ThreadingMixIn
would otherwise spawn one thread per connection without limit), and
submissions shed with 429 + ``Retry-After`` *before* the admission wall
via :meth:`CampaignService.check_overload` — see
:class:`~repro.service.scheduler.OverloadPolicy`.

Durability: SIGTERM/SIGINT (or ``/v1/shutdown``) stop the scheduler
loop at the next cell boundary, release every ACTIVE claim and leave
all unfinished journals open — the next ``repro serve`` on the same
runs directory recovers and finishes them byte-identically.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import threading
import time
from http.server import BaseHTTPRequestHandler, HTTPServer
from socketserver import ThreadingMixIn
from typing import Any, Dict, Optional
from urllib.parse import parse_qs, urlparse

from ..errors import AdmissionError, ConfigError, OverloadError, ServiceError
from ..harness.journal.registry import default_runs_dir
from ..harness.report import render_result_set
from .service import CampaignService
from .spec import spec_from_dict

__all__ = ["default_socket_path", "CampaignDaemon", "MAX_HANDLER_THREADS"]

#: How long the scheduler thread dozes (s) when the queue is empty.
_IDLE_POLL_S = 0.05

#: Concurrent wire-handler threads the daemon will run; connections
#: beyond this are answered with a raw 429 and closed instead of
#: spawning an unbounded thread per connection (ThreadingMixIn's
#: default behaviour under a submission storm).
MAX_HANDLER_THREADS = 32

#: The canned response for connections shed at the concurrency bound —
#: written without ever entering the HTTP handler machinery.
_THREAD_SHED_RESPONSE = (
    b"HTTP/1.1 429 Too Many Requests\r\n"
    b"Content-Type: application/json\r\n"
    b"Retry-After: 1\r\n"
    b"Content-Length: 86\r\n"
    b"Connection: close\r\n"
    b"\r\n"
    b'{"error": "daemon handler threads exhausted; retry shortly", '
    b'"kind": "OverloadError"}\n')


def default_socket_path() -> str:
    """``$REPRO_SERVICE_SOCKET``, else ``service.sock`` in the runs dir."""
    explicit = os.environ.get("REPRO_SERVICE_SOCKET")
    if explicit:
        return explicit
    return os.path.join(default_runs_dir(), "service.sock")


class _UnixHTTPServer(ThreadingMixIn, HTTPServer):
    """HTTPServer bound to a Unix-domain socket path.

    Handler concurrency is bounded by :data:`MAX_HANDLER_THREADS`: a
    connection arriving with every slot taken is shed with a canned 429
    + ``Retry-After`` instead of spawning yet another thread — under a
    submission storm an unbounded ThreadingMixIn would otherwise grow
    one thread per connection until the process keels over.
    """

    address_family = socket.AF_UNIX
    daemon_threads = True
    allow_reuse_address = False

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        self._handler_slots = threading.Semaphore(MAX_HANDLER_THREADS)
        super().__init__(*args, **kwargs)

    def server_bind(self) -> None:
        # HTTPServer.server_bind assumes an (host, port) address; a UDS
        # path has neither, so bind directly and fake the name fields
        # BaseHTTPRequestHandler's version string plumbing reads.
        os.makedirs(os.path.dirname(self.server_address) or ".",
                    exist_ok=True)
        self.socket.bind(self.server_address)
        self.server_name = self.server_address
        self.server_port = 0

    def process_request(self, request, client_address) -> None:
        if not self._handler_slots.acquire(blocking=False):
            try:
                request.sendall(_THREAD_SHED_RESPONSE)
            except OSError:
                pass
            self.shutdown_request(request)
            return
        try:
            super().process_request(request, client_address)
        except BaseException:
            self._handler_slots.release()
            raise

    def process_request_thread(self, request, client_address) -> None:
        try:
            super().process_request_thread(request, client_address)
        finally:
            self._handler_slots.release()


class _Handler(BaseHTTPRequestHandler):
    """One wire request; routing is a flat match on (method, path)."""

    #: Injected by CampaignDaemon before the server starts.
    daemon_ref: "CampaignDaemon"
    protocol_version = "HTTP/1.1"

    # -- plumbing ---------------------------------------------------------

    def address_string(self) -> str:  # pragma: no cover - log formatting
        return "local"

    def log_message(self, format: str, *args: Any) -> None:
        # The daemon is quiet by default; the CLI surfaces lifecycle
        # events itself and per-request logs would interleave threads.
        pass

    def _send_json(self, code: int, payload: Dict[str, Any],
                   headers: Optional[Dict[str, str]] = None) -> None:
        body = (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, code: int, text: str) -> None:
        body = text.encode()
        self.send_response(code)
        self.send_header("Content-Type", "text/plain; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, code: int, exc: Exception) -> None:
        self._send_json(code, {"error": str(exc),
                               "kind": type(exc).__name__})

    def _read_body(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ConfigError("request carries no JSON body")
        try:
            data = json.loads(raw.decode())
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ConfigError(f"request body is not valid JSON: {exc}") \
                from exc
        if not isinstance(data, dict):
            raise ConfigError("request body must be a JSON object")
        return data

    # -- routes -----------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        daemon = self.daemon_ref
        service = daemon.service
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        try:
            if parts == ["v1", "ping"]:
                self._send_json(200, daemon.ping_payload())
            elif parts == ["v1", "status"]:
                self._send_json(200, service.status_payload())
            elif parts == ["v1", "campaigns"]:
                payload = service.status_payload()
                self._send_json(200, {"campaigns": payload["campaigns"]})
            elif len(parts) == 3 and parts[:2] == ["v1", "campaigns"]:
                self._send_json(200,
                                service.campaign(parts[2]).status_payload())
            elif (len(parts) == 4 and parts[:2] == ["v1", "campaigns"]
                    and parts[3] == "report"):
                fmt = (parse_qs(url.query).get("format") or ["text"])[0]
                results = service.result_set(parts[2])
                if fmt == "json":
                    from ..harness.export import result_set_to_json
                    self._send_text(200, result_set_to_json(results) + "\n")
                else:
                    self._send_text(200, render_result_set(results) + "\n")
            else:
                self._send_json(404, {"error": f"no route {url.path!r}",
                                      "kind": "ServiceError"})
        except ServiceError as exc:
            self._error(404, exc)
        except Exception as exc:  # pragma: no cover - handler backstop
            self._error(500, exc)

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        daemon = self.daemon_ref
        service = daemon.service
        parts = [p for p in urlparse(self.path).path.split("/") if p]
        try:
            if parts == ["v1", "campaigns"]:
                if daemon.draining:
                    # A draining daemon will never schedule new work;
                    # accepting it would strand the journal until some
                    # later daemon life recovers it.  Refuse loudly.
                    hint = service.retry_after_s()
                    self._send_json(503, {
                        "error": "daemon is draining and accepts no new "
                                 "campaigns; retry against the next daemon "
                                 "on this socket",
                        "kind": "OverloadError",
                        "retry_after_s": hint,
                    }, headers={"Retry-After": str(int(hint))})
                    return
                service.check_overload()  # raises OverloadError -> 429
                spec = spec_from_dict(self._read_body())
                campaign_id, duplicate = service.submit_idempotent(spec)
                if duplicate:
                    # The submission_key was seen before: answer 200
                    # with the original id — the retried POST converged
                    # instead of duplicating the campaign.
                    self._send_json(200, {"id": campaign_id,
                                          "tenant": spec.tenant,
                                          "priority": spec.priority,
                                          "duplicate": True})
                    return
                daemon.wake()
                self._send_json(202, {"id": campaign_id,
                                      "tenant": spec.tenant,
                                      "priority": spec.priority})
            elif parts == ["v1", "shutdown"]:
                self._send_json(200, {"ok": True, "stopping": True})
                daemon.request_shutdown()
            else:
                self._send_json(404, {"error": f"no route {self.path!r}",
                                      "kind": "ServiceError"})
        except OverloadError as exc:
            self._send_json(429, {
                "error": str(exc),
                "kind": "OverloadError",
                "retry_after_s": exc.retry_after_s,
            }, headers={"Retry-After": str(int(exc.retry_after_s))})
        except AdmissionError as exc:
            self._error(409, exc)
        except ConfigError as exc:
            self._error(400, exc)
        except ServiceError as exc:
            self._error(500, exc)
        except Exception as exc:  # pragma: no cover - handler backstop
            self._error(500, exc)


class CampaignDaemon:
    """The serving process: wire listener plus the scheduler loop.

    ``serve()`` blocks until a shutdown is requested (signal, endpoint,
    or :meth:`request_shutdown` from another thread), then suspends the
    service — journals stay open and resumable — and removes the
    socket.  Construction binds the socket, so a second daemon on the
    same path fails fast instead of queueing behind the first.
    """

    def __init__(self, service: Optional[CampaignService] = None,
                 socket_path: Optional[str] = None) -> None:
        self.service = service if service is not None else CampaignService()
        self.socket_path = socket_path or default_socket_path()
        if os.path.exists(self.socket_path):
            # A live daemon owns the path; a dead one left it behind.
            if self._path_alive(self.socket_path):
                raise ServiceError(
                    f"a campaign daemon is already serving on "
                    f"{self.socket_path}")
            os.unlink(self.socket_path)
        handler = type("_BoundHandler", (_Handler,), {"daemon_ref": self})
        self.server = _UnixHTTPServer(self.socket_path, handler)
        self._stop = threading.Event()
        self._wake = threading.Event()

    @staticmethod
    def _path_alive(path: str) -> bool:
        probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            probe.settimeout(0.5)
            probe.connect(path)
            return True
        except OSError:
            return False
        finally:
            probe.close()

    # -- lifecycle --------------------------------------------------------

    @property
    def draining(self) -> bool:
        """Whether shutdown was requested (no new campaigns accepted)."""
        return self._stop.is_set()

    def ping_payload(self) -> Dict[str, Any]:
        """Liveness *and* readiness: the ``/v1/ping`` document.

        ``ok`` is pure liveness (the process answered).  ``state``
        grades readiness: ``"ready"`` (serving, healthy),
        ``"degraded"`` (serving, but a campaign is quarantined or the
        cache went read-only under disk pressure) or ``"draining"``
        (shutdown requested, finishing the current cell).
        """
        if self._stop.is_set():
            state = "draining"
        else:
            state = self.service.health_state()
        return {"ok": True, "pid": os.getpid(), "state": state,
                "uptime_s": round(time.time() - self.service.started_at, 3)}

    def wake(self) -> None:
        """Nudge the scheduler loop (a submission just landed)."""
        self._wake.set()

    def request_shutdown(self) -> None:
        """Ask the serve loop to stop at the next cell boundary."""
        self._stop.set()
        self._wake.set()

    def serve(self, install_signals: bool = True) -> int:
        """Run until shutdown; returns the count of recovered campaigns.

        Recovery runs first, so campaigns an earlier daemon life left
        queued resume before any new submission is scheduled.
        """
        recovered = len(self.service.recover())
        listener = threading.Thread(target=self.server.serve_forever,
                                    name="repro-serve-listener",
                                    daemon=True)
        listener.start()
        previous: Dict[int, Any] = {}
        if install_signals:
            for sig in (signal.SIGTERM, signal.SIGINT):
                previous[sig] = signal.signal(
                    sig, lambda *_: self.request_shutdown())
        try:
            while not self._stop.is_set():
                if not self.service.step():
                    self._wake.wait(timeout=_IDLE_POLL_S)
                    self._wake.clear()
        finally:
            if install_signals:
                for sig, old in previous.items():
                    signal.signal(sig, old)
            self.close()
        return recovered

    def close(self) -> None:
        """Stop the listener, suspend the service, remove the socket."""
        self.server.shutdown()
        self.server.server_close()
        self.service.suspend()
        try:
            os.unlink(self.socket_path)
        except OSError:
            pass
