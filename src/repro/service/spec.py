"""The unified campaign request object: one frozen, serializable spec.

A :class:`CampaignSpec` is the single way to ask this codebase to run a
sweep.  CLI flags, ``REPRO_*`` environment variables and the daemon's
wire API all resolve into one (see
:func:`repro.config.resolve_campaign_spec` for the documented precedence
pass), and everything downstream — :func:`repro.harness.runner.
run_campaign`, the journal's campaign records, ``repro submit --spec
file.json`` — consumes or round-trips the same object through one codec.

The JSON codec is versioned the way the export schema is
(:mod:`repro.harness.export`): ``spec_to_dict`` stamps
:data:`SPEC_VERSION`, ``spec_from_dict`` loads every version in
:data:`SUPPORTED_SPEC_VERSIONS` with per-version fallbacks, and a
document from a *newer* build is refused rather than silently
misread.  Keys are sparse — ``None``/default fields are omitted — so a
minimal spec serializes to just its experiment plus the version stamp.

Schema history:

* v1 — initial: experiment (the export-schema experiment block), engine
  mode / jobs / cache tri-states, the resilience grammars (faults,
  retry, fail_fast, breaker, fallback) in their journal payload forms,
  and the service-level ``tenant`` / ``priority`` pair.
* v2 — adds two optional service-level fields: ``deadline_s`` (a
  wall-clock budget from submission; at the first cell boundary past it
  the campaign expires through the degraded path) and
  ``submission_key`` (a client-generated idempotency token; a retried
  submit carrying the same key returns the original campaign id instead
  of a duplicate).  Both are sparse, so every v1 document loads
  unchanged with the fields unset — and neither ever enters cell or
  campaign fingerprints, so result bytes cannot depend on them.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from typing import Any, Dict, Optional

from ..errors import ConfigError
from ..harness.experiment import Experiment
from ..harness.engine.options import RetryPolicy, RunOptions
from ..harness.health import BreakerPolicy, FallbackLadder
from ..sim.faults import FaultConfig, FaultKind

__all__ = [
    "SPEC_VERSION",
    "SUPPORTED_SPEC_VERSIONS",
    "CampaignSpec",
    "spec_to_dict",
    "spec_from_dict",
    "spec_to_json",
    "spec_from_json",
]

#: Version stamped into every serialized spec; bumped on shape changes.
SPEC_VERSION = 2

#: Spec versions :func:`spec_from_dict` can load.
SUPPORTED_SPEC_VERSIONS = (1, 2)

#: Engine modes a spec may name (``None`` = process default).
_ENGINE_CHOICES = ("serial", "thread", "process")


@dataclass(frozen=True)
class CampaignSpec:
    """Everything one campaign asks for, in one immutable request.

    ``None`` fields mean "inherit the process default" — the same
    tri-state convention :class:`~repro.harness.engine.RunOptions` uses
    for cache/jobs — so a bare ``CampaignSpec(experiment=exp)`` behaves
    exactly like the historical ``run_experiment(exp)`` call.

    * ``engine``/``jobs``/``cache`` — executor selection;
    * ``faults``/``retry``/``fail_fast``/``breaker``/``fallback`` — the
      resilience layer, same grammars as the CLI flags;
    * ``tenant``/``priority`` — service-level identity: which fair-share
      account the campaign bills to, and its rank *within* that tenant's
      queue (higher runs first; cross-tenant order is the scheduler's);
    * ``deadline_s`` — optional wall-clock budget measured from
      submission; lapsing expires the campaign at the next cell
      boundary through the degraded path (v2);
    * ``submission_key`` — optional client-generated idempotency token;
      a retried submit with the same key returns the original campaign
      id instead of creating a duplicate (v2).
    """

    experiment: Experiment
    engine: Optional[str] = None
    jobs: Optional[int] = None
    cache: Optional[bool] = None
    faults: Optional[FaultConfig] = None
    retry: Optional[RetryPolicy] = None
    fail_fast: Optional[bool] = None
    breaker: Optional[BreakerPolicy] = None
    fallback: Optional[FallbackLadder] = None
    tenant: str = "default"
    priority: int = 0
    deadline_s: Optional[float] = None
    submission_key: Optional[str] = None

    def __post_init__(self) -> None:
        if self.engine is not None and self.engine not in _ENGINE_CHOICES:
            raise ConfigError(
                f"engine must be one of {'/'.join(_ENGINE_CHOICES)} or "
                f"None, got {self.engine!r}")
        if self.jobs is not None and self.jobs < 1:
            raise ConfigError(f"jobs {self.jobs} < 1")
        if not self.tenant or not isinstance(self.tenant, str):
            raise ConfigError("tenant must be a non-empty string")
        if any(c in self.tenant for c in " \t\n/"):
            raise ConfigError(
                f"tenant {self.tenant!r} may not contain whitespace or '/'")
        if not isinstance(self.priority, int) or isinstance(self.priority,
                                                            bool):
            raise ConfigError(f"priority {self.priority!r} must be an int")
        if self.deadline_s is not None:
            if (isinstance(self.deadline_s, bool)
                    or not isinstance(self.deadline_s, (int, float))
                    or not self.deadline_s > 0):
                raise ConfigError(
                    f"deadline_s {self.deadline_s!r} must be a positive "
                    f"number of seconds")
        if self.submission_key is not None:
            if (not isinstance(self.submission_key, str)
                    or not self.submission_key
                    or any(c.isspace() for c in self.submission_key)):
                raise ConfigError(
                    f"submission_key {self.submission_key!r} must be a "
                    f"non-empty string without whitespace")

    # -- lowering to RunOptions -------------------------------------------

    def run_options(self, base: Optional[RunOptions] = None) -> RunOptions:
        """The :class:`RunOptions` this spec resolves to.

        Starts from ``base`` (default: the process-wide options, which
        carry the ``REPRO_FAULTS``-family environment) and overlays every
        non-``None`` resilience field, so an unset field genuinely means
        "inherit" rather than "reset to factory default".
        """
        if base is None:
            from ..harness.engine import default_run_options
            base = default_run_options()
        out = base
        if self.cache is not None:
            out = replace(out, cache=self.cache)
        if self.jobs is not None:
            out = replace(out, jobs=self.jobs)
        if self.faults is not None:
            out = replace(out, faults=self.faults)
        if self.retry is not None:
            out = replace(out, retry=self.retry)
        if self.fail_fast is not None:
            out = replace(out, fail_fast=self.fail_fast)
        if self.breaker is not None:
            out = replace(out, breaker=self.breaker)
        if self.fallback is not None:
            out = replace(out, fallback=self.fallback)
        return out

    def describe(self) -> str:
        """One line for the scheduler/status views."""
        exp = self.experiment
        knobs = []
        if self.engine:
            knobs.append(self.engine)
        if self.faults is not None and self.faults.enabled:
            knobs.append("faults")
        if self.breaker is not None and self.breaker.enabled:
            knobs.append("breaker")
        extra = f" [{', '.join(knobs)}]" if knobs else ""
        return (f"{exp.exp_id}: {len(exp.models)} models x "
                f"{len(exp.sizes)} sizes, tenant={self.tenant}, "
                f"priority={self.priority}{extra}")


# -- codec ----------------------------------------------------------------

def _retry_payload(retry: RetryPolicy) -> Dict[str, Any]:
    return {
        "max_attempts": retry.max_attempts,
        "backoff_base_s": retry.backoff_base_s,
        "backoff_factor": retry.backoff_factor,
        "max_cell_seconds": retry.max_cell_seconds,
    }


def _retry_from_payload(payload: Dict[str, Any]) -> RetryPolicy:
    budget = payload.get("max_cell_seconds")
    return RetryPolicy(
        max_attempts=int(payload.get("max_attempts", 1)),
        backoff_base_s=float(payload.get("backoff_base_s", 0.5)),
        backoff_factor=float(payload.get("backoff_factor", 2.0)),
        max_cell_seconds=float(budget) if budget is not None else None,
    )


def _faults_from_payload(payload: Dict[str, Any]) -> FaultConfig:
    return FaultConfig(
        rate=float(payload.get("rate", 0.0)),
        seed=int(payload.get("seed", 2023)),
        kinds=tuple(FaultKind(k) for k in payload.get(
            "kinds", [k.value for k in FaultKind])),
        always=tuple(payload.get("always", ())),
    )


def spec_to_dict(spec: CampaignSpec) -> Dict[str, Any]:
    """Serialize one spec (sparse: unset fields are omitted)."""
    out: Dict[str, Any] = {
        "spec_version": SPEC_VERSION,
        "experiment": spec.experiment.to_dict(),
        "tenant": spec.tenant,
        "priority": spec.priority,
    }
    if spec.engine is not None:
        out["engine"] = spec.engine
    if spec.jobs is not None:
        out["jobs"] = spec.jobs
    if spec.cache is not None:
        out["cache"] = spec.cache
    if spec.faults is not None:
        out["faults"] = spec.faults.payload()
    if spec.retry is not None:
        out["retry"] = _retry_payload(spec.retry)
    if spec.fail_fast is not None:
        out["fail_fast"] = spec.fail_fast
    if spec.breaker is not None:
        out["breaker"] = spec.breaker.payload()
    if spec.fallback is not None:
        out["fallback"] = spec.fallback.payload()
    if spec.deadline_s is not None:
        out["deadline_s"] = spec.deadline_s
    if spec.submission_key is not None:
        out["submission_key"] = spec.submission_key
    return out


def spec_from_dict(data: Dict[str, Any]) -> CampaignSpec:
    """Load a spec of any supported version.

    Fallback loader in the export-schema tradition: a document without a
    ``spec_version`` stamp is treated as v1 (the stamp has existed since
    the codec did, so only hand-written files hit this), a v1 document
    loads with the v2 fields (``deadline_s``, ``submission_key``)
    unset, and a document from a *newer* build is refused with a
    :class:`ConfigError` rather than loaded with fields silently
    dropped.
    """
    if not isinstance(data, dict):
        raise ConfigError(f"campaign spec must be a JSON object, "
                          f"got {type(data).__name__}")
    version = data.get("spec_version", 1)
    if version not in SUPPORTED_SPEC_VERSIONS:
        raise ConfigError(
            f"campaign spec version {version!r} is not supported by this "
            f"build (supported: {', '.join(map(str, SUPPORTED_SPEC_VERSIONS))})")
    if "experiment" not in data:
        raise ConfigError("campaign spec carries no experiment block")
    try:
        experiment = Experiment.from_dict(data["experiment"])
    except Exception as exc:
        raise ConfigError(f"campaign spec experiment is invalid: {exc}") \
            from exc
    jobs = data.get("jobs")
    priority = data.get("priority", 0)
    try:
        priority = int(priority)
    except (TypeError, ValueError) as exc:
        raise ConfigError(f"priority {priority!r} must be an int") from exc
    return CampaignSpec(
        experiment=experiment,
        engine=data.get("engine"),
        jobs=int(jobs) if jobs is not None else None,
        cache=(bool(data["cache"]) if "cache" in data else None),
        faults=(_faults_from_payload(data["faults"])
                if "faults" in data else None),
        retry=(_retry_from_payload(data["retry"])
               if "retry" in data else None),
        fail_fast=(bool(data["fail_fast"]) if "fail_fast" in data else None),
        breaker=(BreakerPolicy.from_payload(data["breaker"])
                 if "breaker" in data else None),
        fallback=(FallbackLadder.from_payload(data["fallback"])
                  if "fallback" in data else None),
        tenant=str(data.get("tenant", "default")),
        priority=priority,
        deadline_s=(float(data["deadline_s"])
                    if data.get("deadline_s") is not None else None),
        submission_key=(str(data["submission_key"])
                        if data.get("submission_key") is not None else None),
    )


def spec_to_json(spec: CampaignSpec, indent: int = 2) -> str:
    """The wire/journal/file rendering (stable key order)."""
    return json.dumps(spec_to_dict(spec), indent=indent, sort_keys=True)


def spec_from_json(text: str) -> CampaignSpec:
    """Parse a serialized spec; ``ConfigError`` names what is wrong."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ConfigError(f"campaign spec is not valid JSON: {exc}") from exc
    return spec_from_dict(data)
