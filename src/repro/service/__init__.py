"""The campaign service: one spec API, a fair-share multi-tenant daemon.

Two layers share this package:

* the **request layer** — :class:`CampaignSpec` and its versioned JSON
  codec, the single object every entrypoint (CLI flags, ``REPRO_*``
  environment, the wire API) resolves into; imported eagerly because
  :func:`repro.harness.runner.run_campaign` is built on it;
* the **service layer** — scheduler, campaign stepper, daemon and
  client; loaded lazily (PEP 562) so ``import repro`` never pays for —
  or cycles through — the HTTP/scheduling machinery.
"""

from __future__ import annotations

from .spec import (
    SPEC_VERSION,
    SUPPORTED_SPEC_VERSIONS,
    CampaignSpec,
    spec_from_dict,
    spec_from_json,
    spec_to_dict,
    spec_to_json,
)

__all__ = [
    "SPEC_VERSION",
    "SUPPORTED_SPEC_VERSIONS",
    "CampaignSpec",
    "spec_from_dict",
    "spec_from_json",
    "spec_to_dict",
    "spec_to_json",
    # lazily loaded:
    "AdmissionPolicy",
    "OverloadPolicy",
    "TenantQuota",
    "FairShareScheduler",
    "Campaign",
    "CampaignExecution",
    "CampaignService",
    "CampaignDaemon",
    "ClientPolicy",
    "ServiceClient",
    "default_socket_path",
]

_LAZY = {
    "AdmissionPolicy": ".scheduler",
    "OverloadPolicy": ".scheduler",
    "TenantQuota": ".scheduler",
    "FairShareScheduler": ".scheduler",
    "Campaign": ".campaign",
    "CampaignExecution": ".campaign",
    "CampaignService": ".service",
    "CampaignDaemon": ".daemon",
    "default_socket_path": ".daemon",
    "ClientPolicy": ".client",
    "ServiceClient": ".client",
}


def __getattr__(name: str):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib
    return getattr(importlib.import_module(module, __name__), name)
