"""The campaign service: multi-tenant campaigns over one shared store.

:class:`CampaignService` is the daemon's engine-room, usable in-process
(tests drive it directly) or behind the wire API
(:mod:`repro.service.daemon`).  It owns:

* the **scheduler** (:class:`~repro.service.scheduler.FairShareScheduler`)
  — admission control at submit, weighted fair-share interleaving at
  cell granularity between tenants;
* the **durable queue** — every submission is journaled (``run-open`` +
  a ``campaign`` record embedding the full spec) *before* ``submit``
  returns, so a daemon restart rebuilds its queue from the run registry
  alone (:meth:`recover`) and finishes every admitted campaign
  byte-identically via the ordinary replay machinery;
* the **shared result cache** — identical cells across tenants execute
  once; later campaigns take journaled cache hits with dedup provenance
  tracked per fingerprint;
* the **shared lane health** — circuit breakers guard the simulated
  node, so failures accumulate across tenants and an OPEN lane reroutes
  every campaign's cells;
* the **ACTIVE registry state** — in-flight runs carry a pid+heartbeat
  sidecar so ``repro runs list`` and ``repro fsck`` treat them as work
  in progress rather than torn artifacts.

Thread-safety: one lock around all mutating entrypoints.  The wire
daemon calls :meth:`submit`/:meth:`status_payload` from handler threads
while a single scheduler thread drives :meth:`step`; the lock serializes
them, and within a campaign all journal writes happen on the stepping
thread.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from typing import Any, Dict, List, Optional

from ..chaos.plan import chaos_strike
from ..errors import JournalError, OverloadError, ServiceError
from ..harness.engine.cache import ResultCache
from ..harness.engine.fingerprint import campaign_fingerprint, cell_fingerprint
from ..harness.engine.options import RunOptions
from ..harness.experiment import Experiment
from ..harness.health import BreakerPolicy, FallbackLadder, LaneHealth
from ..harness.journal import RunRegistry
from ..harness.results import ResultSet
from ..models.registry import model_by_name
from .campaign import Campaign, CampaignExecution
from .scheduler import AdmissionPolicy, FairShareScheduler, OverloadPolicy
from .spec import CampaignSpec, spec_from_dict, spec_to_dict

__all__ = ["CampaignService", "MAX_CAMPAIGN_RESTARTS",
           "STALE_HEARTBEAT_SECONDS"]

#: Heartbeat the ACTIVE sidecar of the stepping campaign every N cells.
_HEARTBEAT_EVERY = 16

#: Crash-supervision restarts one campaign may consume before the
#: supervisor quarantines it instead of requeueing it yet again.
MAX_CAMPAIGN_RESTARTS = 2

#: Heartbeat age past which ``repro status`` flags a campaign as STALE
#: (its owner stopped making progress without dying).
STALE_HEARTBEAT_SECONDS = 300.0


class CampaignService:
    """Multi-tenant campaign execution over one registry/cache/scheduler."""

    def __init__(self, registry: Optional[RunRegistry] = None,
                 cache: Optional[ResultCache] = None,
                 policy: Optional[AdmissionPolicy] = None,
                 options: Optional[RunOptions] = None,
                 overload: Optional[OverloadPolicy] = None) -> None:
        self.registry = registry if registry is not None else RunRegistry()
        self.cache = cache if cache is not None else ResultCache()
        self.scheduler = FairShareScheduler(policy)
        self.overload = overload if overload is not None else OverloadPolicy()
        self.campaigns: Dict[str, Campaign] = {}
        self._executions: Dict[str, CampaignExecution] = {}
        self._options = options
        self._lanes: Dict[str, LaneHealth] = {}
        #: Cell fingerprint -> campaign id that executed (and cached) it.
        self._origins: Dict[str, str] = {}
        #: submission_key -> campaign id, the idempotency map.  Durable:
        #: the key rides inside the journaled spec, so recover() rebuilds
        #: this from disk across daemon restarts.
        self._submission_keys: Dict[str, str] = {}
        self.dedup_hits = 0
        self._lock = threading.RLock()
        self._steps = 0
        self.started_at = time.time()
        self._last_grant = time.time()
        #: Crash-supervision counters across every campaign this life.
        self.restarts_total = 0
        self.quarantined_total = 0
        #: Overload accounting across this service-life.
        self.accepted_total = 0
        self.duplicates_total = 0
        self.shed_total = 0

    # -- shared surface for CampaignExecution ------------------------------

    def base_options(self) -> Optional[RunOptions]:
        """The options every campaign's spec overlays (None = process
        default, i.e. the ``REPRO_FAULTS``-family environment)."""
        return self._options

    def lane_for(self, lane_spec: str, policy: BreakerPolicy) -> LaneHealth:
        """The shared breaker lane for ``model@device`` across campaigns.

        First breaker-enabled campaign to touch a lane creates it with
        its policy; later campaigns share the same state machine, so
        failures accrue node-wide rather than per tenant.
        """
        lane = self._lanes.get(lane_spec)
        if lane is None:
            lane = LaneHealth(lane_spec, policy)
            self._lanes[lane_spec] = lane
        return lane

    def note_executed(self, fingerprint: str, campaign_id: str) -> None:
        """Record which campaign actually executed (and cached) a cell."""
        self._origins.setdefault(fingerprint, campaign_id)

    def dedup_origin(self, fingerprint: str) -> Optional[str]:
        """The campaign that executed a fingerprint this service-life."""
        return self._origins.get(fingerprint)

    def note_dedup(self, fingerprint: str, campaign_id: str) -> None:
        """Count one cross-campaign cache hit (provenance in origins)."""
        self.dedup_hits += 1

    # -- submission ---------------------------------------------------------

    def submit(self, spec: CampaignSpec) -> str:
        """Admit, journal and queue one campaign; returns its id.

        Admission control runs first — a refused submission raises
        :class:`~repro.errors.AdmissionError` before anything touches
        disk.  An admitted one is durable before ``submit`` returns:
        the journal opens with the engine-identical ``run-open`` record
        (manifest, campaign fingerprint, options, cell plan) followed by
        a ``campaign`` record embedding the serialized spec — the
        durable queue entry :meth:`recover` rebuilds from.

        A spec carrying a ``submission_key`` already seen returns the
        *original* campaign id (see :meth:`submit_idempotent` for the
        created/duplicate distinction the wire layer needs).
        """
        return self.submit_idempotent(spec)[0]

    def submit_idempotent(self, spec: CampaignSpec) -> "tuple[str, bool]":
        """:meth:`submit`, with the duplicate bit the daemon answers with.

        Returns ``(campaign_id, duplicate)``: ``duplicate`` is ``True``
        when the spec's ``submission_key`` matched an earlier submission
        — nothing was admitted, journaled or queued, and the original
        id is returned so a client retrying a submit whose ACK was lost
        converges on exactly one campaign.  The key lives inside the
        journaled spec, so the map survives daemon restarts via
        :meth:`recover`.
        """
        with self._lock:
            key = spec.submission_key
            if key is not None:
                existing = self._submission_keys.get(key)
                if existing is not None:
                    self.duplicates_total += 1
                    return existing, True
            run_id = self.registry.new_run_id()
            self.scheduler.submit(run_id, spec.tenant, spec.priority)
            try:
                journal = self.registry.create(run_id)
                self._open_journal(journal, spec)
                journal.campaign_state("queued", tenant=spec.tenant,
                                       priority=spec.priority,
                                       spec=spec_to_dict(spec))
            except Exception:
                self.scheduler.finish(run_id)
                raise
            campaign = Campaign(campaign_id=run_id, spec=spec,
                                submitted_at=time.time())
            self.campaigns[run_id] = campaign
            self._executions[run_id] = CampaignExecution(
                self, campaign, journal)
            if key is not None:
                self._submission_keys[key] = run_id
            self.accepted_total += 1
            return run_id, False

    def check_overload(self) -> None:
        """Shed (raise :class:`OverloadError`) before admission is hit.

        Called by the wire layer ahead of :meth:`submit` so saturated or
        wedged daemons answer 429 + ``Retry-After`` instead of letting
        clients slam into the admission wall.  Two triggers:

        * **backlog** — the queue is past
          :meth:`OverloadPolicy.shed_threshold` of the admission cap;
        * **stall** — work is queued but the scheduler loop has not
          granted a cell for :attr:`OverloadPolicy.stall_s` seconds (a
          wedged stepping thread must not keep accepting work).

        In-process callers that drive :meth:`step` themselves (tests,
        benchmarks) are free to skip this and use admission control
        alone.
        """
        with self._lock:
            backlog = self.scheduler.backlog
            max_total = self.scheduler.policy.max_total
            hint = self.overload.retry_after_s(backlog)
            if self.overload.should_shed(backlog, max_total):
                self.shed_total += 1
                raise OverloadError(
                    f"service is saturated ({backlog} campaigns queued, "
                    f"shedding at "
                    f"{self.overload.shed_threshold(max_total)} of "
                    f"{max_total}); retry after {hint:g}s",
                    retry_after_s=hint)
            stalled_for = time.time() - self._last_grant
            if backlog > 0 and stalled_for > self.overload.stall_s:
                self.shed_total += 1
                raise OverloadError(
                    f"service looks wedged ({backlog} campaigns queued, "
                    f"no grant for {stalled_for:.0f}s); "
                    f"retry after {hint:g}s",
                    retry_after_s=hint)

    def retry_after_s(self) -> float:
        """The current backlog-derived ``Retry-After`` hint (seconds)."""
        with self._lock:
            return self.overload.retry_after_s(self.scheduler.backlog)

    def _open_journal(self, journal, spec: CampaignSpec) -> None:
        # The run-open record must be byte-compatible with what a
        # dedicated engine run would write: resume and fsck read it with
        # the same loaders either way.
        experiment = spec.experiment
        opts = spec.run_options(base=self._options)
        cells = [(model_by_name(name), shape)
                 for name in experiment.models
                 for shape in experiment.shapes()]
        fingerprints = [cell_fingerprint(experiment, model.name, shape,
                                         faults=opts.faults)
                        for model, shape in cells]
        effective = opts.fallback
        if opts.breaker.enabled and effective is None:
            effective = FallbackLadder.default_for(experiment)
        journal.open_run(
            manifest=experiment.to_dict(),
            campaign=campaign_fingerprint(
                experiment, opts.faults, breaker=opts.breaker,
                fallback=effective if opts.breaker.enabled else None),
            options=opts.payload(),
            cells=[{"index": i, "model": model.name, "shape": str(shape),
                    "fingerprint": fingerprints[i]}
                   for i, (model, shape) in enumerate(cells)],
        )

    # -- recovery -----------------------------------------------------------

    def recover(self) -> List[str]:
        """Rebuild the queue from journals a dead daemon left behind.

        Scans the registry for service-submitted journals (they carry
        ``campaign`` records) that never reached
        ``done``/``failed``/``expired``, re-queues each through the
        scheduler (pre-admitted: they passed admission once), and arms
        the ordinary replay machinery so completed cells are served from
        the journal — the finished campaign's report is byte-identical
        to an uninterrupted one.  Journals owned by another live process
        are left alone.

        The idempotency map is rebuilt from *every* service journal —
        finished ones included — so a submit retried across a daemon
        restart still answers with the original campaign id instead of
        admitting a duplicate.
        """
        recovered: List[str] = []
        with self._lock:
            for run_id in self.registry.run_ids():
                if run_id in self.campaigns:
                    continue
                try:
                    state = self.registry.load(run_id)
                except (JournalError, OSError):
                    continue
                meta = state.service_meta
                if not meta:
                    continue  # a plain `repro run` journal
                payload = meta.get("spec")
                if not isinstance(payload, dict):
                    continue
                key = payload.get("submission_key")
                if key:
                    self._submission_keys.setdefault(str(key), run_id)
                if meta.get("state") in ("done", "failed", "expired",
                                         "quarantined"):
                    continue
                if state.status == "complete":
                    continue
                if self.registry.active_info(run_id) is not None:
                    continue  # another live daemon owns it
                spec = spec_from_dict(payload)
                self.scheduler.submit(run_id, spec.tenant, spec.priority,
                                      preadmitted=True)
                journal = self.registry.reopen(run_id)
                journal.resume_run(completed=state.done_cells,
                                   total=state.total_cells)
                journal.campaign_state("queued", tenant=spec.tenant,
                                       priority=spec.priority,
                                       recovered=True)
                # The deadline counts from the journal's birth, not the
                # restart: daemon crashes must never extend a budget.
                campaign = Campaign(campaign_id=run_id, spec=spec,
                                    recovered=True,
                                    submitted_at=state.created
                                    or time.time())
                campaign.cells_total = state.total_cells
                self.campaigns[run_id] = campaign
                self._executions[run_id] = CampaignExecution(
                    self, campaign, journal,
                    replay=dict(state.completed),
                    replay_meta=dict(state.outcomes))
                recovered.append(run_id)
        return recovered

    # -- scheduling ---------------------------------------------------------

    def step(self) -> bool:
        """One scheduler grant: advance the selected campaign one cell.

        Returns ``False`` when no campaign has work queued.  The grant
        is charged to the campaign's tenant whatever happened in it —
        replayed, cached and failed cells all consumed the slot.

        Supervision boundary: an exception escaping the campaign's cell
        step is a *crash* (fail-fast cell failures are already handled
        inside ``CampaignExecution.step``), and a crashing campaign
        must not take the daemon's scheduler loop down with it.  The
        campaign is rebuilt from its journal and requeued — up to
        :data:`MAX_CAMPAIGN_RESTARTS` times, after which it is
        quarantined — while every other tenant keeps running.
        """
        with self._lock:
            campaign_id = self.scheduler.select()
            if campaign_id is None:
                return False
            campaign = self.campaigns[campaign_id]
            self._last_grant = time.time()
            if campaign.state == "queued":
                self.registry.mark_active(campaign_id, pid=os.getpid())
            # Chaos strike point "daemon-grant": an armed plan can
            # SIGKILL the whole daemon right here, mid-grant — the
            # crash :meth:`recover` exists to survive.
            chaos_strike("daemon-grant", campaign_id)
            try:
                more = self._executions[campaign_id].step()
            except Exception as exc:  # noqa: BLE001 - supervision boundary
                more = self._supervise_crash(campaign_id, exc)
            self.scheduler.begin(campaign_id)
            self.scheduler.charge(campaign_id)
            self._steps += 1
            if self._steps % _HEARTBEAT_EVERY == 0:
                self.registry.heartbeat(campaign_id)
            if not more:
                self.scheduler.finish(campaign_id)
                self.registry.release_active(campaign_id)
            return True

    def _supervise_crash(self, campaign_id: str, exc: Exception) -> bool:
        # Requeue-or-quarantine: the journal is the truth (the crashed
        # execution's in-memory state may be arbitrarily corrupted), so
        # a restart rebuilds the campaign from disk exactly like a
        # daemon-level recover() — completed cells replay, the record
        # stream and final report stay byte-identical.
        campaign = self.campaigns[campaign_id]
        reason = f"{type(exc).__name__}: {exc}"
        if campaign.restarts >= MAX_CAMPAIGN_RESTARTS:
            return self._quarantine(
                campaign_id,
                f"{reason} (restart budget {MAX_CAMPAIGN_RESTARTS} spent)")
        self._executions[campaign_id].journal.close()
        try:
            state = self.registry.load(campaign_id)
            journal = self.registry.reopen(campaign_id)
        except (JournalError, OSError) as load_exc:
            return self._quarantine(
                campaign_id,
                f"{reason}; journal unreadable on restart: {load_exc}")
        campaign.restarts += 1
        self.restarts_total += 1
        print(f"repro: service: campaign {campaign_id} crashed ({reason}); "
              f"restarting from its journal "
              f"({campaign.restarts}/{MAX_CAMPAIGN_RESTARTS})",
              file=sys.stderr)
        journal.resume_run(completed=state.done_cells,
                           total=state.total_cells)
        journal.campaign_state("queued", tenant=campaign.spec.tenant,
                               priority=campaign.spec.priority,
                               restarted=campaign.restarts, error=reason)
        campaign.state = "queued"
        campaign.error = reason
        campaign.cells_total = state.total_cells
        campaign.cells_done = state.done_cells
        campaign.results = None
        self._executions[campaign_id] = CampaignExecution(
            self, campaign, journal,
            replay=dict(state.completed),
            replay_meta=dict(state.outcomes))
        return True

    def _quarantine(self, campaign_id: str, reason: str) -> bool:
        # Terminal supervision state: the campaign keeps crashing the
        # stepping thread, so it is retired as failed and parked where
        # recover() will not resurrect it — other tenants' campaigns
        # (and the daemon itself) keep running.
        campaign = self.campaigns[campaign_id]
        campaign.state = "quarantined"
        campaign.error = reason
        self.quarantined_total += 1
        journal = self._executions[campaign_id].journal
        try:
            journal.campaign_state("quarantined",
                                   tenant=campaign.spec.tenant,
                                   priority=campaign.spec.priority,
                                   error=reason)
            if not journal.finalized:
                journal.close_run("failed",
                                  completed=campaign.cells_done,
                                  total=campaign.cells_total)
        except (JournalError, OSError):
            pass
        journal.close()
        print(f"repro: service: campaign {campaign_id} quarantined: "
              f"{reason}", file=sys.stderr)
        return False

    def run_until_idle(self) -> int:
        """Drive the scheduler until every queued campaign finished."""
        steps = 0
        while self.step():
            steps += 1
        return steps

    @property
    def idle(self) -> bool:
        """Whether no campaign is queued or running."""
        with self._lock:
            return self.scheduler.select() is None

    def suspend(self) -> None:
        """Release file handles and ACTIVE claims without finishing.

        The graceful-shutdown half of the durability contract: journals
        stay open (and thus recoverable), sidecars are dropped so the
        runs re-enter the ordinary resumable lifecycle immediately
        rather than after pid-liveness detection.
        """
        with self._lock:
            for campaign_id, execution in self._executions.items():
                campaign = self.campaigns[campaign_id]
                if campaign.state in ("done", "failed", "expired",
                                      "quarantined"):
                    continue
                execution.journal.close()
                self.registry.release_active(campaign_id)

    # -- reporting ----------------------------------------------------------

    def campaign(self, campaign_id: str) -> Campaign:
        """The in-memory campaign, or :class:`ServiceError`."""
        campaign = self.campaigns.get(campaign_id)
        if campaign is None:
            raise ServiceError(f"no campaign {campaign_id!r} "
                               f"(known: {', '.join(sorted(self.campaigns)) or 'none'})")
        return campaign

    def result_set(self, campaign_id: str) -> ResultSet:
        """The finished campaign's results, from memory or its journal.

        Journal reconstruction serves campaigns finished by an earlier
        daemon life: cells come back in plan order with their embedded
        measurements, so the rendering is byte-identical to the one the
        finishing process produced.
        """
        campaign = self.campaigns.get(campaign_id)
        if campaign is not None and campaign.results is not None:
            return campaign.results
        state = self.registry.load(campaign_id)
        if state.status != "complete":
            raise ServiceError(
                f"campaign {campaign_id} is not finished "
                f"({state.done_cells}/{state.total_cells} cells; "
                f"status {state.status})")
        experiment = Experiment.from_dict(state.manifest)
        results = ResultSet(experiment)
        for cell in sorted(state.cells, key=lambda c: c.get("index", 0)):
            measurement = state.completed.get(cell.get("fingerprint", ""))
            if measurement is None:
                raise ServiceError(
                    f"campaign {campaign_id} journal is complete but cell "
                    f"{cell.get('index')} has no measurement")
            results.add(measurement)
        return results

    def health_state(self) -> str:
        """Service readiness: ``"ready"``, or ``"degraded"`` when a
        campaign sits in quarantine or the shared cache went read-only
        under disk pressure — alive and serving, but worth a look."""
        with self._lock:
            if self.cache is not None and self.cache.read_only:
                return "degraded"
            if any(c.state == "quarantined"
                   for c in self.campaigns.values()):
                return "degraded"
            return "ready"

    def status_payload(self) -> Dict[str, Any]:
        """The ``repro status`` document (stable key order when dumped).

        Each in-flight campaign row carries its ACTIVE heartbeat age and
        a ``stale`` flag (:data:`STALE_HEARTBEAT_SECONDS`), so a wedged
        owner shows up as STALE instead of silently "running".
        """
        with self._lock:
            campaigns = []
            for cid in sorted(self.campaigns):
                row = self.campaigns[cid].status_payload()
                age = self.registry.heartbeat_age(cid)
                if age is not None:
                    row["heartbeat_age_s"] = round(age, 3)
                    row["stale"] = age > STALE_HEARTBEAT_SECONDS
                campaigns.append(row)
            payload: Dict[str, Any] = {
                "pid": os.getpid(),
                "state": self.health_state(),
                "uptime_s": round(time.time() - self.started_at, 3),
                "backlog": self.scheduler.backlog,
                "tenants": self.scheduler.snapshot(),
                "campaigns": campaigns,
                "dedup": {
                    "executed_cells": len(self._origins),
                    "hits": self.dedup_hits,
                },
                "supervision": {
                    "restarts": self.restarts_total,
                    "quarantined": self.quarantined_total,
                },
                "overload": {
                    "accepted": self.accepted_total,
                    "duplicates": self.duplicates_total,
                    "shed": self.shed_total,
                    "shed_threshold": self.overload.shed_threshold(
                        self.scheduler.policy.max_total),
                    "retry_after_s": self.overload.retry_after_s(
                        self.scheduler.backlog),
                },
                "cache": (self.cache.stats.snapshot()
                          if self.cache is not None else {}),
                "steps": self._steps,
            }
            if self.cache is not None and self.cache.read_only:
                payload["cache_pressure"] = self.cache.pressure_snapshot()
            return payload
