"""Fair-share scheduling and admission control for the campaign service.

The daemon multiplexes many tenants' campaigns onto one simulator, one
cell at a time.  Two layers decide who runs next:

* **Admission control** (:class:`AdmissionPolicy`): a submission is
  either queued or refused *immediately* — per-tenant queue quotas and a
  global backlog cap bound the daemon's memory and keep one chatty
  tenant from monopolizing the queue.  Refusals raise
  :class:`~repro.errors.AdmissionError`, which is retryable by
  construction (the queue drains).

* **Stride scheduling** (:class:`FairShareScheduler`): every tenant
  carries a *pass* value that advances by ``1/weight`` per cell charged
  to it; the runnable tenant with the smallest pass runs next, ties
  broken by tenant name.  Over any window, tenant throughput converges
  to the weight ratio — weighted round-robin with O(1) state and no
  clocks, hence fully deterministic.  Within a tenant, campaigns order
  by (higher priority first, then submission order); the head campaign
  advances one cell per grant, so a high-priority submission preempts
  its tenant's in-flight campaign at the next cell boundary but never
  steals another tenant's share.

Everything here is pure bookkeeping — no threads, no time, no I/O — so
the scheduler's decisions replay identically from a rebuilt queue, which
is what makes daemon-restart recovery deterministic.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import AdmissionError, ServiceError

__all__ = ["TenantQuota", "AdmissionPolicy", "OverloadPolicy",
           "FairShareScheduler"]


@dataclass(frozen=True)
class TenantQuota:
    """Share weight and queue quota of one fair-share account.

    * ``weight`` — relative share of scheduler grants (2.0 gets twice
      the cells per window of a 1.0 tenant under contention);
    * ``max_queued`` — campaigns a tenant may have queued or running at
      once; further submissions are refused at admission.
    """

    weight: float = 1.0
    max_queued: int = 8

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ServiceError(f"tenant weight must be positive, "
                               f"got {self.weight}")
        if self.max_queued < 1:
            raise ServiceError(f"tenant max_queued must be >= 1, "
                               f"got {self.max_queued}")


@dataclass(frozen=True)
class AdmissionPolicy:
    """Queue quotas the daemon enforces before a campaign is journaled.

    ``quotas`` maps tenant names to explicit :class:`TenantQuota`;
    unlisted tenants get ``default_quota``.  ``max_total`` bounds the
    whole backlog across tenants.
    """

    max_total: int = 64
    default_quota: TenantQuota = field(default_factory=TenantQuota)
    quotas: Tuple[Tuple[str, TenantQuota], ...] = ()

    def quota_for(self, tenant: str) -> TenantQuota:
        """The quota governing one tenant."""
        for name, quota in self.quotas:
            if name == tenant:
                return quota
        return self.default_quota

    def admit(self, tenant: str, tenant_backlog: int,
              total_backlog: int) -> None:
        """Refuse (raise) or return; called before anything is queued."""
        if total_backlog >= self.max_total:
            raise AdmissionError(
                f"service backlog full ({total_backlog} campaigns queued, "
                f"limit {self.max_total}); retry after the queue drains",
                tenant=tenant, limit=self.max_total)
        quota = self.quota_for(tenant)
        if tenant_backlog >= quota.max_queued:
            raise AdmissionError(
                f"tenant {tenant!r} is at its queue quota "
                f"({tenant_backlog}/{quota.max_queued} campaigns); "
                f"retry after its queue drains",
                tenant=tenant, limit=quota.max_queued)


@dataclass(frozen=True)
class OverloadPolicy:
    """When the daemon sheds submissions *before* admission refuses them.

    Admission control (:class:`AdmissionPolicy`) is a hard wall: at the
    cap, work is refused with a 409 and the client is on its own.  Load
    shedding is the soft slope in front of that wall — past
    ``shed_fraction`` of the global cap (or when the scheduler loop has
    stopped granting while work is queued) new submissions are shed
    with a 429 and a ``Retry-After`` hint derived from the backlog, so
    well-behaved clients back off *before* the queue saturates and
    starved 409s appear.

    * ``shed_fraction`` — fraction of ``AdmissionPolicy.max_total``
      beyond which submissions shed;
    * ``stall_s`` — seconds without a scheduler grant (while work is
      queued) after which the service is considered wedged and sheds;
    * ``drain_s_per_campaign`` — backlog-to-seconds factor behind the
      ``Retry-After`` hint;
    * ``min_retry_after_s``/``max_retry_after_s`` — hint clamp.
    """

    shed_fraction: float = 0.8
    stall_s: float = 60.0
    drain_s_per_campaign: float = 0.5
    min_retry_after_s: float = 1.0
    max_retry_after_s: float = 30.0

    def __post_init__(self) -> None:
        if not 0.0 < self.shed_fraction <= 1.0:
            raise ServiceError(f"shed_fraction must be in (0, 1], "
                               f"got {self.shed_fraction}")
        if self.stall_s <= 0:
            raise ServiceError(f"stall_s must be positive, "
                               f"got {self.stall_s}")
        if self.min_retry_after_s <= 0 \
                or self.max_retry_after_s < self.min_retry_after_s:
            raise ServiceError("retry-after clamp is inverted or negative")

    def shed_threshold(self, max_total: int) -> int:
        """Backlog size at which shedding starts (>= 1)."""
        return max(1, math.ceil(self.shed_fraction * max_total))

    def should_shed(self, backlog: int, max_total: int) -> bool:
        """Whether a new submission should be shed at this backlog."""
        return backlog >= self.shed_threshold(max_total)

    def retry_after_s(self, backlog: int) -> float:
        """The ``Retry-After`` hint for this backlog (whole seconds)."""
        estimate = max(1, backlog) * self.drain_s_per_campaign
        clamped = min(max(estimate, self.min_retry_after_s),
                      self.max_retry_after_s)
        return float(math.ceil(clamped))


class _TenantState:
    """Pass value and campaign queue of one tenant."""

    __slots__ = ("name", "weight", "passv", "heap", "started")

    def __init__(self, name: str, weight: float) -> None:
        self.name = name
        self.weight = weight
        self.passv = 0.0
        #: Min-heap of (-priority, submit_seq, campaign_id): highest
        #: priority first, FIFO within a priority level.  Campaigns stay
        #: here from submit to finish — running ones included, so
        #: ``select`` keeps finding them.
        self.heap: List[Tuple[int, int, str]] = []
        #: Campaign ids that have executed at least one cell.
        self.started: set = set()

    @property
    def backlog(self) -> int:
        return len(self.heap)


class FairShareScheduler:
    """Deterministic stride scheduler over tenants' campaign queues.

    The service drives it with four calls: :meth:`submit` queues a
    campaign (through admission control), :meth:`select` names the
    campaign that should advance next, :meth:`charge` bills one executed
    cell to a tenant's pass, and :meth:`finish` retires a campaign.
    ``select`` is a *peek* — the campaign stays queued until finished —
    so a higher-priority submission can take over its tenant's next
    grant at any cell boundary.
    """

    def __init__(self, policy: Optional[AdmissionPolicy] = None) -> None:
        self.policy = policy if policy is not None else AdmissionPolicy()
        self._tenants: Dict[str, _TenantState] = {}
        self._owner: Dict[str, str] = {}  # campaign_id -> tenant
        self._seq = 0

    # -- introspection -----------------------------------------------------

    @property
    def backlog(self) -> int:
        """Campaigns queued or running across every tenant."""
        return sum(t.backlog for t in self._tenants.values())

    def tenant_backlog(self, tenant: str) -> int:
        """Campaigns one tenant has queued or running."""
        state = self._tenants.get(tenant)
        return state.backlog if state is not None else 0

    def snapshot(self) -> List[Dict[str, object]]:
        """Per-tenant scheduler state for ``repro status``."""
        out: List[Dict[str, object]] = []
        for name in sorted(self._tenants):
            t = self._tenants[name]
            running = sum(1 for e in t.heap if e[2] in t.started)
            out.append({"tenant": name, "weight": t.weight,
                        "pass": round(t.passv, 9),
                        "queued": len(t.heap) - running, "running": running})
        return out

    # -- lifecycle ---------------------------------------------------------

    def submit(self, campaign_id: str, tenant: str, priority: int = 0,
               *, preadmitted: bool = False) -> None:
        """Queue one campaign, or raise :class:`AdmissionError`.

        ``preadmitted`` skips admission control — the recovery path,
        where the campaign already passed it in a previous daemon life
        and refusing it now would drop durable work.

        A tenant seen for the first time starts at the *maximum* current
        pass of the other tenants (not zero): a newcomer gets its fair
        share from now on, not a retroactive credit for every cell it
        was not around to claim.
        """
        if campaign_id in self._owner:
            raise ServiceError(f"campaign {campaign_id!r} already queued")
        if not preadmitted:
            self.policy.admit(tenant, self.tenant_backlog(tenant),
                              self.backlog)
        state = self._tenants.get(tenant)
        if state is None:
            quota = self.policy.quota_for(tenant)
            state = _TenantState(tenant, quota.weight)
            others = [t.passv for t in self._tenants.values() if t.backlog]
            if others:
                state.passv = max(others)
            self._tenants[tenant] = state
        self._seq += 1
        heapq.heappush(state.heap, (-int(priority), self._seq, campaign_id))
        self._owner[campaign_id] = tenant

    def select(self) -> Optional[str]:
        """The campaign that should advance one cell next, or ``None``.

        Pure and repeatable: among tenants with queued campaigns, the
        smallest (pass, name) wins, and its best-(priority, seq)
        campaign is named.  Nothing is dequeued.
        """
        best: Optional[_TenantState] = None
        for t in self._tenants.values():
            if not t.heap:
                continue
            if best is None or (t.passv, t.name) < (best.passv, best.name):
                best = t
        if best is None:
            return None
        return best.heap[0][2]

    def charge(self, campaign_id: str, cells: int = 1) -> None:
        """Bill ``cells`` scheduler grants to a campaign's tenant."""
        tenant = self._require_owner(campaign_id)
        state = self._tenants[tenant]
        state.passv += cells / state.weight

    def begin(self, campaign_id: str) -> None:
        """Note that a campaign executed its first cell (idempotent).

        The campaign keeps its heap slot — ``select`` must still find it
        — but ``snapshot`` now reports it as running rather than queued.
        """
        tenant = self._require_owner(campaign_id)
        self._tenants[tenant].started.add(campaign_id)

    def finish(self, campaign_id: str) -> None:
        """Retire a campaign (done or failed) from its tenant's queue."""
        tenant = self._require_owner(campaign_id)
        state = self._tenants[tenant]
        state.heap = [e for e in state.heap if e[2] != campaign_id]
        heapq.heapify(state.heap)
        state.started.discard(campaign_id)
        del self._owner[campaign_id]

    def _require_owner(self, campaign_id: str) -> str:
        tenant = self._owner.get(campaign_id)
        if tenant is None:
            raise ServiceError(f"campaign {campaign_id!r} is not queued")
        return tenant
