"""Thread placement and pinning policies.

Reproduces the three affinity regimes of the paper's Table I:

* C/OpenMP and Kokkos: ``OMP_PROC_BIND=true OMP_PLACES=threads`` — threads
  pinned to consecutive hardware threads (:data:`PinPolicy.COMPACT`).
* Julia: ``JULIA_EXCLUSIVE=1`` — "pin threads to cores in strict order",
  also compact.
* Python/Numba: no pinning mechanism exists; the OS migrates threads
  (:data:`PinPolicy.NONE`), which costs migration overhead and destroys
  NUMA locality on multi-domain CPUs like Crusher's EPYC.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple

from ..errors import MachineModelError
from ..machine.cpu import CPUSpec

__all__ = ["PinPolicy", "ThreadPlacement", "place_threads"]


class PinPolicy(enum.Enum):
    """Thread-to-core binding regime (see module docstring)."""

    NONE = "none"        # unpinned: OS scheduler migrates threads
    COMPACT = "compact"  # consecutive cores (OMP_PLACES=threads / JULIA_EXCLUSIVE)
    SPREAD = "spread"    # round-robin across NUMA domains (OMP_PROC_BIND=spread)


@dataclass(frozen=True)
class ThreadPlacement:
    """Where each software thread lives.

    ``cores[t]`` is the home core of thread ``t``.  For ``pinned=False``
    the cores are only the *initial* placement; the simulator applies
    migration penalties on top.
    """

    cores: Tuple[int, ...]
    policy: PinPolicy

    @property
    def pinned(self) -> bool:
        return self.policy is not PinPolicy.NONE

    @property
    def threads(self) -> int:
        return len(self.cores)

    def domain_of(self, cpu: CPUSpec, thread: int) -> int:
        return cpu.domain_of_core(self.cores[thread]).domain_id

    def threads_per_domain(self, cpu: CPUSpec) -> Tuple[int, ...]:
        counts = [0] * cpu.numa_domains
        for t in range(self.threads):
            counts[self.domain_of(cpu, t)] += 1
        return tuple(counts)


def place_threads(cpu: CPUSpec, threads: int, policy: PinPolicy) -> ThreadPlacement:
    """Assign ``threads`` software threads to cores under ``policy``.

    Oversubscription (more threads than cores) wraps around, which is how
    the OS behaves; the thread simulator serialises co-resident threads.
    """
    if threads <= 0:
        raise MachineModelError("thread count must be positive")

    if policy is PinPolicy.SPREAD:
        # round-robin over domains, then over the cores inside each domain
        per_domain_iters = [list(d.cores) for d in cpu.numa]
        cores = []
        idx = 0
        offsets = [0] * len(per_domain_iters)
        while len(cores) < threads:
            d = idx % len(per_domain_iters)
            dom = per_domain_iters[d]
            cores.append(dom[offsets[d] % len(dom)])
            offsets[d] += 1
            idx += 1
        return ThreadPlacement(tuple(cores), policy)

    # COMPACT and NONE share the initial layout: consecutive cores.  The
    # difference is the `pinned` flag consumed by the simulator.
    cores = tuple(t % cpu.cores for t in range(threads))
    return ThreadPlacement(cores, policy)
