"""Worksharing loop chunking.

All four CPU models in the paper statically partition one loop across
threads: OpenMP's default ``schedule(static)``, Julia's ``@threads``
(static since 1.5 unless ``:dynamic``), and Numba's ``prange`` (static
chunks).  The partition determines load imbalance: when the trip count does
not divide the thread count, the longest chunk sets the pace and the tail
threads idle — visible as the sawtooth in scaling curves.
"""

from __future__ import annotations

import enum
from typing import List, Tuple

from ..errors import ExperimentError

__all__ = ["Schedule", "static_chunks", "chunk_sizes", "imbalance"]


class Schedule(enum.Enum):
    """OpenMP-style worksharing schedule kind."""

    STATIC = "static"
    DYNAMIC = "dynamic"   # chunk queue; modelled as near-perfect balance
    GUIDED = "guided"


def static_chunks(trip_count: int, threads: int) -> List[Tuple[int, int]]:
    """OpenMP-style static partition: ``threads`` half-open ranges.

    The first ``trip_count % threads`` chunks get one extra iteration;
    threads beyond the trip count receive empty ranges.
    """
    if trip_count < 0 or threads <= 0:
        raise ExperimentError("trip_count must be >= 0 and threads > 0")
    base, extra = divmod(trip_count, threads)
    out: List[Tuple[int, int]] = []
    start = 0
    for t in range(threads):
        size = base + (1 if t < extra else 0)
        out.append((start, start + size))
        start += size
    return out


def chunk_sizes(trip_count: int, threads: int,
                schedule: Schedule = Schedule.STATIC) -> List[int]:
    """Iterations each thread executes.

    DYNAMIC and GUIDED are modelled as their steady-state outcome: a
    near-even split (the scheduler balances to within one chunk), because
    the simulator charges their queueing overhead separately.
    """
    if schedule is Schedule.STATIC:
        return [b - a for a, b in static_chunks(trip_count, threads)]
    base, extra = divmod(trip_count, threads)
    return [base + (1 if t < extra else 0) for t in range(threads)]


def imbalance(trip_count: int, threads: int,
              schedule: Schedule = Schedule.STATIC) -> float:
    """Ratio of the longest chunk to the mean chunk (1.0 = perfectly even).

    This is the slowdown factor of a compute-bound statically-chunked loop
    relative to an idealised fractional partition.
    """
    sizes = chunk_sizes(trip_count, threads, schedule)
    longest = max(sizes)
    mean = trip_count / threads
    return longest / mean if mean > 0 else 1.0
