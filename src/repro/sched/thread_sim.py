"""Discrete-event simulation of one multithreaded parallel region.

Each thread owns a chunk of the worksharing loop, characterised by a
compute time (from the instruction-mix model) and a DRAM traffic volume
(from the cache model).  Threads overlap compute with memory, so a thread
finishes at ``max(compute, memory)`` — but the memory side is *shared*:
all threads in a NUMA domain draw from that domain's controllers, modelled
as max-min fair fluid channels (:mod:`repro.sim.fluid`).

On top of the fluid core the simulator charges:

* NUMA traffic inflation for remote accesses (:mod:`repro.sched.numa`);
* serialisation when threads are co-resident on one core (oversubscription);
* a migration tax for unpinned threads (the OS moves them, refilling
  caches and breaking locality) — the mechanism behind Numba's gap on
  Crusher's 4-NUMA EPYC;
* fork/join overhead per parallel region.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from ..machine.cpu import CPUSpec
from ..sim.fluid import Channel, Flow, FluidSimulation
from .affinity import ThreadPlacement
from .numa import MemoryHome, memory_costs

__all__ = ["ThreadWork", "ThreadSimResult", "simulate_parallel_region",
           "MIGRATION_COMPUTE_TAX", "FORK_JOIN_BASE_S", "BARRIER_PER_LOG2_S",
           "MIN_STREAM_RATE_BS"]

#: Compute-time multiplier for unpinned threads on a multi-domain CPU.
#: Every migration across a CCD/NUMA boundary refills L2/L3 and breaks the
#: stream prefetchers; on Crusher's 4-domain EPYC this is the dominant
#: term separating the unpinnable Numba runtime (Table III: 0.55) from the
#: pinned models, over and above its codegen gap.  Single-domain CPUs are
#: unaffected (the tax only applies when numa_domains > 1), which is why
#: Numba fares relatively better on Wombat's Altra.
MIGRATION_COMPUTE_TAX = 1.30

#: Fixed cost to fork a parallel region and join it again.
FORK_JOIN_BASE_S = 8e-6

#: Tree-barrier cost per log2(threads).
BARRIER_PER_LOG2_S = 1.5e-6

#: Floor on a thread's memory demand rate (bytes/s).  Even a thread whose
#: compute side retires data very slowly keeps demand misses and hardware
#: prefetch trickling at roughly one cache line per DRAM round trip
#: (64 B / ~64 ns ~= 1 GB/s), so its fair-share claim on the channel never
#: collapses to zero — but it is a *rate*, never a byte count.
MIN_STREAM_RATE_BS = 1e9


@dataclass(frozen=True)
class ThreadWork:
    """One thread's share of the parallel loop."""

    thread: int
    compute_seconds: float
    dram_bytes: float

    def __post_init__(self) -> None:
        if self.compute_seconds < 0 or self.dram_bytes < 0:
            raise ValueError("work must be non-negative")


@dataclass(frozen=True)
class ThreadSimResult:
    """Outcome of one simulated parallel region."""

    total_seconds: float
    per_thread_seconds: Sequence[float]
    fork_join_seconds: float
    achieved_bandwidth_gbs: float
    imbalance: float  # max/mean of per-thread busy time

    @property
    def busy_seconds(self) -> float:
        return max(self.per_thread_seconds, default=0.0)


def simulate_parallel_region(
    cpu: CPUSpec,
    placement: ThreadPlacement,
    work: Sequence[ThreadWork],
    home: MemoryHome = MemoryHome.INTERLEAVED,
    migration_tax: float = MIGRATION_COMPUTE_TAX,
) -> ThreadSimResult:
    """Simulate one parallel region to completion."""
    if len(work) != placement.threads:
        raise ValueError("one ThreadWork per placed thread required")

    costs = memory_costs(cpu, placement, home)

    # Oversubscription: threads sharing a core timeslice its pipeline.
    core_load = {}
    for t in range(placement.threads):
        core_load[placement.cores[t]] = core_load.get(placement.cores[t], 0) + 1

    unpinned_multi = (not placement.pinned) and cpu.numa_domains > 1
    # The tax scales with node saturation: on a mostly idle node the OS has
    # little reason to bounce threads across domains, at full subscription
    # every preemption lands somewhere cache-cold.
    load_factor = min(1.0, placement.threads / cpu.cores)
    effective_tax = 1.0 + (migration_tax - 1.0) * load_factor

    channels = [
        Channel(name=f"numa{d.domain_id}", capacity=d.local_bandwidth_gbs * 1e9)
        for d in cpu.numa
    ]
    sim = FluidSimulation(channels)

    flows: List[Flow] = []
    compute_secs: List[float] = []
    eff_bytes: List[float] = []
    domains = cpu.numa_domains
    for w in work:
        cost = costs[w.thread]
        comp = w.compute_seconds * core_load[placement.cores[w.thread]]
        if unpinned_multi:
            comp *= effective_tax
        compute_secs.append(comp)

        inflated = w.dram_bytes * cost.bandwidth_inflation
        eff_bytes.append(inflated)
        if inflated <= 0:
            continue
        # Demand cap: the thread streams data no faster than its compute
        # consumes it; fully memory-bound chunks (comp == 0) are uncapped.
        # The floor is a minimum *rate* (MIN_STREAM_RATE_BS), never the byte
        # count itself — rates and volumes don't mix.
        demand_total = inflated / comp if comp > 0 else math.inf
        demand_total = max(demand_total, MIN_STREAM_RATE_BS)
        if home is MemoryHome.SERIAL_NODE0:
            # all pages in domain 0: everything contends on one channel
            flows.append(Flow(f"t{w.thread}", inflated, demand_total, "numa0"))
        else:
            per = inflated / domains
            for d in range(domains):
                flows.append(Flow(f"t{w.thread}.d{d}", per,
                                  demand_total / domains, f"numa{d}"))

    results = sim.run(flows) if flows else {}

    per_thread: List[float] = []
    for idx, w in enumerate(work):
        mem_finish = max(
            (r.finish for name, r in results.items()
             if name == f"t{w.thread}" or name.startswith(f"t{w.thread}.")),
            default=0.0,
        )
        per_thread.append(max(compute_secs[idx], mem_finish))

    busy = max(per_thread, default=0.0)
    # A single-thread region forks and joins but runs no tree barrier.
    fork_join = FORK_JOIN_BASE_S
    if placement.threads > 1:
        fork_join += BARRIER_PER_LOG2_S * math.log2(placement.threads)
    total = busy + fork_join

    total_bytes = sum(eff_bytes)
    bw = (total_bytes / busy / 1e9) if busy > 0 else 0.0
    mean = sum(per_thread) / len(per_thread) if per_thread else 0.0
    imb = (busy / mean) if mean > 0 else 1.0

    return ThreadSimResult(
        total_seconds=total,
        per_thread_seconds=tuple(per_thread),
        fork_join_seconds=fork_join,
        achieved_bandwidth_gbs=bw,
        imbalance=imb,
    )
