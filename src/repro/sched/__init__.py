"""CPU execution simulation: affinity, chunking, NUMA, thread scheduling."""

from .affinity import PinPolicy, ThreadPlacement, place_threads
from .chunk import Schedule, chunk_sizes, imbalance, static_chunks
from .numa import MemoryHome, ThreadMemoryCost, memory_costs
from .thread_sim import (
    ThreadSimResult,
    ThreadWork,
    simulate_parallel_region,
)

__all__ = [
    "PinPolicy",
    "ThreadPlacement",
    "place_threads",
    "Schedule",
    "chunk_sizes",
    "imbalance",
    "static_chunks",
    "MemoryHome",
    "ThreadMemoryCost",
    "memory_costs",
    "ThreadSimResult",
    "ThreadWork",
    "simulate_parallel_region",
]
