"""NUMA placement and access-cost modelling.

Why Crusher's EPYC punishes unpinned runtimes (the paper's Numba result)
while Wombat's single-NUMA Altra does not: with four NUMA domains, a thread
whose pages live in another domain pays both lower bandwidth (the
interconnect) and higher latency, and an unpinned thread cannot keep its
pages local because the OS keeps moving it.

The model distinguishes where the *data* lives (:class:`MemoryHome`) from
where the *threads* live (:class:`~repro.sched.affinity.ThreadPlacement`)
and produces, per thread, the fraction of traffic that crosses domains and
the bandwidth inflation that traffic suffers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

from ..machine.cpu import CPUSpec
from .affinity import ThreadPlacement

__all__ = ["MemoryHome", "ThreadMemoryCost", "memory_costs"]


class MemoryHome(enum.Enum):
    """Where the matrices' pages were first touched.

    INTERLEAVED is the steady state of the paper's benchmarks: large
    allocations span domains and the excluded warm-up iteration touches
    everything, spreading pages round-robin.  SERIAL_NODE0 models naive
    single-threaded initialisation (all pages in domain 0) for ablations.
    """

    INTERLEAVED = "interleaved"
    SERIAL_NODE0 = "serial-node0"
    LOCAL = "local"  # perfectly distributed first-touch by pinned threads


@dataclass(frozen=True)
class ThreadMemoryCost:
    """Memory-system view of one thread."""

    thread: int
    domain: int
    remote_fraction: float       # of its traffic that crosses domains
    bandwidth_inflation: float   # effective bytes multiplier (>= 1)
    extra_latency_ns: float


def _remote_fraction(home: MemoryHome, domain: int, domains: int,
                     pinned: bool) -> float:
    if domains <= 1:
        return 0.0
    if home is MemoryHome.LOCAL and pinned:
        return 0.0
    if home is MemoryHome.SERIAL_NODE0:
        return 0.0 if domain == 0 else 1.0
    # INTERLEAVED: 1/domains of the pages are local.  Unpinned threads are
    # additionally out of place roughly all the time, but interleaving
    # already makes (domains-1)/domains remote, so the fraction is the same;
    # unpinned pays extra through migration (charged elsewhere).
    return (domains - 1) / domains


def memory_costs(cpu: CPUSpec, placement: ThreadPlacement,
                 home: MemoryHome = MemoryHome.INTERLEAVED) -> List[ThreadMemoryCost]:
    """Per-thread NUMA cost profile for a placement and data home."""
    out: List[ThreadMemoryCost] = []
    domains = cpu.numa_domains
    for t in range(placement.threads):
        dom = placement.domain_of(cpu, t)
        numa = cpu.numa[dom]
        frac = _remote_fraction(home, dom, domains, placement.pinned)
        # Remote bytes effectively consume 1/remote_bandwidth_factor of
        # channel capacity: model as inflated traffic on the fluid channel.
        inflation = 1.0 + frac * (1.0 / numa.remote_bandwidth_factor - 1.0)
        out.append(ThreadMemoryCost(
            thread=t,
            domain=dom,
            remote_fraction=frac,
            bandwidth_inflation=inflation,
            extra_latency_ns=frac * numa.remote_latency_ns,
        ))
    return out
