"""Machine models: CPUs, GPUs, caches, NUMA, and the Crusher/Wombat nodes."""

from .cache import CacheHierarchy, CacheLevel
from .cpu import CPUSpec, NUMADomain, uniform_numa
from .gpu import GPUSpec
from .catalog import (
    A100,
    AMPERE_ALTRA,
    CPU_CATALOG,
    EPYC_7A53,
    GPU_CATALOG,
    MI250X,
    cpu_by_name,
    gpu_by_name,
)
from .node import CRUSHER, NODE_CATALOG, WOMBAT, Node, node_by_name

__all__ = [
    "CacheHierarchy",
    "CacheLevel",
    "CPUSpec",
    "NUMADomain",
    "uniform_numa",
    "GPUSpec",
    "EPYC_7A53",
    "AMPERE_ALTRA",
    "MI250X",
    "A100",
    "CPU_CATALOG",
    "GPU_CATALOG",
    "cpu_by_name",
    "gpu_by_name",
    "Node",
    "CRUSHER",
    "WOMBAT",
    "NODE_CATALOG",
    "node_by_name",
]
