"""Cache hierarchy model.

The cost engine needs, for each kernel loop nest, an estimate of how many
bytes actually travel from DRAM versus being served out of cache.  We model
a hierarchy of inclusive levels, each with a capacity, line size and
sustained bandwidth, and provide the classic "does the reuse working set
fit" query used by the GEMM traffic analysis in :mod:`repro.sim.roofline`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..errors import MachineModelError

__all__ = ["CacheLevel", "CacheHierarchy"]


@dataclass(frozen=True)
class CacheLevel:
    """One level of cache.

    Parameters
    ----------
    name:
        ``"L1"``, ``"L2"``, ``"L3"``...
    size_bytes:
        Capacity of one instance of this level.
    line_bytes:
        Cache line size; traffic is counted in whole lines.
    latency_ns:
        Load-to-use latency of a hit in this level.
    bandwidth_gbs:
        Sustained bandwidth out of this level, per instance, in GB/s.
    shared_by:
        How many cores (CPU) or a whole device (GPU) share one instance.
        1 means private.
    """

    name: str
    size_bytes: int
    line_bytes: int = 64
    latency_ns: float = 1.0
    bandwidth_gbs: float = 100.0
    shared_by: int = 1

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise MachineModelError(f"{self.name}: size must be positive")
        if self.line_bytes <= 0 or self.line_bytes & (self.line_bytes - 1):
            raise MachineModelError(f"{self.name}: line size must be a positive power of two")
        if self.shared_by <= 0:
            raise MachineModelError(f"{self.name}: shared_by must be positive")
        if self.bandwidth_gbs <= 0 or self.latency_ns < 0:
            raise MachineModelError(f"{self.name}: invalid bandwidth/latency")

    def effective_size_per_core(self) -> float:
        """Capacity available to one core when all sharers are active."""
        return self.size_bytes / self.shared_by


@dataclass(frozen=True)
class CacheHierarchy:
    """Ordered cache levels, innermost (fastest, smallest) first."""

    levels: Tuple[CacheLevel, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        sizes = [lvl.size_bytes for lvl in self.levels]
        if any(a > b for a, b in zip(sizes, sizes[1:])):
            raise MachineModelError("cache levels must be ordered small to large")

    @classmethod
    def of(cls, *levels: CacheLevel) -> "CacheHierarchy":
        return cls(tuple(levels))

    @property
    def line_bytes(self) -> int:
        """Line size of the innermost level (used for traffic rounding)."""
        if not self.levels:
            return 64
        return self.levels[0].line_bytes

    def level(self, name: str) -> CacheLevel:
        for lvl in self.levels:
            if lvl.name.upper() == name.upper():
                return lvl
        raise MachineModelError(f"no cache level named {name!r}")

    def innermost_fitting(self, working_set_bytes: float,
                          active_sharers: Optional[int] = None) -> Optional[CacheLevel]:
        """Smallest level whose per-core share holds ``working_set_bytes``.

        ``active_sharers`` overrides each level's ``shared_by`` count when
        fewer cores are active than share the level (e.g. a 1-thread run
        gets the whole L3).  Returns ``None`` when nothing fits, i.e. the
        working set streams from DRAM.
        """
        for lvl in self.levels:
            sharers = lvl.shared_by if active_sharers is None else min(lvl.shared_by, active_sharers)
            if working_set_bytes <= lvl.size_bytes / max(1, sharers):
                return lvl
        return None

    def total_capacity(self) -> int:
        return sum(lvl.size_bytes for lvl in self.levels)

    def describe(self) -> List[str]:  # pragma: no cover - cosmetic
        return [
            f"{lvl.name}: {lvl.size_bytes // 1024} KiB, {lvl.line_bytes} B lines, "
            f"shared by {lvl.shared_by}"
            for lvl in self.levels
        ]
