"""CPU machine model: cores, SIMD units, NUMA topology.

A :class:`CPUSpec` captures exactly the hardware levers the paper attributes
performance differences to: core count and clock (peak compute), SIMD width
and FMA issue (vectorisation headroom), and the NUMA layout that makes
thread pinning matter on Crusher's 4-NUMA EPYC but not on Wombat's
single-NUMA Ampere Altra.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..core.types import Precision
from ..errors import MachineModelError
from .cache import CacheHierarchy

__all__ = ["NUMADomain", "CPUSpec"]


@dataclass(frozen=True)
class NUMADomain:
    """One NUMA region: a set of cores with local memory.

    ``remote_bandwidth_factor`` scales the bandwidth a core in this domain
    sees when touching memory homed in another domain; ``remote_latency_ns``
    is the additional load latency for such accesses.
    """

    domain_id: int
    cores: Tuple[int, ...]
    local_bandwidth_gbs: float
    remote_bandwidth_factor: float = 0.5
    remote_latency_ns: float = 60.0

    def __post_init__(self) -> None:
        if not self.cores:
            raise MachineModelError(f"NUMA domain {self.domain_id} has no cores")
        if not (0.0 < self.remote_bandwidth_factor <= 1.0):
            raise MachineModelError("remote_bandwidth_factor must be in (0, 1]")
        if self.local_bandwidth_gbs <= 0:
            raise MachineModelError("local bandwidth must be positive")


@dataclass(frozen=True)
class CPUSpec:
    """Specification of one multicore CPU socket/node.

    Parameters
    ----------
    name:
        Marketing name, e.g. ``"AMD EPYC 7A53"``.
    cores:
        Physical core count used by the study (SMT is not used; the paper
        runs one thread per core).
    clock_ghz:
        Sustained all-core clock.
    simd_bits:
        Vector register width (AVX2: 256, NEON: 128).
    fma_units:
        FMA pipes per core that can issue per cycle.
    native_fp16:
        Whether the core executes FP16 FMAs natively (Neoverse-N1: yes via
        FMLA; Zen 3: no, FP16 is converted and Julia's fallback is very
        slow — the paper reports "very low performance" on the AMD CPU).
    numa:
        NUMA domains.  Their core lists must partition ``range(cores)``.
    caches:
        The cache hierarchy.
    frontend_ipc:
        Scalar instructions retired per cycle for non-vector overhead work
        (index arithmetic, branches).  Used to cost un-vectorised code.
    """

    name: str
    cores: int
    clock_ghz: float
    simd_bits: int
    fma_units: int
    caches: CacheHierarchy
    numa: Tuple[NUMADomain, ...]
    native_fp16: bool = False
    frontend_ipc: float = 4.0
    #: Load and store pipes per core per cycle.
    load_ports: int = 2
    store_ports: int = 1
    #: FMA result latency in cycles: the loop-carried chain of an
    #: un-reassociated reduction.
    fma_latency_cycles: float = 4.0

    def __post_init__(self) -> None:
        if self.cores <= 0 or self.clock_ghz <= 0:
            raise MachineModelError("cores and clock must be positive")
        if self.simd_bits not in (64, 128, 256, 512):
            raise MachineModelError(f"unsupported simd width {self.simd_bits}")
        seen = sorted(c for d in self.numa for c in d.cores)
        if seen != list(range(self.cores)):
            raise MachineModelError(
                f"NUMA domains of {self.name} must partition cores 0..{self.cores - 1}"
            )

    # -- derived quantities ------------------------------------------------

    @property
    def numa_domains(self) -> int:
        return len(self.numa)

    def simd_lanes(self, precision: Precision) -> int:
        """Vector lanes per register for a given element width.

        FP16 on non-native hardware computes at FP32 width after conversion,
        so it gains no extra lanes.
        """
        bits = precision.bits
        if precision is Precision.FP16 and not self.native_fp16:
            bits = Precision.FP32.bits
        return max(1, self.simd_bits // bits)

    def flops_per_cycle_per_core(self, precision: Precision, vectorized: bool = True) -> float:
        """Peak MAC throughput of one core (2 flops per FMA lane)."""
        lanes = self.simd_lanes(precision) if vectorized else 1
        return 2.0 * lanes * self.fma_units

    def peak_gflops(self, precision: Precision, threads: int = 0, vectorized: bool = True) -> float:
        """Aggregate peak GFLOP/s with ``threads`` active cores (0 = all)."""
        active = self.cores if threads in (0, None) else min(threads, self.cores)
        return active * self.clock_ghz * self.flops_per_cycle_per_core(precision, vectorized)

    @property
    def total_bandwidth_gbs(self) -> float:
        """Aggregate DRAM bandwidth across all NUMA domains."""
        return sum(d.local_bandwidth_gbs for d in self.numa)

    def domain_of_core(self, core: int) -> NUMADomain:
        for domain in self.numa:
            if core in domain.cores:
                return domain
        raise MachineModelError(f"core {core} outside 0..{self.cores - 1}")

    def describe(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.name}: {self.cores} cores @ {self.clock_ghz} GHz, "
            f"{self.simd_bits}-bit SIMD x{self.fma_units} FMA, "
            f"{self.numa_domains} NUMA domain(s), "
            f"{self.total_bandwidth_gbs:.0f} GB/s DRAM"
        )


def uniform_numa(cores: int, domains: int, total_bandwidth_gbs: float,
                 remote_bandwidth_factor: float = 0.5,
                 remote_latency_ns: float = 60.0) -> Tuple[NUMADomain, ...]:
    """Evenly split ``cores`` and bandwidth across ``domains`` regions."""
    if cores % domains:
        raise MachineModelError(f"{cores} cores do not divide into {domains} domains")
    per = cores // domains
    bw = total_bandwidth_gbs / domains
    return tuple(
        NUMADomain(
            domain_id=d,
            cores=tuple(range(d * per, (d + 1) * per)),
            local_bandwidth_gbs=bw,
            remote_bandwidth_factor=remote_bandwidth_factor,
            remote_latency_ns=remote_latency_ns,
        )
        for d in range(domains)
    )


# re-export helper under the module's public names
__all__.append("uniform_numa")
