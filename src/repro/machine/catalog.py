"""Catalog of the four architectures in the study, from published specs.

Sources: AMD EPYC 7A53 ("Trento", the Frontier/Crusher custom Zen 3 part),
Ampere Altra Q80-30 (Neoverse-N1, Wombat), AMD Instinct MI250X (one GCD, as
the paper uses a single GPU), NVIDIA A100-40GB SXM (Wombat).  Absolute
numbers need only be plausible — the study's conclusions are ratios between
programming models on *fixed* hardware — but we keep them close to the
datasheets so the roofline regimes (compute- vs memory-bound crossovers)
land where they do on the real machines.
"""

from __future__ import annotations

from typing import Dict

from ..core.types import Precision
from .cache import CacheHierarchy, CacheLevel
from .cpu import CPUSpec, uniform_numa
from .gpu import GPUSpec

__all__ = [
    "EPYC_7A53",
    "AMPERE_ALTRA",
    "MI250X",
    "A100",
    "CPU_CATALOG",
    "GPU_CATALOG",
    "cpu_by_name",
    "gpu_by_name",
]

# --------------------------------------------------------------------------
# Crusher CPU: AMD EPYC 7A53, 64 cores, 4 NUMA regions (Table I).
# Zen 3: 256-bit AVX2, 2 FMA pipes. Crusher exposes 4 NUMA domains (NPS4).
# --------------------------------------------------------------------------
EPYC_7A53 = CPUSpec(
    name="AMD EPYC 7A53",
    cores=64,
    clock_ghz=2.0,
    simd_bits=256,
    fma_units=2,
    native_fp16=False,
    caches=CacheHierarchy.of(
        CacheLevel("L1", 32 * 1024, 64, latency_ns=1.0, bandwidth_gbs=400.0, shared_by=1),
        CacheLevel("L2", 512 * 1024, 64, latency_ns=3.0, bandwidth_gbs=200.0, shared_by=1),
        # 8 CCDs x 32 MiB; model as one shared pool per 8 cores.
        CacheLevel("L3", 32 * 1024 * 1024, 64, latency_ns=12.0, bandwidth_gbs=120.0, shared_by=8),
    ),
    numa=uniform_numa(
        cores=64,
        domains=4,
        total_bandwidth_gbs=205.0,  # 8 channels DDR4-3200
        remote_bandwidth_factor=0.55,
        remote_latency_ns=90.0,
    ),
)

# --------------------------------------------------------------------------
# Wombat CPU: Ampere Altra, 80 Neoverse-N1 cores, single NUMA (Table I).
# NEON is 128-bit with 2 FMA pipes; N1 executes FP16 FMLA natively, which is
# why Julia's half-precision "worked seamlessly" on Arm (Sec. IV-A).
# --------------------------------------------------------------------------
AMPERE_ALTRA = CPUSpec(
    name="Ampere Altra",
    cores=80,
    clock_ghz=3.0,
    simd_bits=128,
    fma_units=2,
    native_fp16=True,
    caches=CacheHierarchy.of(
        CacheLevel("L1", 64 * 1024, 64, latency_ns=1.0, bandwidth_gbs=400.0, shared_by=1),
        CacheLevel("L2", 1024 * 1024, 64, latency_ns=3.0, bandwidth_gbs=200.0, shared_by=1),
        CacheLevel("L3", 32 * 1024 * 1024, 64, latency_ns=15.0, bandwidth_gbs=150.0, shared_by=80),
    ),
    numa=uniform_numa(
        cores=80,
        domains=1,
        total_bandwidth_gbs=198.0,  # 8 channels DDR4-3200
    ),
)

# --------------------------------------------------------------------------
# Crusher GPU: AMD Instinct MI250X, one GCD (the paper targets one device).
# 110 CUs/GCD, vector FP64 = FP32 rate on CDNA2 (full-rate double).
# --------------------------------------------------------------------------
MI250X = GPUSpec(
    name="AMD MI250X (1 GCD)",
    compute_units=110,
    clock_ghz=1.7,
    fma_per_cycle={
        Precision.FP64: 64,   # 23.9 TF vector FP64 per GCD
        Precision.FP32: 64,   # CDNA2 vector FP32 is same rate as FP64
        Precision.FP16: 64,   # no packed-half gain in a scalar-accumulating kernel
    },
    warp_size=64,
    max_threads_per_cu=2048,
    max_blocks_per_cu=16,  # wavefront-slot limited in practice
    hbm_bandwidth_gbs=1638.0,
    launch_overhead_us=8.0,
    host_link_gbs=36.0,  # Infinity Fabric host link per GCD
    caches=CacheHierarchy.of(
        CacheLevel("L2", 8 * 1024 * 1024, 128, latency_ns=80.0, bandwidth_gbs=3500.0, shared_by=110),
    ),
    lsu_per_cycle=32,   # wave64: a 2-load inner loop issues in 4 cycles
    int_per_cycle=64,
    mem_latency_cycles=400.0,
)

# --------------------------------------------------------------------------
# Wombat GPU: NVIDIA A100-40GB SXM.
# 108 SMs; non-tensor FP64 = 32 FMA/cycle/SM (9.7 TF), FP32 = 64 (19.5 TF).
# The factor-2 FP64->FP32 jump is why "the vendor CUDA implementation
# increases significantly" at single precision (Sec. IV-B) while
# issue-bound high-level models gain only ~10%.
# --------------------------------------------------------------------------
A100 = GPUSpec(
    name="NVIDIA A100",
    compute_units=108,
    clock_ghz=1.41,
    fma_per_cycle={
        Precision.FP64: 32,
        Precision.FP32: 64,
        Precision.FP16: 64,  # hand-rolled kernel: FP16 inputs, FP32 accumulate
    },
    warp_size=32,
    max_threads_per_cu=2048,
    max_blocks_per_cu=32,
    hbm_bandwidth_gbs=1555.0,
    launch_overhead_us=6.0,
    host_link_gbs=25.0,  # PCIe gen4 x16 effective
    caches=CacheHierarchy.of(
        CacheLevel("L2", 40 * 1024 * 1024, 128, latency_ns=70.0, bandwidth_gbs=4000.0, shared_by=108),
    ),
    lsu_per_cycle=32,   # GA100: 32 LD/ST units per SM
    int_per_cycle=64,   # 64 INT32 lanes per SM
    mem_latency_cycles=350.0,
)

CPU_CATALOG: Dict[str, CPUSpec] = {
    "epyc-7a53": EPYC_7A53,
    "ampere-altra": AMPERE_ALTRA,
}

GPU_CATALOG: Dict[str, GPUSpec] = {
    "mi250x": MI250X,
    "a100": A100,
}


def cpu_by_name(name: str) -> CPUSpec:
    """Look up a CPU by catalog key or marketing name (case-insensitive)."""
    key = name.strip().lower()
    if key in CPU_CATALOG:
        return CPU_CATALOG[key]
    for spec in CPU_CATALOG.values():
        if spec.name.lower() == key:
            return spec
    raise KeyError(f"unknown CPU {name!r}; available: {sorted(CPU_CATALOG)}")


def gpu_by_name(name: str) -> GPUSpec:
    """Look up a GPU by catalog key or marketing name (case-insensitive)."""
    key = name.strip().lower()
    if key in GPU_CATALOG:
        return GPU_CATALOG[key]
    for spec in GPU_CATALOG.values():
        if spec.name.lower() == key:
            return spec
    raise KeyError(f"unknown GPU {name!r}; available: {sorted(GPU_CATALOG)}")
