"""GPU machine model: compute units, occupancy limits, HBM.

The model is deliberately at the granularity the paper reasons at: streaming
multiprocessors (NVIDIA) / compute units (AMD) with per-precision FMA
throughput, an occupancy-limited block scheduler, high-bandwidth memory with
a coalescing-sensitive effective bandwidth, and a fixed kernel-launch
overhead that dominates small problem sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ..core.types import Precision
from ..errors import MachineModelError
from .cache import CacheHierarchy

__all__ = ["GPUSpec"]


@dataclass(frozen=True)
class GPUSpec:
    """Specification of one GPU (for MI250X: one GCD, as the paper uses).

    Parameters
    ----------
    name:
        Marketing name.
    compute_units:
        SM (NVIDIA) or CU (AMD) count.
    clock_ghz:
        Sustained boost clock.
    fma_per_cycle:
        FMA operations per cycle per compute unit, keyed by precision
        (non-tensor-core vector rate; the paper's hand-rolled kernel cannot
        use tensor cores).
    warp_size:
        Threads per warp (32) / wavefront (64).
    max_threads_per_cu:
        Occupancy limit on resident threads per SM/CU.
    max_blocks_per_cu:
        Occupancy limit on resident blocks per SM/CU.
    hbm_bandwidth_gbs:
        Peak HBM bandwidth.
    launch_overhead_us:
        Fixed host-side cost per kernel launch.
    host_link_gbs:
        Host<->device interconnect bandwidth (PCIe4 or Infinity Fabric),
        used by the transfer model.
    caches:
        Device-side cache hierarchy (L2 matters for GEMM blocking).
    """

    name: str
    compute_units: int
    clock_ghz: float
    fma_per_cycle: Mapping[Precision, int]
    warp_size: int
    max_threads_per_cu: int
    max_blocks_per_cu: int
    hbm_bandwidth_gbs: float
    launch_overhead_us: float
    host_link_gbs: float
    caches: CacheHierarchy = field(default_factory=CacheHierarchy)
    #: Load/store unit throughput: memory instructions retired per cycle per
    #: CU (independent of how many transactions each expands to).
    lsu_per_cycle: int = 16
    #: Integer/branch ALU throughput per cycle per CU.
    int_per_cycle: int = 64
    #: FMA result latency in cycles (the loop-carried accumulator chain).
    fma_latency_cycles: int = 4
    #: Memory transactions (cache-line requests) served per cycle per CU;
    #: caps uncoalesced access patterns before HBM bandwidth does.
    transactions_per_cycle: float = 4.0
    #: Average load-to-use latency of a device-memory access (L2-hit /
    #: HBM blend), in cycles; what occupancy must hide.
    mem_latency_cycles: float = 350.0

    def __post_init__(self) -> None:
        if self.compute_units <= 0 or self.clock_ghz <= 0:
            raise MachineModelError("compute units and clock must be positive")
        if self.warp_size not in (32, 64):
            raise MachineModelError("warp size must be 32 or 64")
        if self.max_threads_per_cu <= 0 or self.max_blocks_per_cu <= 0:
            raise MachineModelError("occupancy limits must be positive")
        missing = [p for p in (Precision.FP64, Precision.FP32) if p not in self.fma_per_cycle]
        if missing:
            raise MachineModelError(f"{self.name}: fma_per_cycle missing {missing}")

    # -- derived quantities ------------------------------------------------

    def fma_rate(self, precision: Precision) -> int:
        """FMA/cycle/CU; FP16 falls back to the FP32 rate when unlisted
        (the hand-rolled kernel stores to an FP32 accumulator, so the
        vector pipeline runs at FP32 width without packed-half tricks)."""
        if precision in self.fma_per_cycle:
            return self.fma_per_cycle[precision]
        return self.fma_per_cycle[Precision.FP32]

    def peak_gflops(self, precision: Precision) -> float:
        """Peak vector GFLOP/s (2 flops per FMA)."""
        return 2.0 * self.fma_rate(precision) * self.compute_units * self.clock_ghz

    def machine_balance(self, precision: Precision) -> float:
        """Flops per byte at which the roofline ridge sits."""
        return self.peak_gflops(precision) / self.hbm_bandwidth_gbs

    def describe(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.name}: {self.compute_units} CUs @ {self.clock_ghz} GHz, "
            f"{self.peak_gflops(Precision.FP64) / 1000:.1f} TF fp64 / "
            f"{self.peak_gflops(Precision.FP32) / 1000:.1f} TF fp32, "
            f"{self.hbm_bandwidth_gbs:.0f} GB/s HBM"
        )
