"""Node compositions: the two OLCF systems used by the paper.

A :class:`Node` bundles one CPU spec with zero or more GPU specs and a
human-readable identity, so experiments can be phrased exactly as the paper
does ("Crusher multithreaded CPU", "Wombat NVIDIA A100").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from ..errors import MachineModelError
from .catalog import A100, AMPERE_ALTRA, EPYC_7A53, MI250X
from .cpu import CPUSpec
from .gpu import GPUSpec

__all__ = ["Node", "CRUSHER", "WOMBAT", "NODE_CATALOG", "node_by_name"]


@dataclass(frozen=True)
class Node:
    """One HPC node: a CPU plus attached GPUs.

    ``gpu_count`` records how many physical devices the node carries; the
    paper's experiments always use a single GPU (``--gres=gpu:1``), so
    :meth:`gpu` returns the spec for one device.
    """

    name: str
    cpu: CPUSpec
    gpus: Tuple[GPUSpec, ...] = field(default_factory=tuple)
    gpu_count: int = 0
    description: str = ""

    def __post_init__(self) -> None:
        if self.gpus and self.gpu_count < 1:
            raise MachineModelError(f"{self.name}: gpus present but gpu_count={self.gpu_count}")
        if not self.gpus and self.gpu_count:
            raise MachineModelError(f"{self.name}: gpu_count={self.gpu_count} but no GPU spec")

    @property
    def has_gpu(self) -> bool:
        return bool(self.gpus)

    def gpu(self, index: int = 0) -> GPUSpec:
        if not self.gpus:
            raise MachineModelError(f"{self.name} has no GPUs")
        return self.gpus[min(index, len(self.gpus) - 1)]

    def describe(self) -> str:  # pragma: no cover - cosmetic
        lines = [f"{self.name}: {self.description}", f"  CPU: {self.cpu.describe()}"]
        for g in self.gpus:
            lines.append(f"  GPU x{self.gpu_count}: {g.describe()}")
        return "\n".join(lines)


#: Frontier's test bed: AMD EPYC 7A53 + 8 MI250X GCDs (4 cards).
CRUSHER = Node(
    name="Crusher",
    cpu=EPYC_7A53,
    gpus=(MI250X,),
    gpu_count=8,
    description="Frontier test bed at OLCF (AMD CPU + MI250X GPUs)",
)

#: Arm evaluation system: Ampere Altra + 2 NVIDIA A100.
WOMBAT = Node(
    name="Wombat",
    cpu=AMPERE_ALTRA,
    gpus=(A100,),
    gpu_count=2,
    description="Arm test bed at OLCF (Ampere Altra CPU + NVIDIA A100 GPUs)",
)

NODE_CATALOG: Dict[str, Node] = {
    "crusher": CRUSHER,
    "wombat": WOMBAT,
}


def node_by_name(name: str) -> Node:
    """Look up Crusher or Wombat by name (case-insensitive)."""
    key = name.strip().lower()
    if key not in NODE_CATALOG:
        raise KeyError(f"unknown node {name!r}; available: {sorted(NODE_CATALOG)}")
    return NODE_CATALOG[key]
