"""Deterministic fault injection for sweep campaigns.

The paper's portability metric already encodes graceful degradation —
Table III counts unsupported (model, architecture) cells as e_i = 0
rather than aborting the study — and real campaigns on Crusher/Wombat
contend with node flakiness on top: OOM kills, hung kernels that time
out, thermal jitter spikes.  This module models those failure classes so
the sweep engine's retry/degraded-mode machinery can be exercised (and
tested) reproducibly.

Everything is keyed deterministic, exactly like
:mod:`repro.sim.variability`: whether attempt *k* of a given cell faults,
and with which :class:`FaultKind`, is a pure function of the fault seed
and the cell coordinates.  Same seed ⇒ same faults ⇒ same retry counts ⇒
byte-identical results — the property the engine's determinism tests pin.

Faults live in *simulated* time: each failed attempt charges its class
cost (a timeout burns its full hang budget, an OOM dies quickly) against
the retry policy's per-cell budget, without ever sleeping for real.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..core.types import MatrixShape
from ..errors import ConfigError
from .variability import rng_for

__all__ = ["FaultKind", "Fault", "FaultConfig", "FaultInjector",
           "FAULT_COSTS"]


class FaultKind(enum.Enum):
    """Failure class of one injected fault."""

    OOM = "oom"                   # allocation failure; dies almost instantly
    TIMEOUT = "timeout"           # hung kernel; burns its full hang budget
    JITTER_SPIKE = "jitter-spike"  # thermal throttle; attempt discarded


#: Simulated seconds one failed attempt of each class burns before the
#: harness notices and reclaims the cell.
FAULT_COSTS: Dict[FaultKind, float] = {
    FaultKind.OOM: 0.002,
    FaultKind.TIMEOUT: 30.0,
    FaultKind.JITTER_SPIKE: 1.5,
}


@dataclass(frozen=True)
class Fault:
    """One injected fault: which class hit which attempt of which cell."""

    kind: FaultKind
    cell: str
    attempt: int
    cost_s: float
    permanent: bool = False

    def describe(self) -> str:
        flavour = "permanent" if self.permanent else "transient"
        return (f"injected {flavour} {self.kind.value} on {self.cell} "
                f"(attempt {self.attempt}, {self.cost_s:g}s simulated)")


@dataclass(frozen=True)
class FaultConfig:
    """Deterministic fault model of one campaign.

    ``rate`` is the per-attempt transient-fault probability; ``always``
    lists cells that fail *permanently* on every attempt (patterns
    ``model``, ``model@m`` or ``model@mxnxk``), modelling e.g. a kernel
    that reliably OOMs at one problem size.  ``enabled`` is derived: a
    default-constructed config injects nothing.
    """

    rate: float = 0.0
    seed: int = 2023
    kinds: Tuple[FaultKind, ...] = (FaultKind.OOM, FaultKind.TIMEOUT,
                                    FaultKind.JITTER_SPIKE)
    always: Tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ConfigError(f"fault rate {self.rate} outside [0, 1]")
        if not self.kinds:
            raise ConfigError("fault config needs at least one fault kind")

    @property
    def enabled(self) -> bool:
        """Whether this config injects any faults at all."""
        return self.rate > 0.0 or bool(self.always)

    # -- parsing ----------------------------------------------------------

    @classmethod
    def parse(cls, spec: str) -> "FaultConfig":
        """Parse a CLI/env spec like ``rate=0.2,seed=7,kinds=oom|timeout,
        always=numba@512+julia@1024``.

        A bare float (``"0.2"``) is shorthand for ``rate=0.2``.  ``always``
        patterns are ``+``-separated since ``,`` splits the option list.
        Duplicate keys are rejected (``rate=0.1,rate=0.9`` used to win
        silently with the last value) and ``rate`` must lie in [0, 1].
        """
        spec = spec.strip()
        if not spec:
            raise ConfigError("empty fault spec")
        kwargs: Dict[str, object] = {}
        try:
            kwargs["rate"] = float(spec)
            return cls(**kwargs)  # bare-float shorthand
        except ValueError:
            pass
        seen: set = set()
        for item in spec.split(","):
            item = item.strip()
            if not item:
                continue
            if "=" not in item:
                raise ConfigError(f"fault spec item {item!r} is not key=value")
            key, _, value = item.partition("=")
            key = key.strip()
            value = value.strip()
            if key in seen:
                raise ConfigError(f"duplicate fault spec key {key!r}")
            seen.add(key)
            if key == "rate":
                try:
                    rate = float(value)
                except ValueError as exc:
                    raise ConfigError(f"fault rate {value!r} is not a number") from exc
                if not 0.0 <= rate <= 1.0:
                    raise ConfigError(
                        f"fault rate {rate:g} outside [0, 1]; give a "
                        f"per-attempt probability")
                kwargs["rate"] = rate
            elif key == "seed":
                try:
                    kwargs["seed"] = int(value)
                except ValueError as exc:
                    raise ConfigError(f"fault seed {value!r} is not an integer") from exc
            elif key == "kinds":
                try:
                    kwargs["kinds"] = tuple(FaultKind(k.strip())
                                            for k in value.split("|") if k.strip())
                except ValueError as exc:
                    known = ", ".join(k.value for k in FaultKind)
                    raise ConfigError(
                        f"unknown fault kind in {value!r}; known: {known}") from exc
            elif key == "always":
                kwargs["always"] = tuple(p.strip() for p in value.split("+")
                                         if p.strip())
            else:
                raise ConfigError(
                    f"unknown fault spec key {key!r}; "
                    "known: rate, seed, kinds, always")
        return cls(**kwargs)

    # -- identity ---------------------------------------------------------

    def payload(self) -> dict:
        """Canonical JSON-serialisable form (fingerprint / export block)."""
        return {
            "rate": self.rate,
            "seed": self.seed,
            "kinds": [k.value for k in self.kinds],
            "always": list(self.always),
        }

    def describe(self) -> str:
        if not self.enabled:
            return "faults disabled"
        parts = [f"rate={self.rate:g}", f"seed={self.seed}"]
        if self.always:
            parts.append("always=" + "+".join(self.always))
        return "faults: " + ", ".join(parts)


def _pattern_matches(pattern: str, model: str, shape: MatrixShape) -> bool:
    """``model`` / ``model@m`` / ``model@mxnxk`` cell-pattern matching."""
    name, _, size = pattern.partition("@")
    if name != model:
        return False
    if not size:
        return True
    if "x" in size:
        try:
            m, n, k = (int(p) for p in size.split("x"))
        except ValueError:
            return False
        return (shape.m, shape.n, shape.k) == (m, n, k)
    try:
        return shape.m == int(size)
    except ValueError:
        return False


class FaultInjector:
    """Stateless, deterministic probe: does attempt *k* of a cell fault?

    One injector per engine run.  The probe draws from a generator keyed
    on ``(fault seed, experiment id, cell, attempt)`` — independent of
    the variability model's streams, so injecting faults never changes
    the timing samples of the attempts that succeed.
    """

    def __init__(self, config: FaultConfig) -> None:
        self.config = config

    def probe(self, exp_id: str, model: str, shape: MatrixShape,
              attempt: int, lane: str = "") -> Optional[Fault]:
        """The fault hitting this attempt, or ``None`` if it runs clean.

        ``lane`` namespaces the draw: fallback serves (breaker routing)
        pass the serving lane so their fault stream is disjoint from the
        native lane's — rerouting a cell must never change which faults
        any *other* attempt sees.  The default empty lane keeps native
        attempts on exactly the pre-health-layer streams.
        """
        cell = f"{model}@{shape}"
        stream = f"{cell}:{lane}" if lane else cell
        for pattern in self.config.always:
            if _pattern_matches(pattern, model, shape):
                kind = self._kind_for(exp_id, stream, attempt)
                return Fault(kind=kind, cell=cell, attempt=attempt,
                             cost_s=FAULT_COSTS[kind], permanent=True)
        if self.config.rate <= 0.0:
            return None
        rng = rng_for(self.config.seed, f"fault:{exp_id}:{stream}:{attempt}")
        if float(rng.uniform()) >= self.config.rate:
            return None
        kind = self._kind_for(exp_id, stream, attempt)
        return Fault(kind=kind, cell=cell, attempt=attempt,
                     cost_s=FAULT_COSTS[kind])

    def _kind_for(self, exp_id: str, stream: str, attempt: int) -> FaultKind:
        rng = rng_for(self.config.seed,
                      f"fault-kind:{exp_id}:{stream}:{attempt}")
        return self.config.kinds[int(rng.integers(len(self.config.kinds)))]
