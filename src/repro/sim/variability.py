"""Run-to-run variability model.

The paper reports "the most likely performance value without doing an
exhaustive variability analysis" and treats variability "as a
characteristic of the system, rather than an effect of the programming
model" (Sec. IV).  We model it the same way: each *node* has a noise
coefficient, samples are log-normally jittered around the nominal time
(runtimes are positive and right-skewed), and the first repetition carries
the warm-up cost (JIT compilation, first-touch page faults, device
context creation) that the methodology excludes.

Everything is keyed deterministic: the same (seed, experiment key,
repetition) always yields the same sample, so benchmark output is
reproducible bit-for-bit.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List

import numpy as np

__all__ = ["VariabilityModel", "NODE_VARIABILITY", "rng_for"]

#: Observed-run scatter per system.  Crusher's early-access software stack
#: was noisier than Wombat's (the paper calls out "the variability on this
#: particular system" for the MI250X).
NODE_VARIABILITY = {
    "Crusher": 0.030,
    "Wombat": 0.015,
}


def rng_for(seed: int, key: str) -> np.random.Generator:
    """Deterministic generator for one (seed, key) stream.

    The shared keyed-randomness primitive of the simulator: the
    variability model draws its jitter from it and the fault injector its
    fault stream, each under disjoint key namespaces, so the two never
    perturb each other's samples.
    """
    digest = hashlib.sha256(f"{seed}:{key}".encode()).digest()
    return np.random.default_rng(int.from_bytes(digest[:8], "little"))


# Backwards-compatible private alias (pre-fault-layer name).
_rng_for = rng_for


@dataclass(frozen=True)
class VariabilityModel:
    """Deterministic noise generator for one experiment run."""

    seed: int = 2023
    sigma: float = 0.02

    @classmethod
    def for_node(cls, node_name: str, seed: int = 2023) -> "VariabilityModel":
        return cls(seed=seed, sigma=NODE_VARIABILITY.get(node_name, 0.02))

    def samples(self, nominal_seconds: float, key: str, reps: int,
                warmup_extra_seconds: float = 0.0) -> List[float]:
        """``reps`` timing samples; sample 0 includes the warm-up cost.

        Log-normal jitter with median = nominal: exp(sigma * N(0,1)).
        """
        if nominal_seconds <= 0:
            raise ValueError("nominal time must be positive")
        if reps < 1:
            raise ValueError("need at least one repetition")
        rng = rng_for(self.seed, key)
        jitter = np.exp(self.sigma * rng.standard_normal(reps))
        out = (nominal_seconds * jitter).tolist()
        out[0] += warmup_extra_seconds
        return out
