"""End-to-end kernel execution simulation.

Glues the pieces together for one kernel run:

* CPU: instruction mix -> per-core cycle cost (port model) -> chunked over
  the worksharing loop -> :func:`repro.sched.thread_sim.simulate_parallel_region`
  with the cache-filtered DRAM traffic.
* GPU: delegated to :func:`repro.gpu.warp_sim.simulate_gpu_kernel`.

Model-specific quality factors arrive via :class:`CPUIssueProfile` /
:class:`repro.gpu.warp_sim.IssueProfile`; everything else is shared
machinery, so two models differ only by what their toolchains actually do
differently.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.types import MatrixShape
from ..ir.analysis import instruction_mix
from ..ir.nodes import Kernel, ParallelKind
from ..machine.cpu import CPUSpec
from ..sched.affinity import PinPolicy, place_threads
from ..sched.chunk import chunk_sizes
from ..sched.numa import MemoryHome
from ..sched.thread_sim import ThreadWork, simulate_parallel_region
from .roofline import estimate_dram_traffic

__all__ = ["CPUIssueProfile", "CPUKernelTiming", "simulate_cpu_kernel",
           "cpu_cycles_total"]


@dataclass(frozen=True)
class CPUIssueProfile:
    """Per-model code-quality adjustments for the CPU pipeline model.

    ``issue_multiplier`` scales the per-iteration cycle cost relative to
    what the vendor compiler achieves on the same IR — the residual codegen
    gap (scheduling quality, addressing mode selection, prefetching) that
    the structural model does not capture.  ``extra_int_per_inner_iter``
    adds bookkeeping instructions per innermost iteration (e.g. a JIT
    runtime's index wrap-around checks).  ``mem_efficiency`` derates the
    achievable DRAM bandwidth (allocator placement, page granularity).
    """

    issue_multiplier: float = 1.0
    extra_int_per_inner_iter: float = 0.0
    mem_efficiency: float = 1.0
    per_call_overhead_s: float = 0.0


@dataclass(frozen=True)
class CPUKernelTiming:
    """Breakdown of one simulated CPU parallel GEMM."""

    total_seconds: float
    compute_seconds: float       # aggregate single-thread compute, pre-split
    dram_bytes: float
    bound: str                   # "compute" | "memory"
    threads: int
    imbalance: float
    fork_join_seconds: float

    def gflops(self, shape: MatrixShape) -> float:
        return shape.flops / self.total_seconds / 1e9


def cpu_cycles_total(kernel: Kernel, shape: MatrixShape, cpu: CPUSpec,
                     profile: CPUIssueProfile = CPUIssueProfile()) -> float:
    """Aggregate core-cycles to retire one kernel execution (all threads'
    work summed), from the port-pressure model."""
    mix = instruction_mix(kernel, shape, line_bytes=cpu.caches.line_bytes)

    fma_cycles = mix.fma_issues / cpu.fma_units
    load_cycles = mix.load_issues / cpu.load_ports
    store_cycles = mix.store_issues / cpu.store_ports
    int_total = (mix.int_ops + mix.branch_ops + mix.guard_ops
                 + profile.extra_int_per_inner_iter * mix.inner_iterations)
    int_cycles = int_total / cpu.frontend_ipc

    cycles = max(fma_cycles, load_cycles, store_cycles, int_cycles)

    if mix.has_reduction_chain:
        # serial accumulator chain: latency per dependent FMA, divided by
        # the independent streams unrolling/vectorisation provide
        fma_execs = mix.flops / 2.0
        chain = fma_execs * cpu.fma_latency_cycles / mix.accum_streams
        cycles = max(cycles, chain)

    return cycles * profile.issue_multiplier


def simulate_cpu_kernel(
    kernel: Kernel,
    cpu: CPUSpec,
    shape: MatrixShape,
    threads: int,
    pin: PinPolicy = PinPolicy.COMPACT,
    profile: CPUIssueProfile = CPUIssueProfile(),
    home: MemoryHome = MemoryHome.INTERLEAVED,
) -> CPUKernelTiming:
    """Simulate one multithreaded execution of a CPU GEMM kernel."""
    parallel_loops = [l for l in kernel.loops if l.parallel is ParallelKind.THREADS]
    if len(parallel_loops) != 1:
        raise ValueError(f"{kernel.name}: expected exactly one worksharing loop")
    ploop = parallel_loops[0]
    trip = ploop.axis.extent(shape.m, shape.n, shape.k)

    total_cycles = cpu_cycles_total(kernel, shape, cpu, profile)
    total_compute_s = total_cycles / (cpu.clock_ghz * 1e9)

    traffic = estimate_dram_traffic(kernel, shape, cpu.caches,
                                    active_workers=min(threads, trip))
    total_bytes = traffic.dram_bytes / max(1e-9, profile.mem_efficiency)

    placement = place_threads(cpu, threads, pin)
    sizes = chunk_sizes(trip, threads)
    work = []
    for t, size in enumerate(sizes):
        share = size / trip if trip else 0.0
        work.append(ThreadWork(
            thread=t,
            compute_seconds=total_compute_s * share,
            dram_bytes=total_bytes * share,
        ))

    result = simulate_parallel_region(cpu, placement, work, home=home)
    total = result.total_seconds + profile.per_call_overhead_s

    mem_seconds = total_bytes / (cpu.total_bandwidth_gbs * 1e9)
    bound = "memory" if mem_seconds > total_compute_s / max(1, threads) else "compute"

    return CPUKernelTiming(
        total_seconds=total,
        compute_seconds=total_compute_s,
        dram_bytes=total_bytes,
        bound=bound,
        threads=threads,
        imbalance=result.imbalance,
        fork_join_seconds=result.fork_join_seconds,
    )
