"""Cost engine: fluid bandwidth simulation, roofline/cache model, executor."""

from .executor import (
    CPUIssueProfile,
    CPUKernelTiming,
    cpu_cycles_total,
    simulate_cpu_kernel,
)
from .blocking import (
    BlockedEstimate,
    best_tile_for,
    blocked_gemm_estimate,
    blocked_traffic_bytes,
)
from .faults import FAULT_COSTS, Fault, FaultConfig, FaultInjector, FaultKind
from .fluid import Channel, Flow, FlowResult, FluidSimulation
from .roofline import (
    ArrayTraffic,
    TrafficEstimate,
    estimate_dram_traffic,
    roofline_time,
)
from .variability import NODE_VARIABILITY, VariabilityModel, rng_for

__all__ = [
    "BlockedEstimate",
    "best_tile_for",
    "blocked_gemm_estimate",
    "blocked_traffic_bytes",
    "CPUIssueProfile",
    "CPUKernelTiming",
    "simulate_cpu_kernel",
    "cpu_cycles_total",
    "Channel",
    "Flow",
    "FlowResult",
    "FluidSimulation",
    "ArrayTraffic",
    "TrafficEstimate",
    "estimate_dram_traffic",
    "roofline_time",
    "NODE_VARIABILITY",
    "VariabilityModel",
    "rng_for",
    "FAULT_COSTS",
    "Fault",
    "FaultConfig",
    "FaultInjector",
    "FaultKind",
]
