"""Analytic model of cache-blocked (tiled) GEMM.

The paper's kernels are deliberately *naive* — "a performance lower-bound
... to isolate the effect of each programming model" (Sec. I).  This
module quantifies what that choice leaves on the table: the classic
three-loop tiling analysis, giving DRAM traffic and predicted performance
as a function of tile size, validated against the repository's real
``gemm_blocked`` kernel.

For square tiles of side ``b`` with three resident tiles (A, B and C
blocks) the per-tile-multiply traffic is ``3 b^2 w`` bytes for ``2 b^3``
flops, so the arithmetic intensity grows linearly with the tile:

    AI(b) = 2 b / (3 w)   flops/byte

versus the naive kernel's layout-dependent constant.  The optimal tile is
the largest with ``3 b^2 w`` per-core cache; beyond it the tiles thrash
and the model degrades to the naive traffic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.types import MatrixShape, Precision
from ..machine.cpu import CPUSpec

__all__ = ["BlockedEstimate", "blocked_traffic_bytes", "blocked_gemm_estimate",
           "best_tile_for"]


@dataclass(frozen=True)
class BlockedEstimate:
    """Predicted behaviour of a tiled GEMM at one tile size."""

    tile: int
    dram_bytes: float
    arithmetic_intensity: float
    compute_seconds: float
    memory_seconds: float

    @property
    def seconds(self) -> float:
        return max(self.compute_seconds, self.memory_seconds)

    def gflops(self, shape: MatrixShape) -> float:
        return shape.flops / self.seconds / 1e9

    @property
    def bound(self) -> str:
        return ("memory" if self.memory_seconds > self.compute_seconds
                else "compute")


def blocked_traffic_bytes(shape: MatrixShape, tile: int,
                          precision: Precision) -> float:
    """DRAM traffic of a three-loop tiled GEMM with ``tile``-square blocks.

    Standard result: each of the ``(M/b)(N/b)(K/b)`` tile-multiplies loads
    one A tile and one B tile (``2 b^2 w``); each C tile is read and
    written once per (i, j) block across the k sweep when it stays
    resident, i.e. ``2 M N w`` total.
    """
    if tile < 1:
        raise ValueError("tile must be >= 1")
    w = precision.bytes
    m, n, k = shape.m, shape.n, shape.k
    tiles_i = math.ceil(m / tile)
    tiles_j = math.ceil(n / tile)
    tiles_k = math.ceil(k / tile)
    ab_traffic = tiles_i * tiles_j * tiles_k * 2 * tile * tile * w
    c_traffic = 2 * m * n * precision.accum_dtype.itemsize
    return float(ab_traffic + c_traffic)


def best_tile_for(cpu: CPUSpec, precision: Precision,
                  level: str = "L2") -> int:
    """Largest power-of-two tile with three resident tiles in the given
    per-core cache level."""
    cache = cpu.caches.level(level)
    budget = cache.effective_size_per_core()
    w = precision.bytes
    tile = 1
    while 3 * (tile * 2) ** 2 * w <= budget:
        tile *= 2
    return tile


def blocked_gemm_estimate(
    cpu: CPUSpec,
    shape: MatrixShape,
    tile: int,
    precision: Precision = Precision.FP64,
    threads: int = 0,
    compute_efficiency: float = 0.8,
) -> BlockedEstimate:
    """Roofline estimate of a tiled GEMM on ``cpu``.

    ``compute_efficiency`` is the fraction of SIMD peak the tile
    micro-kernel sustains.  The default 0.8 reflects register blocking:
    unlike the naive inner loop (load-port-bound at ~50% of peak in the
    port model), a register-tiled micro-kernel amortises its loads over
    many FMAs and approaches the FMA pipes' limit; hand-tuned BLAS
    reaches ~0.9.  If the three tiles exceed the per-core cache, traffic
    degrades toward the naive kernel's (modelled by clamping the tile to
    the cache-fitting size for the traffic term).
    """
    t = threads if threads else cpu.cores
    w = precision.bytes
    fit = best_tile_for(cpu, precision)
    effective_tile = min(tile, fit)

    traffic = blocked_traffic_bytes(shape, effective_tile, precision)
    peak = cpu.peak_gflops(precision, threads=t) * compute_efficiency
    compute_seconds = shape.flops / (peak * 1e9)
    memory_seconds = traffic / (cpu.total_bandwidth_gbs * 1e9)
    return BlockedEstimate(
        tile=tile,
        dram_bytes=traffic,
        arithmetic_intensity=shape.flops / traffic,
        compute_seconds=compute_seconds,
        memory_seconds=memory_seconds,
    )
