"""Fluid-flow bandwidth simulation via progressive filling (water-filling).

The execution simulators model memory traffic as *flows*: a thread (or GPU
wave) needs to move ``bytes`` over a shared channel (a NUMA domain's DRAM
controllers, a GPU's HBM) but can consume at most ``demand_rate`` bytes/s —
the rate at which its compute side can retire the data.  The channel serves
concurrent flows max-min fairly.

The simulation is event-driven over flow completions: at each step the
max-min fair allocation is computed by progressive filling (repeatedly
granting the un-capped flows an equal share of the residual capacity), the
earliest finishing flow is advanced to completion, and the allocation is
recomputed.  This is the classical fluid approximation used in network and
memory-contention modelling — exact for constant-rate flows, and orders of
magnitude cheaper than packet/transaction-level simulation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

__all__ = ["Flow", "Channel", "FluidSimulation", "FlowResult"]

_EPS = 1e-15


@dataclass
class Flow:
    """One bandwidth consumer.

    Parameters
    ----------
    name:
        Identifier for results and traces.
    bytes:
        Total bytes to move.  Zero-byte flows complete at ``start``.
    demand_rate:
        Upper bound on this flow's consumption in bytes/s (``inf`` for an
        unconstrained stream).
    channel:
        Name of the shared channel this flow draws from.
    start:
        Arrival time in seconds.
    """

    name: str
    bytes: float
    demand_rate: float
    channel: str
    start: float = 0.0

    def __post_init__(self) -> None:
        if self.bytes < 0:
            raise ValueError(f"flow {self.name}: negative bytes")
        if self.demand_rate <= 0:
            raise ValueError(f"flow {self.name}: demand rate must be positive")


@dataclass(frozen=True)
class Channel:
    """A shared bandwidth resource (bytes/s)."""

    name: str
    capacity: float

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError(f"channel {self.name}: capacity must be positive")


@dataclass(frozen=True)
class FlowResult:
    name: str
    start: float
    finish: float

    @property
    def duration(self) -> float:
        return self.finish - self.start


def _max_min_rates(active: Sequence[Flow], channels: Dict[str, Channel]) -> Dict[str, float]:
    """Max-min fair rates for the active flows, respecting demand caps.

    Progressive filling per channel: all flows on a channel start equal;
    flows capped by their demand free their unused share for the rest.
    """
    rates: Dict[str, float] = {}
    by_channel: Dict[str, List[Flow]] = {}
    for f in active:
        by_channel.setdefault(f.channel, []).append(f)
    for cname, flows in by_channel.items():
        cap = channels[cname].capacity
        remaining = sorted(flows, key=lambda f: f.demand_rate)
        budget = cap
        n = len(remaining)
        for idx, f in enumerate(remaining):
            fair = budget / (n - idx)
            got = min(fair, f.demand_rate)
            rates[f.name] = got
            budget -= got
    return rates


class FluidSimulation:
    """Run a set of flows over shared channels to completion."""

    def __init__(self, channels: Sequence[Channel]):
        self.channels = {c.name: c for c in channels}

    def run(self, flows: Sequence[Flow]) -> Dict[str, FlowResult]:
        """Simulate all flows; returns completion times keyed by flow name."""
        for f in flows:
            if f.channel not in self.channels:
                raise KeyError(f"flow {f.name}: unknown channel {f.channel!r}")
        names = [f.name for f in flows]
        if len(set(names)) != len(names):
            raise ValueError("flow names must be unique")

        pending = sorted(flows, key=lambda f: f.start)
        remaining: Dict[str, float] = {}
        active: Dict[str, Flow] = {}
        results: Dict[str, FlowResult] = {}
        t = 0.0
        i = 0  # next pending arrival

        # Immediately complete empty flows at their start time.
        nonempty = []
        for f in pending:
            if f.bytes <= _EPS:
                results[f.name] = FlowResult(f.name, f.start, f.start)
            else:
                nonempty.append(f)
        pending = nonempty

        if pending:
            t = pending[0].start

        while i < len(pending) or active:
            # admit arrivals at current time
            while i < len(pending) and pending[i].start <= t + _EPS:
                f = pending[i]
                active[f.name] = f
                remaining[f.name] = f.bytes
                i += 1

            if not active:
                t = pending[i].start
                continue

            rates = _max_min_rates(list(active.values()), self.channels)

            # time to next event: earliest completion or next arrival
            dt_complete = math.inf
            for name, f in active.items():
                r = rates[name]
                if r > _EPS:
                    dt_complete = min(dt_complete, remaining[name] / r)
            dt_arrival = (pending[i].start - t) if i < len(pending) else math.inf
            dt = min(dt_complete, dt_arrival)
            if not math.isfinite(dt):
                raise RuntimeError("fluid simulation stalled (zero rates, no arrivals)")

            # advance
            for name in list(active):
                remaining[name] -= rates[name] * dt
            t += dt

            for name in list(active):
                if remaining[name] <= _EPS * max(1.0, active[name].bytes):
                    f = active.pop(name)
                    results[name] = FlowResult(name, f.start, t)
                    del remaining[name]

        return results

    def makespan(self, flows: Sequence[Flow]) -> float:
        """Finish time of the last flow (0 for no flows)."""
        results = self.run(flows)
        return max((r.finish for r in results.values()), default=0.0)
