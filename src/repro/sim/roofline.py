"""Cache-aware DRAM traffic and roofline helpers.

The memory half of the cost model.  For each array reference the IR
analysis supplies the footprint, the temporal ``reuse_factor`` (how many
sweeps over the data the loop nest makes), the working set that must stay
resident for that reuse to hit in cache, and whether concurrent parallel
workers touch the *same* data.  From these and the machine's cache
hierarchy we estimate how many of those sweeps are actually served by DRAM:

* working set fits in some cache level → one DRAM sweep, the rest hit;
* working set does not fit, data shared across workers → workers stream it
  roughly in lock-step, so one DRAM fetch feeds all of them (discounted by
  a sharing efficiency — threads drift);
* otherwise every sweep goes to DRAM.

Spatial locality is accounted by counting whole cache lines: unit-stride
sweeps fetch ``footprint`` bytes, large strides fetch a line per element.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from ..core.types import MatrixShape
from ..ir.analysis import RefInfo, StrideClass, reference_info
from ..ir.nodes import Kernel
from ..machine.cache import CacheHierarchy

__all__ = ["ArrayTraffic", "TrafficEstimate", "estimate_dram_traffic",
           "roofline_time"]

#: Fraction of a shared stream that is actually deduplicated between
#: concurrent workers.  Threads drift in and out of phase, so a shared
#: sweep costs a bit more than a single stream.
DEFAULT_SHARING_EFFICIENCY = 0.8


@dataclass(frozen=True)
class ArrayTraffic:
    """DRAM traffic attributed to one reference."""

    array: str
    kind: str                # "load" | "store"
    dram_bytes: float
    sweeps_from_dram: float
    served_by: str           # cache level name or "DRAM"


@dataclass(frozen=True)
class TrafficEstimate:
    """Total DRAM traffic of one kernel execution."""

    per_ref: Sequence[ArrayTraffic]

    @property
    def dram_bytes(self) -> float:
        return sum(t.dram_bytes for t in self.per_ref)

    @property
    def read_bytes(self) -> float:
        return sum(t.dram_bytes for t in self.per_ref if t.kind == "load")

    @property
    def write_bytes(self) -> float:
        return sum(t.dram_bytes for t in self.per_ref if t.kind == "store")

    def arithmetic_intensity(self, flops: int) -> float:
        total = self.dram_bytes
        return math.inf if total == 0 else flops / total


def _sweep_bytes(ref: RefInfo, line_bytes: int) -> float:
    """Bytes one full sweep over the reference's footprint pulls from DRAM."""
    if ref.stride_class == StrideClass.STRIDED:
        # one line per element access within a sweep
        return ref.distinct_elements * line_bytes
    return float(ref.footprint_bytes)


def estimate_dram_traffic(
    kernel: Kernel,
    shape: MatrixShape,
    caches: CacheHierarchy,
    active_workers: int = 1,
    sharing_efficiency: float = DEFAULT_SHARING_EFFICIENCY,
) -> TrafficEstimate:
    """Estimate DRAM traffic for one execution of ``kernel`` on ``shape``.

    ``active_workers`` is the number of concurrent threads (CPU) or the
    degree of concurrent-block parallelism (GPU) used for the shared-stream
    discount.
    """
    line = caches.line_bytes
    refs = reference_info(kernel, shape, line_bytes=line)
    out: List[ArrayTraffic] = []

    for ref in refs:
        sweep = _sweep_bytes(ref, line)
        level = caches.innermost_fitting(ref.reuse_working_set_bytes,
                                         active_sharers=active_workers)
        if ref.reuse_factor <= 1:
            sweeps = 1.0
            served = "DRAM"
        elif level is not None:
            sweeps = 1.0
            served = level.name
        elif ref.shared_across_parallel and active_workers > 1:
            sweeps = max(1.0, ref.reuse_factor
                         / (active_workers * sharing_efficiency))
            served = "DRAM(shared)"
        else:
            sweeps = float(ref.reuse_factor)
            served = "DRAM"
        out.append(ArrayTraffic(
            array=ref.array,
            kind=ref.kind,
            dram_bytes=sweep * sweeps,
            sweeps_from_dram=sweeps,
            served_by=served,
        ))
    return TrafficEstimate(tuple(out))


def roofline_time(flops: float, peak_gflops: float, dram_bytes: float,
                  bandwidth_gbs: float, overlap: float = 1.0) -> float:
    """Classic roofline execution-time bound.

    ``overlap`` ∈ (0, 1]: 1 means compute and memory fully overlap
    (time = max of the two), lower values blend toward their sum.
    """
    t_comp = flops / (peak_gflops * 1e9) if peak_gflops > 0 else 0.0
    t_mem = dram_bytes / (bandwidth_gbs * 1e9) if bandwidth_gbs > 0 else 0.0
    t_max = max(t_comp, t_mem)
    t_sum = t_comp + t_mem
    return overlap * t_max + (1.0 - overlap) * t_sum
