"""Command-line interface: ``repro <command>`` / ``python -m repro``.

Commands mirror the deliverables:

* ``repro machines`` — print the machine catalog (Crusher, Wombat).
* ``repro models`` — the programming models and their support matrix.
* ``repro fig 4|5|6|7`` — regenerate a figure (tables + ASCII charts).
* ``repro table 1|2|3`` — regenerate a table.
* ``repro run`` — one custom experiment (node/device/precision/models/sizes).
* ``repro productivity`` — the Sec. V productivity comparison.
* ``repro lint`` — static-analysis sweep of every model lowering.
* ``repro audit`` — per-lane performance-portability audit: memory,
  occupancy and precision hazards plus a predicted efficiency band for
  every (model, target, precision) lane, without running the simulator.
* ``repro cache stats|clear`` — inspect/empty the sweep result cache.
* ``repro runs list|show`` — journaled campaigns (``repro run`` journals
  by default; ``repro run --resume <run-id>`` completes an interrupted
  one byte-identically).
* ``repro serve`` — the campaign daemon: concurrent submissions over a
  local Unix socket, fair-share scheduled across tenants, with
  cross-campaign dedup and crash recovery from the run journals.
* ``repro submit`` — send a campaign (run-style flags or a serialized
  CampaignSpec) to the daemon; ``--wait`` prints the same report
  ``repro run`` would have.
* ``repro status`` — the daemon's scheduler/tenant/dedup snapshot.
* ``repro health <run-id>`` — lane-state history of a breaker-enabled
  run: every circuit-breaker transition, final lane states, and which
  cells were served by fallback lanes.
* ``repro fsck`` — verify the cache, run journals and export artifacts;
  quarantine/recover corruption (exit 3 if any was found).
* ``repro chaos`` — deterministic crash-fault drills (worker SIGKILL,
  daemon SIGKILL mid-grant, torn journal tail, disk-full store); each
  must recover to a byte-identical report, and MTTR/recovery counters
  land in ``BENCH_robustness.json`` (exit 1 on any mismatch).

Crash supervision: ``--watchdog 'timeout=30,respawns=2,redrives=1'``
(or ``REPRO_WATCHDOG``) bounds each process-pool cell's wall-clock time
and caps pool respawns/cell redrives after a worker is killed or hangs;
crash supervision (respawn on a vanished worker) is on by default,
hang detection arms with a timeout, ``--watchdog off`` disables both.

Self-healing: ``--breaker 'threshold=N,cooldown=S'`` (or
``REPRO_BREAKER``) arms per-lane circuit breakers — N consecutive
permanent cell failures open a lane, its cells reroute down the
fallback ladder (``--fallback``/``REPRO_FALLBACK``, default derived
from the model registry), and after S simulated seconds a probe cell
decides whether the lane re-closes.

Exit codes: 0 success, 1 aborted campaign (``--fail-fast``), journal
error (including resuming a breaker run from a journal without health
metadata), a ``chaos`` drill that did not recover byte-identically,
or ``lint``/``audit`` findings at gating severity, 2 usage
(including an unknown precision or model name), 3 ``fsck`` found
corruption, 130 interrupted by SIGINT/SIGTERM (the journal is finalized
first; resume with ``repro run --resume <run-id>``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .core.types import DeviceKind, Precision
from .errors import (
    CellFailure,
    ConfigError,
    JournalError,
    RunInterrupted,
    ServiceError,
)
from .harness import (
    Experiment,
    PAPER_SIZES,
    QUICK_SIZES,
    fig4,
    fig5,
    fig6,
    fig7,
    run_campaign,
    table1,
    table2,
    table3,
)
from .harness.report import ascii_table, render_result_set
from .machine import NODE_CATALOG
from .models import all_models
from .core.productivity import productivity_report

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="Performance-portability study of Julia, Python/Numba "
                    "and Kokkos on simulated exascale nodes",
    )
    sub = p.add_subparsers(dest="command", required=True)

    sub.add_parser("machines", help="print the machine catalog")
    sub.add_parser("models", help="print models and their support matrix")
    sub.add_parser("productivity", help="print the productivity comparison")

    fig = sub.add_parser("fig", help="regenerate a paper figure")
    fig.add_argument("number", type=int, choices=(4, 5, 6, 7))
    fig.add_argument("--full", action="store_true",
                     help="use the paper's full size sweep")
    fig.add_argument("--no-chart", action="store_true")
    fig.add_argument("--efficiencies", action="store_true",
                     help="append per-size efficiency tables per panel")

    tab = sub.add_parser("table", help="regenerate a paper table")
    tab.add_argument("number", type=int, choices=(1, 2, 3))
    tab.add_argument("--full", action="store_true")

    run = sub.add_parser("run", help="run a custom experiment")
    run.add_argument("--node", choices=sorted(NODE_CATALOG), default="crusher")
    run.add_argument("--device", choices=("cpu", "gpu"), default="cpu")
    run.add_argument("--precision", default="fp64")
    run.add_argument("--models", default="c-openmp,kokkos,julia,numba",
                     help="comma-separated model names")
    run.add_argument("--sizes", default=",".join(map(str, QUICK_SIZES)))
    run.add_argument("--threads", type=int, default=None)
    run.add_argument("--reps", type=int, default=10)
    run.add_argument("--include-transfers", action="store_true",
                     help="charge H2D/D2H to every GPU repetition")
    run.add_argument("--format", choices=("text", "json", "csv"),
                     default="text")
    run.add_argument("--config", default=None,
                     help="JSON experiment definition (overrides other flags)")
    run.add_argument("--gnuplot-dir", default=None,
                     help="also write <exp_id>.dat/.gp into this directory")
    run.add_argument("--efficiency", default=None, metavar="REFERENCE",
                     help="append per-size efficiencies vs this model")
    run.add_argument("--no-cache", action="store_true",
                     help="bypass the sweep result cache for this run")
    run.add_argument("--serial", action="store_true",
                     help="disable the engine's thread-pool fan-out")
    run.add_argument("--jobs", type=int, default=None, metavar="N",
                     help="worker-pool width (default: cpu count)")
    run.add_argument("--engine", choices=("thread", "process"), default=None,
                     help="sweep executor: in-process thread pool (default) "
                          "or a sharded process pool (REPRO_ENGINE)")
    run.add_argument("--engine-stats", action="store_true",
                     help="append per-cell timings and cache hit/miss stats")
    run.add_argument("--resume", default=None, metavar="RUN_ID",
                     help="complete an interrupted journaled run "
                          "byte-identically (other experiment flags are "
                          "ignored; the journal pins them)")
    run.add_argument("--no-journal", action="store_true",
                     help="skip the write-ahead run journal "
                          "(also: REPRO_JOURNAL=off)")
    run.add_argument("--export", default=None, metavar="FILE",
                     help="also write the result set as a digest-carrying "
                          "JSON artifact (verified by `repro fsck FILE`)")
    run.add_argument("--watchdog", default=None, metavar="SPEC",
                     help="supervise process-pool workers, e.g. '30' "
                          "(per-cell wall-clock deadline in seconds) or "
                          "'timeout=30,respawns=2,redrives=1'; 'off' "
                          "disables crash supervision (REPRO_WATCHDOG)")
    _add_resilience_flags(run)

    kern = sub.add_parser("kernel",
                          help="show what a model lowers the GEMM to")
    kern.add_argument("model", help="model name, e.g. julia, kokkos, cuda")
    kern.add_argument("--device", choices=("cpu", "gpu"), default="cpu")
    kern.add_argument("--target", default=None,
                      help="machine name (defaults per device)")
    kern.add_argument("--precision", default="fp64")
    kern.add_argument("--source", action="store_true",
                      help="also show the paper's real-language listing")

    scal = sub.add_parser("scaling", help="strong-scaling study on a CPU")
    scal.add_argument("--model", default="julia")
    scal.add_argument("--cpu", default="epyc-7a53")
    scal.add_argument("--size", type=int, default=4096)
    scal.add_argument("--precision", default="fp64")
    scal.add_argument("--threads", default=None,
                      help="comma-separated thread counts")

    xov = sub.add_parser("crossover",
                         help="CPU vs GPU placement for one model on a node")
    xov.add_argument("--node", choices=sorted(NODE_CATALOG), default="wombat")
    xov.add_argument("--model", default="julia")
    xov.add_argument("--precision", default="fp64")
    xov.add_argument("--sizes", default="256,512,1024,2048,4096")

    strm = sub.add_parser("stream",
                          help="BabelStream bandwidth table on one machine")
    strm.add_argument("--target", default="epyc-7a53")
    strm.add_argument("--n", type=int, default=1 << 25)
    strm.add_argument("--precision", default="fp64")
    strm.add_argument("--models", default=None)
    strm.add_argument("--host", action="store_true",
                      help="also measure the NumPy kernels on this host")

    casc = sub.add_parser("cascade",
                          help="portability cascade (metric vs platform set)")
    casc.add_argument("--precision", default="fp64")

    rep = sub.add_parser("report",
                         help="full Markdown study report (all artifacts)")
    rep.add_argument("--full", action="store_true")
    rep.add_argument("--out", default=None, help="write to file")
    rep.add_argument("--charts", action="store_true")
    _add_resilience_flags(rep)

    ver = sub.add_parser("verify",
                         help="compare reproduced Table III to the paper")
    ver.add_argument("--full", action="store_true")

    roof = sub.add_parser("roofline", help="roofline view of one machine")
    roof.add_argument("--target", default="a100",
                      help="machine name (cpu or gpu catalog key)")
    roof.add_argument("--size", type=int, default=8192)
    roof.add_argument("--precision", default="fp64")
    roof.add_argument("--models", default=None,
                      help="comma-separated; defaults per device")

    lint = sub.add_parser(
        "lint", help="lint every registered model lowering (exit 1 on errors)")
    lint.add_argument("--models", default=None,
                      help="comma-separated model names (default: all, "
                           "extensions included)")
    lint.add_argument("--device", choices=("cpu", "gpu", "all"),
                      default="all")
    lint.add_argument("--precision", default=None,
                      help="restrict to one precision (default: all)")
    lint.add_argument("--strict", action="store_true",
                      help="also exit 1 on warning-severity findings")
    lint.add_argument("--format", choices=("text", "json"), default="text",
                      help="json emits the shared static-analysis schema")

    audit = sub.add_parser(
        "audit",
        help="performance-portability audit of every lane: hazards plus "
             "a predicted efficiency band (exit 1 on gating findings)")
    audit.add_argument("--models", default=None,
                       help="comma-separated model names (default: all, "
                            "extensions included)")
    audit.add_argument("--device", choices=("cpu", "gpu", "all"),
                       default="all")
    audit.add_argument("--precision", default=None,
                       help="restrict to one precision (default: all)")
    audit.add_argument("--strict", action="store_true",
                       help="also exit 1 on warning-severity findings")
    audit.add_argument("--format", choices=("text", "json"), default="text",
                       help="json emits the shared static-analysis schema")
    audit.add_argument("--consistency", action="store_true",
                       help="also run the seed sweep and verify the static "
                            "verdicts agree with the measured efficiencies "
                            "(exit 1 on contradiction)")

    cache = sub.add_parser(
        "cache", help="inspect or empty the persistent sweep result cache")
    cache.add_argument("action", choices=("stats", "clear"))
    cache.add_argument("--dir", default=None,
                       help="cache directory (default: $REPRO_CACHE_DIR or "
                            "$XDG_CACHE_HOME/repro/results)")

    runs = sub.add_parser(
        "runs", help="list or inspect journaled runs")
    runs.add_argument("action", choices=("list", "show"))
    runs.add_argument("run_id", nargs="?", default=None,
                      help="run id (required for `show`)")
    runs.add_argument("--dir", default=None,
                      help="runs directory (default: $REPRO_RUNS_DIR or "
                           "$XDG_CACHE_HOME/repro/runs)")
    runs.add_argument("--format", choices=("text", "json"), default="text",
                      help="json emits the machine-readable run document")

    serve = sub.add_parser(
        "serve", help="run the campaign daemon: accept concurrent "
                      "submissions over a local socket, schedule them "
                      "fair-share across tenants")
    serve.add_argument("--socket", default=None, metavar="PATH",
                       help="Unix socket path (default: "
                            "$REPRO_SERVICE_SOCKET or <runs dir>/"
                            "service.sock)")
    serve.add_argument("--max-total", type=int, default=None, metavar="N",
                       help="global campaign backlog cap (default: 64)")
    serve.add_argument("--max-queued", type=int, default=None, metavar="N",
                       help="per-tenant campaign quota (default: 8)")
    serve.add_argument("--stop", action="store_true",
                       help="ask the daemon on --socket to shut down "
                            "gracefully instead of serving")

    submit = sub.add_parser(
        "submit", help="submit a campaign to the daemon (see `repro "
                       "serve`); experiment flags mirror `repro run`")
    submit.add_argument("--socket", default=None, metavar="PATH",
                        help="daemon socket (default: as for `repro serve`)")
    submit.add_argument("--spec", default=None, metavar="FILE",
                        help="serialized CampaignSpec JSON (overrides the "
                             "experiment flags; '-' reads stdin)")
    submit.add_argument("--node", choices=sorted(NODE_CATALOG),
                        default="crusher")
    submit.add_argument("--device", choices=("cpu", "gpu"), default="cpu")
    submit.add_argument("--precision", default="fp64")
    submit.add_argument("--models", default="c-openmp,kokkos,julia,numba",
                        help="comma-separated model names")
    submit.add_argument("--sizes", default=",".join(map(str, QUICK_SIZES)))
    submit.add_argument("--threads", type=int, default=None)
    submit.add_argument("--reps", type=int, default=10)
    submit.add_argument("--exp-id", default="cli-run",
                        help="experiment id (cells dedup across campaigns "
                             "with equal ids and methodology)")
    submit.add_argument("--tenant", default=None,
                        help="fair-share account (default: $REPRO_TENANT "
                             "or 'default')")
    submit.add_argument("--priority", type=int, default=None,
                        help="rank within the tenant's queue (higher runs "
                             "first; default: $REPRO_PRIORITY or 0)")
    submit.add_argument("--deadline", type=float, default=None, metavar="S",
                        help="wall-clock budget in seconds; a campaign "
                             "still unfinished past it expires through "
                             "the degraded path (default: $REPRO_DEADLINE "
                             "or none)")
    submit.add_argument("--submission-key", default=None, metavar="KEY",
                        help="client-generated idempotency key: a retried "
                             "submit with the same key returns the "
                             "original campaign id (default: "
                             "$REPRO_SUBMISSION_KEY or none)")
    submit.add_argument("--client-retries", type=int, default=None,
                        metavar="N",
                        help="retry a shed (429/503) or connection-refused "
                             "submit up to N times with capped exponential "
                             "backoff; POST retries need --submission-key "
                             "(default: $REPRO_CLIENT_RETRIES or 0)")
    submit.add_argument("--wait", action="store_true",
                        help="block until the campaign finishes and print "
                             "its report (byte-identical to `repro run`)")
    submit.add_argument("--format", choices=("text", "json"),
                        default="text", help="report format with --wait")
    _add_resilience_flags(submit)

    status = sub.add_parser(
        "status", help="one snapshot of the campaign daemon: tenants, "
                       "queue, dedup and cache counters")
    status.add_argument("--socket", default=None, metavar="PATH",
                        help="daemon socket (default: as for `repro serve`)")
    status.add_argument("--format", choices=("text", "json"),
                        default="text")

    health = sub.add_parser(
        "health", help="lane-state history of a breaker-enabled run: "
                       "breaker transitions, final lane states, "
                       "substituted cells")
    health.add_argument("run_id", help="run id (see `repro runs list`)")
    health.add_argument("--dir", default=None,
                        help="runs directory (default: $REPRO_RUNS_DIR or "
                             "$XDG_CACHE_HOME/repro/runs)")

    fsck = sub.add_parser(
        "fsck", help="verify cache entries, run journals and export "
                     "artifacts; quarantine/recover corruption (exit 3 "
                     "if any found)")
    fsck.add_argument("artifacts", nargs="*", metavar="ARTIFACT",
                      help="digest-carrying JSON artifacts to verify")
    fsck.add_argument("--cache-dir", default=None,
                      help="cache directory (default: the process cache)")
    fsck.add_argument("--runs-dir", default=None,
                      help="runs directory (default: $REPRO_RUNS_DIR or "
                           "$XDG_CACHE_HOME/repro/runs)")

    chaos = sub.add_parser(
        "chaos", help="deterministic crash-fault drills: SIGKILL a pool "
                      "worker, SIGKILL the daemon mid-grant, tear a "
                      "journal tail, fill the disk, storm the daemon at "
                      "2x admission capacity — then assert byte-identical "
                      "recovery (exit 1 on any mismatch)")
    chaos.add_argument("--scenario", action="append", default=None,
                       metavar="NAME",
                       help="run only this scenario (repeatable; default: "
                            "all of worker-kill, daemon-kill, journal-tear, "
                            "disk-full, overload)")
    chaos.add_argument("--out", default="BENCH_robustness.json",
                       metavar="FILE",
                       help="MTTR/recovery-counter bench output "
                            "(default BENCH_robustness.json; '-' skips)")
    chaos.add_argument("--workdir", default=None, metavar="DIR",
                       help="scratch root for the drills (default: a "
                            "private temp dir, removed afterwards)")

    return p


def _add_resilience_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument("--faults", default=None, metavar="SPEC",
                   help="inject deterministic faults, e.g. '0.2' or "
                        "'rate=0.2,seed=7,always=numba@512'")
    p.add_argument("--retries", type=int, default=None, metavar="N",
                   help="retries per cell after a fault (default: 0)")
    p.add_argument("--max-cell-seconds", type=float, default=None,
                   metavar="S",
                   help="per-cell simulated-time budget for retries")
    p.add_argument("--fail-fast", action="store_true",
                   help="abort on the first permanent cell failure "
                        "(exit 1) instead of degrading to e=0")
    p.add_argument("--breaker", default=None, metavar="SPEC",
                   help="arm per-lane circuit breakers, e.g. '3' or "
                        "'threshold=3,cooldown=60' (consecutive permanent "
                        "failures open a lane; cells reroute via the "
                        "fallback ladder)")
    p.add_argument("--fallback", default=None, metavar="SPEC",
                   help="explicit fallback ladders, e.g. "
                        "'numba@gpu=numba@cpu+reference' (default: derived "
                        "from the model registry's support matrix)")


def _options_for(args: argparse.Namespace):
    """A RunOptions for the resilience flags, or None for the process
    default (which itself reads the REPRO_FAULTS family of env vars)."""
    from dataclasses import replace
    from .harness.engine import RunOptions
    from .harness.health import BreakerPolicy, FallbackLadder
    from .sim.faults import FaultConfig

    faults_spec = getattr(args, "faults", None)
    retries = getattr(args, "retries", None)
    budget = getattr(args, "max_cell_seconds", None)
    fail_fast = getattr(args, "fail_fast", False)
    breaker_spec = getattr(args, "breaker", None)
    fallback_spec = getattr(args, "fallback", None)
    if faults_spec is None and retries is None and budget is None \
            and not fail_fast and breaker_spec is None \
            and fallback_spec is None:
        return None
    opts = RunOptions.from_env()
    if faults_spec is not None:
        opts = replace(opts, faults=FaultConfig.parse(faults_spec))
    retry = opts.retry
    if retries is not None:
        retry = replace(retry, max_attempts=retries + 1)
    if budget is not None:
        retry = replace(retry, max_cell_seconds=budget)
    if retry is not opts.retry:
        opts = replace(opts, retry=retry)
    if fail_fast:
        opts = replace(opts, fail_fast=True)
    if breaker_spec is not None:
        opts = replace(opts, breaker=BreakerPolicy.parse(breaker_spec))
    if fallback_spec is not None:
        opts = replace(opts, fallback=FallbackLadder.parse(fallback_spec))
    return opts


def _cmd_machines() -> str:
    return "\n\n".join(node.describe() for node in NODE_CATALOG.values())


def _cmd_models() -> str:
    from .machine import A100, AMPERE_ALTRA, EPYC_7A53, MI250X
    targets = [EPYC_7A53, AMPERE_ALTRA, MI250X, A100]
    headers = ["model", "version"] + [t.name for t in targets]
    rows = []
    for m in all_models():
        row: List[str] = [m.display, m.paper_version]
        for t in targets:
            marks = []
            for prec in (Precision.FP64, Precision.FP32, Precision.FP16):
                s = m.supports(t, prec)
                marks.append(prec.value[2:] if s.supported and not s.degraded
                             else ("~" + prec.value[2:] if s.supported else "-"))
            row.append("/".join(marks))
        rows.append(row)
    legend = "(cell: fp64/fp32/fp16 support; '~' = degraded, '-' = unsupported)"
    return ascii_table(headers, rows) + "\n" + legend


def _cmd_productivity() -> str:
    rows = productivity_report(all_models())
    return ascii_table(
        ["model", "kernel LoC", "ceremony LoC", "compile step",
         "JIT warm-up (s)", "divergence"],
        [[r.model, r.kernel_lines, r.ceremony_lines,
          "yes" if r.needs_compile_step else "no",
          f"{r.jit_warmup_seconds:.1f}", f"{r.divergence:.2f}"]
         for r in rows],
    )


def _cmd_fig(number: int, full: bool, chart: bool,
             efficiencies: bool = False) -> str:
    sizes = PAPER_SIZES if full else QUICK_SIZES
    fn = {4: fig4, 5: fig5, 6: fig6, 7: fig7}[number]
    return fn(sizes).render(charts=chart, efficiencies=efficiencies)


def _cmd_table(number: int, full: bool) -> str:
    if number == 1:
        return table1()
    if number == 2:
        return table2()
    sizes = PAPER_SIZES if full else QUICK_SIZES
    return table3(sizes).render()


def _journal_enabled(args: argparse.Namespace) -> bool:
    """Journal by default; ``--no-journal`` or ``REPRO_JOURNAL=off`` opt
    out (tests and throwaway sweeps that should leave no run on record)."""
    import os
    if getattr(args, "no_journal", False):
        return False
    return os.environ.get("REPRO_JOURNAL", "").strip().lower() not in (
        "off", "0", "no", "false")


def _cmd_run(args: argparse.Namespace) -> str:
    if getattr(args, "resume", None):
        from .harness.journal import RunRegistry, resume_run
        reg = RunRegistry()
        state = reg.load(args.resume)
        print(f"repro: resuming run {args.resume}: "
              f"{state.done_cells}/{state.total_cells} cells journaled, "
              f"{state.remaining_cells} to execute", file=sys.stderr)
        engine = _engine_for(args)
        results = resume_run(args.resume, registry=reg, engine=engine,
                             options=_watchdog_options(args, None))
        return _render_run(args, results, engine)
    if args.config:
        import json as _json
        with open(args.config) as fh:
            exp = Experiment.from_dict(_json.load(fh))
        return _finish_run(args, exp)
    exp = Experiment(
        exp_id="cli-run",
        title="custom CLI experiment",
        node_name=args.node,
        device=DeviceKind.CPU if args.device == "cpu" else DeviceKind.GPU,
        precision=Precision.parse(args.precision),
        models=tuple(s.strip() for s in args.models.split(",") if s.strip()),
        sizes=tuple(int(s) for s in args.sizes.split(",")),
        threads=args.threads,
        reps=args.reps,
        include_transfers=getattr(args, "include_transfers", False),
    )
    return _finish_run(args, exp)


def _engine_for(args: argparse.Namespace):
    """An engine honouring the run subcommand's overrides, or None for
    the process default."""
    no_cache = getattr(args, "no_cache", False)
    serial = getattr(args, "serial", False)
    jobs = getattr(args, "jobs", None)
    mode = getattr(args, "engine", None)
    if not (no_cache or serial or jobs or mode
            or getattr(args, "engine_stats", False)):
        return None
    from .harness.engine import SweepEngine
    return SweepEngine.from_env(
        cache_enabled=False if no_cache else None,
        parallel=False if serial else None,
        max_workers=jobs,
        mode=mode,
    )


def _spec_cli_overrides(args: argparse.Namespace) -> dict:
    """The CLI layer of the one precedence pass (CLI > env > defaults).

    Keys mirror :func:`repro.config.resolve_campaign_spec`'s ``cli``
    mapping; ``None`` means "flag not given, let the environment or the
    defaults decide".  Shared by ``repro run`` and ``repro submit`` so
    the two surfaces cannot drift.
    """
    return {
        "faults": getattr(args, "faults", None),
        "retries": getattr(args, "retries", None),
        "max_cell_seconds": getattr(args, "max_cell_seconds", None),
        "fail_fast": bool(getattr(args, "fail_fast", False)),
        "breaker": getattr(args, "breaker", None),
        "fallback": getattr(args, "fallback", None),
        "cache": False if getattr(args, "no_cache", False) else None,
        "jobs": getattr(args, "jobs", None),
        "engine": ("serial" if getattr(args, "serial", False)
                   else getattr(args, "engine", None)),
        "tenant": getattr(args, "tenant", None),
        "priority": getattr(args, "priority", None),
        "deadline": getattr(args, "deadline", None),
        "submission_key": getattr(args, "submission_key", None),
    }


def _watchdog_options(args: argparse.Namespace, base):
    """Overlay ``--watchdog`` on ``base`` (or the env defaults).

    The watchdog deliberately stays out of CampaignSpec: it supervises
    *this process's* worker pool, is never journaled or fingerprinted,
    and must not change a run's identity.
    """
    spec = getattr(args, "watchdog", None)
    if spec is None:
        return base
    from dataclasses import replace
    from .harness.engine import RunOptions, WatchdogPolicy
    return replace(base if base is not None else RunOptions.from_env(),
                   watchdog=WatchdogPolicy.parse(spec))


def _finish_run(args: argparse.Namespace, exp: Experiment) -> str:
    from .config import resolve_campaign_spec
    from .harness import resolve_engine

    spec = resolve_campaign_spec(exp, cli=_spec_cli_overrides(args))
    base = None
    journal = None
    registry = None
    if _journal_enabled(args):
        from dataclasses import replace
        from .harness.engine import RunOptions
        from .harness.journal import RunRegistry
        registry = RunRegistry()
        journal = registry.create()
        base = replace(RunOptions.from_env(), journal=journal)
        # The ACTIVE sidecar tells `repro runs list`, `repro fsck` and a
        # recovering daemon that a live process owns this journal.
        registry.mark_active(journal.run_id)
        # The notice goes to stderr so stdout stays byte-identical
        # between an uninterrupted run and an interrupt + --resume.
        print(f"repro: journaling run {journal.run_id} "
              f"(resume with: repro run --resume {journal.run_id})",
              file=sys.stderr)
    base = _watchdog_options(args, base)
    engine = resolve_engine(None, spec.run_options(base=base),
                            mode=spec.engine)
    try:
        results = run_campaign(spec, engine=engine, options=base)
    finally:
        if journal is not None:
            journal.close()
        if registry is not None and journal is not None:
            registry.release_active(journal.run_id)
    return _render_run(args, results, engine)


def _render_run(args: argparse.Namespace, results, engine) -> str:
    extra = ""
    if getattr(args, "engine_stats", False) and engine is not None \
            and engine.last_report is not None:
        extra = "\n\n" + engine.last_report.render()
    if getattr(args, "gnuplot_dir", None):
        from .harness.gnuplot import write_gnuplot_bundle
        dat, gp = write_gnuplot_bundle(results, args.gnuplot_dir)
        extra += f"\n[gnuplot bundle: {dat}, {gp}]"
    if getattr(args, "export", None):
        from .harness.export import write_result_set_artifact
        digest = write_result_set_artifact(args.export, results)
        extra += f"\n[artifact: {args.export} sha256:{digest[:12]}]"
    if args.format == "json":
        from .harness.export import result_set_to_json
        return result_set_to_json(results) + extra
    if args.format == "csv":
        from .harness.export import result_set_to_csv
        return result_set_to_csv(results) + extra
    out = render_result_set(results)
    if getattr(args, "efficiency", None):
        from .harness.report import efficiency_table
        out += "\n\n" + efficiency_table(results, args.efficiency)
    return out + extra


def _cmd_kernel(args: argparse.Namespace) -> str:
    from .ir.pretty import render_kernel
    from .machine import cpu_by_name, gpu_by_name
    from .models import model_by_name

    model = model_by_name(args.model)
    precision = Precision.parse(args.precision)
    if args.device == "cpu":
        spec = cpu_by_name(args.target or "epyc-7a53")
        lowering = model.lower_cpu(spec, precision)
        extra = (f"threads: {lowering.threads}, pinning: "
                 f"{lowering.pin.value}, "
                 f"codegen quality x{lowering.profile.issue_multiplier:g}")
    else:
        spec = gpu_by_name(args.target or "a100")
        lowering = model.lower_gpu(spec, precision)
        extra = (f"launch: {lowering.launch.describe()}, "
                 f"codegen quality x{lowering.profile.issue_multiplier:g}, "
                 f"+{lowering.profile.extra_int_per_iter:g} int ops/iter")
    lines = [
        f"{model.display} lowering for {spec.name} "
        f"({precision.label} precision)",
        "",
        render_kernel(lowering.kernel),
        "",
        "passes: " + " -> ".join(
            f"{r.name}{'*' if r.changed else ''}" for r in lowering.pass_records),
        extra,
    ]
    if getattr(args, "source", False):
        from .core.types import DeviceKind as _DK
        from .models.listings import listing_for
        device = _DK.CPU if args.device == "cpu" else _DK.GPU
        src = listing_for(model.name, device)
        if src:
            lines += ["", "--- paper listing " + "-" * 40, src]
        else:
            lines += ["", "(no paper listing for this model/device)"]
    return "\n".join(lines)


def _cmd_scaling(args: argparse.Namespace) -> str:
    from .core.types import MatrixShape
    from .harness.scaling import thread_scaling
    from .machine import cpu_by_name

    cpu = cpu_by_name(args.cpu)
    counts = (tuple(int(t) for t in args.threads.split(","))
              if args.threads else None)
    result = thread_scaling(args.model, cpu, MatrixShape.square(args.size),
                            Precision.parse(args.precision), counts)
    return result.render()


def _parse_cli_precision(text: Optional[str]) -> "Optional[List[Precision]]":
    """``--precision`` for lint/audit; unknown labels are usage errors."""
    if not text:
        return None
    try:
        return [Precision.parse(text)]
    except ValueError as exc:
        raise ConfigError(str(exc)) from exc


def _cmd_lint(args: argparse.Namespace) -> "tuple[str, int]":
    from .ir.lint import Severity, lint_registry, sweep_to_json
    from .ir.pretty import render_diagnostics

    models = (tuple(m.strip() for m in args.models.split(",") if m.strip())
              if args.models else None)
    precisions = _parse_cli_precision(args.precision)
    results = lint_registry(models=models, device=args.device,
                            precisions=precisions)

    total_errors = sum(r.error_count for r in results)
    total_warnings = sum(
        sum(1 for d in r.diagnostics if d.severity is Severity.WARNING)
        for r in results)
    failed = total_errors > 0 or (args.strict and total_warnings > 0)
    if args.format == "json":
        return sweep_to_json("lint", results), 1 if failed else 0

    lines: List[str] = []
    errors = warnings = 0
    for r in results:
        if r.skipped:
            continue
        findings = [d for d in r.diagnostics
                    if d.severity is not Severity.INFO]
        errors += r.error_count
        warnings += sum(1 for d in findings
                        if d.severity is Severity.WARNING)
        if findings:
            lines.append(f"{r.model} / {r.target} / {r.precision}:")
            lines.append(render_diagnostics(findings))
    linted = sum(1 for r in results if not r.skipped)
    skipped = len(results) - linted
    lines.append(f"linted {linted} lowerings ({skipped} unsupported "
                 f"combinations skipped): {errors} errors, "
                 f"{warnings} warnings")
    return "\n".join(lines), 1 if failed else 0


def _cmd_audit(args: argparse.Namespace) -> "tuple[str, int]":
    from .ir.audit import (
        audit_registry,
        check_consistency,
        render_audit_findings,
        render_audit_matrix,
    )
    from .ir.lint import Severity, sweep_to_json

    models = (tuple(m.strip() for m in args.models.split(",") if m.strip())
              if args.models else None)
    precisions = _parse_cli_precision(args.precision)
    results = audit_registry(models=models, device=args.device,
                             precisions=precisions)

    errors = sum(r.error_count for r in results)
    warnings = sum(r.warning_count for r in results)
    failed = errors > 0 or (args.strict and warnings > 0)

    consistency = check_consistency() if args.consistency else None
    if consistency is not None and not consistency.consistent:
        failed = True

    if args.format == "json":
        return sweep_to_json("audit", results), 1 if failed else 0

    lines: List[str] = [render_audit_matrix(results)]
    findings = render_audit_findings(results)
    if findings:
        lines.append("")
        lines.append(findings)
    audited = sum(1 for r in results if not r.skipped)
    skipped = len(results) - audited
    lines.append("")
    lines.append(f"audited {audited} lanes ({skipped} unsupported "
                 f"combinations skipped): {errors} errors, "
                 f"{warnings} warnings")
    if consistency is not None:
        lines.append("")
        lines.append("static vs measured (seed GEMM sweep):")
        lines.append(consistency.render())
    return "\n".join(lines), 1 if failed else 0


def _cmd_cache(args: argparse.Namespace) -> str:
    from .harness.engine import ResultCache, default_engine

    if args.dir:
        cache = ResultCache(args.dir)
    else:
        cache = default_engine().cache or ResultCache()
    if args.action == "stats":
        return cache.render_stats()
    removed = cache.clear()
    return f"cleared {removed} cached measurements from {cache.root}"


def _run_document(reg, st) -> dict:
    """One run as the machine-readable ``runs --format json`` document."""
    owner = reg.active_info(st.run_id)
    doc = {
        "run": st.run_id,
        "journal": st.path,
        "status": st.status,
        "experiment": st.manifest.get("exp_id"),
        "node": st.manifest.get("node"),
        "campaign": st.campaign or None,
        "cells": {"done": st.done_cells, "total": st.total_cells,
                  "remaining": st.remaining_cells},
        "resumes": st.resumes,
        "resumable": st.resumable,
        "torn_records": st.dropped,
        "active": (None if owner is None
                   else {"pid": owner.get("pid"),
                         "heartbeat": owner.get("heartbeat")}),
    }
    if st.service_meta:
        doc["service"] = dict(st.service_meta)
    return doc


def _cmd_runs(args: argparse.Namespace) -> "tuple[str, int]":
    import json as _json

    from .harness.journal import RunRegistry

    reg = RunRegistry(args.dir)
    if args.action == "list":
        if args.format == "json":
            rows = [_run_document(reg, st) for st in reg.runs()]
            return _json.dumps({"runs_dir": reg.root, "runs": rows},
                               indent=2, sort_keys=True), 0
        return reg.render_list(), 0
    if not args.run_id:
        return "repro runs show: a run id is required", 2
    st = reg.load(args.run_id)
    if args.format == "json":
        return _json.dumps(_run_document(reg, st),
                           indent=2, sort_keys=True), 0
    exp = st.manifest.get("exp_id", "?")
    node = st.manifest.get("node", "?")
    lines = [
        f"run:        {st.run_id}",
        f"journal:    {st.path}",
        f"status:     {st.status}",
        f"experiment: {exp} on {node}",
        f"campaign:   {st.campaign[:16]}..." if st.campaign
        else "campaign:   (unfingerprinted)",
        f"cells:      {st.done_cells}/{st.total_cells} journaled "
        f"({st.remaining_cells} remaining)",
        f"resumes:    {st.resumes}",
    ]
    if st.dropped:
        lines.append(f"torn tail:  {st.dropped} invalid trailing record(s) "
                     "(run `repro fsck` to truncate)")
    if st.resumable:
        lines.append(f"resume with: repro run --resume {st.run_id}")
    return "\n".join(lines), 0


def _cmd_serve(args: argparse.Namespace) -> "tuple[str, int]":
    import os

    from .service import (
        AdmissionPolicy,
        CampaignDaemon,
        CampaignService,
        ServiceClient,
        TenantQuota,
        default_socket_path,
    )

    socket_path = args.socket or default_socket_path()
    if args.stop:
        ServiceClient(socket_path).shutdown()
        return f"asked the campaign daemon on {socket_path} to stop", 0
    service = None
    if args.max_total is not None or args.max_queued is not None:
        defaults = AdmissionPolicy()
        quota = (TenantQuota(max_queued=args.max_queued)
                 if args.max_queued is not None
                 else defaults.default_quota)
        policy = AdmissionPolicy(
            max_total=(args.max_total if args.max_total is not None
                       else defaults.max_total),
            default_quota=quota)
        service = CampaignService(policy=policy)
    daemon = CampaignDaemon(service=service, socket_path=socket_path)
    print(f"repro: serving campaigns on {socket_path} "
          f"(pid {os.getpid()}; stop with: repro serve "
          f"--stop --socket {socket_path})", file=sys.stderr)
    recovered = daemon.serve()
    return (f"campaign daemon on {socket_path} stopped "
            f"({recovered} campaign(s) recovered at startup)"), 0


def _client_retries(args: argparse.Namespace) -> int:
    """``--client-retries`` > ``$REPRO_CLIENT_RETRIES`` > 0.

    A client knob, not a spec field: how persistently *this* submit
    call retries shed/refused requests never changes what the campaign
    computes, so it stays out of the journaled spec.
    """
    import os

    retries = getattr(args, "client_retries", None)
    if retries is None:
        raw = os.environ.get("REPRO_CLIENT_RETRIES")
        if raw:
            try:
                retries = int(raw)
            except ValueError as exc:
                raise ConfigError(
                    f"REPRO_CLIENT_RETRIES={raw!r} is not an integer") \
                    from exc
    if retries is not None and retries < 0:
        raise ConfigError(f"client retries {retries} must be >= 0")
    return retries if retries is not None else 0


def _cmd_submit(args: argparse.Namespace) -> "tuple[str, int]":
    import json as _json

    from .errors import DeadlineExpired
    from .service import ClientPolicy, ServiceClient, spec_from_dict

    client = ServiceClient(args.socket, policy=ClientPolicy(
        retries=_client_retries(args)))
    if args.spec:
        try:
            if args.spec == "-":
                raw = sys.stdin.read()
            else:
                with open(args.spec) as fh:
                    raw = fh.read()
        except OSError as exc:
            raise ConfigError(f"--spec {args.spec}: {exc}") from exc
        try:
            payload = _json.loads(raw)
        except _json.JSONDecodeError as exc:
            raise ConfigError(
                f"--spec {args.spec}: not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise ConfigError(f"--spec {args.spec}: expected a JSON object")
        # Validated locally so a bad document fails with a sharp message
        # before it crosses the wire.
        spec = spec_from_dict(payload)
    else:
        from .config import resolve_campaign_spec
        exp = Experiment(
            exp_id=args.exp_id,
            title="custom CLI experiment",
            node_name=args.node,
            device=DeviceKind.CPU if args.device == "cpu" else DeviceKind.GPU,
            precision=Precision.parse(args.precision),
            models=tuple(s.strip() for s in args.models.split(",")
                         if s.strip()),
            sizes=tuple(int(s) for s in args.sizes.split(",")),
            threads=args.threads,
            reps=args.reps,
        )
        spec = resolve_campaign_spec(exp, cli=_spec_cli_overrides(args))
    campaign_id = client.submit(spec)
    print(f"repro: campaign {campaign_id} queued as tenant "
          f"{spec.tenant!r} (priority {spec.priority})", file=sys.stderr)
    if not args.wait:
        return campaign_id, 0
    try:
        row = client.wait(campaign_id)
    except DeadlineExpired as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return campaign_id, 1
    if row.get("state") == "failed":
        print(f"repro: campaign {campaign_id} failed: "
              f"{row.get('error', 'unknown error')}", file=sys.stderr)
        return campaign_id, 1
    # Stdout carries exactly the report `repro run` would have printed
    # for the same spec — byte-identical, stderr has the rest.
    return client.report(campaign_id, fmt=args.format).rstrip("\n"), 0


def _cmd_status(args: argparse.Namespace) -> str:
    from .harness.report import ascii_table as _table
    from .service import ServiceClient

    payload = ServiceClient(args.socket).status()
    if args.format == "json":
        import json as _json
        return _json.dumps(payload, indent=2, sort_keys=True)
    header = (f"campaign daemon: pid {payload.get('pid')}, "
              f"{payload.get('backlog', 0)} queued campaign(s), "
              f"{payload.get('steps', 0)} scheduler step(s)")
    if payload.get("uptime_s") is not None:
        header += f", up {payload['uptime_s']:.0f}s"
    if payload.get("state"):
        header += f" [{payload['state']}]"
    lines = [header]
    supervision = payload.get("supervision") or {}
    if supervision.get("restarts") or supervision.get("quarantined"):
        lines.append(f"supervision: {supervision.get('restarts', 0)} "
                     f"campaign restart(s), "
                     f"{supervision.get('quarantined', 0)} quarantined")
    overload = payload.get("overload") or {}
    if overload.get("shed") or overload.get("duplicates"):
        lines.append(f"overload: {overload.get('shed', 0)} submission(s) "
                     f"shed, {overload.get('duplicates', 0)} idempotent "
                     f"duplicate(s) answered "
                     f"(retry-after {overload.get('retry_after_s', 1):g}s)")
    tenants = payload.get("tenants") or []
    if tenants:
        lines.append("")
        lines.append(_table(
            ["tenant", "weight", "pass", "queued", "running"],
            [[t.get("tenant"), f"{t.get('weight', 1.0):g}",
              f"{t.get('pass', 0.0):g}", t.get("queued", 0),
              t.get("running", 0)] for t in tenants]))
    campaigns = payload.get("campaigns") or []
    if campaigns:
        rows = []
        for c in campaigns:
            cells = c.get("cells") or {}
            stats = c.get("stats") or {}
            note = ", ".join(f"{k}={v}" for k, v in sorted(stats.items())
                             if v) or "-"
            if c.get("restarts"):
                note = f"restarts={c['restarts']}, " + note
            if c.get("heartbeat_age_s") is not None:
                beat = f"{c['heartbeat_age_s']:.0f}s"
                if c.get("stale"):
                    beat += " STALE"
            else:
                beat = "-"
            rows.append([c.get("id"), c.get("tenant"), c.get("priority"),
                         c.get("state"),
                         f"{cells.get('done', 0)}/{cells.get('total', '?')}",
                         beat, note])
        lines.append("")
        lines.append(_table(
            ["campaign", "tenant", "prio", "state", "cells", "beat",
             "stats"],
            rows))
    dedup = payload.get("dedup") or {}
    lines.append("")
    lines.append(f"dedup: {dedup.get('hits', 0)} hit(s) across "
                 f"{dedup.get('executed_cells', 0)} executed cell(s)")
    return "\n".join(lines)


def _cmd_health(args: argparse.Namespace) -> str:
    """Render a breaker-enabled run's lane-state history from its journal."""
    from .harness.health import BreakerPolicy, BreakerTransition
    from .harness.journal import RunRegistry

    reg = RunRegistry(args.dir)
    st = reg.load(args.run_id)
    opt_payload = st.options or {}
    lines = [f"run:     {st.run_id} ({st.status})",
             f"journal: {st.path}"]
    if "breaker" not in opt_payload:
        lines.append("breakers were not enabled for this run "
                     "(no lane health was tracked)")
        return "\n".join(lines)
    policy = BreakerPolicy.from_payload(opt_payload["breaker"])
    lines.append(policy.describe())
    if "fallback" in opt_payload:
        from .harness.health import FallbackLadder
        lines.append(FallbackLadder.from_payload(
            opt_payload["fallback"]).describe())
    else:
        lines.append("fallbacks: registry defaults")
    transitions = [BreakerTransition.from_payload(ev)
                   for ev in st.breaker_events]
    if transitions:
        lines.append("")
        lines.append(f"transitions ({len(transitions)}):")
        lines += [f"  {tr.describe()}" for tr in transitions]
        final: dict = {}
        for tr in transitions:
            final[tr.lane] = tr.to_state.value
        lines.append("")
        lines.append("final lane states:")
        lines += [f"  {lane}: {state}" for lane, state in final.items()]
    else:
        lines.append("no breaker transitions (every lane stayed closed)")
    substituted = [(fp, m) for fp, m in st.completed.items()
                   if m.substituted_from]
    if substituted:
        lines.append("")
        lines.append(f"substituted cells ({len(substituted)}):")
        for _, m in substituted:
            served = m.served_by or "(ladder exhausted; cell failed)"
            lines.append(f"  {m.model} @{m.shape} <- {served} "
                         f"[{m.ladder_hops} hop(s)]")
    return "\n".join(lines)


def _cmd_fsck(args: argparse.Namespace) -> "tuple[str, int]":
    from .harness.engine import ResultCache
    from .harness.journal import EXIT_FSCK_CORRUPT, RunRegistry, fsck_store

    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    registry = RunRegistry(args.runs_dir) if args.runs_dir else None
    report = fsck_store(cache=cache, registry=registry,
                        artifacts=tuple(args.artifacts))
    return report.render(), EXIT_FSCK_CORRUPT if report.corrupt else 0


def _cmd_chaos(args: argparse.Namespace) -> "tuple[str, int]":
    from .chaos import run_chaos_suite

    out = None if args.out == "-" else args.out
    results = run_chaos_suite(out=out, scenarios=args.scenario,
                              workdir=args.workdir)
    lines = ["chaos drills (deterministic crash schedules, "
             "byte-identity asserted):"]
    lines += [r.render() for r in results]
    failed = [r.name for r in results if not r.identical]
    if failed:
        lines.append(f"FAILED: {', '.join(failed)} did not recover "
                     f"byte-identically")
    else:
        lines.append("all scenarios recovered byte-identically")
    if out:
        lines.append(f"wrote {out}")
    return "\n".join(lines), 1 if failed else 0


def _cmd_roofline(args: argparse.Namespace) -> str:
    from .core.types import MatrixShape
    from .harness.roofline_view import roofline_view
    from .machine import CPU_CATALOG, cpu_by_name, gpu_by_name

    key = args.target.strip().lower()
    is_cpu = key in CPU_CATALOG
    spec = cpu_by_name(key) if is_cpu else gpu_by_name(key)
    if args.models:
        models = tuple(m.strip() for m in args.models.split(","))
    elif is_cpu:
        models = ("c-openmp", "kokkos", "julia", "numba")
    else:
        models = ("cuda", "hip", "kokkos", "julia", "numba")
    view = roofline_view(spec, MatrixShape.square(args.size),
                         Precision.parse(args.precision), models)
    return view.render()


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except CellFailure as exc:
        # --fail-fast: a permanently failing cell aborts the campaign.
        print(f"repro: aborted: {exc}", file=sys.stderr)
        return 1
    except RunInterrupted as exc:
        # SIGINT/SIGTERM mid-sweep: the journal was finalized before the
        # engine unwound, so the run is resumable.  128+SIGINT convention.
        from .harness.journal import EXIT_INTERRUPTED
        print(f"repro: interrupted: {exc}", file=sys.stderr)
        return EXIT_INTERRUPTED
    except JournalError as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return 1
    except ServiceError as exc:
        # No daemon on the socket, an admission refusal (AdmissionError
        # subclasses this), an unknown campaign id, a wait timeout, ...
        print(f"repro: {exc}", file=sys.stderr)
        return 1
    except ConfigError as exc:
        # Bad --faults/--breaker/--fallback/... grammar: a usage error.
        print(f"repro: {exc}", file=sys.stderr)
        return 2


def _dispatch(args: argparse.Namespace) -> int:
    rc = 0
    if args.command == "machines":
        out = _cmd_machines()
    elif args.command == "models":
        out = _cmd_models()
    elif args.command == "productivity":
        out = _cmd_productivity()
    elif args.command == "fig":
        out = _cmd_fig(args.number, args.full, not args.no_chart,
                       getattr(args, "efficiencies", False))
    elif args.command == "table":
        out = _cmd_table(args.number, args.full)
    elif args.command == "run":
        out = _cmd_run(args)
    elif args.command == "kernel":
        out = _cmd_kernel(args)
    elif args.command == "scaling":
        out = _cmd_scaling(args)
    elif args.command == "roofline":
        out = _cmd_roofline(args)
    elif args.command == "lint":
        out, rc = _cmd_lint(args)
    elif args.command == "audit":
        out, rc = _cmd_audit(args)
    elif args.command == "cache":
        out = _cmd_cache(args)
    elif args.command == "runs":
        out, rc = _cmd_runs(args)
    elif args.command == "serve":
        out, rc = _cmd_serve(args)
    elif args.command == "submit":
        out, rc = _cmd_submit(args)
    elif args.command == "status":
        out = _cmd_status(args)
    elif args.command == "health":
        out = _cmd_health(args)
    elif args.command == "fsck":
        out, rc = _cmd_fsck(args)
    elif args.command == "chaos":
        out, rc = _cmd_chaos(args)
    elif args.command == "crossover":
        from .harness.crossover import device_crossover
        from .machine import node_by_name
        study = device_crossover(
            node_by_name(args.node), args.model,
            Precision.parse(args.precision),
            tuple(int(x) for x in args.sizes.split(",")))
        out = study.render()
    elif args.command == "stream":
        from .core.types import Precision as _P
        from .machine import CPU_CATALOG, cpu_by_name, gpu_by_name
        from .stream import measure_host_stream, stream_table
        key = args.target.strip().lower()
        is_cpu = key in CPU_CATALOG
        spec = cpu_by_name(key) if is_cpu else gpu_by_name(key)
        if args.models:
            models = tuple(m.strip() for m in args.models.split(","))
        elif is_cpu:
            models = ("c-openmp", "kokkos", "julia", "numba")
        elif "NVIDIA" in spec.name.upper():
            models = ("cuda", "kokkos", "julia", "numba")
        else:
            models = ("hip", "kokkos", "julia", "numba")
        parts = [stream_table(spec, models, args.n,
                              _P.parse(args.precision)).render()]
        if args.host:
            parts.append("")
            parts.append("measured on this host (NumPy kernels):")
            for kernel, bw in measure_host_stream(n=1 << 22, reps=3).items():
                parts.append(f"  {kernel.value:6s} {bw:7.1f} GB/s")
        out = "\n".join(parts)
    elif args.command == "cascade":
        from .core.cascade import cascade, render_cascades
        from .harness import table3
        t3 = table3(QUICK_SIZES)
        prec = Precision.parse(args.precision)
        cascades = [cascade(m, t3.row(m, prec).efficiencies)
                    for m in ("kokkos", "julia", "numba")]
        lines = [render_cascades(cascades), ""]
        for c in cascades:
            cliff = c.cliff_platform
            lines.append(
                f"{c.model}: final Phi {c.final_phi:.3f}; strict PP "
                + (f"collapses when {cliff} joins the set" if cliff
                   else "survives the full platform set"))
        out = "\n".join(lines)
    elif args.command == "report":
        from .harness.engine import set_default_run_options
        from .harness.report_all import full_report
        # Campaign-level commands run many experiments through the
        # default entrypoint; resilience flags install as the
        # process-wide options so every panel inherits them.
        opts = _options_for(args)
        try:
            if opts is not None:
                set_default_run_options(opts)
            text = full_report(PAPER_SIZES if args.full else QUICK_SIZES,
                               charts=args.charts)
        finally:
            if opts is not None:
                set_default_run_options(None)
        if args.out:
            from .ioutil import atomic_write_text
            atomic_write_text(args.out, text)
            out = f"report written to {args.out} ({len(text.splitlines())} lines)"
        else:
            out = text
    elif args.command == "verify":
        from .harness.verify import verify_table3
        report = verify_table3(PAPER_SIZES if args.full else QUICK_SIZES)
        out = report.render()
    else:  # pragma: no cover - argparse enforces choices
        return 2
    try:
        print(out)
    except BrokenPipeError:  # e.g. `repro fig 7 | head`
        return rc
    return rc


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
