"""Input-matrix generation, including the paper's FP16 quirks.

The paper hits two half-precision potholes that change the *data*:

* "FP16 is not supported for Python/Numba regions combined with numpy's
  Float16 random number capabilities, so input matrices were populated
  with 1s" (Sec. IV-A) — i.e. the Numba experiments use all-ones inputs.
* Julia supports FP16 random generation on both CPU and GPU, so its
  matrices are random.

:func:`fill_matrix` reproduces both paths and reports which was taken, so
validation knows the expected product (all-ones inputs make ``C = K``
exactly, a handy analytic check).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.types import Layout, Precision
from .layout import alloc

__all__ = ["FillPolicy", "fill_matrix", "make_gemm_operands"]


@dataclass(frozen=True)
class FillPolicy:
    """How input matrices are populated for a programming model.

    ``random_fp16`` mirrors each model's capability: Julia can generate
    FP16 random numbers, Numba cannot (falls back to ones).
    """

    random_fp16: bool = True
    seed: Optional[int] = None

    def fill_kind(self, precision: Precision) -> str:
        if precision is Precision.FP16 and not self.random_fp16:
            return "ones"
        return "random"


def fill_matrix(rows: int, cols: int, precision: Precision, layout: Layout,
                policy: FillPolicy = FillPolicy(), seed_offset: int = 0) -> np.ndarray:
    """Allocate and populate one input matrix."""
    dtype = precision.np_dtype
    if policy.fill_kind(precision) == "ones":
        return alloc(rows, cols, dtype, layout, fill=1.0)
    rng = np.random.default_rng(None if policy.seed is None
                                else policy.seed + seed_offset)
    data = rng.random((rows, cols), dtype=np.float64 if precision is Precision.FP64
                      else np.float32)
    out = np.asarray(data, dtype=dtype, order=layout.np_order)
    # np.asarray may keep the original order for trivial shapes; force it.
    if layout is Layout.COL_MAJOR and not out.flags["F_CONTIGUOUS"]:
        out = np.asfortranarray(out)
    return out


def make_gemm_operands(m: int, n: int, k: int, precision: Precision,
                       layout: Layout, policy: FillPolicy = FillPolicy()):
    """A (M×K), B (K×N) inputs and a zeroed C (M×N) accumulator.

    C uses the accumulation dtype: FP32 for half-precision inputs, per the
    paper's mixed-precision scheme (Fig. 1c).
    """
    a = fill_matrix(m, k, precision, layout, policy, seed_offset=1)
    b = fill_matrix(k, n, precision, layout, policy, seed_offset=2)
    c = alloc(m, n, precision.accum_dtype, layout, fill=0.0)
    return a, b, c
