"""Strided-layout helpers for dense matrices.

Thin utilities over :class:`repro.core.types.Layout` used by both the real
kernels (to allocate NumPy arrays in the layout a language would use) and
the simulated device arrays (to reason about coalescing).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..core.types import Layout

__all__ = [
    "strides_elements",
    "linear_index",
    "alloc",
    "is_layout",
    "touched_lines",
]


def strides_elements(rows: int, cols: int, layout: Layout) -> Tuple[int, int]:
    """Element strides ``(row_stride, col_stride)`` of a matrix."""
    if layout is Layout.ROW_MAJOR:
        return cols, 1
    return 1, rows


def linear_index(r: int, c: int, rows: int, cols: int, layout: Layout) -> int:
    """Flattened element offset of ``[r, c]``."""
    rs, cs = strides_elements(rows, cols, layout)
    return r * rs + c * cs


def alloc(rows: int, cols: int, dtype: np.dtype, layout: Layout,
          fill: float = 0.0) -> np.ndarray:
    """Allocate a matrix with the given layout, filled with ``fill``."""
    a = np.full((rows, cols), fill, dtype=dtype, order=layout.np_order)
    return a


def is_layout(a: np.ndarray, layout: Layout) -> bool:
    """Whether an array is contiguous in the given layout.

    1-element and single-row/column arrays are contiguous both ways.
    """
    if layout is Layout.ROW_MAJOR:
        return a.flags["C_CONTIGUOUS"]
    return a.flags["F_CONTIGUOUS"]


def touched_lines(n_elements: int, stride_elements: int, element_bytes: int,
                  line_bytes: int = 64) -> int:
    """Distinct cache lines touched by ``n_elements`` accesses with a fixed
    element stride — the quantum of the memory-traffic model."""
    if n_elements <= 0:
        return 0
    stride_bytes = abs(stride_elements) * element_bytes
    if stride_bytes == 0:
        return 1
    span_bytes = (n_elements - 1) * stride_bytes + element_bytes
    if stride_bytes >= line_bytes:
        return n_elements
    return -(-span_bytes // line_bytes)  # ceil
