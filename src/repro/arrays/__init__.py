"""Array substrate: layouts, input generation, simulated device arrays."""

from .device import DeviceArray, DeviceContext, TransferRecord
from .layout import alloc, is_layout, linear_index, strides_elements, touched_lines
from .random import FillPolicy, fill_matrix, make_gemm_operands

__all__ = [
    "DeviceArray",
    "DeviceContext",
    "TransferRecord",
    "alloc",
    "is_layout",
    "linear_index",
    "strides_elements",
    "touched_lines",
    "FillPolicy",
    "fill_matrix",
    "make_gemm_operands",
]
