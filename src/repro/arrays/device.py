"""Simulated device arrays and host<->device transfers.

Models the ``CuArray`` / ``ROCArray`` / ``DeviceNDArray`` objects of
Figs. 3b–3d: a device-resident buffer with an owning :class:`DeviceContext`
that tracks allocations and accumulates *simulated* transfer time from the
GPU's host-link bandwidth.  The data itself lives in a NumPy array so the
real kernels can still validate numerics; what is simulated is the cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from ..errors import MachineModelError
from ..machine.gpu import GPUSpec

__all__ = ["TransferRecord", "DeviceContext", "DeviceArray"]


@dataclass(frozen=True)
class TransferRecord:
    """One simulated host<->device copy."""

    direction: str  # "h2d" | "d2h"
    bytes: int
    seconds: float


@dataclass
class DeviceContext:
    """One simulated GPU device: allocation accounting + transfer costs.

    ``transfer_latency_us`` is the fixed per-copy setup cost; the variable
    part uses the spec's ``host_link_gbs``.
    """

    spec: GPUSpec
    transfer_latency_us: float = 10.0
    allocated_bytes: int = 0
    peak_allocated_bytes: int = 0
    transfers: List[TransferRecord] = field(default_factory=list)

    def _transfer_seconds(self, nbytes: int) -> float:
        return self.transfer_latency_us * 1e-6 + nbytes / (self.spec.host_link_gbs * 1e9)

    def to_device(self, host: np.ndarray) -> "DeviceArray":
        """Simulate ``cudaMemcpy`` H2D; returns the device-resident array."""
        rec = TransferRecord("h2d", host.nbytes, self._transfer_seconds(host.nbytes))
        self.transfers.append(rec)
        arr = DeviceArray(context=self, data=host.copy(order="K"))
        self.allocated_bytes += host.nbytes
        self.peak_allocated_bytes = max(self.peak_allocated_bytes, self.allocated_bytes)
        return arr

    def alloc(self, shape, dtype, order: str = "C") -> "DeviceArray":
        data = np.zeros(shape, dtype=dtype, order=order)
        arr = DeviceArray(context=self, data=data)
        self.allocated_bytes += data.nbytes
        self.peak_allocated_bytes = max(self.peak_allocated_bytes, self.allocated_bytes)
        return arr

    def free(self, arr: "DeviceArray") -> None:
        if arr.freed:
            raise MachineModelError("double free of device array")
        arr.freed = True
        self.allocated_bytes -= arr.data.nbytes

    @property
    def total_transfer_seconds(self) -> float:
        return sum(t.seconds for t in self.transfers)

    @property
    def h2d_bytes(self) -> int:
        return sum(t.bytes for t in self.transfers if t.direction == "h2d")

    @property
    def d2h_bytes(self) -> int:
        return sum(t.bytes for t in self.transfers if t.direction == "d2h")


@dataclass
class DeviceArray:
    """A matrix resident on a simulated device."""

    context: DeviceContext
    data: np.ndarray
    freed: bool = False

    @property
    def shape(self):
        return self.data.shape

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def nbytes(self) -> int:
        return self.data.nbytes

    def to_host(self) -> np.ndarray:
        """Simulate D2H copy; returns a host NumPy array."""
        if self.freed:
            raise MachineModelError("read of freed device array")
        ctx = self.context
        rec = TransferRecord("d2h", self.data.nbytes,
                             ctx._transfer_seconds(self.data.nbytes))
        ctx.transfers.append(rec)
        return self.data.copy(order="K")
