"""Chaos scenarios: inject a crash, drive recovery, assert byte-identity.

Each scenario in :data:`CHAOS_SCENARIOS` stages one of the failure modes
the stack claims to survive — a SIGKILL'd pool worker, a SIGKILL'd
campaign daemon mid-grant, a torn journal tail, a full disk under the
result cache, a submission storm at twice the daemon's admission
capacity — then drives the ordinary recovery machinery (watchdog
respawn, daemon restart + journal recovery, ``fsck`` truncation +
resume, read-only cache degradation, load shedding + idempotent client
retries) and checks the one invariant that matters: the finished
report is **byte-identical** to a failure-free run of the same
campaign.

``run_chaos_suite`` executes the scenarios and writes MTTR and recovery
counters to ``BENCH_robustness.json`` (``repro chaos`` /
``make chaos-smoke``).  Everything is deterministic: crash schedules
are :class:`~repro.chaos.plan.ChaosPlan` files with exact fire
ordinals, and the simulator under the campaigns is seeded.
"""

from __future__ import annotations

import json
import os
import platform
import shutil
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..errors import ConfigError
from .plan import CHAOS_PLAN_ENV, ChaosEvent, ChaosPlan

__all__ = ["ChaosScenarioResult", "CHAOS_SCENARIOS", "run_chaos_suite"]

#: Seconds a scenario waits for a daemon to serve / campaigns to finish.
_SCENARIO_TIMEOUT_S = 180.0


@dataclass
class ChaosScenarioResult:
    """One scenario's verdict: did recovery reproduce the healthy run?"""

    #: Scenario name (a key of :data:`CHAOS_SCENARIOS`).
    name: str
    #: Whether the post-recovery report matched the failure-free run
    #: byte for byte (the pass/fail verdict).
    identical: bool
    #: Mean-time-to-recover: seconds from the crash being detectable to
    #: the campaign finishing (0 for pure degradation scenarios).
    mttr_s: float
    #: Scenario-specific recovery counters (respawns, restarts,
    #: pressure counters, torn records recovered, ...).
    metrics: Dict[str, object] = field(default_factory=dict)
    #: One-line human note (what was injected, what recovered it).
    detail: str = ""

    def render(self) -> str:
        """One report line for this scenario."""
        verdict = "ok" if self.identical else "FAILED"
        extras = ", ".join(f"{k}={v}" for k, v in sorted(self.metrics.items()))
        return (f"  [{verdict:>6s}] {self.name:12s} "
                f"mttr {self.mttr_s:6.2f}s  {extras}")

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready rendering for ``BENCH_robustness.json``."""
        return {"name": self.name, "identical": self.identical,
                "mttr_s": round(self.mttr_s, 3), "detail": self.detail,
                "metrics": dict(self.metrics)}


# -- shared plumbing -------------------------------------------------------

def _src_dir() -> str:
    return os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))


def _clean_env(workdir: str, plan_path: Optional[str] = None) -> Dict[str, str]:
    """A subprocess environment pinned to ``workdir``'s private stores.

    Every ``REPRO_*`` variable of the calling process is stripped so an
    outer test harness (faults, watchdog, engine overrides) cannot leak
    into the scenario and break its byte-identity baseline.
    """
    env = {k: v for k, v in os.environ.items()
           if not k.startswith("REPRO_")}
    env["REPRO_RUNS_DIR"] = os.path.join(workdir, "runs")
    env["REPRO_CACHE_DIR"] = os.path.join(workdir, "cache")
    env["PYTHONPATH"] = _src_dir() + os.pathsep + env.get("PYTHONPATH", "")
    if plan_path:
        env[CHAOS_PLAN_ENV] = plan_path
    return env


def _solo_render(spec) -> str:
    """The report a failure-free, cache-less in-process run produces."""
    from ..harness.engine import SweepEngine
    from ..harness.report import render_result_set
    from ..harness.runner import run_campaign
    return render_result_set(run_campaign(
        spec, engine=SweepEngine(cache=None, parallel=False)))


def _chaos_spec(exp_id: str, models=("julia", "numba"),
                sizes=(256, 512), reps: int = 3, tenant: str = "default"):
    from ..core.types import DeviceKind, Precision
    from ..harness.experiment import Experiment
    from ..service.spec import CampaignSpec
    return CampaignSpec(experiment=Experiment(
        exp_id=exp_id, title="chaos drill", node_name="Crusher",
        device=DeviceKind.CPU, precision=Precision.FP64,
        models=models, sizes=sizes, threads=64, reps=reps), tenant=tenant)


def _wait_until(predicate: Callable[[], bool],
                timeout: float = _SCENARIO_TIMEOUT_S,
                interval: float = 0.05) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


# -- scenario: SIGKILL a pool worker mid-cell ------------------------------

def scenario_worker_kill(workdir: str) -> ChaosScenarioResult:
    """Kill one process-pool worker mid-cell; the watchdog must respawn
    the pool, redrive the lost cells and finish byte-identically."""
    run_args = [sys.executable, "-m", "repro", "run",
                "--engine", "process", "--jobs", "2",
                "--models", "julia,numba", "--sizes", "256,512",
                "--reps", "3", "--no-cache", "--no-journal"]

    base_dir = os.path.join(workdir, "baseline")
    os.makedirs(base_dir, exist_ok=True)
    t0 = time.monotonic()
    baseline = subprocess.run(run_args, env=_clean_env(base_dir),
                              capture_output=True, text=True,
                              timeout=_SCENARIO_TIMEOUT_S)
    baseline_s = time.monotonic() - t0
    if baseline.returncode != 0:
        raise ConfigError(f"worker-kill baseline run failed: "
                          f"{baseline.stderr.strip()}")

    chaos_dir = os.path.join(workdir, "chaos")
    os.makedirs(chaos_dir, exist_ok=True)
    plan_path = ChaosPlan((ChaosEvent("worker-cell", "kill", after=2),)) \
        .write(os.path.join(chaos_dir, "plan.json"))
    t0 = time.monotonic()
    chaotic = subprocess.run(run_args, env=_clean_env(chaos_dir, plan_path),
                             capture_output=True, text=True,
                             timeout=_SCENARIO_TIMEOUT_S)
    chaotic_s = time.monotonic() - t0

    respawns = chaotic.stderr.count("respawning worker pool")
    identical = (chaotic.returncode == 0
                 and chaotic.stdout == baseline.stdout
                 and respawns >= 1)
    return ChaosScenarioResult(
        name="worker-kill", identical=identical,
        mttr_s=max(0.0, chaotic_s - baseline_s),
        metrics={"respawns": respawns,
                 "exit_code": chaotic.returncode,
                 "stdout_bytes": len(chaotic.stdout)},
        detail="SIGKILL'd worker 3 cells in; watchdog respawned the pool "
               "and redrove the lost cells")


# -- scenario: SIGKILL the campaign daemon mid-grant -----------------------

def scenario_daemon_kill(workdir: str) -> ChaosScenarioResult:
    """SIGKILL ``repro serve`` mid-grant with two tenants queued; a
    restarted daemon must recover both from their journals, prune the
    dead pid's ACTIVE sidecars and finish byte-identically."""
    from ..harness.engine import ResultCache
    from ..harness.journal import RunRegistry
    from ..harness.report import render_result_set
    from ..service import CampaignService, ServiceClient

    os.makedirs(workdir, exist_ok=True)
    runs_dir = os.path.join(workdir, "runs")
    cache_dir = os.path.join(workdir, "cache")
    sock = os.path.join(workdir, "chaos.sock")
    plan_path = ChaosPlan((ChaosEvent("daemon-grant", "kill", after=8),)) \
        .write(os.path.join(workdir, "plan.json"))
    spec_a = _chaos_spec("chaos-daemon-a", ("julia", "numba", "kokkos"),
                         (256, 512, 1024, 2048), reps=4, tenant="alice")
    spec_b = _chaos_spec("chaos-daemon-b", ("julia", "numba", "kokkos"),
                         (256, 512, 1024, 2048), reps=4, tenant="bob")
    serve_args = [sys.executable, "-m", "repro", "serve", "--socket", sock]

    def ping_ok() -> bool:
        from ..errors import ServiceError
        try:
            return ServiceClient(sock).ping().get("ok") is True
        except ServiceError:
            return False

    first = subprocess.Popen(serve_args, env=_clean_env(workdir, plan_path),
                             stdout=subprocess.PIPE, stderr=subprocess.PIPE)
    try:
        if not _wait_until(ping_ok):
            raise ConfigError("chaos daemon never served")
        client = ServiceClient(sock)
        id_a = client.submit(spec_a)
        id_b = client.submit(spec_b)
        # The armed plan SIGKILLs the daemon on its 9th grant — no
        # graceful unwind, no sidecar release, journals torn mid-run.
        first.wait(timeout=_SCENARIO_TIMEOUT_S)
    finally:
        if first.poll() is None:
            first.kill()
            first.wait(timeout=30)
    killed_by_sigkill = first.returncode == -9

    # The dead daemon's pid is still claimed in at least one ACTIVE
    # sidecar; recovery must prune it rather than wait out a lease.
    dead_sidecars = 0
    for name in os.listdir(runs_dir):
        if not name.endswith(".active"):
            continue
        try:
            with open(os.path.join(runs_dir, name)) as fh:
                if int(json.load(fh).get("pid", 0)) == first.pid:
                    dead_sidecars += 1
        except (OSError, ValueError):
            continue

    registry = RunRegistry(runs_dir)

    def both_complete() -> bool:
        try:
            return (registry.load(id_a).status == "complete"
                    and registry.load(id_b).status == "complete")
        except Exception:
            return False

    t_restart = time.monotonic()
    second = subprocess.Popen(serve_args, env=_clean_env(workdir),
                              stdout=subprocess.PIPE,
                              stderr=subprocess.PIPE)
    try:
        if not _wait_until(ping_ok):
            raise ConfigError("restarted daemon never served")
        finished = _wait_until(both_complete)
        mttr = time.monotonic() - t_restart
    finally:
        from ..errors import ServiceError
        try:
            ServiceClient(sock).shutdown()
        except ServiceError:
            second.terminate()
        second.wait(timeout=60)

    sidecars_left = sum(1 for name in os.listdir(runs_dir)
                        if name.endswith(".active"))
    svc = CampaignService(registry=registry, cache=ResultCache(cache_dir))
    identical = bool(
        killed_by_sigkill and finished and dead_sidecars >= 1
        and sidecars_left == 0
        and render_result_set(svc.result_set(id_a)) == _solo_render(spec_a)
        and render_result_set(svc.result_set(id_b)) == _solo_render(spec_b))
    return ChaosScenarioResult(
        name="daemon-kill", identical=identical, mttr_s=mttr,
        metrics={"killed_by_sigkill": killed_by_sigkill,
                 "dead_pid_sidecars": dead_sidecars,
                 "sidecars_after_recovery": sidecars_left,
                 "campaigns_recovered": 2 if finished else 0},
        detail="SIGKILL'd the daemon on grant 9 of 24; the restart "
               "recovered both tenants' campaigns from their journals")


# -- scenario: tear the journal tail ---------------------------------------

def scenario_journal_tear(workdir: str) -> ChaosScenarioResult:
    """Tear a half-finished campaign's journal tail; ``fsck`` must
    truncate to the valid prefix and recovery must re-execute from
    there to a byte-identical report."""
    from ..harness.engine import ResultCache
    from ..harness.journal import RunRegistry, fsck_store
    from ..harness.report import render_result_set
    from ..service import CampaignService

    runs_dir = os.path.join(workdir, "runs")
    cache_dir = os.path.join(workdir, "cache")
    spec = _chaos_spec("chaos-tear")
    service = CampaignService(registry=RunRegistry(runs_dir),
                              cache=ResultCache(cache_dir))
    cid = service.submit(spec)
    for _ in range(2):          # 2 of the campaign's 4 cells
        service.step()
    service.suspend()

    path = RunRegistry(runs_dir).path_for(cid)
    with open(path, "r+b") as fh:
        fh.seek(0, os.SEEK_END)
        # A writer SIGKILL'd mid-append leaves exactly this: a valid
        # prefix followed by a truncated, newline-less record.
        fh.write(b'{"type": "cell-done", "seq": 999, "torn')

    t0 = time.monotonic()
    registry = RunRegistry(runs_dir)
    report = fsck_store(cache=ResultCache(cache_dir), registry=registry)
    torn = sum(1 for i in report.issues if i.kind == "journal-tail")
    svc2 = CampaignService(registry=registry, cache=ResultCache(cache_dir))
    recovered = svc2.recover()
    svc2.run_until_idle()
    mttr = time.monotonic() - t0

    identical = (torn == 1 and recovered == [cid]
                 and render_result_set(svc2.result_set(cid))
                 == _solo_render(spec))
    return ChaosScenarioResult(
        name="journal-tear", identical=identical, mttr_s=mttr,
        metrics={"torn_tails_recovered": torn,
                 "campaigns_recovered": len(recovered),
                 "cells_journaled_before_tear": 2},
        detail="tore the journal tail after 2 of 4 cells; fsck truncated "
               "to the valid prefix and recovery finished the rest")


# -- scenario: disk-full under the result cache ----------------------------

def scenario_disk_full(workdir: str) -> ChaosScenarioResult:
    """Exhaust the store under every cache put; the cache must degrade
    to read-only (counting what it skipped) while the campaign itself
    completes byte-identically."""
    from ..harness.engine import ResultCache, SweepEngine
    from ..harness.report import render_result_set
    from ..harness.runner import run_campaign

    os.makedirs(workdir, exist_ok=True)
    spec = _chaos_spec("chaos-disk-full")
    baseline = _solo_render(spec)

    cache = ResultCache(os.path.join(workdir, "cache"))
    plan_path = ChaosPlan((ChaosEvent("cache-put", "enospc",
                                      count=1_000_000),)) \
        .write(os.path.join(workdir, "plan.json"))
    os.environ[CHAOS_PLAN_ENV] = plan_path
    try:
        t0 = time.monotonic()
        results = run_campaign(spec, engine=SweepEngine(cache=cache,
                                                        parallel=False))
        wall = time.monotonic() - t0
    finally:
        os.environ.pop(CHAOS_PLAN_ENV, None)

    pressure = cache.pressure_snapshot()
    identical = (render_result_set(results) == baseline
                 and bool(pressure.get("read_only"))
                 and int(pressure.get("enospc", 0)) >= 2)
    return ChaosScenarioResult(
        name="disk-full", identical=identical, mttr_s=0.0,
        metrics={"read_only": bool(pressure.get("read_only")),
                 "enospc_hits": int(pressure.get("enospc", 0)),
                 "skipped_puts": int(pressure.get("skipped_puts", 0)),
                 "degraded_wall_s": round(wall, 3)},
        detail="every cache put hit ENOSPC; the store flipped read-only "
               "and the campaign completed without caching")


# -- scenario: submission storm at 2x admission capacity -------------------

def scenario_overload(workdir: str) -> ChaosScenarioResult:
    """Storm a small-capacity daemon at twice its admission cap through
    retrying keyed clients, SIGKILL it mid-storm and restart it; every
    submission must land exactly once (shed requests converge via
    429/503 + ``Retry-After``, lost ACKs via the idempotency map, which
    must also survive the restart), every accepted campaign must finish
    byte-identically, and a tiny-deadline campaign must end
    ``expired`` — never ``done``, never wedged."""
    import dataclasses
    import threading

    from ..errors import DeadlineExpired, ServiceError
    from ..harness.engine import ResultCache
    from ..harness.journal import RunRegistry
    from ..harness.report import render_result_set
    from ..service import ClientPolicy, CampaignService, ServiceClient

    os.makedirs(workdir, exist_ok=True)
    runs_dir = os.path.join(workdir, "runs")
    cache_dir = os.path.join(workdir, "cache")
    sock = os.path.join(workdir, "chaos.sock")
    # SIGKILL on the 7th grant: the storm is still submitting, so some
    # ACKs are lost mid-flight and must converge through retried,
    # idempotency-keyed submits against the restarted daemon.
    plan_path = ChaosPlan((ChaosEvent("daemon-grant", "kill", after=6),)) \
        .write(os.path.join(workdir, "plan.json"))
    max_total = 6
    storm = 2 * max_total
    specs = [dataclasses.replace(
        _chaos_spec(f"chaos-ovl-{i:02d}", ("julia", "numba"),
                    (256, 512), reps=2, tenant=f"tenant{i % 3}"),
        submission_key=f"storm-{i:02d}") for i in range(storm)]
    serve_args = [sys.executable, "-m", "repro", "serve", "--socket", sock,
                  "--max-total", str(max_total)]
    policy = ClientPolicy(retries=24, backoff_max_s=0.5)

    def ping_ok() -> bool:
        try:
            return ServiceClient(sock).ping().get("ok") is True
        except ServiceError:
            return False

    def submit_converge(spec) -> "tuple[str, int]":
        """One storming client: submit until the keyed spec lands.

        The client policy already retries 429/503 and connection
        refusal; this outer loop additionally survives what the policy
        deliberately refuses to hide — a 409 from losing the
        check-overload/admit race to the hard admission wall, and a
        connection the SIGKILL tore mid-request.  Both re-submits are
        exactly-once because the spec carries a submission_key.
        """
        client = ServiceClient(sock, policy=policy)
        deadline = time.monotonic() + _SCENARIO_TIMEOUT_S
        while True:
            try:
                return client.submit(spec), client.retries_used
            except ServiceError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.2)

    ids: Dict[int, str] = {}
    retries: Dict[int, int] = {}
    errors: List[str] = []
    lock = threading.Lock()

    def storm_one(i: int) -> None:
        try:
            campaign_id, used = submit_converge(specs[i])
            with lock:
                ids[i] = campaign_id
                retries[i] = used
        except ServiceError as exc:
            with lock:
                errors.append(f"storm-{i:02d}: {exc}")

    first = subprocess.Popen(serve_args, env=_clean_env(workdir, plan_path),
                             stdout=subprocess.PIPE, stderr=subprocess.PIPE)
    expired_id = ""
    try:
        if not _wait_until(ping_ok):
            raise ConfigError("overload daemon never served")
        t_storm = time.monotonic()
        threads = [threading.Thread(target=storm_one, args=(i,))
                   for i in range(storm)]
        for thread in threads:
            thread.start()
        # The armed plan SIGKILLs the daemon on its 7th grant — mid-storm,
        # so some submits lose their ACK mid-request.
        first.wait(timeout=_SCENARIO_TIMEOUT_S)
    finally:
        if first.poll() is None:
            first.kill()
            first.wait(timeout=30)
    killed_by_sigkill = first.returncode == -9

    t_restart = time.monotonic()
    second = subprocess.Popen(serve_args, env=_clean_env(workdir),
                              stdout=subprocess.PIPE,
                              stderr=subprocess.PIPE)
    try:
        if not _wait_until(ping_ok):
            raise ConfigError("restarted overload daemon never served")
        # A 12-cell campaign under a 50 ms deadline: at ~10 ms a cell it
        # cannot finish in time even against an idle scheduler, so it
        # must end ``expired`` at a cell boundary — never ``done``.
        expired_spec = dataclasses.replace(
            _chaos_spec("chaos-ovl-deadline", ("julia", "numba", "kokkos"),
                        (256, 512, 1024, 2048), reps=2),
            submission_key="storm-deadline", deadline_s=0.05)
        expired_id, _ = submit_converge(expired_spec)
        for thread in threads:
            thread.join(timeout=_SCENARIO_TIMEOUT_S)
        convergence_s = time.monotonic() - t_storm
        # Replaying an already-ACKed submit against the *restarted*
        # daemon must answer the original id from the journal-rebuilt
        # idempotency map — exactly-once across daemon lives.
        dup_id = submit_converge(specs[0])[0] if 0 in ids else ""

        registry = RunRegistry(runs_dir)

        def storm_complete() -> bool:
            try:
                return all(registry.load(cid).status == "complete"
                           for cid in ids.values())
            except Exception:
                return False

        finished = len(ids) == storm and _wait_until(storm_complete)
        mttr = time.monotonic() - t_restart
        expired_ok = False
        if expired_id:
            try:
                ServiceClient(sock).wait(expired_id, timeout=60.0)
            except DeadlineExpired:
                expired_ok = True
            except ServiceError:
                expired_ok = False
        status = ServiceClient(sock).status()
    finally:
        try:
            ServiceClient(sock).shutdown()
        except ServiceError:
            second.terminate()
        second.wait(timeout=60)

    # Exactly-once on disk: every storm key owns exactly one journal.
    keys_seen: Dict[str, int] = {}
    for run_id in registry.run_ids():
        try:
            meta = registry.load(run_id).service_meta or {}
        except Exception:
            continue
        key = (meta.get("spec") or {}).get("submission_key")
        if key:
            keys_seen[str(key)] = keys_seen.get(str(key), 0) + 1
    exactly_once = (len(ids) == storm
                    and len(set(ids.values())) == storm
                    and dup_id == ids.get(0)
                    and all(keys_seen.get(f"storm-{i:02d}") == 1
                            for i in range(storm)))

    svc = CampaignService(registry=registry, cache=ResultCache(cache_dir))
    sampled = [specs[i] for i in (0, storm // 2, storm - 1)]
    identical = bool(
        killed_by_sigkill and finished and exactly_once and expired_ok
        and not errors
        and all(render_result_set(svc.result_set(ids[specs.index(s)]))
                == _solo_render(s) for s in sampled))
    overload = status.get("overload", {})
    return ChaosScenarioResult(
        name="overload", identical=identical, mttr_s=mttr,
        metrics={"killed_by_sigkill": killed_by_sigkill,
                 "storm_campaigns": storm,
                 "unique_ids": len(set(ids.values())),
                 "client_retries": sum(retries.values()),
                 "convergence_s": round(convergence_s, 3),
                 "duplicates_after_restart": int(
                     overload.get("duplicates", 0)),
                 "shed_after_restart": int(overload.get("shed", 0)),
                 "deadline_expired": expired_ok},
        detail=f"stormed {storm} keyed submissions at a {max_total}-slot "
               "daemon, SIGKILL'd it on grant 7 and restarted; shedding "
               "+ idempotent retries converged on exactly one campaign "
               "per key")


#: Scenario registry, in the order ``repro chaos`` runs them.
CHAOS_SCENARIOS: Dict[str, Callable[[str], ChaosScenarioResult]] = {
    "worker-kill": scenario_worker_kill,
    "daemon-kill": scenario_daemon_kill,
    "journal-tear": scenario_journal_tear,
    "disk-full": scenario_disk_full,
    "overload": scenario_overload,
}


def run_chaos_suite(out: Optional[str] = None,
                    scenarios: Optional[Sequence[str]] = None,
                    workdir: Optional[str] = None
                    ) -> List[ChaosScenarioResult]:
    """Run chaos scenarios and (optionally) write the robustness bench.

    ``scenarios`` selects a subset by name (default: all of
    :data:`CHAOS_SCENARIOS`, in order); ``workdir`` pins the scratch
    root (default: a private temp dir, removed afterwards); ``out``
    names the ``BENCH_robustness.json`` to write.
    """
    names = list(scenarios) if scenarios else list(CHAOS_SCENARIOS)
    unknown = [n for n in names if n not in CHAOS_SCENARIOS]
    if unknown:
        raise ConfigError(
            f"unknown chaos scenario(s) {', '.join(unknown)} "
            f"(known: {', '.join(CHAOS_SCENARIOS)})")
    own_root = workdir is None
    root = workdir or tempfile.mkdtemp(prefix="repro-chaos-")
    results: List[ChaosScenarioResult] = []
    try:
        for name in names:
            scenario_dir = os.path.join(root, name)
            os.makedirs(scenario_dir, exist_ok=True)
            results.append(CHAOS_SCENARIOS[name](scenario_dir))
    finally:
        if own_root:
            shutil.rmtree(root, ignore_errors=True)
    if out:
        payload = {
            "benchmark": "robustness",
            "python": platform.python_version(),
            "host_cpus": os.cpu_count() or 1,
            "all_identical": all(r.identical for r in results),
            "scenarios": {r.name: r.to_dict() for r in results},
        }
        with open(out, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return results
