"""Deterministic chaos engineering for the repro stack.

Two halves:

* :mod:`repro.chaos.plan` — the injection side: a JSON-serialised
  :class:`ChaosPlan` of seeded crash events, armed through the
  ``REPRO_CHAOS_PLAN`` environment variable and fired at instrumented
  strike points (:func:`chaos_strike`) with multi-process-safe
  once-only semantics.
* :mod:`repro.chaos.harness` — the assertion side: scenario runners
  (worker SIGKILL, daemon SIGKILL mid-grant, torn journal tail,
  disk-full store) that inject a plan, drive a real campaign through
  recovery, assert byte-identical completion against a failure-free
  baseline, and write MTTR/restart/degraded-mode counters to
  ``BENCH_robustness.json`` (``repro chaos`` / ``make chaos-smoke``).

The harness is imported lazily (PEP 562) so arming/striking — which
runs inside hot production paths and forked workers — never pays for
the scenario machinery.
"""

from .plan import (
    CHAOS_ACTIONS,
    CHAOS_PLAN_ENV,
    CHAOS_POINTS,
    ChaosEvent,
    ChaosPlan,
    chaos_armed,
    chaos_strike,
)

__all__ = [
    "CHAOS_ACTIONS",
    "CHAOS_PLAN_ENV",
    "CHAOS_POINTS",
    "ChaosEvent",
    "ChaosPlan",
    "chaos_armed",
    "chaos_strike",
    "ChaosScenarioResult",
    "run_chaos_suite",
    "CHAOS_SCENARIOS",
]

_LAZY = {
    "ChaosScenarioResult": "harness",
    "run_chaos_suite": "harness",
    "CHAOS_SCENARIOS": "harness",
}


def __getattr__(name: str):
    """Lazy re-exports of the scenario harness (PEP 562)."""
    target = _LAZY.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module
    value = getattr(import_module(f".{target}", __name__), name)
    globals()[name] = value
    return value
