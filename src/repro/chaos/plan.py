"""Seeded, cross-process chaos injection for crash-fault testing.

A :class:`ChaosPlan` is a deterministic crash schedule: a tuple of
:class:`ChaosEvent` rules, each naming an instrumented *strike point*
in the codebase (``worker-cell``, ``cache-put``, ``journal-append``,
``daemon-grant``), an *action* to take there (``kill`` the process,
``hang``, raise ``ENOSPC``), and a window of matching hits to fire on.
Plans are JSON files armed through the ``REPRO_CHAOS_PLAN`` environment
variable, so they survive ``fork``/``exec`` into pool workers and
daemon subprocesses — exactly the processes the chaos harness wants to
kill.

Determinism across processes comes from sentinel *slot* files: each
hit of each event claims the lowest free ``e<idx>.hit<k>`` slot in the
plan's ``.fired/`` directory with ``O_CREAT|O_EXCL`` (an atomic,
multi-process-safe counter), and the event fires only when the claimed
ordinal falls inside its ``[after, after+count)`` window.  "Kill worker
N mid-cell, once" therefore means once — no matter how many workers
race past the strike point.

Production code calls :func:`chaos_strike` at each instrumented point;
with ``REPRO_CHAOS_PLAN`` unset (the normal case) that is a single
dict lookup and a return.
"""

from __future__ import annotations

import json
import os
import signal
import time
from dataclasses import dataclass, field
from typing import Dict, Tuple

from ..errors import ConfigError

__all__ = [
    "CHAOS_PLAN_ENV",
    "CHAOS_ACTIONS",
    "CHAOS_POINTS",
    "ChaosEvent",
    "ChaosPlan",
    "chaos_armed",
    "chaos_strike",
]

#: Environment variable naming the armed plan file ("" / unset = off).
CHAOS_PLAN_ENV = "REPRO_CHAOS_PLAN"

#: Actions an event may take at its strike point.
CHAOS_ACTIONS = ("kill", "hang", "enospc")

#: Instrumented strike points (see the module docstring for locations).
CHAOS_POINTS = ("worker-cell", "cache-put", "journal-append",
                "daemon-grant")

#: How long a ``hang`` action sleeps — effectively forever next to any
#: sane watchdog deadline, finite so an unsupervised test still ends.
_HANG_SECONDS = 600.0


@dataclass(frozen=True)
class ChaosEvent:
    """One rule of a chaos plan: where to strike, what to do, and when."""

    #: Strike point name (one of :data:`CHAOS_POINTS`).
    point: str
    #: What to do there (one of :data:`CHAOS_ACTIONS`).
    action: str
    #: Substring the strike label must contain ("" matches every hit).
    match: str = ""
    #: Matching hits to let pass before firing.
    after: int = 0
    #: Matching hits to fire on once armed (0 = never).
    count: int = 1

    def __post_init__(self) -> None:
        if self.point not in CHAOS_POINTS:
            raise ConfigError(
                f"chaos event point must be one of {CHAOS_POINTS}, "
                f"got {self.point!r}")
        if self.action not in CHAOS_ACTIONS:
            raise ConfigError(
                f"chaos event action must be one of {CHAOS_ACTIONS}, "
                f"got {self.action!r}")
        if self.after < 0 or self.count < 0:
            raise ConfigError("chaos event after/count must be >= 0")

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready rendering (round-trips through ``from_dict``)."""
        return {"point": self.point, "action": self.action,
                "match": self.match, "after": self.after,
                "count": self.count}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ChaosEvent":
        """Event from its ``to_dict`` rendering."""
        return cls(point=str(data["point"]), action=str(data["action"]),
                   match=str(data.get("match", "")),
                   after=int(data.get("after", 0)),  # type: ignore[arg-type]
                   count=int(data.get("count", 1)))  # type: ignore[arg-type]


@dataclass(frozen=True)
class ChaosPlan:
    """A deterministic crash schedule: an ordered tuple of events."""

    events: Tuple[ChaosEvent, ...] = field(default_factory=tuple)

    def to_json(self) -> str:
        """Canonical JSON rendering of the plan."""
        return json.dumps({"version": 1,
                           "events": [e.to_dict() for e in self.events]},
                          sort_keys=True, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "ChaosPlan":
        """Plan from its JSON rendering (raises ``ConfigError`` on junk)."""
        try:
            data = json.loads(text)
            events = tuple(ChaosEvent.from_dict(e)
                           for e in data.get("events", []))
        except (ValueError, KeyError, TypeError) as exc:
            raise ConfigError(f"invalid chaos plan: {exc}") from exc
        return cls(events=events)

    def write(self, path: str) -> str:
        """Write the plan to ``path`` and return ``path``."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json() + "\n")
        return path

    @classmethod
    def load(cls, path: str) -> "ChaosPlan":
        """Plan loaded from a JSON file."""
        try:
            with open(path, encoding="utf-8") as fh:
                return cls.from_json(fh.read())
        except OSError as exc:
            raise ConfigError(f"cannot read chaos plan {path}: {exc}") \
                from exc


def chaos_armed() -> bool:
    """Whether a chaos plan is armed in this process's environment."""
    return bool(os.environ.get(CHAOS_PLAN_ENV))


def _claim_hit(fired_dir: str, idx: int) -> int:
    # Atomically claim the lowest free slot file for event `idx`; the
    # slot number is this hit's 0-based ordinal across ALL processes
    # sharing the plan (O_CREAT|O_EXCL is the cross-process atom).
    os.makedirs(fired_dir, exist_ok=True)
    k = 0
    while True:
        path = os.path.join(fired_dir, f"e{idx}.hit{k}")
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            k += 1
            continue
        os.close(fd)
        return k


def chaos_strike(point: str, label: str = "") -> None:
    """Fire any armed chaos event matching this strike point.

    Called from instrumented production paths; a no-op (one environment
    lookup) unless ``REPRO_CHAOS_PLAN`` names a plan file.  ``label``
    is the per-hit identity (a cell name, a fingerprint, a campaign id)
    events filter on with their ``match`` substring.
    """
    plan_path = os.environ.get(CHAOS_PLAN_ENV)
    if not plan_path:
        return
    plan = ChaosPlan.load(plan_path)
    fired_dir = plan_path + ".fired"
    for idx, event in enumerate(plan.events):
        if event.point != point or event.count <= 0:
            continue
        if event.match and event.match not in label:
            continue
        ordinal = _claim_hit(fired_dir, idx)
        if not (event.after <= ordinal < event.after + event.count):
            continue
        if event.action == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        elif event.action == "hang":
            time.sleep(_HANG_SECONDS)
        elif event.action == "enospc":
            import errno
            raise OSError(errno.ENOSPC,
                          f"No space left on device (chaos: {point})")
