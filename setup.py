"""Legacy setup shim: enables `pip install -e .` where the `wheel` package
(needed for PEP 660 editable installs) is unavailable."""

from setuptools import setup

setup()
