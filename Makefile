# Convenience targets for the repro study framework.

PYTHON ?= python

.PHONY: install test lint audit bench bench-audit bench-engine bench-paper bench-service chaos-smoke engine-smoke service-smoke report report-cached faults breaker resume fsck verify examples clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

# Style lint (ruff) + type check (mypy) — each skipped when not
# installed — plus the kernel IR linter.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
	  ruff check src tests; \
	else \
	  echo "ruff not installed; skipping style lint"; \
	fi
	@if command -v mypy >/dev/null 2>&1; then \
	  mypy src/repro/ir; \
	else \
	  echo "mypy not installed; skipping type check"; \
	fi
	$(PYTHON) -m repro lint

# Static performance-portability audit of every registry lane: hazard
# codes plus predicted efficiency bands, cross-checked against the
# simulator's memory/occupancy models (exit 1 on gating findings).
audit:
	$(PYTHON) -m repro audit

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

bench-paper:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s --sweep=paper

# Static-analysis throughput: time full-matrix lint + audit sweeps and
# record lanes/sec in BENCH_static_analysis.json.
bench-audit:
	$(PYTHON) benchmarks/bench_static_analysis.py --out BENCH_static_analysis.json

# Sweep-executor throughput: time cold/warm sweeps through the serial,
# thread and process engines and record cells/sec in BENCH_engine.json.
bench-engine:
	$(PYTHON) benchmarks/bench_engine.py --out BENCH_engine.json

# Process-engine determinism smoke test: the sharded executor must
# produce byte-identical stdout and export artifacts to a serial run
# (only the artifact path in the banner differs; the digest must not).
engine-smoke:
	rm -rf .repro-engine-smoke
	mkdir -p .repro-engine-smoke
	REPRO_CACHE_DIR=.repro-engine-smoke/cache-serial $(PYTHON) -m repro run \
	  --models julia,numba --sizes 256,512,1024 --serial --no-journal \
	  --export .repro-engine-smoke/serial.json > .repro-engine-smoke/serial.txt
	REPRO_CACHE_DIR=.repro-engine-smoke/cache-process $(PYTHON) -m repro run \
	  --models julia,numba --sizes 256,512,1024 --engine process --jobs 2 \
	  --no-journal \
	  --export .repro-engine-smoke/process.json > .repro-engine-smoke/process.txt
	cmp .repro-engine-smoke/serial.json .repro-engine-smoke/process.json
	sed 's/^\[artifact: .* sha256:/[artifact: sha256:/' \
	  .repro-engine-smoke/serial.txt > .repro-engine-smoke/serial.flt
	sed 's/^\[artifact: .* sha256:/[artifact: sha256:/' \
	  .repro-engine-smoke/process.txt > .repro-engine-smoke/process.flt
	cmp .repro-engine-smoke/serial.flt .repro-engine-smoke/process.flt
	@echo "process engine byte-identical to serial (stdout + export)"

# Campaign-service throughput: scheduler grants/sec, durable
# submissions/sec and the two-tenant dedup hit rate, recorded in
# BENCH_service.json.
bench-service:
	$(PYTHON) benchmarks/bench_service.py --out BENCH_service.json

# Multi-tenant daemon smoke test: two tenants submit overlapping sweeps
# (both sweep julia at every size) to a live daemon; each tenant's
# report must be byte-identical to a solo `repro run` of the same
# experiment, and the daemon's dedup counters must show the overlapping
# cells executed exactly once (6 executed, 2 served cross-tenant).
service-smoke:
	rm -rf .repro-service-smoke
	mkdir -p .repro-service-smoke
	@set -e; \
	sock=.repro-service-smoke/daemon.sock; \
	REPRO_RUNS_DIR=.repro-service-smoke/runs \
	REPRO_CACHE_DIR=.repro-service-smoke/cache \
	  $(PYTHON) -m repro serve --socket $$sock \
	  > .repro-service-smoke/daemon.log 2>&1 & \
	trap '$(PYTHON) -m repro serve --stop --socket '$$sock' \
	  > /dev/null 2>&1 || true' EXIT; \
	for i in $$(seq 1 100); do \
	  $(PYTHON) -m repro status --socket $$sock > /dev/null 2>&1 && break; \
	  sleep 0.1; \
	done; \
	$(PYTHON) -m repro submit --socket $$sock --tenant alice \
	  --models julia,numba --sizes 256,512 --reps 3 --wait \
	  > .repro-service-smoke/alice.txt 2> /dev/null; \
	$(PYTHON) -m repro submit --socket $$sock --tenant bob \
	  --models julia,kokkos --sizes 256,512 --reps 3 --wait \
	  > .repro-service-smoke/bob.txt 2> /dev/null; \
	REPRO_JOURNAL=off REPRO_CACHE_DIR=.repro-service-smoke/solo-alice \
	  $(PYTHON) -m repro run --models julia,numba --sizes 256,512 --reps 3 \
	  > .repro-service-smoke/alice-solo.txt; \
	REPRO_JOURNAL=off REPRO_CACHE_DIR=.repro-service-smoke/solo-bob \
	  $(PYTHON) -m repro run --models julia,kokkos --sizes 256,512 --reps 3 \
	  > .repro-service-smoke/bob-solo.txt; \
	cmp .repro-service-smoke/alice.txt .repro-service-smoke/alice-solo.txt; \
	cmp .repro-service-smoke/bob.txt .repro-service-smoke/bob-solo.txt; \
	$(PYTHON) -m repro status --socket $$sock --format json \
	  | $(PYTHON) -c "import json, sys; d = json.load(sys.stdin); \
	    assert d['dedup']['hits'] == 2, d['dedup']; \
	    assert d['dedup']['executed_cells'] == 6, d['dedup']"; \
	$(PYTHON) -m repro serve --stop --socket $$sock > /dev/null; \
	trap - EXIT
	@echo "two tenants, overlapping cells executed once, reports" \
	  "byte-identical to solo runs"

# Crash-fault drills: SIGKILL a pool worker mid-cell, SIGKILL the
# campaign daemon mid-grant, tear a journal tail, exhaust the store —
# every scenario must recover to a byte-identical report, and the
# MTTR/recovery counters land in BENCH_robustness.json (exit 1 on any
# mismatch).
chaos-smoke:
	rm -rf .repro-chaos-smoke
	$(PYTHON) -m repro chaos --workdir .repro-chaos-smoke \
	  --out BENCH_robustness.json
	rm -rf .repro-chaos-smoke

report:
	$(PYTHON) -m repro report --out study_report.md
	@echo "wrote study_report.md"

# Cold-then-warm report through the result cache (kept in a private dir
# so the user's cache is untouched); the two outputs must be identical.
report-cached:
	rm -rf .repro-cache
	REPRO_CACHE_DIR=.repro-cache $(PYTHON) -m repro report --out study_report_cold.md
	REPRO_CACHE_DIR=.repro-cache $(PYTHON) -m repro report --out study_report_warm.md
	cmp study_report_cold.md study_report_warm.md
	@echo "warm report byte-identical to cold"
	REPRO_CACHE_DIR=.repro-cache $(PYTHON) -m repro cache stats

# Degraded-mode smoke test: a sweep with injected faults (one cell
# permanently failing) must still exit 0 and print the degraded table.
faults:
	$(PYTHON) -m repro run --no-cache --engine-stats \
	  --faults 'rate=0.25,seed=7,always=numba@1024' --retries 3 \
	  | grep -E 'DEGRADED|FAILED'
	@echo "degraded sweep completed with exit 0"

# Self-healing smoke test: two numba cells fail permanently, the lane's
# breaker opens at the threshold, and the remaining numba cells are
# served by the fallback ladder — the sweep exits 0 and the report must
# carry both the DEGRADED and SUBSTITUTED banners.
breaker:
	$(PYTHON) -m repro run --node wombat --device gpu \
	  --models cuda,numba --sizes 256,512,1024 --no-cache --no-journal \
	  --faults 'always=numba@256+numba@512' \
	  --breaker 'threshold=2,cooldown=1e5' \
	  | grep -E 'DEGRADED|SUBSTITUTED'
	@echo "breaker opened and fallback lanes served; exit 0"

# Crash-safety smoke test: interrupt a journaled sweep mid-flight,
# resume it, and require the resumed output to be byte-identical
# (examples/crash_and_resume.py asserts all of that in-process).
resume:
	$(PYTHON) examples/crash_and_resume.py
	@echo "interrupted campaign resumed byte-identically"

# Store-verification smoke test (private cache/runs dirs): a clean pass
# must exit 0, a bit-flipped cache entry must be quarantined with exit
# 3, and the pass after that must be clean again.
fsck:
	rm -rf .repro-fsck-cache .repro-fsck-runs
	REPRO_CACHE_DIR=.repro-fsck-cache REPRO_RUNS_DIR=.repro-fsck-runs \
	  $(PYTHON) -m repro run --models julia,numba --sizes 256,512 > /dev/null
	$(PYTHON) -m repro fsck --cache-dir .repro-fsck-cache --runs-dir .repro-fsck-runs
	@$(PYTHON) -c "import glob; p = glob.glob('.repro-fsck-cache/*/*.json')[0]; \
	  s = open(p).read(); open(p, 'w').write(s.replace('times_s', 'times_x', 1))"
	@$(PYTHON) -m repro fsck --cache-dir .repro-fsck-cache --runs-dir .repro-fsck-runs; \
	  rc=$$?; test $$rc -eq 3 || { echo "expected exit 3, got $$rc"; exit 1; }
	$(PYTHON) -m repro fsck --cache-dir .repro-fsck-cache --runs-dir .repro-fsck-runs
	@echo "fsck detected, quarantined and recovered the corruption"

verify:
	$(PYTHON) -m repro verify

examples:
	@for ex in examples/*.py; do \
	  echo "== $$ex =="; $(PYTHON) $$ex > /dev/null && echo OK || exit 1; \
	done

clean:
	rm -rf build dist src/*.egg-info .pytest_cache .hypothesis study_report.md
	rm -rf .repro-cache study_report_cold.md study_report_warm.md
	rm -rf .repro-fsck-cache .repro-fsck-runs .repro-engine-smoke
	rm -rf .repro-service-smoke .repro-chaos-smoke
	find . -name __pycache__ -type d -exec rm -rf {} +
