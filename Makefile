# Convenience targets for the repro study framework.

PYTHON ?= python

.PHONY: install test lint bench bench-paper report verify examples clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

# Style lint (ruff, skipped when not installed) + the kernel IR linter.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
	  ruff check src tests; \
	else \
	  echo "ruff not installed; skipping style lint"; \
	fi
	$(PYTHON) -m repro lint

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

bench-paper:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s --sweep=paper

report:
	$(PYTHON) -m repro report --out study_report.md
	@echo "wrote study_report.md"

verify:
	$(PYTHON) -m repro verify

examples:
	@for ex in examples/*.py; do \
	  echo "== $$ex =="; $(PYTHON) $$ex > /dev/null && echo OK || exit 1; \
	done

clean:
	rm -rf build dist src/*.egg-info .pytest_cache .hypothesis study_report.md
	find . -name __pycache__ -type d -exec rm -rf {} +
