# Convenience targets for the repro study framework.

PYTHON ?= python

.PHONY: install test lint bench bench-paper report report-cached faults verify examples clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

# Style lint (ruff, skipped when not installed) + the kernel IR linter.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
	  ruff check src tests; \
	else \
	  echo "ruff not installed; skipping style lint"; \
	fi
	$(PYTHON) -m repro lint

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

bench-paper:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s --sweep=paper

report:
	$(PYTHON) -m repro report --out study_report.md
	@echo "wrote study_report.md"

# Cold-then-warm report through the result cache (kept in a private dir
# so the user's cache is untouched); the two outputs must be identical.
report-cached:
	rm -rf .repro-cache
	REPRO_CACHE_DIR=.repro-cache $(PYTHON) -m repro report --out study_report_cold.md
	REPRO_CACHE_DIR=.repro-cache $(PYTHON) -m repro report --out study_report_warm.md
	cmp study_report_cold.md study_report_warm.md
	@echo "warm report byte-identical to cold"
	REPRO_CACHE_DIR=.repro-cache $(PYTHON) -m repro cache stats

# Degraded-mode smoke test: a sweep with injected faults (one cell
# permanently failing) must still exit 0 and print the degraded table.
faults:
	$(PYTHON) -m repro run --no-cache --engine-stats \
	  --faults 'rate=0.25,seed=7,always=numba@1024' --retries 3 \
	  | grep -E 'DEGRADED|FAILED'
	@echo "degraded sweep completed with exit 0"

verify:
	$(PYTHON) -m repro verify

examples:
	@for ex in examples/*.py; do \
	  echo "== $$ex =="; $(PYTHON) $$ex > /dev/null && echo OK || exit 1; \
	done

clean:
	rm -rf build dist src/*.egg-info .pytest_cache .hypothesis study_report.md
	rm -rf .repro-cache study_report_cold.md study_report_warm.md
	find . -name __pycache__ -type d -exec rm -rf {} +
