"""Tests for the performance-portability metrics (Eq. (1) and alternatives)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.metrics import (
    metric_comparison,
    phi_marowka,
    phi_paper,
    pp_pennycook,
)

effs = st.lists(
    st.one_of(st.none(), st.floats(0.01, 1.2)), min_size=1, max_size=8)


class TestPhiPaper:
    def test_table3_numba_fp64_row(self):
        """The paper's own arithmetic: (0.550+0.713+0+0.130)/4 = 0.348."""
        phi = phi_paper([0.550, 0.713, None, 0.130])
        assert phi == pytest.approx(0.348, abs=0.0005)

    def test_table3_kokkos_fp64_row(self):
        phi = phi_paper([0.994, 0.854, 0.842, 0.260])
        assert phi == pytest.approx(0.738, abs=0.001)

    def test_table3_julia_fp32_row(self):
        phi = phi_paper([0.976, 0.900, 1.050, 0.600])
        assert phi == pytest.approx(0.882, abs=0.001)

    def test_all_supported_is_plain_mean(self):
        assert phi_paper([0.5, 1.0]) == pytest.approx(0.75)

    def test_all_unsupported_is_zero(self):
        assert phi_paper([None, None]) == 0.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            phi_paper([])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            phi_paper([-0.1])


class TestPennycook:
    def test_zero_if_any_unsupported(self):
        """The strict PP definition: fails anywhere -> 0."""
        assert pp_pennycook([0.9, None, 0.8]) == 0.0
        assert pp_pennycook([0.9, 0.0, 0.8]) == 0.0

    def test_harmonic_mean(self):
        assert pp_pennycook([0.5, 1.0]) == pytest.approx(2 / 3)

    def test_uniform(self):
        assert pp_pennycook([0.8, 0.8, 0.8]) == pytest.approx(0.8)


class TestMarowka:
    def test_shrinks_platform_set(self):
        """Unsupported platforms shrink |T| rather than zeroing."""
        assert phi_marowka([0.5, None, 1.0]) == pytest.approx(0.75)

    def test_all_unsupported(self):
        assert phi_marowka([None, None]) == 0.0


class TestRelationships:
    @given(effs)
    def test_paper_le_marowka(self, es):
        """Counting unsupported as 0 can only lower the mean."""
        assert phi_paper(es) <= phi_marowka(es) + 1e-12

    @given(st.lists(st.floats(0.01, 1.2), min_size=1, max_size=8))
    def test_harmonic_le_arithmetic(self, es):
        """AM-HM inequality on fully supported sets."""
        assert pp_pennycook(es) <= phi_paper(es) + 1e-12

    @given(st.lists(st.floats(0.01, 1.2), min_size=1, max_size=8))
    def test_bounds(self, es):
        for value in metric_comparison(es).values():
            assert 0.0 <= value <= max(es) + 1e-12

    @given(effs)
    def test_comparison_keys(self, es):
        cmp = metric_comparison(es)
        assert set(cmp) == {"phi_paper", "pp_pennycook", "phi_marowka"}

    def test_paper_ranking_reproduced(self):
        """Julia > Kokkos > Numba under the paper metric, both precisions."""
        fp64 = {
            "kokkos": phi_paper([0.994, 0.854, 0.842, 0.260]),
            "julia": phi_paper([0.912, 0.907, 0.903, 0.867]),
            "numba": phi_paper([0.550, 0.713, None, 0.130]),
        }
        assert fp64["julia"] > fp64["kokkos"] > fp64["numba"]
