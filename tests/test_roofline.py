"""Tests for the cache-aware traffic model and roofline helper."""

import pytest

from repro.core.types import Layout, MatrixShape, Precision
from repro.ir import builder
from repro.machine import A100, EPYC_7A53
from repro.machine.cache import CacheHierarchy, CacheLevel
from repro.sim.roofline import estimate_dram_traffic, roofline_time


SMALL = MatrixShape.square(64)      # B fits in cache
LARGE = MatrixShape.square(8192)    # B far exceeds L3


class TestTrafficSmall:
    def test_cached_b_fetched_once(self):
        """When B's reuse working set fits, it streams from DRAM once."""
        k = builder.c_openmp_cpu(Precision.FP64)
        est = estimate_dram_traffic(k, SMALL, EPYC_7A53.caches, active_workers=1)
        b = [t for t in est.per_ref if t.array == "B" and t.kind == "load"][0]
        assert b.sweeps_from_dram == 1.0
        assert b.dram_bytes == SMALL.k * SMALL.n * 8
        # 64x64 fp64 B = 32 KiB: fits the 32 KiB L1 exactly
        assert b.served_by in ("L1", "L2", "L3")

    def test_total_traffic_lower_bound(self):
        """DRAM traffic can never be below one pass over all operands."""
        k = builder.c_openmp_cpu(Precision.FP64)
        est = estimate_dram_traffic(k, SMALL, EPYC_7A53.caches, active_workers=1)
        assert est.dram_bytes >= SMALL.footprint_bytes(Precision.FP64)

    def test_read_write_split(self):
        k = builder.c_openmp_cpu(Precision.FP64)
        est = estimate_dram_traffic(k, SMALL, EPYC_7A53.caches)
        assert est.write_bytes == SMALL.m * SMALL.n * 8
        assert est.read_bytes > est.write_bytes


class TestTrafficLarge:
    def test_uncached_b_resweeps(self):
        """A single thread re-streams B once per row when it can't stay
        cached."""
        k = builder.c_openmp_cpu(Precision.FP64)
        est = estimate_dram_traffic(k, LARGE, EPYC_7A53.caches, active_workers=1)
        b = [t for t in est.per_ref if t.array == "B" and t.kind == "load"][0]
        assert b.sweeps_from_dram == LARGE.m

    def test_sharing_discount_with_threads(self):
        """64 threads streaming the same B amortise the DRAM sweeps."""
        k = builder.c_openmp_cpu(Precision.FP64)
        solo = estimate_dram_traffic(k, LARGE, EPYC_7A53.caches, active_workers=1)
        team = estimate_dram_traffic(k, LARGE, EPYC_7A53.caches, active_workers=64)
        b_solo = [t for t in solo.per_ref if t.array == "B"][0]
        b_team = [t for t in team.per_ref if t.array == "B"][0]
        assert b_team.sweeps_from_dram == pytest.approx(
            b_solo.sweeps_from_dram / (64 * 0.8))
        assert b_team.served_by == "DRAM(shared)"

    def test_arithmetic_intensity_sane(self):
        k = builder.c_openmp_cpu(Precision.FP64)
        est = estimate_dram_traffic(k, LARGE, EPYC_7A53.caches, active_workers=64)
        ai = est.arithmetic_intensity(LARGE.flops)
        assert 1.0 < ai < 1000.0


class TestStridedTraffic:
    def test_strided_sweep_counts_whole_lines(self):
        """A strided reference pays a full line per element."""
        # interchange the C kernel so the inner loop walks k: B[k,j] becomes
        # strided in the inner loop
        from repro.ir.passes import InterchangeLoops
        k = InterchangeLoops("ijk").run(builder.c_openmp_cpu(Precision.FP64))
        est = estimate_dram_traffic(k, SMALL, EPYC_7A53.caches)
        b = [t for t in est.per_ref if t.array == "B" and t.kind == "load"][0]
        line = EPYC_7A53.caches.line_bytes
        assert b.dram_bytes == pytest.approx(SMALL.k * SMALL.n * line
                                             * b.sweeps_from_dram)


class TestRooflineTime:
    def test_compute_bound(self):
        t = roofline_time(flops=1e12, peak_gflops=1000.0, dram_bytes=1e6,
                          bandwidth_gbs=100.0)
        assert t == pytest.approx(1.0)

    def test_memory_bound(self):
        t = roofline_time(flops=1e6, peak_gflops=1000.0, dram_bytes=1e12,
                          bandwidth_gbs=100.0)
        assert t == pytest.approx(10.0)

    def test_overlap_blend(self):
        full = roofline_time(1e12, 1000.0, 1e11, 100.0, overlap=1.0)
        none = roofline_time(1e12, 1000.0, 1e11, 100.0, overlap=0.0)
        half = roofline_time(1e12, 1000.0, 1e11, 100.0, overlap=0.5)
        assert full == pytest.approx(1.0)
        assert none == pytest.approx(2.0)
        assert half == pytest.approx(1.5)

    def test_no_cache_hierarchy_still_works(self):
        k = builder.gpu_thread_per_element("g", Precision.FP64, Layout.ROW_MAJOR)
        est = estimate_dram_traffic(k, SMALL, CacheHierarchy())
        assert est.dram_bytes > 0
