"""Tests for the variability model and the tracing subsystem."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.variability import NODE_VARIABILITY, VariabilityModel
from repro.trace.events import EventKind, TraceEvent
from repro.trace.profiler import Profiler
from repro.trace.timeline import render_timeline, summary_table


class TestVariability:
    def test_deterministic(self):
        vm = VariabilityModel(seed=1, sigma=0.05)
        a = vm.samples(1.0, "key", 10)
        b = vm.samples(1.0, "key", 10)
        assert a == b

    def test_key_separates_streams(self):
        vm = VariabilityModel(seed=1, sigma=0.05)
        assert vm.samples(1.0, "a", 5) != vm.samples(1.0, "b", 5)

    def test_warmup_added_to_first_only(self):
        vm = VariabilityModel(seed=1, sigma=0.0)
        xs = vm.samples(1.0, "k", 5, warmup_extra_seconds=2.0)
        assert xs[0] == pytest.approx(3.0)
        assert all(x == pytest.approx(1.0) for x in xs[1:])

    def test_zero_sigma_exact(self):
        vm = VariabilityModel(seed=1, sigma=0.0)
        assert vm.samples(0.5, "k", 3) == [0.5, 0.5, 0.5]

    def test_node_lookup(self):
        assert VariabilityModel.for_node("Crusher").sigma == NODE_VARIABILITY["Crusher"]
        assert VariabilityModel.for_node("Crusher").sigma > \
            VariabilityModel.for_node("Wombat").sigma

    def test_rejects_bad_args(self):
        vm = VariabilityModel()
        with pytest.raises(ValueError):
            vm.samples(0.0, "k", 5)
        with pytest.raises(ValueError):
            vm.samples(1.0, "k", 0)

    @given(st.floats(1e-6, 1e3), st.integers(1, 50))
    @settings(max_examples=30, deadline=None)
    def test_samples_positive_and_near_nominal(self, nominal, reps):
        vm = VariabilityModel(seed=7, sigma=0.02)
        xs = vm.samples(nominal, "k", reps)
        assert len(xs) == reps
        assert all(x > 0 for x in xs)
        assert all(0.8 * nominal < x < 1.3 * nominal for x in xs)


class TestProfiler:
    def test_clock_advances(self):
        p = Profiler()
        p.record(EventKind.KERNEL, "k1", 0.5)
        p.record(EventKind.KERNEL, "k2", 0.25)
        assert p.now == pytest.approx(0.75)
        assert p.events[1].start_s == pytest.approx(0.5)

    def test_no_overlap_invariant(self):
        p = Profiler()
        for i in range(10):
            p.record(EventKind.API, f"e{i}", 0.1)
        evs = p.events
        for a, b in zip(evs, evs[1:]):
            assert b.start_s >= a.end_s - 1e-12

    def test_advance_idle(self):
        p = Profiler()
        p.advance(1.0)
        p.record(EventKind.KERNEL, "k", 0.5)
        assert p.events[0].start_s == 1.0
        with pytest.raises(ValueError):
            p.advance(-1.0)

    def test_totals_and_counts(self):
        p = Profiler()
        p.record(EventKind.KERNEL, "k", 1.0)
        p.record(EventKind.MEMCPY_H2D, "h", 0.5)
        assert p.total_time() == pytest.approx(1.5)
        assert p.total_time(EventKind.KERNEL) == pytest.approx(1.0)
        assert p.count(EventKind.MEMCPY_H2D) == 1

    def test_by_name_groups(self):
        p = Profiler()
        p.record(EventKind.KERNEL, "gemm", 1.0)
        p.record(EventKind.KERNEL, "gemm", 2.0)
        assert p.by_name() == {"gemm": pytest.approx(3.0)}

    def test_clear(self):
        p = Profiler()
        p.record(EventKind.KERNEL, "k", 1.0)
        p.clear()
        assert p.events == [] and p.now == 0.0

    def test_event_validation(self):
        with pytest.raises(ValueError):
            TraceEvent(EventKind.KERNEL, "k", start_s=-1.0, duration_s=1.0)
        with pytest.raises(ValueError):
            TraceEvent(EventKind.KERNEL, "k", start_s=0.0, duration_s=-1.0)


class TestTimeline:
    def _trace(self):
        p = Profiler()
        p.record(EventKind.MEMCPY_H2D, "A,B -> device", 0.2)
        p.record(EventKind.KERNEL, "gemm", 1.0)
        p.record(EventKind.KERNEL, "gemm", 1.0)
        p.record(EventKind.MEMCPY_D2H, "C -> host", 0.1)
        return p.events

    def test_summary_sorted_by_time(self):
        out = summary_table(self._trace())
        lines = out.splitlines()
        assert "gemm" in lines[1]          # biggest consumer first
        assert "Calls" in lines[0]
        assert " 2 " in lines[1]           # two kernel calls

    def test_summary_percentages_sum(self):
        out = summary_table(self._trace())
        pcts = [float(l.split("%")[0]) for l in out.splitlines()[1:]]
        assert sum(pcts) == pytest.approx(100.0, abs=0.1)

    def test_timeline_renders_bars(self):
        out = render_timeline(self._trace(), width=40)
        assert out.count("#") > 4
        assert "gemm" in out

    def test_empty(self):
        assert summary_table([]) == "(no events)"
        assert render_timeline([]) == "(no events)"
