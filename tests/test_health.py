"""Self-healing sweeps: breakers, fallback ladders, substitution.

The contracts pinned here:

* the :class:`LaneHealth` state machine walks the classic breaker cycle
  (CLOSED -> OPEN -> HALF_OPEN -> probe decides) on simulated time only;
* ``--breaker`` / ``--fallback`` grammars parse, reject garbage, and
  round-trip through their canonical spec strings and payloads;
* with breakers enabled, an open lane's cells are served by the ladder
  with full provenance (``substituted_from`` / ``served_by`` /
  ``ladder_hops``) surfaced by every rendering surface;
* substitution never inflates the score: same-model serves price their
  honest ratio, cross-model serves price e = 0, exhausted ladders leave
  the cell failed;
* with breakers *disabled* (the default) nothing changes: options
  payloads, fingerprints and exports are byte-identical to the
  pre-health behaviour.
"""

import json

import pytest

from repro.core.types import DeviceKind, Precision
from repro.errors import ConfigError
from repro.harness.engine import RunOptions, SweepEngine, campaign_fingerprint
from repro.harness.experiment import Experiment
from repro.harness.export import result_set_to_dict, result_set_to_json
from repro.harness.health import (
    BreakerPolicy,
    BreakerState,
    BreakerTransition,
    FallbackLadder,
    HealthRegistry,
    LaneHealth,
    resolve_hop,
)
from repro.harness.report import render_result_set
from repro.harness.runner import run_experiment
from repro.sim.faults import FaultConfig


def gpu_exp(**kw):
    defaults = dict(
        exp_id="hlt-gpu", title="health test", node_name="Wombat",
        device=DeviceKind.GPU, precision=Precision.FP64,
        models=("cuda", "numba"), sizes=(256, 512, 1024), reps=5,
    )
    defaults.update(kw)
    return Experiment(**defaults)


def cpu_exp(**kw):
    defaults = dict(
        exp_id="hlt-cpu", title="health test", node_name="Crusher",
        device=DeviceKind.CPU, precision=Precision.FP64,
        models=("c-openmp", "julia"), sizes=(256, 512), threads=64, reps=5,
    )
    defaults.update(kw)
    return Experiment(**defaults)


def serial_engine():
    return SweepEngine(cache=None, parallel=False)


def breaker_opts(**kw):
    kw.setdefault("cache", False)
    kw.setdefault("breaker", BreakerPolicy(threshold=2, cooldown_s=1e5))
    kw.setdefault("faults", FaultConfig.parse("always=numba@256+numba@512"))
    return RunOptions(**kw)


# --------------------------------------------------------------------------
# BreakerPolicy: grammar and round-trips
# --------------------------------------------------------------------------

class TestBreakerPolicy:
    def test_default_is_disabled(self):
        assert not BreakerPolicy().enabled
        assert BreakerPolicy().describe() == "breakers disabled"

    def test_bare_int_shorthand(self):
        p = BreakerPolicy.parse("3")
        assert p.threshold == 3 and p.enabled

    def test_full_grammar(self):
        p = BreakerPolicy.parse("threshold=2,cooldown=1e4")
        assert p.threshold == 2 and p.cooldown_s == 1e4

    def test_spec_round_trips(self):
        for spec in ("3", "threshold=2,cooldown=1e4", "threshold=5"):
            p = BreakerPolicy.parse(spec)
            assert BreakerPolicy.parse(p.spec()) == p

    def test_payload_round_trips(self):
        p = BreakerPolicy.parse("threshold=4,cooldown=60")
        assert BreakerPolicy.from_payload(
            json.loads(json.dumps(p.payload()))) == p

    @pytest.mark.parametrize("spec", [
        "", "0", "-1", "threshold=0", "threshold=x", "cooldown=60",
        "threshold=2,threshold=3", "banana=1", "threshold",
        "threshold=2,cooldown=pi",
    ])
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ConfigError):
            BreakerPolicy.parse(spec)

    def test_duplicate_key_message(self):
        with pytest.raises(ConfigError, match="duplicate breaker spec key"):
            BreakerPolicy.parse("threshold=2,threshold=3")

    def test_constructor_validates(self):
        with pytest.raises(ConfigError):
            BreakerPolicy(threshold=-1)
        with pytest.raises(ConfigError):
            BreakerPolicy(threshold=1, cooldown_s=0.0)


# --------------------------------------------------------------------------
# FallbackLadder: grammar, defaults and hop resolution
# --------------------------------------------------------------------------

class TestFallbackLadder:
    def test_parse_and_hops_for(self):
        lad = FallbackLadder.parse(
            "numba@gpu=numba@cpu+reference,julia@gpu=julia@cpu")
        assert lad.hops_for("numba@gpu") == ("numba@cpu", "reference")
        assert lad.hops_for("julia@gpu") == ("julia@cpu",)
        assert lad.hops_for("kokkos@gpu") == ()

    def test_spec_round_trips(self):
        spec = "numba@gpu=numba@cpu+reference,julia@gpu=reference"
        lad = FallbackLadder.parse(spec)
        assert FallbackLadder.parse(lad.spec()) == lad
        assert lad.spec() == spec

    def test_payload_round_trips(self):
        lad = FallbackLadder.parse("numba@gpu=numba@cpu+reference")
        assert FallbackLadder.from_payload(
            json.loads(json.dumps(lad.payload()))) == lad

    @pytest.mark.parametrize("spec", [
        "", "numba@gpu", "numba@gpu=", "numba=reference",
        "numba@tpu=reference", "gremlin@gpu=reference",
        "numba@gpu=gremlin@cpu", "numba@gpu=numba@gpu",
        "numba@gpu=reference,numba@gpu=numba@cpu",
    ])
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ConfigError):
            FallbackLadder.parse(spec)

    def test_default_gpu_ladder_prefers_same_model_cpu(self):
        lad = FallbackLadder.default_for(gpu_exp())
        assert lad.hops_for("numba@gpu") == ("numba@cpu", "reference")
        # the reference lane itself gets no ladder
        assert lad.hops_for("cuda@gpu") == ()

    def test_default_cpu_ladder_is_reference_only(self):
        lad = FallbackLadder.default_for(cpu_exp())
        assert lad.hops_for("julia@cpu") == ("reference",)
        assert lad.hops_for("c-openmp@cpu") == ()

    def test_resolve_hop(self):
        exp = gpu_exp()
        model, device = resolve_hop("numba@cpu", exp)
        assert model.name == "numba" and device is DeviceKind.CPU
        model, device = resolve_hop("reference", exp)
        assert model.name == "cuda" and device is DeviceKind.GPU


# --------------------------------------------------------------------------
# LaneHealth: the state machine on simulated time
# --------------------------------------------------------------------------

class TestLaneHealth:
    def lane(self, threshold=2, cooldown=100.0):
        return LaneHealth("numba@gpu",
                          BreakerPolicy(threshold=threshold,
                                        cooldown_s=cooldown))

    def test_closed_until_threshold(self):
        lane = self.lane()
        assert lane.route(0) == "run"
        lane.record_native(False, 1.0, 0)
        assert lane.state is BreakerState.CLOSED
        lane.record_native(False, 1.0, 1)
        assert lane.state is BreakerState.OPEN
        assert lane.route(2) == "substitute"

    def test_success_resets_consecutive_count(self):
        lane = self.lane()
        lane.record_native(False, 1.0, 0)
        lane.record_native(True, 1.0, 1)
        lane.record_native(False, 1.0, 2)
        assert lane.state is BreakerState.CLOSED

    def test_cooldown_earns_probe_and_success_recloses(self):
        lane = self.lane(cooldown=10.0)
        lane.record_native(False, 1.0, 0)
        lane.record_native(False, 1.0, 1)    # opens at clock 2.0
        assert lane.route(2) == "substitute"
        lane.record_substituted(50.0)        # simulated serve cost
        assert lane.route(3) == "probe"      # cooldown elapsed
        assert lane.state is BreakerState.HALF_OPEN
        lane.record_native(True, 1.0, 3)
        assert lane.state is BreakerState.CLOSED

    def test_probe_failure_reopens(self):
        lane = self.lane(cooldown=10.0)
        lane.record_native(False, 1.0, 0)
        lane.record_native(False, 1.0, 1)
        lane.record_substituted(50.0)
        assert lane.route(2) == "probe"
        lane.record_native(False, 1.0, 2)
        assert lane.state is BreakerState.OPEN
        # the re-open restarts the cooldown from the probe's clock
        assert lane.route(3) == "substitute"

    def test_transitions_drain_once(self):
        lane = self.lane()
        lane.record_native(False, 1.0, 0)
        lane.record_native(False, 1.0, 1)
        trs = lane.drain_transitions()
        assert [t.to_state for t in trs] == [BreakerState.OPEN]
        assert trs[0].cell_index == 1 and "threshold 2" in trs[0].reason
        assert lane.drain_transitions() == []

    def test_transition_payload_round_trips(self):
        lane = self.lane()
        lane.record_native(False, 1.0, 0)
        lane.record_native(False, 1.0, 1)
        [tr] = lane.drain_transitions()
        assert BreakerTransition.from_payload(
            json.loads(json.dumps(tr.payload()))) == tr

    def test_substitution_advances_clock_only(self):
        lane = self.lane()
        lane.record_native(False, 1.0, 0)
        lane.record_substituted(5.0)
        assert lane.clock_s == 6.0
        assert lane.consecutive_failures == 1
        assert lane.drain_transitions() == []


# --------------------------------------------------------------------------
# HealthRegistry
# --------------------------------------------------------------------------

class TestHealthRegistry:
    def registry(self, exp=None):
        exp = exp or gpu_exp()
        return HealthRegistry(BreakerPolicy(threshold=2),
                              FallbackLadder.default_for(exp), exp)

    def test_lanes_keyed_model_at_device(self):
        reg = self.registry()
        lane = reg.lane_for("numba")
        assert lane.lane == "numba@gpu"
        assert reg.lane_for("numba") is lane  # stable identity

    def test_untracked_lane_never_open(self):
        reg = self.registry()
        assert not reg.is_open("numba@cpu")

    def test_is_open_tracks_state(self):
        reg = self.registry()
        lane = reg.lane_for("numba")
        lane.record_native(False, 1.0, 0)
        lane.record_native(False, 1.0, 1)
        assert reg.is_open("numba@gpu")

    def test_require_meta_refuses_metadata_free_journals(self):
        from repro.errors import JournalError
        reg = self.registry()
        meta = {"native": "ok", "native_cost_s": 1.0, "serve_cost_s": 0.0}
        assert reg.require_meta(meta, "a" * 64) is meta
        with pytest.raises(JournalError, match="health metadata"):
            reg.require_meta(None, "a" * 64)


# --------------------------------------------------------------------------
# Engine: substitution end to end
# --------------------------------------------------------------------------

class TestEngineSubstitution:
    def healed_run(self, **kw):
        engine = serial_engine()
        rs = run_experiment(gpu_exp(), engine=engine,
                            options=breaker_opts(**kw))
        return rs, engine.last_report

    def test_open_lane_is_served_with_provenance(self):
        rs, report = self.healed_run()
        # numba@256 fails below the threshold: an honest failed cell
        m256 = rs.cell("numba", 256)
        assert m256.failed and not m256.substituted
        # numba@512 trips the breaker; its serve records the journey:
        # numba@cpu also faults (always= patterns are device-blind),
        # so the reference lane serves on the second hop
        m512 = rs.cell("numba", 512)
        assert m512.substituted and m512.status == "substituted"
        assert m512.substituted_from == "numba@gpu"
        assert m512.served_by == "cuda@gpu"
        assert m512.ladder_hops == 2
        assert m512.model == "numba"  # origin identity is preserved
        # numba@1024 is served first-hop by the same model on the CPU
        m1024 = rs.cell("numba", 1024)
        assert m1024.substituted
        assert m1024.served_by == "numba@cpu" and m1024.ladder_hops == 1
        # the reference lane is untouched
        assert all(rs.cell("cuda", s).status == "ok" for s in rs.sizes())
        assert rs.status_counts() == {"ok": 3, "unsupported": 0,
                                      "failed": 1, "substituted": 2}

    def test_breaker_transitions_in_report(self):
        _, report = self.healed_run()
        opens = [t for t in report.transitions
                 if t.to_state is BreakerState.OPEN]
        assert len(opens) == 1 and opens[0].lane == "numba@gpu"
        assert "threshold 2" in opens[0].reason
        rendered = report.render()
        assert "2 SUBSTITUTED" in rendered
        assert "breaker transitions:" in rendered
        assert "<- cuda@gpu" in rendered

    def test_explicit_ladder_overrides_default(self):
        rs, _ = self.healed_run(
            fallback=FallbackLadder.parse("numba@gpu=reference"))
        m1024 = rs.cell("numba", 1024)
        assert m1024.served_by == "cuda@gpu" and m1024.ladder_hops == 1

    def test_exhausted_ladder_leaves_cell_failed(self):
        # julia does not support this node's GPU? No — route everything
        # to a single rung that always faults at the served sizes.
        rs, _ = self.healed_run(
            faults=FaultConfig.parse(
                "always=numba@256+numba@512+numba@1024"),
            fallback=FallbackLadder.parse("numba@gpu=numba@cpu"))
        m1024 = rs.cell("numba", 1024)
        assert m1024.failed and not m1024.substituted
        assert "fallback ladder exhausted" in m1024.note
        assert m1024.ladder_hops == 1

    def test_cooldown_probe_recloses_lane(self):
        # A tiny cooldown: by the third numba cell the serve cost of the
        # second has expired it, the probe runs natively (1024 is not
        # faulted) and the lane re-closes.
        rs, report = self.healed_run(
            breaker=BreakerPolicy(threshold=2, cooldown_s=1e-6))
        m1024 = rs.cell("numba", 1024)
        assert m1024.status == "ok" and not m1024.substituted
        states = [t.to_state for t in report.transitions]
        assert states == [BreakerState.OPEN, BreakerState.HALF_OPEN,
                          BreakerState.CLOSED]

    def test_determinism(self):
        a, _ = self.healed_run()
        b, _ = self.healed_run()
        assert result_set_to_json(a) == result_set_to_json(b)

    def test_report_and_table_annotations(self):
        rs, _ = self.healed_run()
        text = render_result_set(rs, chart=False)
        assert "SUBSTITUTED: 2 of 6 cells" in text
        assert "*" in text
        assert "served by cuda@gpu" in text
        assert "served by numba@cpu" in text

    def test_timeline_has_breaker_and_substitution_events(self):
        from repro.trace.events import EventKind
        _, report = self.healed_run()
        kinds = {e.kind for e in report.timeline().events}
        assert EventKind.BREAKER_OPEN in kinds
        assert EventKind.SUBSTITUTION in kinds


# --------------------------------------------------------------------------
# Pricing: substitution never inflates the score
# --------------------------------------------------------------------------

class TestSubstitutionPricing:
    def test_efficiency_series_prices_serves_honestly(self):
        engine = serial_engine()
        rs = run_experiment(gpu_exp(), engine=engine,
                            options=breaker_opts())
        es = rs.efficiency_series("numba", "cuda")
        by_size = dict(zip(rs.sizes(), es))
        assert by_size[256] == 0.0          # failed: e = 0
        assert by_size[512] == 0.0          # cross-model serve: e = 0
        assert 0.0 < by_size[1024] < 1.0    # same-model serve: honest ratio

    def test_same_model_serve_prices_what_actually_ran(self):
        # The served ratio is the substituted measurement's own gflops
        # over the reference's — never the open lane's imagined native
        # number.
        rs = run_experiment(gpu_exp(), engine=serial_engine(),
                            options=breaker_opts())
        m1024 = rs.cell("numba", 1024)
        ref = rs.cell("cuda", 1024)
        e = dict(zip(rs.sizes(),
                     rs.efficiency_series("numba", "cuda")))[1024]
        assert e == pytest.approx(m1024.gflops / ref.gflops)


# --------------------------------------------------------------------------
# Disabled breakers change nothing (byte-identity with PR 3 / PR 4)
# --------------------------------------------------------------------------

class TestDisabledBreakersAreInert:
    def test_options_payload_unchanged(self):
        assert "breaker" not in RunOptions().payload()
        assert "fallback" not in RunOptions().payload()

    def test_fingerprint_unchanged(self):
        exp = cpu_exp()
        faults = FaultConfig.parse("rate=0.2,seed=7")
        assert campaign_fingerprint(exp, faults) == campaign_fingerprint(
            exp, faults, breaker=BreakerPolicy(), fallback=None)

    def test_export_has_no_provenance_keys(self):
        rs = run_experiment(cpu_exp(), engine=serial_engine(),
                            options=RunOptions(cache=False))
        doc = result_set_to_dict(rs)
        assert doc["substituted"] is False
        for mdata in doc["measurements"]:
            assert "substituted_from" not in mdata
            assert "served_by" not in mdata

    def test_runs_identical_with_and_without_health_fields(self):
        exp = cpu_exp()
        plain = run_experiment(exp, engine=serial_engine(),
                               options=RunOptions(cache=False))
        explicit = run_experiment(
            exp, engine=serial_engine(),
            options=RunOptions(cache=False, breaker=BreakerPolicy(),
                               fallback=None))
        assert result_set_to_json(plain) == result_set_to_json(explicit)


# --------------------------------------------------------------------------
# CLI: --breaker / --fallback / repro health
# --------------------------------------------------------------------------

class TestHealthCLI:
    @pytest.fixture(autouse=True)
    def isolated(self, tmp_path, monkeypatch):
        from repro.harness.engine import (
            reset_default_engine,
            reset_default_run_options,
        )
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        reset_default_engine()
        reset_default_run_options()
        yield
        reset_default_engine()
        reset_default_run_options()

    def run_cli(self, capsys, *argv):
        from repro.cli import main
        rc = main(list(argv))
        captured = capsys.readouterr()
        return rc, captured.out, captured.err

    BREAKER_ARGV = ("run", "--node", "wombat", "--device", "gpu",
                    "--models", "cuda,numba", "--sizes", "256,512,1024",
                    "--no-cache",
                    "--faults", "always=numba@256+numba@512",
                    "--breaker", "threshold=2,cooldown=1e5")

    def test_breaker_run_and_health_command(self, capsys):
        rc, out, err = self.run_cli(capsys, *self.BREAKER_ARGV)
        assert rc == 0
        assert "DEGRADED" in out and "SUBSTITUTED" in out
        run_id = err.split("journaling run ")[-1].split()[0]
        rc, out, _ = self.run_cli(capsys, "health", run_id)
        assert rc == 0
        assert "breakers: open after 2 consecutive failures" in out
        assert "fallbacks: registry defaults" in out
        assert "closed -> open" in out
        assert "numba@gpu: open" in out
        assert "<- cuda@gpu" in out

    def test_health_on_breakerless_run(self, capsys):
        rc, _, err = self.run_cli(capsys, "run", "--models", "julia",
                                  "--sizes", "256")
        run_id = err.split("journaling run ")[-1].split()[0]
        rc, out, _ = self.run_cli(capsys, "health", run_id)
        assert rc == 0 and "breakers were not enabled" in out

    def test_health_unknown_run(self, capsys):
        rc, _, err = self.run_cli(capsys, "health", "run-nope")
        assert rc == 1 and "no run" in err

    def test_bad_breaker_spec_is_usage_error(self, capsys):
        rc, _, err = self.run_cli(capsys, "run", "--models", "julia",
                                  "--sizes", "256", "--breaker", "banana=1")
        assert rc == 2 and "unknown breaker spec key" in err

    def test_bad_fallback_spec_is_usage_error(self, capsys):
        rc, _, err = self.run_cli(capsys, "run", "--models", "julia",
                                  "--sizes", "256", "--breaker", "2",
                                  "--fallback", "julia@cpu=julia@cpu")
        assert rc == 2 and "routes back to itself" in err

    def test_fallback_flag(self, capsys):
        argv = self.BREAKER_ARGV + ("--fallback", "numba@gpu=reference")
        rc, out, _ = self.run_cli(capsys, *argv)
        assert rc == 0 and "served by cuda@gpu" in out

    def test_env_knobs(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_BREAKER", "threshold=2,cooldown=1e5")
        monkeypatch.setenv("REPRO_FAULTS", "always=numba@256+numba@512")
        rc, out, _ = self.run_cli(
            capsys, "run", "--node", "wombat", "--device", "gpu",
            "--models", "cuda,numba", "--sizes", "256,512,1024",
            "--no-cache")
        assert rc == 0 and "SUBSTITUTED" in out
