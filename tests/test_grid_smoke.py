"""Grid completeness: every (model, machine, precision) combination either
simulates successfully or declines with a documented reason — no third
outcome (crash, silent garbage) anywhere in the support matrix.

Also covers Experiment round-trip serialisation.
"""

import pytest

from repro.core.types import MatrixShape, Precision
from repro.errors import ExperimentError
from repro.gpu.warp_sim import simulate_gpu_kernel
from repro.harness import Experiment, QUICK_SIZES
from repro.machine import A100, AMPERE_ALTRA, EPYC_7A53, MI250X
from repro.models import all_models
from repro.sim.executor import simulate_cpu_kernel

SHAPE = MatrixShape.square(1024)
CPUS = (EPYC_7A53, AMPERE_ALTRA)
GPUS = (MI250X, A100)
PRECISIONS = (Precision.FP64, Precision.FP32, Precision.FP16)


@pytest.mark.parametrize("model", all_models(include_extensions=True),
                         ids=lambda m: m.name)
@pytest.mark.parametrize("cpu", CPUS, ids=lambda c: c.name)
@pytest.mark.parametrize("precision", PRECISIONS, ids=lambda p: p.value)
def test_cpu_grid(model, cpu, precision):
    support = model.supports(cpu, precision)
    if not support.supported:
        assert support.reason, (
            f"{model.name} declines {cpu.name}/{precision.value} "
            "without a reason")
        return
    low = model.lower_cpu(cpu, precision)
    low.kernel.verify()
    t = simulate_cpu_kernel(low.kernel, cpu, SHAPE, min(16, cpu.cores),
                            pin=low.pin, profile=low.profile)
    assert 0 < t.total_seconds < 3600
    assert 0 < t.gflops(SHAPE) <= cpu.peak_gflops(precision)


@pytest.mark.parametrize("model", all_models(include_extensions=True),
                         ids=lambda m: m.name)
@pytest.mark.parametrize("gpu", GPUS, ids=lambda g: g.name)
@pytest.mark.parametrize("precision", PRECISIONS, ids=lambda p: p.value)
def test_gpu_grid(model, gpu, precision):
    support = model.supports(gpu, precision)
    if not support.supported:
        assert support.reason
        return
    low = model.lower_gpu(gpu, precision)
    low.kernel.verify()
    t = simulate_gpu_kernel(low.kernel, low.launch, gpu, SHAPE, low.profile)
    assert 0 < t.total_seconds < 3600
    assert 0 < t.gflops(SHAPE) < gpu.peak_gflops(precision)


class TestExperimentSerialization:
    def _exp(self):
        from repro.core.types import DeviceKind
        return Experiment(
            exp_id="roundtrip", title="t", node_name="Wombat",
            device=DeviceKind.GPU, precision=Precision.FP32,
            models=("cuda", "julia"), sizes=(512, 1024), threads=None,
            reps=7, seed=99, include_transfers=True)

    def test_roundtrip(self):
        exp = self._exp()
        assert Experiment.from_dict(exp.to_dict()) == exp

    def test_defaults_filled(self):
        exp = Experiment.from_dict({
            "exp_id": "min", "node": "Crusher", "models": ["c-openmp"]})
        assert exp.precision is Precision.FP64
        assert exp.sizes == QUICK_SIZES
        assert exp.reps == 10

    def test_unknown_keys_rejected(self):
        with pytest.raises(ExperimentError):
            Experiment.from_dict({
                "exp_id": "x", "node": "Crusher", "models": ["julia"],
                "repz": 3})  # typo must fail loudly
