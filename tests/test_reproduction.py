"""The headline regression tests: every figure's qualitative shape and the
full Table III, checked against the published values.

These are the acceptance tests of the reproduction: if a model or machine
change breaks the orderings or pushes an efficiency out of tolerance, the
study no longer reproduces and these fail.
"""

import pytest

from repro.core.types import Precision
from repro.harness import (
    PAPER_PHI,
    PAPER_TABLE3,
    fig4,
    fig5,
    fig6,
    fig7,
    table1,
    table2,
    table3,
)

SIZES = (1024, 4096, 8192, 16384)

#: tolerance on reproduced efficiencies (DESIGN.md calibration policy)
E_TOL = 0.05


@pytest.fixture(scope="module")
def t3():
    return table3(SIZES)


@pytest.fixture(scope="module")
def f4():
    return fig4(SIZES)


@pytest.fixture(scope="module")
def f5():
    return fig5(SIZES)


@pytest.fixture(scope="module")
def f6():
    return fig6(SIZES)


@pytest.fixture(scope="module")
def f7():
    return fig7(SIZES)


def _mean_gflops(rs, model):
    xs, ys = rs.series(model)
    assert xs, f"{model} has no supported points"
    return sum(ys) / len(ys)


class TestFig4:
    """Crusher CPU: Kokkos ~ C/OpenMP ~ Julia > Numba."""

    def test_double_ordering(self, f4):
        rs = f4.panels["a: double"]
        ref = _mean_gflops(rs, "c-openmp")
        assert _mean_gflops(rs, "kokkos") == pytest.approx(ref, rel=0.1)
        assert _mean_gflops(rs, "julia") > 0.85 * ref
        assert _mean_gflops(rs, "numba") < 0.65 * ref

    def test_single_precision_roughly_doubles(self, f4):
        d = _mean_gflops(f4.panels["a: double"], "c-openmp")
        s = _mean_gflops(f4.panels["b: single"], "c-openmp")
        assert 1.7 < s / d < 2.2


class TestFig5:
    """Wombat CPU: Julia ~ C/OpenMP, Kokkos slowed down, Numba behind."""

    def test_kokkos_slowdown_on_arm(self, f5):
        rs = f5.panels["a: double"]
        assert _mean_gflops(rs, "kokkos") < 0.9 * _mean_gflops(rs, "c-openmp")

    def test_julia_on_par(self, f5):
        rs = f5.panels["a: double"]
        assert _mean_gflops(rs, "julia") > 0.85 * _mean_gflops(rs, "c-openmp")

    def test_numba_fp32_collapse(self, f5):
        """Table III: Numba FP32 on Arm is 0.400."""
        rs = f5.panels["b: single"]
        ratio = _mean_gflops(rs, "numba") / _mean_gflops(rs, "c-openmp")
        assert ratio == pytest.approx(0.40, abs=E_TOL)

    def test_fp16_panel_julia_only_and_fast(self, f5):
        """Julia FP16 'worked seamlessly and provided the expected levels
        of performance' on Arm: native half doubles the FP32 lanes."""
        rs16 = f5.panels["c: half (Julia)"]
        assert rs16.models() == ["julia"]
        g16 = _mean_gflops(rs16, "julia")
        g32 = _mean_gflops(f5.panels["b: single"], "julia")
        assert g16 > 1.5 * g32


class TestFig6:
    """Crusher MI250X: HIP best fp64; Julia slightly beats HIP at fp32."""

    def test_double_ordering(self, f6):
        rs = f6.panels["a: double"]
        hip = _mean_gflops(rs, "hip")
        assert _mean_gflops(rs, "julia") < hip
        assert _mean_gflops(rs, "kokkos") < _mean_gflops(rs, "julia")

    def test_julia_fp32_slightly_above_hip(self, f6):
        rs = f6.panels["b: single"]
        ratio = _mean_gflops(rs, "julia") / _mean_gflops(rs, "hip")
        assert 1.0 < ratio < 1.12

    def test_kokkos_fp32_consistent_decrease(self, f6):
        rs = f6.panels["b: single"]
        ratio = _mean_gflops(rs, "kokkos") / _mean_gflops(rs, "hip")
        assert ratio == pytest.approx(0.677, abs=E_TOL)

    def test_kokkos_slowdown_at_largest_size(self, f6):
        """'Kokkos has a repeatable slowdown at the largest size'."""
        rs = f6.panels["a: double"]
        xs, ys = rs.series("kokkos")
        eff_large = ys[-1] / rs.cell("hip", xs[-1]).gflops
        eff_mid = ys[1] / rs.cell("hip", xs[1]).gflops
        assert eff_large < eff_mid * 0.95

    def test_julia_fp16_no_gain_over_fp32(self, f6):
        g16 = _mean_gflops(f6.panels["c: half (Julia)"], "julia")
        g32 = _mean_gflops(f6.panels["b: single"], "julia")
        assert g16 == pytest.approx(g32, rel=0.2)


class TestFig7:
    """Wombat A100: CUDA >> Julia > Kokkos > Numba."""

    def test_double_ordering(self, f7):
        rs = f7.panels["a: double"]
        cuda = _mean_gflops(rs, "cuda")
        julia = _mean_gflops(rs, "julia")
        kokkos = _mean_gflops(rs, "kokkos")
        numba = _mean_gflops(rs, "numba")
        assert cuda > julia > kokkos > numba

    def test_julia_constant_overhead(self, f7):
        """Fig. 7a: CUDA.jl trails CUDA by a roughly constant factor."""
        rs = f7.panels["a: double"]
        xs, _ = rs.series("julia")
        effs = [rs.cell("julia", x).gflops / rs.cell("cuda", x).gflops
                for x in xs if x >= 4096]
        assert max(effs) - min(effs) < 0.05

    def test_vendor_fp32_jump_others_small(self, f7):
        """Sec. IV-B: CUDA gains significantly at fp32; Julia, Kokkos and
        Numba gain only ~10%."""
        d, s = f7.panels["a: double"], f7.panels["b: single"]
        cuda_gain = _mean_gflops(s, "cuda") / _mean_gflops(d, "cuda")
        assert cuda_gain > 1.6
        for model in ("julia", "kokkos", "numba"):
            gain = _mean_gflops(s, model) / _mean_gflops(d, model)
            assert gain < 1.5, model

    def test_fp16_panel_models(self, f7):
        rs = f7.panels["c: half (Julia, Numba)"]
        assert set(rs.models()) == {"julia", "numba"}

    def test_fp16_no_gains(self, f7):
        """'we observed no performance gains over the single-precision
        counterparts' (Sec. IV-B)."""
        rs16 = f7.panels["c: half (Julia, Numba)"]
        rs32 = f7.panels["b: single"]
        for model in ("julia", "numba"):
            g16 = _mean_gflops(rs16, model)
            g32 = _mean_gflops(rs32, model)
            assert g16 < 1.15 * g32, model


class TestTable3:
    """Every cell of Table III within +/-0.05; Phi within 0.03."""

    @pytest.mark.parametrize("precision", [Precision.FP64, Precision.FP32])
    @pytest.mark.parametrize("model", ["kokkos", "julia", "numba"])
    def test_efficiencies(self, t3, precision, model):
        row = t3.row(model, precision)
        for platform, published in PAPER_TABLE3[precision][model].items():
            ours = row.efficiencies.get(platform)
            if published is None:
                assert ours is None, f"{model}/{platform} should be unsupported"
            else:
                assert ours == pytest.approx(published, abs=E_TOL), (
                    f"{model}/{platform}/{precision.value}: "
                    f"paper {published} vs ours {ours}")

    @pytest.mark.parametrize("precision", [Precision.FP64, Precision.FP32])
    @pytest.mark.parametrize("model", ["kokkos", "julia", "numba"])
    def test_phi(self, t3, precision, model):
        assert t3.row(model, precision).phi == pytest.approx(
            PAPER_PHI[precision][model], abs=0.03)

    @pytest.mark.parametrize("precision", [Precision.FP64, Precision.FP32])
    def test_phi_ranking(self, t3, precision):
        """'Julia has the best scores followed by Kokkos and Python/Numba'."""
        phis = {m: t3.row(m, precision).phi for m in ("kokkos", "julia", "numba")}
        assert phis["julia"] > phis["kokkos"] > phis["numba"]

    def test_portability_lower_at_fp32(self, t3):
        """'the portability of all models is slightly lower for
        single-precision' — true for Kokkos and Julia; Numba likewise."""
        for model in ("kokkos", "julia", "numba"):
            assert (t3.row(model, Precision.FP32).phi
                    <= t3.row(model, Precision.FP64).phi)

    def test_render_contains_all_rows(self, t3):
        out = t3.render()
        assert "Double precision" in out and "Single precision" in out
        assert "Phi_M" in out and "-" in out  # the Numba/AMD dash


class TestStaticTables:
    def test_table1_contents(self):
        out = table1()
        assert "ArmClang22" in out and "AMDClang14" in out
        assert "JULIA_EXCLUSIVE=1" in out and "NUMBA_OPT=3" in out

    def test_table2_contents(self):
        out = table2()
        assert "nvcc v11.5.1" in out and "hipcc v14.0.0" in out
        assert "Not supported" in out  # Numba on AMD
