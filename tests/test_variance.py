"""Tests for the across-seed variance study."""

import pytest

from repro.core.types import DeviceKind, Precision
from repro.errors import ExperimentError
from repro.harness import Experiment, variance_study
from repro.harness.variance import EfficiencyDistribution


def _exp(**kw):
    defaults = dict(
        exp_id="var-test", title="t", node_name="Wombat",
        device=DeviceKind.GPU, precision=Precision.FP64,
        models=("cuda", "julia", "numba"), sizes=(1024, 2048), reps=5)
    defaults.update(kw)
    return Experiment(**defaults)


class TestDistribution:
    def test_stats(self):
        d = EfficiencyDistribution("m", "ref", (0.8, 0.9, 1.0))
        assert d.mean == pytest.approx(0.9)
        assert d.minimum == 0.8 and d.maximum == 1.0
        assert d.fraction_above(0.85) == pytest.approx(2 / 3)

    def test_sigma_distance(self):
        d = EfficiencyDistribution("m", "ref", (0.9, 1.1))
        assert d.sigma_distance(1.0) == pytest.approx(0.0)
        flat = EfficiencyDistribution("m", "ref", (1.05, 1.05))
        assert flat.sigma_distance(1.0) == float("inf")


class TestStudy:
    @pytest.fixture(scope="class")
    def study(self):
        return variance_study(_exp(), "cuda", seeds=5)

    def test_one_distribution_per_supported_model(self, study):
        assert set(study.distributions) == {"julia", "numba"}

    def test_sample_count(self, study):
        assert len(study.distribution("julia").samples) == 5

    def test_seeds_actually_vary(self, study):
        samples = study.distribution("julia").samples
        assert len(set(samples)) > 1

    def test_deterministic_overall(self):
        a = variance_study(_exp(), "cuda", seeds=3)
        b = variance_study(_exp(), "cuda", seeds=3)
        assert a.distribution("julia").samples == b.distribution("julia").samples

    def test_mean_matches_single_run_ballpark(self, study):
        # Table III A100 fp64: julia ~0.86
        assert study.distribution("julia").mean == pytest.approx(0.86, abs=0.05)

    def test_reference_excluded(self, study):
        assert "cuda" not in study.distributions

    def test_unsupported_model_skipped(self):
        """Numba on Crusher's GPU contributes no distribution."""
        exp = _exp(node_name="Crusher", models=("hip", "julia", "numba"))
        study = variance_study(exp, "hip", seeds=3)
        assert "numba" not in study.distributions

    def test_needs_two_seeds(self):
        with pytest.raises(ExperimentError):
            variance_study(_exp(), "cuda", seeds=1)

    def test_render(self, study):
        out = study.render()
        assert "beats vendor" in out and "stdev" in out
